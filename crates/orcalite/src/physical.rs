//! Orca physical plans and search statistics.
//!
//! Every node carries its memo group id, as in the paper's Fig 6 plan
//! sketch ("the numbers after the physical operator names are the 'memo'
//! group ID's"), and the qt indexes flow through so the host's plan
//! converter never has to re-discover table identities (§4.1's
//! `TABLE_LIST`-pointer trick).

use crate::desc::OrderKey;
use std::fmt;
use taurus_common::Expr;

/// Join semantics, mirroring the host's entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysJoinKind {
    Inner,
    LeftOuter,
    Semi,
    AntiSemi,
}

impl PhysJoinKind {
    pub fn name(self) -> &'static str {
        match self {
            PhysJoinKind::Inner => "Inner",
            PhysJoinKind::LeftOuter => "LeftOuter",
            PhysJoinKind::Semi => "Semi",
            PhysJoinKind::AntiSemi => "AntiSemi",
        }
    }
}

/// A physical operator tree as Orca emits it.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysNode {
    /// Sequential scan of a base relation.
    Scan { qt: usize, preds: Vec<Expr>, rows: f64, cost: f64, group: usize },
    /// Index range scan over constant bounds on the index's leading column.
    IndexRange {
        qt: usize,
        /// Host-side index position.
        index: usize,
        lo: Option<(Expr, bool)>,
        hi: Option<(Expr, bool)>,
        /// Conjuncts consumed by the bounds.
        consumed: Vec<Expr>,
        /// Remaining local predicates.
        preds: Vec<Expr>,
        rows: f64,
        cost: f64,
        group: usize,
    },
    /// Full *ordered* scan of an index: every row fetched in key order, no
    /// bounds. Only emitted when the block has a required order this
    /// index's key prefix delivers — the memo's enforcer-free alternative
    /// to scan-then-sort.
    IndexScan { qt: usize, index: usize, preds: Vec<Expr>, rows: f64, cost: f64, group: usize },
    /// The cost-based IN-list rewrite: one point probe per listed value
    /// (keys sorted ascending, deduplicated), concatenated — delivering the
    /// index's leading column ascending as a side effect. Retained as a
    /// group expression alongside scan/range; the cost model chooses.
    InListProbes {
        qt: usize,
        index: usize,
        /// Sorted, deduplicated literal probe keys.
        keys: Vec<Expr>,
        /// The consumed `IN` conjunct.
        consumed: Vec<Expr>,
        /// Remaining local predicates.
        preds: Vec<Expr>,
        rows: f64,
        cost: f64,
        group: usize,
    },
    /// Index probe keyed by outer expressions (inner side of an index NLJ).
    IndexLookup {
        qt: usize,
        index: usize,
        keys: Vec<Expr>,
        consumed: Vec<Expr>,
        preds: Vec<Expr>,
        rows: f64,
        cost: f64,
        group: usize,
    },
    /// Derived-table scan (subquery/CTE consumer); the host supplies the
    /// inner plan.
    DerivedScan { qt: usize, preds: Vec<Expr>, rows: f64, cost: f64, group: usize },
    /// Nested-loop join / correlated apply.
    NLJoin {
        kind: PhysJoinKind,
        null_aware: bool,
        outer: Box<PhysNode>,
        inner: Box<PhysNode>,
        on: Vec<Expr>,
        rows: f64,
        cost: f64,
        group: usize,
    },
    /// Hash join. Orca's convention: **build side on the right** (§7 item
    /// 2); the host converter flips for MySQL inner hash joins.
    HashJoin {
        kind: PhysJoinKind,
        null_aware: bool,
        left: Box<PhysNode>,
        right: Box<PhysNode>,
        keys: Vec<(Expr, Expr)>,
        residual: Vec<Expr>,
        rows: f64,
        cost: f64,
        group: usize,
    },
    /// Sort enforcer placed *inside* the plan (sort-ahead §4: order a
    /// small input early and let order-preserving joins carry it to the
    /// root for free). Keys are the block's required order restricted to
    /// the input's qts.
    Sort { input: Box<PhysNode>, keys: Vec<OrderKey>, rows: f64, cost: f64, group: usize },
}

impl PhysNode {
    pub fn rows(&self) -> f64 {
        match self {
            PhysNode::Scan { rows, .. }
            | PhysNode::IndexRange { rows, .. }
            | PhysNode::IndexScan { rows, .. }
            | PhysNode::InListProbes { rows, .. }
            | PhysNode::IndexLookup { rows, .. }
            | PhysNode::DerivedScan { rows, .. }
            | PhysNode::NLJoin { rows, .. }
            | PhysNode::HashJoin { rows, .. }
            | PhysNode::Sort { rows, .. } => *rows,
        }
    }

    pub fn cost(&self) -> f64 {
        match self {
            PhysNode::Scan { cost, .. }
            | PhysNode::IndexRange { cost, .. }
            | PhysNode::IndexScan { cost, .. }
            | PhysNode::InListProbes { cost, .. }
            | PhysNode::IndexLookup { cost, .. }
            | PhysNode::DerivedScan { cost, .. }
            | PhysNode::NLJoin { cost, .. }
            | PhysNode::HashJoin { cost, .. }
            | PhysNode::Sort { cost, .. } => *cost,
        }
    }

    pub fn group(&self) -> usize {
        match self {
            PhysNode::Scan { group, .. }
            | PhysNode::IndexRange { group, .. }
            | PhysNode::IndexScan { group, .. }
            | PhysNode::InListProbes { group, .. }
            | PhysNode::IndexLookup { group, .. }
            | PhysNode::DerivedScan { group, .. }
            | PhysNode::NLJoin { group, .. }
            | PhysNode::HashJoin { group, .. }
            | PhysNode::Sort { group, .. } => *group,
        }
    }

    /// `(nested loop count, hash join count)` — the Fig 4/5 statistic.
    pub fn join_method_counts(&self) -> (usize, usize) {
        match self {
            PhysNode::NLJoin { outer, inner, .. } => {
                let (a, b) = outer.join_method_counts();
                let (c, d) = inner.join_method_counts();
                (a + c + 1, b + d)
            }
            PhysNode::HashJoin { left, right, .. } => {
                let (a, b) = left.join_method_counts();
                let (c, d) = right.join_method_counts();
                (a + c, b + d + 1)
            }
            PhysNode::Sort { input, .. } => input.join_method_counts(),
            _ => (0, 0),
        }
    }

    /// Whether the join tree is bushy (some join has a join on its right
    /// side) — the shape MySQL cannot natively execute (§7 item 1).
    pub fn is_bushy(&self) -> bool {
        fn is_join(n: &PhysNode) -> bool {
            matches!(n, PhysNode::NLJoin { .. } | PhysNode::HashJoin { .. })
        }
        match self {
            PhysNode::NLJoin { outer, inner, .. } => {
                is_join(inner) || outer.is_bushy() || inner.is_bushy()
            }
            PhysNode::HashJoin { left, right, .. } => {
                is_join(right) || left.is_bushy() || right.is_bushy()
            }
            PhysNode::Sort { input, .. } => input.is_bushy(),
            _ => false,
        }
    }

    /// Pre-order leaves' qt indexes (join order as positions).
    pub fn leaf_qts(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(n: &PhysNode, out: &mut Vec<usize>) {
            match n {
                PhysNode::Scan { qt, .. }
                | PhysNode::IndexRange { qt, .. }
                | PhysNode::IndexScan { qt, .. }
                | PhysNode::InListProbes { qt, .. }
                | PhysNode::IndexLookup { qt, .. }
                | PhysNode::DerivedScan { qt, .. } => out.push(*qt),
                PhysNode::NLJoin { outer, inner, .. } => {
                    walk(outer, out);
                    walk(inner, out);
                }
                PhysNode::HashJoin { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                PhysNode::Sort { input, .. } => walk(input, out),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Fig 6-style sketch: operator names with memo group ids.
    pub fn sketch(&self) -> String {
        let mut out = String::new();
        fn walk(n: &PhysNode, depth: usize, out: &mut String) {
            use fmt::Write;
            for _ in 0..depth {
                out.push_str("  ");
            }
            match n {
                PhysNode::Scan { qt, group, .. } => {
                    let _ = writeln!(out, "PhysicalTableScan {group} (qt{qt})");
                }
                PhysNode::IndexRange { qt, group, .. } => {
                    let _ = writeln!(out, "PhysicalIndexRangeScan {group} (qt{qt})");
                }
                PhysNode::IndexScan { qt, group, .. } => {
                    let _ = writeln!(out, "PhysicalIndexOnlyOrderedScan {group} (qt{qt})");
                }
                PhysNode::InListProbes { qt, group, keys, .. } => {
                    let _ = writeln!(out, "PhysicalInListProbes[{}] {group} (qt{qt})", keys.len());
                }
                PhysNode::IndexLookup { qt, group, .. } => {
                    let _ = writeln!(out, "PhysicalIndexScan {group} (qt{qt})");
                }
                PhysNode::DerivedScan { qt, group, .. } => {
                    let _ = writeln!(out, "PhysicalDerivedScan {group} (qt{qt})");
                }
                PhysNode::NLJoin { kind, outer, inner, group, .. } => {
                    let _ = writeln!(out, "PhysicalCorrelated{}NLJoin {group}", kind.name());
                    walk(outer, depth + 1, out);
                    walk(inner, depth + 1, out);
                }
                PhysNode::HashJoin { kind, left, right, group, .. } => {
                    let _ = writeln!(out, "Physical{}HashJoin {group}", kind.name());
                    walk(left, depth + 1, out);
                    walk(right, depth + 1, out);
                }
                PhysNode::Sort { input, group, .. } => {
                    let _ = writeln!(out, "PhysicalSort {group}");
                    walk(input, depth + 1, out);
                }
            }
        }
        walk(self, 0, &mut out);
        out
    }
}

/// Search effort statistics, the compile-time drivers of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Memo groups created.
    pub groups: usize,
    /// Join splits (group expressions) explored.
    pub splits_explored: u64,
    /// Physical alternatives costed.
    pub plans_costed: u64,
    /// Normalization-rule applications attempted (one per predicate run
    /// through a rule, e.g. OR factorization §6.2).
    pub rules_applied: u64,
    /// Rule applications that actually rewrote their input.
    pub rules_hit: u64,
}

/// The optimizer's output for one block.
#[derive(Debug, Clone)]
pub struct OrcaPlan {
    pub root: PhysNode,
    pub stats: SearchStats,
    /// Set when an enabled rule changed the query-block structure (e.g.
    /// GbAgg pushed below a join) — the host must fall back to its own
    /// optimizer (§4.2.1).
    pub changed_block_structure: bool,
    /// Degree of parallelism the cost model chose for this plan (1 =
    /// serial; see [`crate::cost::choose_dop`]). The host's refinement
    /// places the actual exchange operators.
    pub dop: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(qt: usize) -> PhysNode {
        PhysNode::Scan { qt, preds: vec![], rows: 10.0, cost: 10.0, group: qt }
    }

    fn hj(l: PhysNode, r: PhysNode) -> PhysNode {
        PhysNode::HashJoin {
            kind: PhysJoinKind::Inner,
            null_aware: false,
            left: Box::new(l),
            right: Box::new(r),
            keys: vec![],
            residual: vec![],
            rows: 100.0,
            cost: 50.0,
            group: 99,
        }
    }

    #[test]
    fn shape_helpers() {
        let bushy = hj(scan(0), hj(scan(1), scan(2)));
        assert!(bushy.is_bushy());
        assert_eq!(bushy.join_method_counts(), (0, 2));
        assert_eq!(bushy.leaf_qts(), vec![0, 1, 2]);
        let left_deep = hj(hj(scan(0), scan(1)), scan(2));
        assert!(!left_deep.is_bushy());
    }

    #[test]
    fn sketch_includes_group_ids() {
        let plan = hj(scan(0), scan(1));
        let sketch = plan.sketch();
        assert!(sketch.contains("PhysicalInnerHashJoin 99"), "{sketch}");
        assert!(sketch.contains("PhysicalTableScan 0"), "{sketch}");
    }
}
