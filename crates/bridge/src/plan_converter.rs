//! The Orca plan converter: Orca physical plans → MySQL skeleton plans
//! (paper §4.2).
//!
//! The translation runs in the paper's two passes:
//!
//! * **First pass** (`discover_blocks`): a pre-order traversal that
//!   validates the query-block structure — every leaf's query-table index
//!   must belong to the expected block (the `TABLE_LIST` link, §4.2.1). If
//!   Orca changed the block structure, translation aborts with an
//!   [`Error::OrcaFallback`] and the system "resorts to the usual MySQL
//!   query optimization".
//! * **Second pass** (`fill_positions`): builds the skeleton tree whose
//!   pre-order leaves are MySQL's best-position array (Fig 7), copying
//!   Orca's cost and cardinality estimates onto each entry so they "show up
//!   in the MySQL plan (the EXPLAIN output) as usual" (§4.2.2).
//!
//! One §7 lesson applies here: MySQL builds inner hash joins on the *left*
//! while Orca (and everyone else) builds on the right, so "the flip was
//! introduced in the Orca-generated trees for the MySQL target" — inner
//! hash joins swap children during translation.

use mylite::bound::BoundQuery;
use mylite::skeleton::{AccessChoice, JoinMethod, SkelLeaf, SkelNode, Skeleton};
use orcalite::physical::{OrcaPlan, PhysJoinKind, PhysNode};
use std::collections::{BTreeSet, HashMap};
use taurus_common::error::{Error, Result};
use taurus_common::Expr;

/// Convert one block's Orca plan to a MySQL skeleton. `inner_skeletons`
/// maps derived-member qts to their (already converted) inner skeletons.
pub fn to_skeleton(
    plan: &OrcaPlan,
    block: &BoundQuery,
    inner_skeletons: &HashMap<usize, Skeleton>,
) -> Result<Skeleton> {
    if plan.changed_block_structure {
        return Err(Error::fallback(
            "Orca changed the query block structure; falling back to MySQL optimization (§4.2.1)",
        ));
    }
    discover_blocks(&plan.root, block)?;
    let root = fill_positions(&plan.root, inner_skeletons)?;
    Ok(Skeleton {
        root,
        orca_assisted: true,
        orca_fallback: None,
        dop: if plan.dop > 1 { Some(plan.dop) } else { None },
        search: None,
        reopt: None,
    })
}

/// First pass: verify the plan's leaves are exactly this block's members.
fn discover_blocks(node: &PhysNode, block: &BoundQuery) -> Result<()> {
    let expected: BTreeSet<usize> = block.member_qts();
    let got: BTreeSet<usize> = node.leaf_qts().into_iter().collect();
    if expected != got {
        return Err(Error::fallback(format!(
            "Orca plan covers query tables {got:?} but the block owns {expected:?} — \
             query block structure changed"
        )));
    }
    Ok(())
}

/// Second pass: build the skeleton (best-position array + join tree).
fn fill_positions(node: &PhysNode, inner_skeletons: &HashMap<usize, Skeleton>) -> Result<SkelNode> {
    Ok(match node {
        PhysNode::Scan { qt, rows, cost, .. } => SkelNode::Leaf(SkelLeaf {
            qt: *qt,
            access: AccessChoice::TableScan,
            rows: *rows,
            cost: *cost,
        }),
        PhysNode::IndexRange { qt, index, lo, hi, consumed, rows, cost, .. } => {
            SkelNode::Leaf(SkelLeaf {
                qt: *qt,
                access: AccessChoice::IndexRange {
                    index: *index,
                    lo: lo.clone(),
                    hi: hi.clone(),
                    consumed: consumed.clone(),
                },
                rows: *rows,
                cost: *cost,
            })
        }
        PhysNode::IndexScan { qt, index, rows, cost, .. } => SkelNode::Leaf(SkelLeaf {
            qt: *qt,
            access: AccessChoice::IndexScan { index: *index },
            rows: *rows,
            cost: *cost,
        }),
        PhysNode::InListProbes { qt, index, keys, consumed, rows, cost, .. } => {
            SkelNode::Leaf(SkelLeaf {
                qt: *qt,
                access: AccessChoice::InListProbes {
                    index: *index,
                    keys: keys.clone(),
                    consumed: consumed.clone(),
                },
                rows: *rows,
                cost: *cost,
            })
        }
        PhysNode::IndexLookup { qt, index, keys, consumed, rows, cost, .. } => {
            SkelNode::Leaf(SkelLeaf {
                qt: *qt,
                access: AccessChoice::IndexLookup {
                    index: *index,
                    keys: keys.clone(),
                    consumed: consumed.clone(),
                },
                rows: *rows,
                cost: *cost,
            })
        }
        PhysNode::DerivedScan { qt, rows, cost, .. } => {
            let skeleton = inner_skeletons.get(qt).cloned().ok_or_else(|| {
                Error::internal(format!("derived member qt {qt} has no inner skeleton"))
            })?;
            SkelNode::Leaf(SkelLeaf {
                qt: *qt,
                access: AccessChoice::Derived { skeleton: Box::new(skeleton) },
                rows: *rows,
                cost: *cost,
            })
        }
        PhysNode::NLJoin { outer, inner, rows, cost, .. } => SkelNode::Join {
            method: JoinMethod::NestedLoop,
            left: Box::new(fill_positions(outer, inner_skeletons)?),
            right: Box::new(fill_positions(inner, inner_skeletons)?),
            rows: *rows,
            cost: *cost,
        },
        PhysNode::HashJoin { kind, left, right, rows, cost, .. } => {
            let l = fill_positions(left, inner_skeletons)?;
            let r = fill_positions(right, inner_skeletons)?;
            // §7 item 2: Orca builds on the right; MySQL's executor builds
            // inner hash joins on the left. Swapping children preserves
            // inner-join semantics while keeping Orca's intended build side.
            let (left, right) = if *kind == PhysJoinKind::Inner { (r, l) } else { (l, r) };
            SkelNode::Join {
                method: JoinMethod::Hash,
                left: Box::new(left),
                right: Box::new(right),
                rows: *rows,
                cost: *cost,
            }
        }
        PhysNode::Sort { input, keys, rows, cost, .. } => SkelNode::Sort {
            input: Box::new(fill_positions(input, inner_skeletons)?),
            keys: keys.iter().map(|k| (Expr::col(k.qt, k.col), k.desc)).collect(),
            rows: *rows,
            cost: *cost,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mylite::bound::{BlockTable, JoinEntry};
    use orcalite::physical::SearchStats;
    use taurus_common::Expr;

    fn block_with_qts(qts: &[usize]) -> BoundQuery {
        BoundQuery {
            members: qts
                .iter()
                .map(|&qt| BlockTable { qt, entry: JoinEntry::Inner, deps: BTreeSet::new() })
                .collect(),
            predicates: vec![],
            select: vec![],
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
            distinct: false,
        }
    }

    fn scan(qt: usize) -> PhysNode {
        PhysNode::Scan { qt, preds: vec![], rows: 10.0, cost: 5.0, group: qt }
    }

    fn plan(root: PhysNode) -> OrcaPlan {
        OrcaPlan { root, stats: SearchStats::default(), changed_block_structure: false, dop: 1 }
    }

    #[test]
    fn inner_hash_join_children_flip() {
        let root = PhysNode::HashJoin {
            kind: PhysJoinKind::Inner,
            null_aware: false,
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            keys: vec![(Expr::col(0, 0), Expr::col(1, 0))],
            residual: vec![],
            rows: 100.0,
            cost: 40.0,
            group: 7,
        };
        let sk = to_skeleton(&plan(root), &block_with_qts(&[0, 1]), &HashMap::new()).unwrap();
        assert!(sk.orca_assisted);
        // Orca's right child (qt 1, the build side) becomes MySQL's left.
        assert_eq!(sk.root.qts(), vec![1, 0]);
        match &sk.root {
            SkelNode::Join { method: JoinMethod::Hash, rows, cost, .. } => {
                assert_eq!(*rows, 100.0, "estimates copied over (§4.2.2)");
                assert_eq!(*cost, 40.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn semi_hash_join_does_not_flip() {
        let root = PhysNode::HashJoin {
            kind: PhysJoinKind::Semi,
            null_aware: false,
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            keys: vec![(Expr::col(0, 0), Expr::col(1, 0))],
            residual: vec![],
            rows: 8.0,
            cost: 40.0,
            group: 7,
        };
        let sk = to_skeleton(&plan(root), &block_with_qts(&[0, 1]), &HashMap::new()).unwrap();
        assert_eq!(sk.root.qts(), vec![0, 1]);
    }

    #[test]
    fn changed_block_structure_falls_back() {
        let p = OrcaPlan {
            root: scan(0),
            stats: SearchStats::default(),
            changed_block_structure: true,
            dop: 1,
        };
        let err = to_skeleton(&p, &block_with_qts(&[0]), &HashMap::new()).unwrap_err();
        assert!(matches!(err, Error::OrcaFallback(_)));
    }

    #[test]
    fn wrong_leaf_set_falls_back() {
        // Plan covers qt 5, block owns qt 0: block structure mismatch.
        let err = to_skeleton(&plan(scan(5)), &block_with_qts(&[0]), &HashMap::new()).unwrap_err();
        assert!(matches!(err, Error::OrcaFallback(_)));
    }

    #[test]
    fn derived_leaf_needs_inner_skeleton() {
        let root = PhysNode::DerivedScan { qt: 0, preds: vec![], rows: 1.0, cost: 2.0, group: 0 };
        let err =
            to_skeleton(&plan(root.clone()), &block_with_qts(&[0]), &HashMap::new()).unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
        let mut inner = HashMap::new();
        inner.insert(
            0usize,
            Skeleton {
                root: SkelNode::Leaf(SkelLeaf {
                    qt: 1,
                    access: AccessChoice::TableScan,
                    rows: 3.0,
                    cost: 3.0,
                }),
                orca_assisted: true,
                orca_fallback: None,
                dop: None,
                search: None,
                reopt: None,
            },
        );
        let sk = to_skeleton(&plan(root), &block_with_qts(&[0]), &inner).unwrap();
        match &sk.root {
            SkelNode::Leaf(SkelLeaf { access: AccessChoice::Derived { .. }, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn best_position_array_matches_preorder() {
        // Fig 7: positions are the plan's left-to-right leaves.
        let root = PhysNode::NLJoin {
            kind: PhysJoinKind::Inner,
            null_aware: false,
            outer: Box::new(PhysNode::NLJoin {
                kind: PhysJoinKind::Inner,
                null_aware: false,
                outer: Box::new(scan(2)),
                inner: Box::new(scan(0)),
                on: vec![],
                rows: 20.0,
                cost: 30.0,
                group: 10,
            }),
            inner: Box::new(scan(1)),
            on: vec![],
            rows: 40.0,
            cost: 80.0,
            group: 11,
        };
        let sk = to_skeleton(&plan(root), &block_with_qts(&[0, 1, 2]), &HashMap::new()).unwrap();
        assert_eq!(sk.root.qts(), vec![2, 0, 1]);
        assert_eq!(sk.best_position_display(&|qt| format!("t{qt}")), "[t2, t0, t1]");
    }
}
