//! Fig 10 — TPC-H execution time for MySQL-optimized vs Orca-optimized
//! plans (paper §6.1).
//!
//! One Criterion group per query with a `mysql` and an `orca` benchmark;
//! each measurement covers optimization + execution, as the paper's
//! wall-clock runs do. The `harness fig10` binary prints the same data as a
//! single table with totals.

use criterion::{criterion_group, criterion_main, Criterion};
use mylite::{Engine, MySqlOptimizer};
use orcalite::{JoinOrderStrategy, OrcaConfig};
use std::time::Duration;
use taurus_bridge::OrcaOptimizer;
use taurus_workloads::{tpch, Scale};

fn fig10(c: &mut Criterion) {
    let scale = Scale(
        std::env::var("SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.15),
    );
    let engine = Engine::new(tpch::build_catalog(scale));
    // The paper's TPC-H setup: threshold 3, EXHAUSTIVE2 (§6.1).
    let orca =
        OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Exhaustive2), 3);
    for q in tpch::queries() {
        let mut group = c.benchmark_group(format!("fig10/{}", q.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(500));
        group.bench_function("mysql", |b| {
            b.iter(|| engine.query_with(&q.sql, &MySqlOptimizer).expect("query runs"))
        });
        group.bench_function("orca", |b| {
            b.iter(|| engine.query_with(&q.sql, &orca).expect("query runs"))
        });
        group.finish();
    }
}

criterion_group!(benches, fig10);
criterion_main!(benches);
