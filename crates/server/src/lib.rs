//! `taurus-server` — the multi-session SQL front end over a shared engine.
//!
//! The paper integrates Orca into a *server*: many MySQL sessions share one
//! optimizer and one plan cache. This crate supplies that missing layer for
//! the reproduction:
//!
//! * [`protocol`] — a length-prefixed binary wire protocol (std only):
//!   requests carry SQL plus per-statement knob options; replies carry
//!   typed results, EXPLAIN text, or *typed* errors (`DeadlineExceeded` on
//!   the server decodes as `DeadlineExceeded` in the client).
//! * [`session`] — per-connection state: a session id and the `SET`
//!   options layered over the engine's defaults; per-statement options
//!   layer once more. Sessions never touch engine-global knobs.
//! * [`server`] — a threaded accept loop: one OS thread per connection
//!   over an `Arc<Engine>`; concurrency is the engine's problem (sharded
//!   plan cache, catalog read-snapshots, atomic admission), which keeps
//!   this layer dumb and obviously correct.
//! * [`client`] — the blocking client the integration tests and the
//!   closed-loop concurrency bench drive the server with.
//!
//! See DESIGN.md §15 for the protocol and the invalidation argument.

pub mod client;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, QueryReply};
pub use protocol::{Reply, Request, ServeOutcome};
pub use server::{Server, ServerHandle};
pub use session::{layer_opts, Session};
