//! The query router: the Orca detour as a pluggable optimizer backend.
//!
//! A statement is routed to Orca when its total table-reference count
//! reaches the *complex query threshold* (§4.1; default 3, set to 2 for the
//! paper's TPC-DS runs and 1 for the compile-overhead experiment). Only
//! `SELECT`s ever reach a cost-based optimizer in the host engine, matching
//! the paper's INSERT/UPDATE/DELETE exclusion.
//!
//! ## The never-fail detour
//!
//! The router guarantees that no query fails or hangs on the Orca path if
//! the native optimizer would have handled it (§4.2.1's transparent
//! fallback, hardened):
//!
//! * the entire detour runs under [`std::panic::catch_unwind`], so a bug
//!   anywhere in the converters or the optimizer core becomes a recorded
//!   fallback rather than a crashed statement;
//! * search effort is bounded by the config's [`SearchBudget`]; when a
//!   block exhausts it, the router walks a *degradation ladder* — retrying
//!   the block at EXHAUSTIVE, then GREEDY — before giving up on Orca;
//! * every converted skeleton passes a validation pass
//!   ([`crate::validate`]) before it is accepted;
//! * each fallback is attributed to a [`FallbackReason`], surfaced through
//!   [`RouterStats`] and the statement's `EXPLAIN` banner.
//!
//! [`SearchBudget`]: orcalite::config::SearchBudget

use crate::plan_converter::to_skeleton;
use crate::provider::MySqlMdProvider;
use crate::tree_converter::{convert_block, InnerEstimates};
use crate::validate::validate_skeleton;
use mylite::bound::{BoundQuery, BoundStatement, TableSource};
use mylite::engine::{CostBasedOptimizer, ExecFaults, GovernedOutcome, MySqlOptimizer};
use mylite::skeleton::{SearchTrace, Skeleton};
use orcalite::config::{FaultSite, JoinOrderStrategy, OrcaConfig};
use orcalite::desc::BlockDesc;
use orcalite::physical::{OrcaPlan, SearchStats};
use orcalite::MdCache;
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use taurus_catalog::feedback::CardOverrides;
use taurus_catalog::Catalog;
use taurus_common::error::{Error, Result};

/// Why an Orca detour was abandoned for the native optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The detour hit a construct it does not support (or any unexpected
    /// error — the never-fail guarantee treats those identically).
    Unsupported,
    /// The search budget ran out at every rung of the degradation ladder.
    BudgetExhausted,
    /// A panic inside the detour was caught and isolated.
    Panicked,
    /// The converted skeleton failed the bridge's validation pass.
    InvalidSkeleton,
    /// Orca changed the query-block structure (§4.2.1), which MySQL's
    /// refinement cannot express.
    ChangedBlockStructure,
    /// Execution (not planning) exceeded its memory budget even after the
    /// engine's serial-retry degradation rung — the governor gave up on the
    /// statement. Recorded here so resource abandonment shares the fallback
    /// taxonomy the routing report and EXPLAIN banners already surface.
    MemoryExceeded,
}

impl FallbackReason {
    pub const ALL: [FallbackReason; 6] = [
        FallbackReason::Unsupported,
        FallbackReason::BudgetExhausted,
        FallbackReason::Panicked,
        FallbackReason::InvalidSkeleton,
        FallbackReason::ChangedBlockStructure,
        FallbackReason::MemoryExceeded,
    ];

    /// Stable name used in EXPLAIN banners and the bench routing table.
    pub fn name(&self) -> &'static str {
        match self {
            FallbackReason::Unsupported => "unsupported",
            FallbackReason::BudgetExhausted => "budget-exhausted",
            FallbackReason::Panicked => "panicked",
            FallbackReason::InvalidSkeleton => "invalid-skeleton",
            FallbackReason::ChangedBlockStructure => "changed-block-structure",
            FallbackReason::MemoryExceeded => "memory-exceeded",
        }
    }
}

/// Per-reason fallback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FallbackCounts {
    pub unsupported: u64,
    pub budget_exhausted: u64,
    pub panicked: u64,
    pub invalid_skeleton: u64,
    pub changed_block_structure: u64,
    pub memory_exceeded: u64,
}

impl FallbackCounts {
    pub fn get(&self, reason: FallbackReason) -> u64 {
        match reason {
            FallbackReason::Unsupported => self.unsupported,
            FallbackReason::BudgetExhausted => self.budget_exhausted,
            FallbackReason::Panicked => self.panicked,
            FallbackReason::InvalidSkeleton => self.invalid_skeleton,
            FallbackReason::ChangedBlockStructure => self.changed_block_structure,
            FallbackReason::MemoryExceeded => self.memory_exceeded,
        }
    }

    pub fn total(&self) -> u64 {
        FallbackReason::ALL.iter().map(|r| self.get(*r)).sum()
    }

    fn bump(&mut self, reason: FallbackReason) {
        match reason {
            FallbackReason::Unsupported => self.unsupported += 1,
            FallbackReason::BudgetExhausted => self.budget_exhausted += 1,
            FallbackReason::Panicked => self.panicked += 1,
            FallbackReason::InvalidSkeleton => self.invalid_skeleton += 1,
            FallbackReason::ChangedBlockStructure => self.changed_block_structure += 1,
            FallbackReason::MemoryExceeded => self.memory_exceeded += 1,
        }
    }
}

/// Per-outcome counters for executions run under the engine's query
/// governor: how governed statements ended when governance intervened.
/// `memory_degraded` counts rescues (the serial retry succeeded — not a
/// failure); the other three count statements that surfaced a typed
/// governance error to their caller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernedCounts {
    /// Executions stopped by [`mylite::Engine::cancel`] or a cancel fault.
    pub cancelled: u64,
    /// Executions that outran their wall-clock deadline.
    pub deadline_exceeded: u64,
    /// Executions over their memory budget even at the serial rung (each
    /// also bumps [`FallbackCounts::memory_exceeded`]).
    pub memory_exceeded: u64,
    /// Parallel executions over budget that completed after the engine's
    /// retry at dop=1 / GREEDY-equivalent serial plan.
    pub memory_degraded: u64,
}

impl GovernedCounts {
    pub fn total(&self) -> u64 {
        self.cancelled + self.deadline_exceeded + self.memory_exceeded + self.memory_degraded
    }
}

/// Routing counters (inspected by tests and the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouterStats {
    /// Statements optimized by Orca end to end.
    pub routed: u64,
    /// Statements below the complex-query threshold (MySQL handled them).
    pub below_threshold: u64,
    /// Orca detours aborted mid-way (MySQL fallback) — the sum of
    /// `reasons`.
    pub fallbacks: u64,
    /// Fallbacks attributed to their cause.
    pub reasons: FallbackCounts,
    /// Blocks that exhausted their budget but completed on Orca at a
    /// cheaper rung of the degradation ladder (not fallbacks).
    pub degraded: u64,
    /// Cumulative search effort over every Orca optimization this router
    /// performed (groups, group expressions, rules, plans costed).
    pub search: SearchStats,
    /// Governance outcomes of executions routed through this optimizer
    /// (cancellations, deadline and memory-budget trips, serial-retry
    /// rescues).
    pub governed: GovernedCounts,
    /// Cached statements the engine re-optimized through this backend with
    /// runtime feedback (observed cardinalities) injected.
    pub reoptimized: u64,
}

/// A classified detour failure: the fallback reason plus the underlying
/// error text (kept for diagnostics; the reason drives behaviour).
struct DetourFail {
    reason: FallbackReason,
    detail: String,
}

impl DetourFail {
    fn new(reason: FallbackReason, err: &Error) -> DetourFail {
        DetourFail { reason, detail: err.to_string() }
    }

    /// Budget errors keep their identity; everything else is "the detour
    /// could not handle it".
    fn classify(err: Error) -> DetourFail {
        let reason = if err.is_resource_exhausted() {
            FallbackReason::BudgetExhausted
        } else {
            FallbackReason::Unsupported
        };
        DetourFail::new(reason, &err)
    }
}

/// Search-effort accumulator threaded through a statement's blocks: summed
/// memo statistics plus the deepest degradation-ladder rung any block
/// needed and the strategy that won there.
struct TraceAcc {
    stats: SearchStats,
    rung: usize,
    strategy: JoinOrderStrategy,
}

impl TraceAcc {
    /// Finalize into the skeleton-attached [`SearchTrace`]. Budget use is
    /// the larger of the groups and plans-costed fractions against the
    /// *configured* budget (a fault-squeezed budget still reports against
    /// the configured one — the trace describes the session's settings).
    fn into_trace(self, cfg: &OrcaConfig) -> SearchTrace {
        let frac = |used: f64, cap: f64| if cap <= 0.0 { 1.0 } else { (used / cap).min(1.0) };
        let budget_used = frac(self.stats.groups as f64, cfg.budget.max_groups as f64)
            .max(frac(self.stats.plans_costed as f64, cfg.budget.max_plans_costed as f64));
        SearchTrace {
            groups: self.stats.groups,
            group_exprs: self.stats.splits_explored,
            rules_applied: self.stats.rules_applied,
            rules_hit: self.stats.rules_hit,
            plans_costed: self.stats.plans_costed,
            budget_used,
            rung: self.rung,
            strategy: strategy_name(self.strategy),
        }
    }
}

/// Stable strategy names for traces and banners.
fn strategy_name(s: JoinOrderStrategy) -> &'static str {
    match s {
        JoinOrderStrategy::Greedy => "GREEDY",
        JoinOrderStrategy::Exhaustive => "EXHAUSTIVE",
        JoinOrderStrategy::Exhaustive2 => "EXHAUSTIVE2",
    }
}

/// The degradation ladder: the configured strategy first, then each
/// cheaper strategy, tried in order when the search budget runs out.
fn ladder(strategy: JoinOrderStrategy) -> &'static [JoinOrderStrategy] {
    use JoinOrderStrategy::{Exhaustive, Exhaustive2, Greedy};
    match strategy {
        Exhaustive2 => &[Exhaustive2, Exhaustive, Greedy],
        Exhaustive => &[Exhaustive, Greedy],
        Greedy => &[Greedy],
    }
}

/// Lock a mutex, recovering the data if a previous holder panicked — the
/// router's side-state is plain counters, so a poisoned guard is still
/// structurally sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Best-effort text of a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The Orca-backed cost-based optimizer.
pub struct OrcaOptimizer {
    pub config: OrcaConfig,
    /// The §4.1 "complex query threshold": minimum table-reference count
    /// for the Orca detour.
    pub complex_query_threshold: usize,
    routed: AtomicU64,
    below: AtomicU64,
    fallbacks: AtomicU64,
    reasons: Mutex<FallbackCounts>,
    governed: Mutex<GovernedCounts>,
    degraded: AtomicU64,
    last_fallback: Mutex<Option<FallbackReason>>,
    last_search: Mutex<SearchStats>,
    total_search: Mutex<SearchStats>,
    last_trace: Mutex<Option<SearchTrace>>,
    last_md_traffic: Mutex<(u64, u64)>,
    reoptimized: AtomicU64,
}

impl Default for OrcaOptimizer {
    fn default() -> Self {
        OrcaOptimizer::new(OrcaConfig::default(), 3)
    }
}

impl OrcaOptimizer {
    pub fn new(config: OrcaConfig, complex_query_threshold: usize) -> Self {
        OrcaOptimizer {
            config,
            complex_query_threshold,
            routed: AtomicU64::new(0),
            below: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            reasons: Mutex::new(FallbackCounts::default()),
            governed: Mutex::new(GovernedCounts::default()),
            degraded: AtomicU64::new(0),
            last_fallback: Mutex::new(None),
            last_search: Mutex::new(SearchStats::default()),
            total_search: Mutex::new(SearchStats::default()),
            last_trace: Mutex::new(None),
            last_md_traffic: Mutex::new((0, 0)),
            reoptimized: AtomicU64::new(0),
        }
    }

    pub fn stats(&self) -> RouterStats {
        RouterStats {
            routed: self.routed.load(Ordering::Relaxed),
            below_threshold: self.below.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            reasons: *lock(&self.reasons),
            degraded: self.degraded.load(Ordering::Relaxed),
            search: *lock(&self.total_search),
            governed: *lock(&self.governed),
            reoptimized: self.reoptimized.load(Ordering::Relaxed),
        }
    }

    /// Search trace of the most recent Orca optimization (all blocks
    /// summed), as attached to its skeleton and EXPLAIN output.
    pub fn last_search_trace(&self) -> Option<SearchTrace> {
        lock(&self.last_trace).clone()
    }

    /// Reason for the most recent fallback, if the last routed statement
    /// fell back (cleared on each Orca success).
    pub fn last_fallback(&self) -> Option<FallbackReason> {
        *lock(&self.last_fallback)
    }

    /// Memo statistics of the most recent Orca optimization (all blocks
    /// summed) — the Table 1 effort metric.
    pub fn last_search_stats(&self) -> SearchStats {
        *lock(&self.last_search)
    }

    /// Metadata-cache traffic `(provider round-trips, cache hits)` of the
    /// most recent Orca optimization. One [`MdCache`] now spans the whole
    /// statement — every block and every degradation-ladder rung — so
    /// re-optimizing a block at a cheaper strategy re-reads metadata from
    /// memory instead of the provider (§5.7).
    ///
    /// [`MdCache`]: orcalite::MdCache
    pub fn last_md_traffic(&self) -> (u64, u64) {
        *lock(&self.last_md_traffic)
    }

    fn note_fallback(&self, reason: FallbackReason) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        lock(&self.reasons).bump(reason);
        *lock(&self.last_fallback) = Some(reason);
    }

    fn orca_optimize(
        &self,
        catalog: &Catalog,
        bound: &BoundStatement,
        fb: Option<&CardOverrides>,
    ) -> std::result::Result<Skeleton, DetourFail> {
        let provider = MySqlMdProvider::new(catalog);
        // One metadata cache for the whole statement: all blocks and all
        // degradation-ladder rungs share it, so the provider is consulted
        // at most once per (relation, statistics, indexes) key.
        let md = MdCache::new(&provider);
        // Observed-cardinality overrides ride the metadata cache: the memo
        // search consults them before the statistics-based estimates.
        if let Some(fb) = fb {
            md.set_overrides(Some(Arc::new(fb.clone())));
        }
        let mut acc =
            TraceAcc { stats: SearchStats::default(), rung: 0, strategy: self.config.strategy };
        let mut skeleton = self.optimize_block(
            bound,
            &provider,
            &md,
            &bound.root,
            &BTreeSet::new(),
            fb,
            &mut acc,
        )?;
        *lock(&self.last_search) = acc.stats;
        {
            let mut cum = lock(&self.total_search);
            cum.groups += acc.stats.groups;
            cum.splits_explored += acc.stats.splits_explored;
            cum.plans_costed += acc.stats.plans_costed;
            cum.rules_applied += acc.stats.rules_applied;
            cum.rules_hit += acc.stats.rules_hit;
        }
        *lock(&self.last_md_traffic) = md.traffic();
        let trace = acc.into_trace(&self.config);
        *lock(&self.last_trace) = Some(trace.clone());
        skeleton.search = Some(trace);
        Ok(skeleton)
    }

    /// Optimize one block, retrying cheaper strategies when the budget
    /// runs out. Returns the winning plan plus the ladder rung and
    /// strategy that produced it, or a budget failure once every rung has
    /// been exhausted.
    fn optimize_with_ladder(
        &self,
        desc: &BlockDesc,
        md: &MdCache<'_>,
    ) -> std::result::Result<(OrcaPlan, usize, JoinOrderStrategy), DetourFail> {
        let mut exhausted: Option<Error> = None;
        for (rung, &strategy) in ladder(self.config.strategy).iter().enumerate() {
            let cfg = OrcaConfig { strategy, ..self.config.clone() };
            match orcalite::optimize_block_cached(desc, md, &cfg) {
                Ok(plan) => {
                    if rung > 0 {
                        self.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((plan, rung, strategy));
                }
                Err(e) if e.is_resource_exhausted() => exhausted = Some(e),
                Err(e) => return Err(DetourFail::classify(e)),
            }
        }
        // Ladders are non-empty, so reaching here means the final rung
        // exhausted the budget too.
        let e = exhausted.unwrap_or_else(|| Error::resource_exhausted("search budget", 0));
        Err(DetourFail::new(FallbackReason::BudgetExhausted, &e))
    }

    #[allow(clippy::too_many_arguments)]
    fn optimize_block(
        &self,
        bound: &BoundStatement,
        provider: &MySqlMdProvider<'_>,
        md: &MdCache<'_>,
        block: &BoundQuery,
        outer: &BTreeSet<usize>,
        fb: Option<&CardOverrides>,
        acc: &mut TraceAcc,
    ) -> std::result::Result<Skeleton, DetourFail> {
        let faults = &self.config.faults;
        // Derived members' inner blocks first (bottom-up).
        let mut inner_estimates = InnerEstimates::new();
        let mut inner_skeletons: HashMap<usize, Skeleton> = HashMap::new();
        let mut inner_outer = outer.clone();
        inner_outer.extend(block.member_qts());
        for m in &block.members {
            if let TableSource::Derived { query, .. } = &bound.table(m.qt).source {
                let sk = self.optimize_block(bound, provider, md, query, &inner_outer, fb, acc)?;
                // Adjust the join-root estimate for the block's aggregation
                // and limit — same numbers the native optimizer sees. An
                // observed cardinality for the derived table itself wins
                // over both (it already includes HAVING and LIMIT).
                let rows =
                    fb.and_then(|f| f.rel_singleton(m.qt)).map(|r| r.max(1.0)).unwrap_or_else(
                        || mylite::optimizer::derived_output_rows_fb(query, sk.root.rows(), fb),
                    );
                inner_estimates.insert(m.qt, (rows, sk.root.cost()));
                inner_skeletons.insert(m.qt, sk);
            }
        }

        faults.fire(FaultSite::TreeConvert).map_err(DetourFail::classify)?;
        let (desc, _oids) = convert_block(bound, block, provider, &inner_estimates, outer)
            .map_err(DetourFail::classify)?;

        let (plan, rung, strategy) = self.optimize_with_ladder(&desc, md)?;
        acc.stats.groups += plan.stats.groups;
        acc.stats.splits_explored += plan.stats.splits_explored;
        acc.stats.plans_costed += plan.stats.plans_costed;
        acc.stats.rules_applied += plan.stats.rules_applied;
        acc.stats.rules_hit += plan.stats.rules_hit;
        // The statement's trace reports the deepest rung any block needed.
        if rung >= acc.rung {
            acc.rung = rung;
            acc.strategy = strategy;
        }
        if plan.changed_block_structure {
            return Err(DetourFail {
                reason: FallbackReason::ChangedBlockStructure,
                detail: "Orca changed the query block structure (§4.2.1)".to_string(),
            });
        }

        faults.fire(FaultSite::PlanConvert).map_err(DetourFail::classify)?;
        let skeleton = to_skeleton(&plan, block, &inner_skeletons).map_err(|e| {
            // The plan converter's own fallback errors are exactly its
            // block-structure checks; anything else is unexpected.
            let reason = match &e {
                Error::OrcaFallback(_) => FallbackReason::ChangedBlockStructure,
                _ => FallbackReason::Unsupported,
            };
            DetourFail::new(reason, &e)
        })?;

        faults
            .fire(FaultSite::SkeletonValidate)
            .and_then(|()| validate_skeleton(&skeleton, block, bound))
            .map_err(|e| DetourFail::new(FallbackReason::InvalidSkeleton, &e))?;
        Ok(skeleton)
    }

    /// The routing decision shared by `optimize` and
    /// `optimize_with_feedback`: threshold check, panic-isolated Orca
    /// detour, attributed native fallback.
    fn route(
        &self,
        catalog: &Catalog,
        bound: &BoundStatement,
        fb: Option<&CardOverrides>,
    ) -> Result<Skeleton> {
        let native = |catalog: &Catalog, bound: &BoundStatement| match fb {
            Some(o) => MySqlOptimizer.optimize_with_feedback(catalog, bound, o),
            None => MySqlOptimizer.optimize(catalog, bound),
        };
        // Query complexity = total table references (§4.1).
        if bound.num_tables() < self.complex_query_threshold {
            self.below.fetch_add(1, Ordering::Relaxed);
            return native(catalog, bound);
        }
        // The whole detour is panic-isolated: `OrcaOptimizer` only holds
        // atomics and mutex-guarded plain counters (locks are recovered
        // from poisoning), so observing a partially-updated state after an
        // unwind is benign (at worst a stale last_search snapshot), which
        // is what makes the `AssertUnwindSafe` sound.
        let attempt = catch_unwind(AssertUnwindSafe(|| self.orca_optimize(catalog, bound, fb)));
        let fail = match attempt {
            Ok(Ok(skeleton)) => {
                self.routed.fetch_add(1, Ordering::Relaxed);
                *lock(&self.last_fallback) = None;
                return Ok(skeleton);
            }
            Ok(Err(fail)) => fail,
            Err(payload) => DetourFail {
                reason: FallbackReason::Panicked,
                detail: panic_text(payload.as_ref()),
            },
        };
        let _ = fail.detail; // reason drives behaviour; detail is for debuggers
        self.note_fallback(fail.reason);
        let mut skeleton = native(catalog, bound)?;
        skeleton.orca_fallback = Some(fail.reason.name().to_string());
        Ok(skeleton)
    }
}

impl CostBasedOptimizer for OrcaOptimizer {
    fn name(&self) -> &'static str {
        "mysql+orca"
    }

    fn optimize(&self, catalog: &Catalog, bound: &BoundStatement) -> Result<Skeleton> {
        self.route(catalog, bound, None)
    }

    /// Feedback-driven re-optimization takes the same detour with the
    /// observed cardinalities installed on the statement's metadata cache;
    /// the native fallback consumes them too, so the re-optimized plan is
    /// feedback-aware whichever optimizer produces it.
    fn optimize_with_feedback(
        &self,
        catalog: &Catalog,
        bound: &BoundStatement,
        fb: &CardOverrides,
    ) -> Result<Skeleton> {
        self.route(catalog, bound, Some(fb))
    }

    fn note_reoptimized(&self) {
        self.reoptimized.fetch_add(1, Ordering::Relaxed);
    }

    /// The engine consults this when it builds a statement's governor: an
    /// armed [`FaultSite::ExecGovernor`] fault becomes a forced cancel
    /// point or memory clamp on every execution routed through this
    /// optimizer.
    fn exec_faults(&self) -> Option<ExecFaults> {
        let faults = &self.config.faults;
        let ef =
            ExecFaults { cancel_after: faults.cancel_point(), memory_clamp: faults.memory_clamp() };
        (ef != ExecFaults::default()).then_some(ef)
    }

    /// Governance outcome attribution. A statement the governor gave up on
    /// for memory joins the fallback taxonomy (`memory-exceeded`), so the
    /// routing report's `reasons.total() == fallbacks` invariant covers
    /// execution-time abandonment too.
    fn note_governed(&self, outcome: GovernedOutcome) {
        {
            let mut g = lock(&self.governed);
            match outcome {
                GovernedOutcome::Cancelled => g.cancelled += 1,
                GovernedOutcome::DeadlineExceeded => g.deadline_exceeded += 1,
                GovernedOutcome::MemoryExceeded => g.memory_exceeded += 1,
                GovernedOutcome::MemoryDegraded => g.memory_degraded += 1,
            }
        }
        if outcome == GovernedOutcome::MemoryExceeded {
            self.note_fallback(FallbackReason::MemoryExceeded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mylite::Engine;
    use taurus_catalog::stats::AnalyzeOptions;
    use taurus_common::{Column, DataType, Schema, Value};

    fn engine() -> Engine {
        let mut cat = Catalog::new();
        let fact = cat
            .create_table(
                "fact",
                Schema::new(vec![
                    Column::new("fk", DataType::Int),
                    Column::new("k2", DataType::Int),
                    Column::new("v", DataType::Int),
                ]),
            )
            .unwrap();
        cat.insert(
            fact,
            (0..2000).map(|i| vec![Value::Int(i % 40), Value::Int(i % 25), Value::Int(i)]),
        )
        .unwrap();
        cat.create_index(fact, "fact_fk", vec![0], false).unwrap();
        let dim1 = cat
            .create_table(
                "dim1",
                Schema::new(vec![
                    Column::new("pk", DataType::Int),
                    Column::new("name", DataType::Str),
                ]),
            )
            .unwrap();
        cat.insert(dim1, (0..40).map(|i| vec![Value::Int(i), Value::str(format!("a{i}"))]))
            .unwrap();
        cat.create_index(dim1, "dim1_pk", vec![0], true).unwrap();
        let dim2 = cat
            .create_table(
                "dim2",
                Schema::new(vec![
                    Column::new("pk2", DataType::Int),
                    Column::new("name2", DataType::Str),
                ]),
            )
            .unwrap();
        cat.insert(dim2, (0..25).map(|i| vec![Value::Int(i), Value::str(format!("b{i}"))]))
            .unwrap();
        cat.create_index(dim2, "dim2_pk", vec![0], true).unwrap();
        cat.analyze_all(&AnalyzeOptions::default());
        Engine::new(cat)
    }

    const THREE_WAY: &str = "SELECT v, name, name2 FROM fact, dim1, dim2 \
                             WHERE fk = pk AND k2 = pk2 AND v < 500";

    #[test]
    fn routed_query_gets_orca_assisted_skeleton() {
        let e = engine();
        let orca = OrcaOptimizer::default();
        let planned = e.plan(THREE_WAY, &orca).unwrap();
        assert!(planned.primary().skeleton.orca_assisted);
        assert_eq!(orca.stats().routed, 1);
        assert!(orca.last_search_stats().groups > 0);
    }

    #[test]
    fn threshold_keeps_short_queries_on_mysql() {
        let e = engine();
        let orca = OrcaOptimizer::default(); // threshold 3
        let planned = e.plan("SELECT v FROM fact WHERE v < 10", &orca).unwrap();
        assert!(!planned.primary().skeleton.orca_assisted);
        assert_eq!(orca.stats().below_threshold, 1);
        // Threshold 1 routes everything (the Table 1 setting).
        let orca1 = OrcaOptimizer::new(OrcaConfig::default(), 1);
        let planned = e.plan("SELECT v FROM fact WHERE v < 10", &orca1).unwrap();
        assert!(planned.primary().skeleton.orca_assisted);
    }

    #[test]
    fn results_agree_between_optimizers() {
        let e = engine();
        let orca = OrcaOptimizer::default();
        let mysql_out = e.query(THREE_WAY).unwrap();
        let orca_out = e.query_with(THREE_WAY, &orca).unwrap();
        let mut a = mysql_out.rows.clone();
        let mut b = orca_out.rows.clone();
        let key = |r: &Vec<Value>| format!("{r:?}");
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "plan choice must not change results");
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn gbagg_rule_triggers_fallback_to_mysql() {
        let e = engine();
        let cfg = OrcaConfig { enable_gbagg_below_join: true, ..OrcaConfig::default() };
        let orca = OrcaOptimizer::new(cfg, 1);
        let sql = "SELECT name, COUNT(*) AS n FROM fact, dim1 WHERE fk = pk GROUP BY name";
        let planned = e.plan(sql, &orca).unwrap();
        // Fallback: plan is NOT Orca-assisted, and the counters show why.
        assert!(!planned.primary().skeleton.orca_assisted);
        assert_eq!(orca.stats().fallbacks, 1);
        assert_eq!(orca.stats().reasons.changed_block_structure, 1);
        assert_eq!(orca.stats().reasons.total(), orca.stats().fallbacks);
        assert_eq!(orca.last_fallback(), Some(FallbackReason::ChangedBlockStructure));
        assert_eq!(
            planned.primary().skeleton.orca_fallback.as_deref(),
            Some("changed-block-structure")
        );
        // And it still executes correctly.
        let out = e.execute_planned(&planned).unwrap();
        assert_eq!(out.rows.len(), 40);
    }

    #[test]
    fn fallback_reason_shows_in_explain_banner() {
        let e = engine();
        let cfg = OrcaConfig { enable_gbagg_below_join: true, ..OrcaConfig::default() };
        let orca = OrcaOptimizer::new(cfg, 1);
        let sql = "SELECT name, COUNT(*) AS n FROM fact, dim1 WHERE fk = pk GROUP BY name";
        let text = e.explain(sql, &orca).unwrap();
        assert!(text.starts_with("EXPLAIN (ORCA fallback: changed-block-structure)"), "{text}");
    }

    #[test]
    fn budget_ladder_rescues_capped_join() {
        use orcalite::config::SearchBudget;
        let e = engine();
        // Measure the efforts of left-deep DP vs greedy on the same join.
        let effort = |strategy| {
            let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(strategy), 1);
            e.plan(THREE_WAY, &orca).unwrap();
            orca.last_search_stats().plans_costed
        };
        let dp = effort(JoinOrderStrategy::Exhaustive);
        let greedy = effort(JoinOrderStrategy::Greedy);
        assert!(greedy + 4 <= dp, "ladder premise: greedy ({greedy}) ≪ DP ({dp})");
        // A join whose member count exceeds the bushy cap, under a budget
        // only greedy fits: the ladder (EXHAUSTIVE2→EXHAUSTIVE→GREEDY)
        // completes the block on Orca instead of falling back to MySQL.
        let cfg = OrcaConfig {
            bushy_member_cap: 2, // THREE_WAY has 3 members
            budget: SearchBudget { max_groups: usize::MAX, max_plans_costed: greedy },
            ..OrcaConfig::default()
        };
        let orca = OrcaOptimizer::new(cfg, 1);
        let planned = e.plan(THREE_WAY, &orca).unwrap();
        assert!(planned.primary().skeleton.orca_assisted, "rescued, not fallen back");
        let stats = orca.stats();
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.degraded >= 1, "{stats:?}");
        // The rescued plan still returns correct rows.
        let out = e.execute_planned(&planned).unwrap();
        assert_eq!(out.rows.len(), 500);
    }

    #[test]
    fn md_cache_spans_ladder_rungs_and_blocks() {
        use orcalite::config::SearchBudget;
        let e = engine();
        // Same ladder scenario as above: two rungs actually run, but the
        // provider is consulted at most once per metadata key — THREE_WAY
        // touches 3 relations × (relation, statistics, indexes) = 9 keys.
        let greedy = {
            let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Greedy), 1);
            e.plan(THREE_WAY, &orca).unwrap();
            orca.last_search_stats().plans_costed
        };
        let cfg = OrcaConfig {
            bushy_member_cap: 2,
            budget: SearchBudget { max_groups: usize::MAX, max_plans_costed: greedy },
            ..OrcaConfig::default()
        };
        let orca = OrcaOptimizer::new(cfg, 1);
        e.plan(THREE_WAY, &orca).unwrap();
        assert!(orca.stats().degraded >= 1, "two rungs must have run");
        let (misses, hits) = orca.last_md_traffic();
        assert!(misses <= 9, "ladder rungs re-queried the provider: {misses} round-trips");
        assert!(hits > 0, "later rungs should be served from the statement cache");
        // Cross-block reuse: a correlated subquery optimizes two blocks
        // over the same relation; the second block's metadata is free.
        let sql = "SELECT fk FROM fact WHERE v > \
                   (SELECT AVG(v) FROM fact f2 WHERE f2.fk = fact.fk) AND fk < 3";
        let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
        e.plan(sql, &orca).unwrap();
        let (misses, hits) = orca.last_md_traffic();
        assert!(misses <= 3, "one relation's keys only: {misses}");
        assert!(hits > 0);
    }

    #[test]
    fn exhausted_ladder_falls_back_with_budget_reason() {
        use orcalite::config::SearchBudget;
        let e = engine();
        let cfg = OrcaConfig {
            budget: SearchBudget { max_groups: 1, max_plans_costed: 0 },
            ..OrcaConfig::default()
        };
        let orca = OrcaOptimizer::new(cfg, 1);
        let planned = e.plan(THREE_WAY, &orca).unwrap();
        assert!(!planned.primary().skeleton.orca_assisted);
        assert_eq!(orca.stats().reasons.budget_exhausted, 1);
        assert_eq!(orca.last_fallback(), Some(FallbackReason::BudgetExhausted));
        assert_eq!(e.execute_planned(&planned).unwrap().rows.len(), 500);
    }

    #[test]
    fn orca_success_clears_last_fallback() {
        let e = engine();
        let cfg = OrcaConfig { enable_gbagg_below_join: true, ..OrcaConfig::default() };
        let orca = OrcaOptimizer::new(cfg, 1);
        e.plan("SELECT name, COUNT(*) AS n FROM fact, dim1 WHERE fk = pk GROUP BY name", &orca)
            .unwrap();
        assert!(orca.last_fallback().is_some());
        e.plan(THREE_WAY, &orca).unwrap();
        assert_eq!(orca.last_fallback(), None);
    }

    #[test]
    fn correlated_subquery_roundtrip_through_orca() {
        let e = engine();
        let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
        let sql = "SELECT fk FROM fact WHERE v > \
                   (SELECT AVG(v) FROM fact f2 WHERE f2.fk = fact.fk) AND fk < 3";
        let mysql_out = e.query(sql).unwrap();
        let orca_out = e.query_with(sql, &orca).unwrap();
        assert_eq!(mysql_out.rows.len(), orca_out.rows.len());
        assert!(orca.stats().routed >= 1);
    }

    // Sessions on several threads may share one router; the counters are
    // atomics/mutexes so the optimizer is Sync.
    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OrcaOptimizer>();
    };

    #[test]
    fn concurrent_routing_keeps_counters_consistent() {
        let e = engine();
        let orca = OrcaOptimizer::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..3 {
                        let planned = e.plan(THREE_WAY, &orca).unwrap();
                        assert!(planned.primary().skeleton.orca_assisted);
                    }
                });
            }
        });
        let stats = orca.stats();
        assert_eq!(stats.routed, 12);
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(orca.last_fallback(), None);
    }

    #[test]
    fn explain_banner_shows_orca() {
        let e = engine();
        let orca = OrcaOptimizer::default();
        let text = e.explain(THREE_WAY, &orca).unwrap();
        assert!(text.starts_with("EXPLAIN (ORCA)"), "{text}");
    }

    #[test]
    fn search_trace_attached_to_routed_skeleton() {
        let e = engine();
        let orca = OrcaOptimizer::default();
        let planned = e.plan(THREE_WAY, &orca).unwrap();
        let trace = planned.primary().skeleton.search.clone().expect("detour attaches a trace");
        assert!(trace.groups > 0, "{trace:?}");
        assert!(trace.group_exprs > 0, "{trace:?}");
        assert!(trace.plans_costed > 0, "{trace:?}");
        assert_eq!(trace.rung, 0, "configured strategy succeeded outright");
        assert_eq!(trace.strategy, "EXHAUSTIVE2");
        assert!(trace.budget_used > 0.0 && trace.budget_used <= 1.0, "{trace:?}");
        assert_eq!(orca.last_search_trace(), Some(trace.clone()));
        // Cumulative counters in RouterStats match after a single route.
        let s = orca.stats();
        assert_eq!(s.search.groups, trace.groups);
        assert_eq!(s.search.plans_costed, trace.plans_costed);
        // The trace renders as its own line right after the EXPLAIN banner.
        let text = e.explain(THREE_WAY, &orca).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("EXPLAIN (ORCA)"));
        let trace_line = lines.next().unwrap();
        assert!(trace_line.starts_with("[search: strategy=EXHAUSTIVE2 rung=0 "), "{trace_line}");
    }

    #[test]
    fn ladder_rescue_is_visible_in_trace() {
        use orcalite::config::SearchBudget;
        let e = engine();
        let greedy = {
            let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Greedy), 1);
            e.plan(THREE_WAY, &orca).unwrap();
            orca.last_search_stats().plans_costed
        };
        let cfg = OrcaConfig {
            bushy_member_cap: 2,
            budget: SearchBudget { max_groups: usize::MAX, max_plans_costed: greedy },
            ..OrcaConfig::default()
        };
        let orca = OrcaOptimizer::new(cfg, 1);
        let planned = e.plan(THREE_WAY, &orca).unwrap();
        let trace = planned.primary().skeleton.search.clone().expect("trace on rescued plan");
        assert!(trace.rung >= 1, "rescue came from a lower rung: {trace:?}");
        assert_eq!(trace.strategy, "GREEDY");
        // Exhausted rungs abort without partial stats; the trace carries
        // the winning (greedy) rung's effort, which fits the budget.
        assert!(
            trace.plans_costed > 0 && trace.plans_costed <= greedy,
            "winning rung fits the budget: {trace:?}"
        );
        assert!(trace.budget_used > 0.9, "greedy landed at the budget edge: {trace:?}");
    }

    #[test]
    fn governor_faults_attribute_to_router_stats() {
        use orcalite::config::{FaultInjector, FaultKind};
        let e = engine();
        // Mid-query cancel: armed at the governor site, consulted by the
        // engine when it builds the statement's governor.
        let cfg = OrcaConfig {
            faults: FaultInjector::default().arm(FaultSite::ExecGovernor, FaultKind::CancelQuery),
            ..OrcaConfig::default()
        };
        let orca = OrcaOptimizer::new(cfg, 1);
        let err = e.query_with(THREE_WAY, &orca).unwrap_err();
        assert!(matches!(err, Error::Cancelled), "{err}");
        let stats = orca.stats();
        assert_eq!(stats.governed.cancelled, 1);
        assert_eq!(stats.fallbacks, 0, "a cancel is not a fallback");

        // Memory squeeze: the 1-byte clamp fails the sort buffer at the
        // parallel rung and the serial retry alike, so the governor gives
        // up and the abandonment joins the fallback taxonomy.
        let cfg = OrcaConfig {
            faults: FaultInjector::default().arm(FaultSite::ExecGovernor, FaultKind::MemorySqueeze),
            ..OrcaConfig::default()
        };
        let orca = OrcaOptimizer::new(cfg, 1);
        let err = e.query_with("SELECT v FROM fact ORDER BY v", &orca).unwrap_err();
        assert!(matches!(err, Error::MemoryExceeded { .. }), "{err}");
        let stats = orca.stats();
        assert_eq!(stats.governed.memory_exceeded, 1);
        assert_eq!(stats.reasons.memory_exceeded, 1);
        assert_eq!(stats.reasons.total(), stats.fallbacks);
        assert_eq!(orca.last_fallback(), Some(FallbackReason::MemoryExceeded));

        // Disarmed, the same engine serves the same statements again.
        let ok = OrcaOptimizer::new(OrcaConfig::default(), 1);
        assert_eq!(e.query_with(THREE_WAY, &ok).unwrap().rows.len(), 500);
        assert_eq!(ok.stats().governed.total(), 0);
    }

    #[test]
    fn native_optimizer_has_no_trace() {
        let e = engine();
        let planned = e.plan(THREE_WAY, &mylite::MySqlOptimizer).unwrap();
        assert!(planned.primary().skeleton.search.is_none());
        let text = e.explain(THREE_WAY, &mylite::MySqlOptimizer).unwrap();
        assert!(!text.contains("[search:"), "{text}");
    }
}
