//! OR factorization — the rewrite behind the paper's largest win (TPC-DS
//! Q41, 222×; §6.2 and §7 item 4).
//!
//! `(a = b AND x) OR (a = b AND y)` becomes `(a = b) AND (x OR y)`. The
//! factored equality can drive a hash join; without the rewrite the join
//! condition is opaque and the optimizer is stuck with a nested loop over
//! the full cross product.
//!
//! ```sh
//! cargo run --release --example or_factorization
//! ```

use std::time::Instant;
use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::common::expr::factor_or;
use taurus_orca::common::Expr;
use taurus_orca::mylite::{Engine, MySqlOptimizer};
use taurus_orca::orcalite::OrcaConfig;
use taurus_orca::workloads::{tpcds, Scale};

fn main() -> taurus_orca::prelude::Result<()> {
    // The rewrite itself, on the paper's Q41 predicate shape.
    let join_pred = Expr::eq(Expr::col(0, 5), Expr::col(1, 5)); // i2.i_manufact = i1.i_manufact
    let x = Expr::eq(Expr::col(1, 3), Expr::string("Books"));
    let y = Expr::eq(Expr::col(1, 3), Expr::string("Electronics"));
    let or_pred = Expr::or(Expr::and(join_pred.clone(), x), Expr::and(join_pred.clone(), y));
    println!("before: {or_pred}");
    println!("after:  {}\n", factor_or(or_pred));

    // The end-to-end effect on Q41.
    let engine = Engine::new(tpcds::build_catalog(Scale(0.4)));
    let q41 = tpcds::query(41);

    let configs: [(&str, Box<dyn taurus_orca::mylite::CostBasedOptimizer>); 3] = [
        ("MySQL (cannot factor, §1 item 3)", Box::new(MySqlOptimizer)),
        (
            "Orca without the rule",
            Box::new(OrcaOptimizer::new(
                OrcaConfig { enable_or_factorization: false, ..OrcaConfig::default() },
                1,
            )),
        ),
        ("Orca with the rule", Box::new(OrcaOptimizer::new(OrcaConfig::default(), 1))),
    ];
    let mut baseline = None;
    for (label, opt) in &configs {
        let t = Instant::now();
        let out = engine.query_with(&q41.sql, opt.as_ref())?;
        let elapsed = t.elapsed();
        let base = *baseline.get_or_insert(elapsed);
        println!(
            "{label:<35} {elapsed:>10.3?}  {:>8} work units  ({:.1}× vs MySQL)",
            out.work_units,
            base.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
        );
    }
    Ok(())
}
