//! The compile-once, serve-many plan cache — sharded for concurrent
//! sessions.
//!
//! Keyed by statement fingerprint ([`taurus_sql::fingerprint`]) *plus* the
//! plan-shaping knobs it was compiled under (dop, parallel threshold), each
//! entry stores the fully refined executable plan compiled under a specific
//! catalog version, together with its optimizer provenance. A hit re-binds
//! the cached [`PlannedQuery`]'s parameters *in place* to the new
//! statement's literal values and serves it by reference — skipping
//! parse-tree resolution, join-order search, plan refinement, and even the
//! plan deep-copy, which is the paper's Table 1 compile overhead amortized
//! across the ROADMAP's "millions of users".
//!
//! # Sharding
//!
//! The table is split into [`NUM_SHARDS`] shards, each behind its own
//! `RwLock`, selected by fingerprint. The hot path (a cached serve) takes
//! only its shard's *read* lock long enough to clone the entry's `Arc` out;
//! rebind and execution then happen under the entry's own interior
//! `Mutex<PlannedQuery>`. Sessions serving different statements therefore
//! never contend: they touch different entry locks, and shard read locks
//! are shared. Only same-statement serves serialize (they must — the plan's
//! bind parameters are rebound in place), and only structural changes
//! (insert, invalidation, eviction, clear) take a shard write lock.
//!
//! Bookkeeping that used to mutate under the global cache lock lives in
//! per-entry atomics (`serves`, `last_used`) and cache-wide atomic counters
//! ([`PlanCacheStats`] is a snapshot of those).
//!
//! # Knobs in the key, version in the entry
//!
//! Plans depend on the dop and parallel-threshold knobs (exchange
//! placement), so those are part of the cache *key*: sessions running with
//! different per-session knobs coexist, each hitting plans compiled for its
//! own settings, instead of invalidating each other's entries on every
//! serve. The catalog version is *not* part of the key — a version bump
//! (DDL/ANALYZE) must *replace* the entry, not shadow it — so it is
//! validated on lookup: a stale entry is removed under the shard write lock
//! and counted as an invalidation. A plan compiled under stale knobs that
//! re-enters after `clear()` (the insert-after-clear race) is keyed under
//! those stale knobs and can never be found by a current-knob lookup; it
//! ages out via LRU.
//!
//! Eviction is LRU on a logical tick, per shard.

use crate::engine::PlannedQuery;
use crate::sync::{lock, rlock, wlock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Default maximum number of cached statements (across all shards).
pub const DEFAULT_CAPACITY: usize = 256;

/// Number of independently locked cache shards. A power of two so the
/// fingerprint's low bits select uniformly; 16 is plenty for the template
/// counts our workloads carry while keeping the per-shard maps dense.
pub const NUM_SHARDS: usize = 16;

/// Everything a plan's validity depends on that does *not* change the
/// statement's meaning: the statement fingerprint plus the plan-shaping
/// knobs it was compiled under. Two sessions with different knobs get
/// different keys — and therefore different entries — for the same SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub fingerprint: u64,
    /// Effective degree of parallelism at compile time.
    pub dop: usize,
    /// Effective parallel threshold (min driver rows) at compile time.
    pub parallel_threshold: usize,
    /// Whether redundant-Sort elimination was on at compile time
    /// (plan-shaping: the knob decides which Sort enforcers survive).
    pub order_opt: bool,
}

/// Counters surfaced in RouterStats-style reports and the EXPLAIN banner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from cache (after version validation).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found an entry compiled under a stale catalog version
    /// (plus serve-path discards: a refused rebind reclassifies its hit).
    pub invalidations: u64,
    /// Entries inserted after a compile.
    pub insertions: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries evicted because runtime feedback crossed the q-error
    /// threshold; the statement was recompiled with observed
    /// cardinalities injected.
    pub reoptimizations: u64,
}

impl PlanCacheStats {
    /// Hit rate over all lookups, in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.invalidations + self.reoptimizations;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What a cache lookup concluded — drives the EXPLAIN banner suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    Hit,
    Miss,
    /// An entry existed but was compiled under an older catalog version;
    /// it was dropped and the statement re-optimized.
    Invalidated,
    /// An entry existed and was valid, but its observed executions carried
    /// a worst q-error above the session threshold; it was dropped and the
    /// statement recompiled with the observed cardinalities injected.
    Reoptimized,
}

impl CacheOutcome {
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Invalidated => "invalidated",
            CacheOutcome::Reoptimized => "reoptimized",
        }
    }
}

/// One cached compilation. Shared out of the cache as an `Arc` so the serve
/// path holds no shard lock while it rebinds and executes; the plan itself
/// sits behind the entry's own mutex (in-place rebind requires exclusive
/// access for the duration of the serve).
#[derive(Debug)]
pub struct CacheEntry {
    /// Catalog version the plan was compiled under.
    pub catalog_version: u64,
    /// Optimizer backend name (`"mysql"`, `"orca"`).
    pub optimizer: &'static str,
    /// Whether the plan came from a feedback re-optimization (any branch
    /// skeleton carries the reopt marker). Snapshotted at insert so
    /// [`PlanCache::has_reopt_entry`] needs no plan lock.
    reopt: bool,
    /// Times this entry has been served.
    serves: AtomicU64,
    /// Logical LRU tick of the last lookup that returned this entry.
    last_used: AtomicU64,
    /// The refined, executable plan (with bind parameters embedded).
    planned: Mutex<PlannedQuery>,
}

impl CacheEntry {
    /// Exclusive access to the plan for rebind-and-serve. Poison-recovering:
    /// a panicked serve leaves a structurally sound plan (rebind is a leaf
    /// write of bind values; execution never mutates the plan).
    pub fn planned(&self) -> MutexGuard<'_, PlannedQuery> {
        lock(&self.planned)
    }

    pub fn serves(&self) -> u64 {
        self.serves.load(Ordering::Relaxed)
    }
}

/// What a lookup concluded, with the entry on a hit. Distinguishing
/// `Invalidated` from `Miss` in the return value (rather than by a stats
/// delta) keeps the classification race-free under concurrent lookups.
pub enum Lookup {
    Hit(Arc<CacheEntry>),
    Miss,
    Invalidated,
}

#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    reoptimizations: AtomicU64,
}

/// Decrement without wrapping below zero (reclassification of a hit whose
/// serve was refused; concurrent discards of the same entry race benignly —
/// only the remover reclassifies).
fn saturating_dec(a: &AtomicU64) {
    let mut cur = a.load(Ordering::Relaxed);
    while cur > 0 {
        match a.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

type Shard = HashMap<CacheKey, Arc<CacheEntry>>;

/// Fingerprint-keyed, sharded LRU plan cache. All methods take `&self`;
/// interior locks are poison-recovering (see [`crate::sync`]).
pub struct PlanCache {
    shards: Vec<RwLock<Shard>>,
    /// Per-shard entry budget (global capacity / shard count).
    shard_capacity: usize,
    tick: AtomicU64,
    stats: AtomicStats,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            shards: (0..NUM_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_capacity: (capacity.max(1)).div_ceil(NUM_SHARDS).max(1),
            tick: AtomicU64::new(0),
            stats: AtomicStats::default(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<Shard> {
        &self.shards[(key.fingerprint as usize) % NUM_SHARDS]
    }

    /// Look up a key, validating the entry against the caller's snapshot of
    /// the catalog version. The hot path holds only the shard read lock,
    /// and only long enough to clone the `Arc` out. A stale entry is
    /// removed under the shard write lock and counted as an invalidation
    /// (the caller re-compiles and re-inserts); the removal re-checks under
    /// the write lock, so racing lookups that already saw a fresh
    /// replacement are not clobbered.
    pub fn lookup(&self, key: &CacheKey, catalog_version: u64) -> Lookup {
        let shard = self.shard(key);
        {
            let map = rlock(shard);
            match map.get(key) {
                None => {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Miss;
                }
                Some(e) if e.catalog_version == catalog_version => {
                    let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                    e.last_used.store(tick, Ordering::Relaxed);
                    e.serves.fetch_add(1, Ordering::Relaxed);
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Hit(Arc::clone(e));
                }
                Some(_) => {}
            }
        }
        // Stale under our version snapshot: upgrade to the write lock and
        // re-check — a concurrent serve may have replaced the entry with a
        // current compile meanwhile.
        let mut map = wlock(shard);
        match map.get(key) {
            Some(e) if e.catalog_version != catalog_version => {
                map.remove(key);
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                Lookup::Invalidated
            }
            Some(e) => {
                let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                e.last_used.store(tick, Ordering::Relaxed);
                e.serves.fetch_add(1, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Arc::clone(e))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Insert a freshly compiled plan, evicting the least-recently-used
    /// entry of the shard if it is full.
    pub fn insert(
        &self,
        key: &CacheKey,
        catalog_version: u64,
        optimizer: &'static str,
        planned: PlannedQuery,
    ) {
        let reopt = planned.branches.iter().any(|b| b.skeleton.reopt.is_some());
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Arc::new(CacheEntry {
            catalog_version,
            optimizer,
            reopt,
            serves: AtomicU64::new(0),
            last_used: AtomicU64::new(tick),
            planned: Mutex::new(planned),
        });
        let mut map = wlock(self.shard(key));
        if map.len() >= self.shard_capacity && !map.contains_key(key) {
            if let Some(&victim) =
                map.iter().min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed)).map(|(k, _)| k)
            {
                map.remove(&victim);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        map.insert(*key, entry);
    }

    /// Drop one entry after its `lookup` succeeded but the plan could not
    /// actually be served (e.g. parameter rebinding refused the binds).
    /// Reclassifies the lookup's hit as an invalidation so the counters
    /// describe what the serve path really did.
    pub fn discard(&self, key: &CacheKey) {
        if wlock(self.shard(key)).remove(key).is_some() {
            saturating_dec(&self.stats.hits);
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True when `key` maps to an entry that was produced by a feedback
    /// re-optimization and is still valid under the caller's catalog
    /// version. The serve paths compile on a miss *without* holding any
    /// cache lock, so an in-flight static compile can try to insert after
    /// a concurrent serve re-optimized the same statement; overwriting
    /// would resurrect the misestimated plan — and pin it, because the
    /// feedback store's applied-observations snapshot then suppresses a
    /// second re-optimization. Callers use this to skip such inserts. A
    /// stale re-optimized entry does not block (it can no longer be served
    /// anyway).
    pub fn has_reopt_entry(&self, key: &CacheKey, catalog_version: u64) -> bool {
        rlock(self.shard(key))
            .get(key)
            .is_some_and(|e| e.catalog_version == catalog_version && e.reopt)
    }

    /// Drop one entry whose `lookup` succeeded because runtime feedback
    /// demands a re-optimization: the serve path recompiles the statement
    /// with observed cardinalities injected and re-inserts the result.
    /// Reclassifies the lookup's hit as a re-optimization so the counters
    /// describe what the serve path really did.
    pub fn discard_reopt(&self, key: &CacheKey) {
        if wlock(self.shard(key)).remove(key).is_some() {
            saturating_dec(&self.stats.hits);
            self.stats.reoptimizations.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| rlock(s).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| rlock(s).is_empty())
    }

    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            invalidations: self.stats.invalidations.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            reoptimizations: self.stats.reoptimizations.load(Ordering::Relaxed),
        }
    }

    /// Drop all entries; counters survive (they describe the session).
    pub fn clear(&self) {
        for shard in &self.shards {
            wlock(shard).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Knobs the dummy entries are compiled under in these tests.
    const DOP: usize = 1;
    const THRESHOLD: usize = 1024;

    fn key(fingerprint: u64) -> CacheKey {
        CacheKey { fingerprint, dop: DOP, parallel_threshold: THRESHOLD, order_opt: true }
    }

    fn dummy_plan() -> PlannedQuery {
        PlannedQuery { branches: vec![], columns: vec![] }
    }

    fn hit(c: &PlanCache, k: &CacheKey, version: u64) -> bool {
        matches!(c.lookup(k, version), Lookup::Hit(_))
    }

    #[test]
    fn hit_miss_and_version_invalidation() {
        let c = PlanCache::new(8);
        assert!(matches!(c.lookup(&key(1), 0), Lookup::Miss));
        c.insert(&key(1), 0, "mysql", dummy_plan());
        assert!(hit(&c, &key(1), 0));
        // Catalog moved: the entry is stale, dropped, and counted.
        assert!(matches!(c.lookup(&key(1), 1), Lookup::Invalidated));
        assert!(
            matches!(c.lookup(&key(1), 1), Lookup::Miss),
            "stale entry was removed -> plain miss"
        );
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn knob_mismatch_is_a_distinct_key() {
        // A plan compiled under dop=1 must not be served at dop=4 (and vice
        // versa for the parallel threshold): the knobs are part of the key,
        // so mismatched-knob sessions simply miss — and, once both compile,
        // coexist without evicting each other. (Variants share a shard —
        // the fingerprint picks it — so give the shard room for both.)
        let c = PlanCache::new(2 * NUM_SHARDS);
        c.insert(&key(1), 0, "mysql", dummy_plan());
        let dop4 =
            CacheKey { fingerprint: 1, dop: 4, parallel_threshold: THRESHOLD, order_opt: true };
        assert!(matches!(c.lookup(&dop4, 0), Lookup::Miss), "dop changed");
        let thr8 = CacheKey { fingerprint: 1, dop: DOP, parallel_threshold: 8, order_opt: true };
        assert!(matches!(c.lookup(&thr8, 0), Lookup::Miss), "threshold changed");
        c.insert(&dop4, 0, "mysql", dummy_plan());
        assert!(hit(&c, &key(1), 0), "original knobs still serve");
        assert!(hit(&c, &dop4, 0), "dop=4 session serves its own plan");
        assert_eq!(c.len(), 2, "knob variants coexist");
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        // Same-shard fingerprints (multiples of NUM_SHARDS) with a
        // 2-entry-per-shard budget.
        let c = PlanCache::new(2 * NUM_SHARDS);
        let f = |i: u64| key(i * NUM_SHARDS as u64);
        c.insert(&f(1), 0, "mysql", dummy_plan());
        c.insert(&f(2), 0, "mysql", dummy_plan());
        assert!(hit(&c, &f(1), 0)); // warm 1
        c.insert(&f(3), 0, "mysql", dummy_plan()); // evicts 2
        assert!(hit(&c, &f(1), 0));
        assert!(matches!(c.lookup(&f(2), 0), Lookup::Miss));
        assert!(hit(&c, &f(3), 0));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn discard_reopt_reclassifies_the_hit() {
        let c = PlanCache::new(4);
        c.insert(&key(1), 0, "mysql", dummy_plan());
        assert!(hit(&c, &key(1), 0));
        c.discard_reopt(&key(1));
        let s = c.stats();
        assert_eq!((s.hits, s.reoptimizations, s.invalidations), (0, 1, 0));
        assert!(c.is_empty());
        // Discarding an absent entry is a no-op.
        c.discard_reopt(&key(1));
        assert_eq!(c.stats().reoptimizations, 1);
    }

    #[test]
    fn hit_rate_reflects_all_lookup_kinds() {
        let c = PlanCache::new(4);
        c.insert(&key(1), 0, "mysql", dummy_plan());
        c.lookup(&key(1), 0);
        c.lookup(&key(1), 0);
        c.lookup(&key(2), 0);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(PlanCacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_lookups_share_read_locks_and_count_exactly() {
        let c = std::sync::Arc::new(PlanCache::new(64));
        for i in 0..8u64 {
            c.insert(&key(i), 0, "mysql", dummy_plan());
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        assert!(hit(&c, &key((t + i) % 8), 0));
                    }
                });
            }
        });
        assert_eq!(c.stats().hits, 400);
        assert_eq!(c.len(), 8);
    }
}
