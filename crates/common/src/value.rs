//! Runtime values with MySQL-style three-valued logic.
//!
//! `Value::Null` propagates through arithmetic and comparisons; predicates
//! treat `NULL` as "unknown" (not true). Sorting uses MySQL's convention of
//! NULLs-first under ascending order. Strings are reference-counted so that
//! hash-join build sides and sort buffers can clone rows cheaply.

use crate::datetime;
use crate::error::{Error, Result};
use crate::types::DataType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A runtime SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (of any type).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float (also stands in for DECIMAL).
    Double(f64),
    /// UTF-8 string; `Arc` so clones are pointer bumps.
    Str(Arc<str>),
    /// Calendar date as days since 1970-01-01.
    Date(i32),
    /// Boolean (predicate results).
    Bool(bool),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Parse a `YYYY-MM-DD` literal into a `Date` value.
    pub fn date(s: &str) -> Result<Value> {
        datetime::parse_date(s)
            .map(Value::Date)
            .ok_or_else(|| Error::semantic(format!("invalid DATE literal '{s}'")))
    }

    /// Whether this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type, or `None` for NULL (whose type is contextual).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Three-valued truthiness: `Some(true)`, `Some(false)`, or `None` for
    /// NULL/unknown. Integers are truthy when non-zero, matching MySQL.
    pub fn truth(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Double(d) => Some(*d != 0.0),
            _ => None,
        }
    }

    /// Whether a predicate result lets a row through (NULL does not).
    pub fn is_true(&self) -> bool {
        self.truth() == Some(true)
    }

    /// Numeric view as f64; integers and dates widen, NULL is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Date(d) => Some(*d as f64),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Integer view; doubles truncate, NULL is `None`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Double(d) => Some(*d as i64),
            Value::Date(d) => Some(*d as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view for string values only.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality (`=`): NULL if either side is NULL, else value equality
    /// with numeric coercion.
    pub fn sql_eq(&self, other: &Value) -> Value {
        match self.sql_cmp(other) {
            None => Value::Null,
            Some(ord) => Value::Bool(ord == Ordering::Equal),
        }
    }

    /// SQL comparison. `None` means NULL (either operand NULL or the operands
    /// are incomparable types).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            // Mixed numerics (and bool-vs-int) coerce to f64.
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering used for ORDER BY and B-tree keys: NULLs sort first;
    /// incomparable cross-type pairs order by a stable type rank so sorting
    /// never panics.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            _ => self.sql_cmp(other).unwrap_or_else(|| type_rank(self).cmp(&type_rank(other))),
        }
    }

    /// `a + b` with NULL propagation. `Date + Int` adds days.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "+", |a, b| a.checked_add(b), |a, b| a + b, true)
    }

    /// `a - b` with NULL propagation. `Date - Int` subtracts days.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "-", |a, b| a.checked_sub(b), |a, b| a - b, true)
    }

    /// `a * b` with NULL propagation.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "*", |a, b| a.checked_mul(b), |a, b| a * b, false)
    }

    /// `a / b`: MySQL `/` always produces a non-integer result; division by
    /// zero yields NULL (MySQL default sql_mode).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let (a, b) = coerce_pair(self, other, "/")?;
        if b == 0.0 {
            return Ok(Value::Null);
        }
        Ok(Value::Double(a / b))
    }

    /// `a % b`; NULL on zero modulus, integer semantics when both are ints.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        if let (Value::Int(a), Value::Int(b)) = (self, other) {
            return Ok(if *b == 0 { Value::Null } else { Value::Int(a % b) });
        }
        let (a, b) = coerce_pair(self, other, "%")?;
        if b == 0.0 {
            return Ok(Value::Null);
        }
        Ok(Value::Double(a % b))
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Double(d) => Ok(Value::Double(-d)),
            other => Err(Error::semantic(format!("cannot negate {other}"))),
        }
    }
}

/// Stable type rank for the cross-type arm of [`Value::total_cmp`].
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Double(_) => 2, // numerics were already compared; unreachable in practice
        Value::Date(_) => 3,
        Value::Str(_) => 4,
    }
}

fn coerce_pair(a: &Value, b: &Value, op: &str) -> Result<(f64, f64)> {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(Error::semantic(format!("invalid operands for '{op}': {a} {op} {b}"))),
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    op: &str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    f64_op: impl Fn(f64, f64) -> f64,
    date_shift: bool,
) -> Result<Value> {
    use Value::*;
    match (a, b) {
        (Null, _) | (_, Null) => Ok(Null),
        (Int(x), Int(y)) => match int_op(*x, *y) {
            Some(v) => Ok(Int(v)),
            None => Ok(Double(f64_op(*x as f64, *y as f64))), // widen on overflow
        },
        // DATE ± INT shifts by days (used for `d + INTERVAL n DAY`).
        (Date(d), Int(n)) if date_shift => Ok(Date(d + *n as i32)),
        (Int(n), Date(d)) if date_shift && op == "+" => Ok(Date(d + *n as i32)),
        // DATE - DATE yields a day count.
        (Date(x), Date(y)) if op == "-" => Ok(Int((*x - *y) as i64)),
        _ => {
            let (x, y) = coerce_pair(a, b, op)?;
            Ok(Double(f64_op(x, y)))
        }
    }
}

impl PartialEq for Value {
    /// Structural equality used by tests and hash-join key matching.
    /// NULL == NULL here (unlike SQL `=`); hash joins must skip NULL keys
    /// *before* probing, which the executor does.
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash every numeric through its f64 bits so Int(2) and
            // Double(2.0) — which compare equal — hash identically.
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Double(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            // Dates participate in numeric coercion (`as_f64`), so they must
            // hash like numerics to uphold the Eq/Hash contract.
            Value::Date(d) => (*d as f64).to_bits().hash(state),
            Value::Bool(b) => (*b as i64 as f64).to_bits().hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    write!(f, "{d:.1}")
                } else {
                    write!(f, "{d}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => f.write_str(&datetime::format_date(*d)),
            Value::Bool(b) => write!(f, "{}", if *b { 1 } else { 0 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).mul(&Value::Null).unwrap().is_null());
        assert!(Value::Null.neg().unwrap().is_null());
    }

    #[test]
    fn sql_comparison_three_valued() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Value::Bool(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Double(1.0)), Value::Bool(true));
        assert!(Value::Null.sql_eq(&Value::Int(1)).is_null());
        assert_eq!(Value::Int(2).sql_cmp(&Value::Int(3)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(3)), None);
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Bool(true).truth(), Some(true));
        assert_eq!(Value::Int(0).truth(), Some(false));
        assert_eq!(Value::Null.truth(), None);
        assert!(!Value::Null.is_true());
    }

    #[test]
    fn date_arithmetic() {
        let d = Value::date("1993-11-01").unwrap();
        let plus5 = d.add(&Value::Int(5)).unwrap();
        assert_eq!(plus5.to_string(), "1993-11-06");
        let diff = plus5.sub(&d).unwrap();
        assert_eq!(diff, Value::Int(5));
    }

    #[test]
    fn division_semantics() {
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Double(3.5));
        assert!(Value::Int(7).div(&Value::Int(0)).unwrap().is_null());
        assert_eq!(Value::Int(7).rem(&Value::Int(2)).unwrap(), Value::Int(1));
        assert!(Value::Int(7).rem(&Value::Int(0)).unwrap().is_null());
    }

    #[test]
    fn overflow_widens_to_double() {
        let big = Value::Int(i64::MAX);
        match big.add(&Value::Int(1)).unwrap() {
            Value::Double(d) => assert!(d >= i64::MAX as f64),
            other => panic!("expected Double, got {other:?}"),
        }
    }

    #[test]
    fn total_order_nulls_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1), Value::str("abc"), Value::Null];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null() && vals[1].is_null());
        assert_eq!(vals[2], Value::Int(1));
    }

    #[test]
    fn numeric_hash_consistency() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        // Int/Double that compare equal must hash equal (hash-join keys).
        assert_eq!(h(&Value::Int(42)), h(&Value::Double(42.0)));
        assert_eq!(Value::Int(42), Value::Double(42.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Double(2.0).to_string(), "2.0");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Bool(true).to_string(), "1");
    }
}
