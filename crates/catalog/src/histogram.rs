//! Singleton and equi-height histograms.
//!
//! MySQL supports both histogram kinds for all types; stock Orca supports
//! only singleton histograms for strings because it hashes strings to
//! integers non-order-preservingly (§7). The paper's fix — adopted here —
//! encodes string bucket boundaries into order-preserving signed 64-bit
//! integers so equi-height interpolation works for range predicates too.
//! The encoding uses a fixed-length prefix, so two strings sharing a long
//! common prefix become indistinguishable — the caveat §7 records; the unit
//! tests demonstrate both the property and the caveat.

use std::cmp::Ordering;
use taurus_common::{BinOp, Value};

/// Order-preserving encoding of a string's first 8 bytes into a *signed*
/// 64-bit integer (the paper's §7 "64-bit signed integers" conversion).
///
/// Monotone: `a <= b` (byte-wise) implies `encode(a) <= encode(b)`.
/// Strings equal on their first 8 bytes collapse to the same code.
pub fn encode_str_prefix(s: &str) -> i64 {
    let mut buf = [0u8; 8];
    let bytes = s.as_bytes();
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    // Flip the sign bit so the unsigned byte order maps onto signed order.
    (u64::from_be_bytes(buf) ^ (1 << 63)) as i64
}

/// Numeric image of a value for histogram interpolation.
fn numeric_image(v: &Value) -> Option<f64> {
    match v {
        Value::Str(s) => Some(encode_str_prefix(s) as f64),
        other => other.as_f64(),
    }
}

/// One bucket of an equi-height histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket.
    pub upper: Value,
    /// Cumulative fraction of non-null rows at or below `upper`.
    pub cum_freq: f64,
    /// Estimated number of distinct values inside the bucket.
    pub ndv: f64,
}

/// A column histogram over non-null values.
#[derive(Debug, Clone, PartialEq)]
pub enum Histogram {
    /// One entry per distinct value with its exact frequency fraction.
    /// Built when the column's NDV fits the bucket budget.
    Singleton(Vec<(Value, f64)>),
    /// MySQL-style equi-height: buckets of roughly equal row mass.
    EquiHeight {
        /// Inclusive lower bound of the first bucket.
        min: Value,
        buckets: Vec<Bucket>,
    },
}

impl Histogram {
    /// Build from a sorted slice of non-null values. `max_buckets` plays the
    /// role of MySQL's histogram bucket budget (default 100).
    ///
    /// Returns `None` for empty input.
    pub fn build(sorted: &[Value], max_buckets: usize) -> Option<Histogram> {
        if sorted.is_empty() || max_buckets == 0 {
            return None;
        }
        let n = sorted.len() as f64;
        // Count distinct runs.
        let mut distinct = 1usize;
        for w in sorted.windows(2) {
            if w[0].total_cmp(&w[1]) != Ordering::Equal {
                distinct += 1;
            }
        }
        if distinct <= max_buckets {
            // Singleton histogram: exact frequencies.
            let mut out: Vec<(Value, f64)> = Vec::with_capacity(distinct);
            let mut i = 0;
            while i < sorted.len() {
                let mut j = i + 1;
                while j < sorted.len() && sorted[j].total_cmp(&sorted[i]) == Ordering::Equal {
                    j += 1;
                }
                out.push((sorted[i].clone(), (j - i) as f64 / n));
                i = j;
            }
            return Some(Histogram::Singleton(out));
        }
        // Equi-height: walk distinct runs, closing a bucket when its mass
        // reaches the target height. A distinct value never straddles two
        // buckets (matching MySQL's construction). The height is at least
        // one row: a sub-1.0 target would close a bucket per value and
        // overshoot the bucket budget (only reachable if the singleton
        // branch above ever changes, but cheap to keep impossible).
        let height = (n / max_buckets as f64).max(1.0);
        let mut buckets: Vec<Bucket> = Vec::with_capacity(max_buckets);
        let mut bucket_rows = 0f64;
        let mut bucket_ndv = 0f64;
        let mut cum_rows = 0f64;
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i + 1;
            while j < sorted.len() && sorted[j].total_cmp(&sorted[i]) == Ordering::Equal {
                j += 1;
            }
            let run = (j - i) as f64;
            bucket_rows += run;
            bucket_ndv += 1.0;
            cum_rows += run;
            let last = j == sorted.len();
            if bucket_rows >= height || last {
                buckets.push(Bucket {
                    upper: sorted[i].clone(),
                    cum_freq: cum_rows / n,
                    ndv: bucket_ndv,
                });
                bucket_rows = 0.0;
                bucket_ndv = 0.0;
            }
            i = j;
        }
        Some(Histogram::EquiHeight { min: sorted[0].clone(), buckets })
    }

    /// Whether this is a singleton histogram.
    pub fn is_singleton(&self) -> bool {
        matches!(self, Histogram::Singleton(_))
    }

    /// Number of buckets/entries.
    pub fn num_buckets(&self) -> usize {
        match self {
            Histogram::Singleton(v) => v.len(),
            Histogram::EquiHeight { buckets, .. } => buckets.len(),
        }
    }

    /// Fraction of non-null rows strictly below `v`, plus the fraction equal
    /// to `v`: the primitive from which all comparison selectivities derive.
    fn below_and_eq(&self, v: &Value) -> (f64, f64) {
        match self {
            Histogram::Singleton(entries) => {
                let mut below = 0f64;
                let mut eq = 0f64;
                for (val, freq) in entries {
                    match val.total_cmp(v) {
                        Ordering::Less => below += freq,
                        Ordering::Equal => eq = *freq,
                        Ordering::Greater => break,
                    }
                }
                (below, eq)
            }
            Histogram::EquiHeight { min, buckets } => {
                if v.total_cmp(min) == Ordering::Less {
                    return (0.0, 0.0);
                }
                let mut prev_cum = 0f64;
                let mut lower = min.clone();
                for b in buckets {
                    let width = b.cum_freq - prev_cum;
                    match v.total_cmp(&b.upper) {
                        Ordering::Greater => {
                            prev_cum = b.cum_freq;
                            lower = b.upper.clone();
                            continue;
                        }
                        Ordering::Equal => {
                            // Upper bounds are real values: the equality mass
                            // is one distinct value's share of the bucket.
                            let eq = width / b.ndv.max(1.0);
                            return (b.cum_freq - eq, eq);
                        }
                        Ordering::Less => {
                            // Interpolate inside the bucket via the numeric
                            // image. Cap at the bucket's upper-bound "below"
                            // mass (cum_freq - eq) so Lt stays monotone as
                            // the probe approaches the boundary value.
                            let frac = interpolate(&lower, &b.upper, v);
                            let eq = (width / b.ndv.max(1.0)).min(width);
                            let below = (prev_cum + width * frac).min(b.cum_freq - eq);
                            return (below, eq);
                        }
                    }
                }
                (1.0, 0.0)
            }
        }
    }

    /// Selectivity of `col op constant` over *non-null* rows, in [0, 1].
    pub fn selectivity(&self, op: BinOp, v: &Value) -> f64 {
        let (below, eq) = self.below_and_eq(v);
        let sel = match op {
            BinOp::Eq => eq,
            BinOp::Ne => 1.0 - eq,
            BinOp::Lt => below,
            BinOp::Le => below + eq,
            BinOp::Gt => 1.0 - below - eq,
            BinOp::Ge => 1.0 - below,
            _ => return 1.0,
        };
        sel.clamp(0.0, 1.0)
    }

    /// Selectivity of `lo <= col <= hi` (bounds optional/exclusive-capable).
    pub fn range_selectivity(&self, lo: Option<(&Value, bool)>, hi: Option<(&Value, bool)>) -> f64 {
        let lo_sel = match lo {
            None => 0.0,
            Some((v, inclusive)) => {
                let (below, eq) = self.below_and_eq(v);
                if inclusive {
                    below
                } else {
                    below + eq
                }
            }
        };
        let hi_sel = match hi {
            None => 1.0,
            Some((v, inclusive)) => {
                let (below, eq) = self.below_and_eq(v);
                if inclusive {
                    below + eq
                } else {
                    below
                }
            }
        };
        (hi_sel - lo_sel).clamp(0.0, 1.0)
    }
}

/// Fractional position of `v` between `lower` (exclusive) and `upper`
/// (inclusive), through the numeric image; 0.5 when unknowable.
///
/// String bounds first strip the byte prefix common to `lower` and `upper`:
/// the 8-byte encoding would otherwise collapse long shared-prefix bounds
/// into a zero-width numeric range (every probe lands on the 0.5 fallback
/// and range selectivities degenerate). Any probe between the bounds in
/// byte order necessarily shares that prefix, so stripping it preserves
/// order while spending the 8 encoded bytes on the part that differs.
fn interpolate(lower: &Value, upper: &Value, v: &Value) -> f64 {
    if let (Value::Str(lo), Value::Str(hi), Value::Str(x)) = (lower, upper, v) {
        let k = common_prefix_len(lo.as_bytes(), hi.as_bytes());
        let lo_n = encode_str_from(lo, k) as f64;
        let hi_n = encode_str_from(hi, k) as f64;
        let x_n = encode_str_from(x, k) as f64;
        if hi_n > lo_n {
            return ((x_n - lo_n) / (hi_n - lo_n)).clamp(0.0, 1.0);
        }
        // Still zero-width (bounds differ only past byte k+8): unknowable.
        return 0.5;
    }
    match (numeric_image(lower), numeric_image(upper), numeric_image(v)) {
        (Some(lo), Some(hi), Some(x)) if hi > lo => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
        _ => 0.5,
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// [`encode_str_prefix`] applied to the suffix starting at byte `skip`.
fn encode_str_from(s: &str, skip: usize) -> i64 {
    let bytes = s.as_bytes();
    let mut buf = [0u8; 8];
    if skip < bytes.len() {
        let rest = &bytes[skip..];
        let n = rest.len().min(8);
        buf[..n].copy_from_slice(&rest[..n]);
    }
    (u64::from_be_bytes(buf) ^ (1 << 63)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn singleton_exact_frequencies() {
        let data = ints(&[1, 1, 1, 2, 3, 3, 4, 4, 4, 4]);
        let h = Histogram::build(&data, 16).unwrap();
        assert!(h.is_singleton());
        assert!((h.selectivity(BinOp::Eq, &Value::Int(4)) - 0.4).abs() < 1e-9);
        assert!((h.selectivity(BinOp::Lt, &Value::Int(3)) - 0.4).abs() < 1e-9);
        assert!((h.selectivity(BinOp::Ge, &Value::Int(3)) - 0.6).abs() < 1e-9);
        assert_eq!(h.selectivity(BinOp::Eq, &Value::Int(99)), 0.0);
        assert_eq!(h.selectivity(BinOp::Lt, &Value::Int(0)), 0.0);
        assert_eq!(h.selectivity(BinOp::Gt, &Value::Int(99)), 0.0);
    }

    #[test]
    fn equi_height_buckets_balanced() {
        // 1000 distinct ints, 10 buckets -> each bucket ~10% mass.
        let data: Vec<Value> = (0..1000).map(Value::Int).collect();
        let h = Histogram::build(&data, 10).unwrap();
        assert!(!h.is_singleton());
        assert_eq!(h.num_buckets(), 10);
        let sel = h.selectivity(BinOp::Lt, &Value::Int(500));
        assert!((sel - 0.5).abs() < 0.02, "sel={sel}");
        let sel =
            h.range_selectivity(Some((&Value::Int(100), true)), Some((&Value::Int(299), true)));
        assert!((sel - 0.2).abs() < 0.02, "sel={sel}");
    }

    #[test]
    fn equi_height_equality_uses_bucket_ndv() {
        let data: Vec<Value> = (0..1000).map(Value::Int).collect();
        let h = Histogram::build(&data, 10).unwrap();
        let sel = h.selectivity(BinOp::Eq, &Value::Int(357));
        assert!((sel - 0.001).abs() < 0.0005, "sel={sel}");
    }

    #[test]
    fn selectivities_are_probabilities() {
        let data = ints(&[5, 5, 7, 9, 9, 9, 12, 100, 101, 102]);
        for buckets in [2, 3, 100] {
            let h = Histogram::build(&data, buckets).unwrap();
            for op in BinOp::CMP {
                for probe in [-5i64, 5, 8, 9, 50, 102, 500] {
                    let s = h.selectivity(op, &Value::Int(probe));
                    assert!((0.0..=1.0).contains(&s), "{op:?} {probe} -> {s}");
                }
            }
        }
    }

    #[test]
    fn string_encoding_preserves_order() {
        let words = ["", "A", "Brand#12", "Brand#13", "Brand#34", "a", "zebra"];
        for w in words.windows(2) {
            assert!(encode_str_prefix(w[0]) <= encode_str_prefix(w[1]), "{} vs {}", w[0], w[1]);
        }
        // Strictly increasing where the first 8 bytes differ.
        assert!(encode_str_prefix("Brand#12") < encode_str_prefix("Brand#13"));
    }

    #[test]
    fn string_encoding_long_common_prefix_caveat() {
        // §7: the fixed length "cannot distinguish between two strings with a
        // long common prefix" — both encode identically.
        let a = "WAREHOUSE_EAST_1";
        let b = "WAREHOUSE_WEST_2";
        assert_eq!(encode_str_prefix(a), encode_str_prefix(b));
    }

    #[test]
    fn string_equi_height_supports_ranges() {
        // Force equi-height over strings: > max_buckets distinct values.
        let mut data: Vec<Value> = (0..200).map(|i| Value::str(format!("C{:03}", i))).collect();
        data.sort_by(|a, b| a.total_cmp(b));
        let h = Histogram::build(&data, 10).unwrap();
        assert!(!h.is_singleton());
        // Roughly half the strings are below "C100".
        let sel = h.selectivity(BinOp::Lt, &Value::str("C100"));
        assert!((sel - 0.5).abs() < 0.1, "sel={sel}");
    }

    #[test]
    fn long_common_prefix_ranges_do_not_collapse() {
        // Keys share a 10-char prefix, so the first 8 encoded bytes are
        // identical: without prefix stripping every bucket is numerically
        // zero-width and interpolation degenerates to the constant 0.5 —
        // all probes inside a bucket become indistinguishable.
        let mut data: Vec<Value> =
            (0..200).map(|i| Value::str(format!("WAREHOUSE_{:04}", i))).collect();
        data.sort_by(|a, b| a.total_cmp(b));
        let h = Histogram::build(&data, 10).unwrap();
        assert!(!h.is_singleton());
        // Bucket-level shape survives (same tolerance as the short-prefix
        // test above; byte-space interpolation is skewed near digit
        // rollovers, so it cannot be tighter).
        let sel = h.selectivity(BinOp::Lt, &Value::str("WAREHOUSE_0100"));
        assert!((sel - 0.5).abs() < 0.1, "sel={sel}");
        let sel = h.range_selectivity(
            Some((&Value::str("WAREHOUSE_0050"), true)),
            Some((&Value::str("WAREHOUSE_0149"), true)),
        );
        assert!((sel - 0.5).abs() < 0.1, "sel={sel}");
        // The discriminator: two probes inside the same bucket must resolve
        // to different selectivities. Pre-fix both interpolate to 0.5 and
        // come out equal.
        let lo = h.selectivity(BinOp::Lt, &Value::str("WAREHOUSE_0021"));
        let hi = h.selectivity(BinOp::Lt, &Value::str("WAREHOUSE_0038"));
        assert!(hi > lo + 0.02, "within-bucket resolution lost: {lo} vs {hi}");
        // A one-bucket-wide range must not read as zero or as everything.
        let sel = h.range_selectivity(
            Some((&Value::str("WAREHOUSE_0120"), true)),
            Some((&Value::str("WAREHOUSE_0139"), true)),
        );
        assert!(sel > 0.02 && sel < 0.15, "sel={sel}");
    }

    #[test]
    fn interpolation_monotone_within_shared_prefix_bucket() {
        let mut data: Vec<Value> =
            (0..300).map(|i| Value::str(format!("ITEM_SKU_PREFIX_{:05}", i))).collect();
        data.sort_by(|a, b| a.total_cmp(b));
        let h = Histogram::build(&data, 8).unwrap();
        let mut prev = -1.0f64;
        for i in (0..300).step_by(25) {
            let s = h.selectivity(BinOp::Lt, &Value::str(format!("ITEM_SKU_PREFIX_{:05}", i)));
            assert!(s >= prev - 1e-9, "Lt selectivity regressed at {i}: {s} < {prev}");
            prev = s;
        }
        assert!(prev > 0.8, "upper tail should approach 1.0, got {prev}");
    }

    #[test]
    fn small_tables_get_one_bucket_per_distinct_value() {
        // n < max_buckets: must land in the singleton branch with exact
        // per-value frequencies, never fractional-height equi-buckets.
        let data = ints(&[1, 2, 3, 4, 5]);
        let h = Histogram::build(&data, 100).unwrap();
        assert!(h.is_singleton());
        assert_eq!(h.num_buckets(), 5);
        assert!((h.selectivity(BinOp::Eq, &Value::Int(3)) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(Histogram::build(&[], 10).is_none());
        assert!(Histogram::build(&ints(&[1]), 0).is_none());
    }
}
