//! The prepared ("bound") query representation.
//!
//! This is the stand-in for MySQL's rewritten AST after the Prepare phase:
//! names are resolved, subqueries have become semi/anti joins or derived
//! tables, and every query block is a *flat table list* plus predicate
//! conjuncts — exactly the form MySQL's join optimizer (and the paper's
//! parse-tree converter, §4.1) consumes.
//!
//! ## Global table space
//!
//! Every table reference in the whole statement — including those inside
//! derived tables and converted subqueries — gets a globally unique
//! *query-table index* (qt). `Expr::Column { table: qt, .. }` references are
//! global, which is what lets a correlated inner block reference its outer
//! block's tables and lets the executor bind them through layouts. The
//! registry of qt metadata is the stand-in for MySQL's `TABLE_LIST` chain;
//! the bridge carries qt indexes through Orca exactly the way the paper
//! carries `TABLE_LIST` pointers in Orca table descriptors.

use std::collections::BTreeSet;
use taurus_common::{Expr, TableId};

/// A whole prepared statement: the root query block plus the global
/// query-table registry.
#[derive(Debug, Clone)]
pub struct BoundStatement {
    pub root: BoundQuery,
    pub tables: Vec<TableMeta>,
}

impl BoundStatement {
    /// Number of query tables in the global space (layout size).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    pub fn table(&self, qt: usize) -> &TableMeta {
        &self.tables[qt]
    }
}

/// Metadata for one query table (one `TABLE_LIST` element).
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Alias or table name as written in the query, for display.
    pub display_name: String,
    pub source: TableSource,
    /// Output column names (for base tables, the schema's names; for
    /// derived tables, the inner select's output names).
    pub columns: Vec<String>,
}

impl TableMeta {
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Whether this is a derived table whose inner block references tables
    /// outside itself (correlated) — it must be re-materialized per outer
    /// row (MySQL's invalidation; paper Listing 7).
    pub fn is_correlated_derived(&self) -> bool {
        matches!(&self.source, TableSource::Derived { correlated: true, .. })
    }
}

/// Where a query table's rows come from.
#[derive(Debug, Clone)]
pub enum TableSource {
    /// A base table in the catalog.
    Base { id: TableId },
    /// A derived table (subquery in FROM, converted scalar subquery, or a
    /// CTE reference — each CTE reference gets its own copy, MySQL's
    /// multiple-producer model, §4.2.3).
    Derived {
        query: Box<BoundQuery>,
        /// References tables outside its own subtree.
        correlated: bool,
        /// Label such as `derived_1_2` for EXPLAIN.
        label: String,
    },
}

/// How a table participates in its block's join.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinEntry {
    /// Plain inner join; conditions live in the block's predicate list.
    Inner,
    /// `LEFT OUTER JOIN ... ON cond`; must be placed after its
    /// dependencies.
    LeftOuter { on: Vec<Expr> },
    /// Semi join from `EXISTS`/`IN` (paper §4.1); output drops this table's
    /// columns.
    Semi { on: Vec<Expr> },
    /// Anti join from `NOT EXISTS`/`NOT IN`; `null_aware` picks `NOT IN`
    /// semantics.
    Anti { on: Vec<Expr>, null_aware: bool },
}

impl JoinEntry {
    pub fn is_inner(&self) -> bool {
        matches!(self, JoinEntry::Inner)
    }

    /// The ON-condition conjuncts (empty for inner entries).
    pub fn on(&self) -> &[Expr] {
        match self {
            JoinEntry::Inner => &[],
            JoinEntry::LeftOuter { on } | JoinEntry::Semi { on } | JoinEntry::Anti { on, .. } => on,
        }
    }
}

/// One member of a block's flat table list.
#[derive(Debug, Clone)]
pub struct BlockTable {
    /// Global query-table index.
    pub qt: usize,
    pub entry: JoinEntry,
    /// Global qt indexes (within this block) that must be joined before
    /// this table: outer-join left sides and correlation sources.
    pub deps: BTreeSet<usize>,
}

/// A named output expression.
#[derive(Debug, Clone)]
pub struct OutputCol {
    pub name: String,
    /// May contain `Expr::Agg` nodes; refinement lowers them.
    pub expr: Expr,
}

/// One prepared query block: flat table list + conjuncts + the clauses plan
/// refinement handles (paper §4.3: aggregation, ordering, limit).
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The block's tables in syntactic order.
    pub members: Vec<BlockTable>,
    /// WHERE conjuncts (over global qts; may reference enclosing blocks'
    /// tables when this block is correlated).
    pub predicates: Vec<Expr>,
    pub select: Vec<OutputCol>,
    pub group_by: Vec<Expr>,
    /// Post-aggregation filter; may contain `Expr::Agg`.
    pub having: Option<Expr>,
    /// `(expr, desc)` pairs; expressions may reference select aliases
    /// (resolved to the select expression during binding).
    pub order_by: Vec<(Expr, bool)>,
    pub limit: Option<u64>,
    pub distinct: bool,
}

impl BoundQuery {
    /// The set of qts owned by this block (not descending into derived
    /// tables' inner blocks).
    pub fn member_qts(&self) -> BTreeSet<usize> {
        self.members.iter().map(|m| m.qt).collect()
    }

    /// Find a member by qt.
    pub fn member(&self, qt: usize) -> Option<&BlockTable> {
        self.members.iter().find(|m| m.qt == qt)
    }

    /// Whether the block computes any aggregation (explicit GROUP BY or
    /// aggregate functions anywhere in its output clauses).
    pub fn has_aggregation(&self) -> bool {
        !self.group_by.is_empty()
            || self.select.iter().any(|o| o.expr.contains_agg())
            || self.having.as_ref().is_some_and(|h| h.contains_agg())
            || self.order_by.iter().any(|(e, _)| e.contains_agg())
    }

    /// Qts of tables *outside* this block that the block's expressions
    /// reference — the correlation set.
    pub fn outer_references(&self) -> BTreeSet<usize> {
        let mine = self.member_qts();
        let mut all = BTreeSet::new();
        let mut add = |e: &Expr| {
            for t in e.referenced_tables() {
                all.insert(t);
            }
        };
        for p in &self.predicates {
            add(p);
        }
        for m in &self.members {
            for c in m.entry.on() {
                add(c);
            }
        }
        for o in &self.select {
            add(&o.expr);
        }
        for g in &self.group_by {
            add(g);
        }
        if let Some(h) = &self.having {
            add(h);
        }
        for (e, _) in &self.order_by {
            add(e);
        }
        all.difference(&mine).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::AggFunc;

    fn block(members: Vec<BlockTable>) -> BoundQuery {
        BoundQuery {
            members,
            predicates: vec![],
            select: vec![],
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
            distinct: false,
        }
    }

    fn member(qt: usize) -> BlockTable {
        BlockTable { qt, entry: JoinEntry::Inner, deps: BTreeSet::new() }
    }

    #[test]
    fn member_queries() {
        let b = block(vec![member(0), member(2)]);
        assert_eq!(b.member_qts().into_iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(b.member(2).is_some());
        assert!(b.member(1).is_none());
    }

    #[test]
    fn aggregation_detection() {
        let mut b = block(vec![member(0)]);
        assert!(!b.has_aggregation());
        b.select.push(OutputCol {
            name: "n".into(),
            expr: Expr::Agg { func: AggFunc::CountStar, arg: None, distinct: false },
        });
        assert!(b.has_aggregation());
    }

    #[test]
    fn outer_reference_detection() {
        // Block owns qt 1 but references qt 0 in a predicate: correlated.
        let mut b = block(vec![member(1)]);
        b.predicates.push(Expr::eq(Expr::col(1, 0), Expr::col(0, 3)));
        assert_eq!(b.outer_references().into_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn join_entry_helpers() {
        assert!(JoinEntry::Inner.is_inner());
        let on = vec![Expr::eq(Expr::col(0, 0), Expr::col(1, 0))];
        let loj = JoinEntry::LeftOuter { on: on.clone() };
        assert!(!loj.is_inner());
        assert_eq!(loj.on().len(), 1);
        assert!(JoinEntry::Inner.on().is_empty());
    }
}
