//! The MySQL metadata provider (paper §5).
//!
//! Implements Orca's [`MetadataAccessor`] plug-in over the MySQL stand-in's
//! data dictionary. Unlike the PostgreSQL provider, it never hands out
//! function pointers — queries execute inside MySQL — but it still fulfils
//! the whole accessor contract (§5: "even if sometimes by providing
//! stubs"). Expression OIDs, commutators and inverses come from the cube
//! layout in [`crate::oid`]; relations, statistics and histograms come from
//! the catalog, with string histograms usable for ranges thanks to the
//! order-preserving i64 encoding inside `taurus_catalog::histogram` (§7).

use crate::oid;
use orcalite::md::{MdIndex, MdRelation, MetadataAccessor};
use taurus_catalog::estimate::RelView;
use taurus_catalog::Catalog;
use taurus_common::expr::{AggFunc, BinOp, Expr, ScalarFunc};
use taurus_common::{DataType, Oid, TableId, TypeCategory};

/// The provider: a thin, OID-keyed view over the catalog.
pub struct MySqlMdProvider<'a> {
    catalog: &'a Catalog,
}

impl<'a> MySqlMdProvider<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        MySqlMdProvider { catalog }
    }

    /// OID under which a base table is served (used by the tree converter
    /// to embellish Orca trees with table OIDs, §4.1).
    pub fn relation_oid(&self, id: TableId) -> Oid {
        oid::relation_oid(id)
    }

    /// OID of the *mapped function* (§5.4) behind a binary expression over
    /// two runtime types, or the invalid OID if the combination is not in
    /// the cubes.
    pub fn binary_expr_oid(&self, op: BinOp, left: DataType, right: DataType) -> Oid {
        let (l, r) = (left.category(), right.category());
        if op.is_comparison() {
            oid::cmp_oid(l, r, op).unwrap_or(Oid::INVALID)
        } else if op.is_arithmetic() {
            oid::arith_oid(l, r, op).unwrap_or(Oid::INVALID)
        } else {
            Oid::INVALID
        }
    }

    /// OID of an aggregation expression (§5.2's 14×6 plane): `COUNT(*)`
    /// uses the `STAR` category; `COUNT(expr)` uses `ANY`.
    pub fn agg_expr_oid(&self, func: AggFunc, operand: Option<DataType>) -> Oid {
        let (cat, op) = match func {
            AggFunc::CountStar => (TypeCategory::Star, oid::AggOp::Count),
            AggFunc::Count => (TypeCategory::Any, oid::AggOp::Count),
            AggFunc::Sum => (operand_cat(operand), oid::AggOp::Sum),
            AggFunc::Avg => (operand_cat(operand), oid::AggOp::Avg),
            AggFunc::Min => (operand_cat(operand), oid::AggOp::Min),
            AggFunc::Max => (operand_cat(operand), oid::AggOp::Max),
            AggFunc::StdDev => (operand_cat(operand), oid::AggOp::StdDev),
        };
        oid::agg_oid(cat, op).unwrap_or(Oid::INVALID)
    }

    /// OID of a *regular function* (§5.4: EXTRACT, SUBSTRING, CAST, ...).
    pub fn regular_function_oid(&self, f: ScalarFunc) -> Oid {
        // Enumeration order is the declaration order of ScalarFunc.
        const ORDER: [ScalarFunc; 17] = [
            ScalarFunc::Abs,
            ScalarFunc::Round,
            ScalarFunc::Upper,
            ScalarFunc::Lower,
            ScalarFunc::Substr,
            ScalarFunc::Concat,
            ScalarFunc::Coalesce,
            ScalarFunc::Year,
            ScalarFunc::Month,
            ScalarFunc::Day,
            ScalarFunc::DateAddDays,
            ScalarFunc::DateAddMonths,
            ScalarFunc::DateAddYears,
            ScalarFunc::CastDate,
            ScalarFunc::CastStr,
            ScalarFunc::CastInt,
            ScalarFunc::CastDouble,
        ];
        match ORDER.iter().position(|x| *x == f) {
            Some(i) => Oid(oid::FUNC_BASE + i as u64),
            None => Oid::INVALID,
        }
    }

    /// Assign OIDs to every binary expression in a bound tree — the
    /// "embellishment" step of §4.1. Returns the OIDs encountered (the
    /// interaction a test asserts against §5.7's walkthrough).
    pub fn embellish(&self, expr: &Expr, types: &dyn Fn(usize, usize) -> DataType) -> Vec<Oid> {
        let mut oids = Vec::new();
        expr.walk(&mut |node| {
            if let Expr::Binary { op, left, right } = node {
                let lt = expr_type(left, types);
                let rt = expr_type(right, types);
                if let (Some(l), Some(r)) = (lt, rt) {
                    let o = self.binary_expr_oid(*op, l, r);
                    if o.is_valid() {
                        oids.push(o);
                    }
                }
            }
            if let Expr::Agg { func, arg, .. } = node {
                let at = arg.as_deref().and_then(|a| expr_type(a, types));
                let o = self.agg_expr_oid(*func, at);
                if o.is_valid() {
                    oids.push(o);
                }
            }
        });
        oids
    }
}

fn operand_cat(operand: Option<DataType>) -> TypeCategory {
    operand.map(|d| d.category()).unwrap_or(TypeCategory::Any)
}

/// Best-effort static type of an expression for OID assignment.
fn expr_type(e: &Expr, types: &dyn Fn(usize, usize) -> DataType) -> Option<DataType> {
    match e {
        Expr::Column(c) => Some(types(c.table, c.col)),
        Expr::Literal(v) => v.data_type(),
        Expr::Param { value, .. } => value.data_type(),
        Expr::Binary { op, left, .. } => {
            if op.is_comparison() {
                Some(DataType::Bool)
            } else {
                expr_type(left, types)
            }
        }
        Expr::Func { func, args } => match func {
            ScalarFunc::Year | ScalarFunc::Month | ScalarFunc::Day | ScalarFunc::CastInt => {
                Some(DataType::Int)
            }
            ScalarFunc::Upper
            | ScalarFunc::Lower
            | ScalarFunc::Substr
            | ScalarFunc::Concat
            | ScalarFunc::CastStr => Some(DataType::Str),
            ScalarFunc::DateAddDays
            | ScalarFunc::DateAddMonths
            | ScalarFunc::DateAddYears
            | ScalarFunc::CastDate => Some(DataType::Date),
            ScalarFunc::Round | ScalarFunc::CastDouble => Some(DataType::Double),
            ScalarFunc::Abs | ScalarFunc::Coalesce => {
                args.first().and_then(|a| expr_type(a, types))
            }
        },
        _ => None,
    }
}

impl MetadataAccessor for MySqlMdProvider<'_> {
    fn relation(&self, o: Oid) -> Option<MdRelation> {
        let id = oid::decode_relation(o)?;
        let t = self.catalog.table(id).ok()?;
        let rows = t.stats.as_ref().map(|s| s.row_count as f64).unwrap_or(t.num_rows() as f64);
        Some(MdRelation { name: t.name.clone(), rows, num_columns: t.schema().len() })
    }

    fn statistics(&self, o: Oid) -> Option<RelView> {
        let id = oid::decode_relation(o)?;
        let t = self.catalog.table(id).ok()?;
        t.stats.as_ref().map(RelView::from_stats)
    }

    fn indexes(&self, o: Oid) -> Vec<MdIndex> {
        let Some(id) = oid::decode_relation(o) else { return vec![] };
        let Ok(t) = self.catalog.table(id) else { return vec![] };
        t.indexes
            .iter()
            .enumerate()
            .map(|(position, ix)| MdIndex {
                position,
                name: ix.def().name.clone(),
                columns: ix.def().columns.clone(),
                unique: ix.def().unique,
            })
            .collect()
    }

    fn commutator(&self, expr: Oid) -> Oid {
        oid::commutator_oid(expr)
    }

    fn inverse(&self, expr: Oid) -> Oid {
        oid::inverse_oid(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_catalog::stats::AnalyzeOptions;
    use taurus_common::{Column, Schema, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "part",
                Schema::new(vec![
                    Column::new("p_partkey", DataType::Int),
                    Column::new("p_container", DataType::Str),
                ]),
            )
            .unwrap();
        cat.insert(t, (0..100).map(|i| vec![Value::Int(i), Value::str(format!("PKG{}", i % 5))]))
            .unwrap();
        cat.create_index(t, "part_pk", vec![0], true).unwrap();
        cat.analyze_all(&AnalyzeOptions::default());
        cat
    }

    #[test]
    fn serves_relations_statistics_indexes() {
        let cat = catalog();
        let p = MySqlMdProvider::new(&cat);
        let rel_oid = p.relation_oid(TableId(0));
        let rel = p.relation(rel_oid).unwrap();
        assert_eq!(rel.name, "part");
        assert_eq!(rel.rows, 100.0);
        assert_eq!(rel.num_columns, 2);
        let stats = p.statistics(rel_oid).unwrap();
        assert_eq!(stats.rows, 100.0);
        assert!(stats.cols[1].as_ref().unwrap().hist.is_some(), "string histogram served");
        let ix = p.indexes(rel_oid);
        assert_eq!(ix.len(), 1);
        assert!(ix[0].unique);
        // Unknown OIDs are simply absent.
        assert!(p.relation(Oid(999_999)).is_none());
        assert!(p.statistics(Oid(42)).is_none());
    }

    #[test]
    fn q17_interaction_walkthrough() {
        // §5.7: for `p_container = 'SM PKG'` the provider returns the
        // STR_EQ_STR OID, whose commutator and inverse also exist.
        let cat = catalog();
        let p = MySqlMdProvider::new(&cat);
        let e = Expr::eq(Expr::col(0, 1), Expr::string("SM PKG"));
        let types = |_: usize, c: usize| if c == 1 { DataType::Str } else { DataType::Int };
        let oids = p.embellish(&e, &types);
        assert_eq!(oids.len(), 1);
        let str_eq_str = oid::cmp_oid(TypeCategory::Str, TypeCategory::Str, BinOp::Eq).unwrap();
        assert_eq!(oids[0], str_eq_str);
        assert!(p.commutator(oids[0]).is_valid());
        assert!(p.inverse(oids[0]).is_valid());
    }

    #[test]
    fn count_star_uses_star_category() {
        let cat = catalog();
        let p = MySqlMdProvider::new(&cat);
        let star = p.agg_expr_oid(AggFunc::CountStar, None);
        let any = p.agg_expr_oid(AggFunc::Count, Some(DataType::Str));
        assert_ne!(star, any);
        assert_eq!(oid::decode_agg(star).unwrap().0, TypeCategory::Star);
        assert_eq!(oid::decode_agg(any).unwrap().0, TypeCategory::Any);
        // SUM over strings is still *assigned* an OID (the cube is total
        // over categories); validity is the resolver's concern.
        assert!(p.agg_expr_oid(AggFunc::Sum, Some(DataType::Int)).is_valid());
    }

    #[test]
    fn regular_functions_enumerate_distinctly() {
        let cat = catalog();
        let p = MySqlMdProvider::new(&cat);
        let mut seen = std::collections::HashSet::new();
        for f in [
            ScalarFunc::Abs,
            ScalarFunc::Substr,
            ScalarFunc::CastDate,
            ScalarFunc::Year,
            ScalarFunc::Concat,
        ] {
            let o = p.regular_function_oid(f);
            assert!(o.is_valid());
            assert!(seen.insert(o), "distinct OID per function");
            assert!(o.0 >= oid::FUNC_BASE && o.0 < oid::RELATION_BASE);
        }
    }

    #[test]
    fn non_commuting_arith_returns_invalid() {
        let cat = catalog();
        let p = MySqlMdProvider::new(&cat);
        let div = p.binary_expr_oid(BinOp::Div, DataType::Double, DataType::Double);
        assert!(div.is_valid());
        assert!(!p.commutator(div).is_valid(), "'/' does not commute (§5.3)");
        assert!(!p.inverse(div).is_valid(), "only comparisons invert");
    }
}
