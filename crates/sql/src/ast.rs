//! Raw (unresolved) SQL abstract syntax tree.

use taurus_common::Value;

/// A parsed statement. Only `SELECT` is routed to Orca (paper §4.1); other
/// statement kinds exist so the router has something to *decline* to route.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `INSERT INTO t VALUES (...), (...)` — executed by mylite directly.
    Insert {
        table: String,
        rows: Vec<Vec<AstExpr>>,
    },
}

/// A full `SELECT` statement: optional CTEs plus a query expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub ctes: Vec<Cte>,
    pub body: QueryExpr,
}

impl SelectStmt {
    /// A statement with no CTEs wrapping one query block.
    pub fn simple(block: QueryBlock) -> SelectStmt {
        SelectStmt { ctes: Vec::new(), body: QueryExpr::Block(Box::new(block)) }
    }

    /// Count of table references in the whole statement — the paper's
    /// "query complexity" metric for the complex-query threshold (§4.1).
    pub fn table_ref_count(&self) -> usize {
        let mut n = 0;
        for cte in &self.ctes {
            n += cte.query.table_ref_count();
        }
        n + self.body.table_ref_count()
    }
}

/// A common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    /// Optional explicit column names.
    pub columns: Vec<String>,
    pub query: Box<SelectStmt>,
    /// `WITH RECURSIVE` — parsed but rejected by the Orca route (§4.1).
    pub recursive: bool,
}

/// A query expression: a block or a set operation over two of them.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    Block(Box<QueryBlock>),
    SetOp { op: SetOp, all: bool, left: Box<QueryExpr>, right: Box<QueryExpr> },
}

impl QueryExpr {
    fn table_ref_count(&self) -> usize {
        match self {
            QueryExpr::Block(b) => b.table_ref_count(),
            QueryExpr::SetOp { left, right, .. } => {
                left.table_ref_count() + right.table_ref_count()
            }
        }
    }
}

/// Set operators. MySQL supports only `UNION` (paper §6.2, lesson §7
/// item 2); `INTERSECT`/`EXCEPT` must be rewritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// One `SELECT ... FROM ... WHERE ...` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryBlock {
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

impl QueryBlock {
    fn table_ref_count(&self) -> usize {
        let mut n = 0;
        for t in &self.from {
            n += t.table_ref_count();
        }
        // Subqueries in WHERE/HAVING/SELECT count too — they reference
        // tables that Orca will have to order.
        let mut exprs: Vec<&AstExpr> = Vec::new();
        exprs.extend(self.select.iter().filter_map(|s| match s {
            SelectItem::Expr { expr, .. } => Some(expr),
            SelectItem::Wildcard => None,
        }));
        exprs.extend(self.where_clause.iter());
        exprs.extend(self.having.iter());
        for e in exprs {
            n += e.subquery_table_refs();
        }
        n
    }
}

/// A projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`.
    Wildcard,
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: AstExpr,
    pub desc: bool,
}

/// A FROM-clause table reference.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or CTE reference, with optional alias.
    Base { name: String, alias: Option<String> },
    /// Derived table: `(SELECT ...) AS alias`.
    Derived { query: Box<SelectStmt>, alias: String },
    /// Explicit join.
    Join { left: Box<TableRef>, right: Box<TableRef>, kind: JoinKind, on: Option<AstExpr> },
}

impl TableRef {
    fn table_ref_count(&self) -> usize {
        match self {
            TableRef::Base { .. } => 1,
            TableRef::Derived { query, .. } => query.table_ref_count(),
            TableRef::Join { left, right, .. } => left.table_ref_count() + right.table_ref_count(),
        }
    }
}

/// Join kinds the dialect supports. (Semi/anti joins are produced by the
/// prepare phase's subquery rewrites, never written directly.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// Interval units for date arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalUnit {
    Day,
    Month,
    Year,
}

/// Binary operators at the AST level (same set as the bound ones).
pub use taurus_common::BinOp as AstBinOp;

/// An unresolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `col` or `tbl.col` (or `schema.tbl.col`, kept as segments).
    Name(Vec<String>),
    Lit(Value),
    /// A bind parameter minted by statement fingerprinting
    /// ([`crate::fingerprint`]): literal number `index` in the statement,
    /// with the peeked `value` it replaced. Never produced by the parser.
    Param {
        index: usize,
        value: Value,
    },
    /// `INTERVAL 'n' UNIT` — valid only as an operand of `+`/`-`.
    Interval {
        n: i64,
        unit: IntervalUnit,
    },
    Binary {
        op: AstBinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    Neg(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    /// Function call; `name` is uppercased by the parser. `COUNT(*)` is
    /// `Func { name: "COUNT", star: true, .. }`.
    Func {
        name: String,
        args: Vec<AstExpr>,
        distinct: bool,
        star: bool,
    },
    Case {
        operand: Option<Box<AstExpr>>,
        branches: Vec<(AstExpr, AstExpr)>,
        else_expr: Option<Box<AstExpr>>,
    },
    InList {
        expr: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<AstExpr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `(SELECT single_value ...)` used as a scalar.
    ScalarSubquery(Box<SelectStmt>),
    Like {
        expr: Box<AstExpr>,
        pattern: Box<AstExpr>,
        negated: bool,
    },
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    /// `CAST(e AS type_name)`.
    Cast {
        expr: Box<AstExpr>,
        type_name: String,
    },
    /// `EXTRACT(field FROM e)`.
    Extract {
        field: String,
        expr: Box<AstExpr>,
    },
}

impl AstExpr {
    /// Number of table references inside subqueries of this expression.
    fn subquery_table_refs(&self) -> usize {
        match self {
            AstExpr::Name(_)
            | AstExpr::Lit(_)
            | AstExpr::Param { .. }
            | AstExpr::Interval { .. } => 0,
            AstExpr::Binary { left, right, .. } => {
                left.subquery_table_refs() + right.subquery_table_refs()
            }
            AstExpr::Not(e) | AstExpr::Neg(e) => e.subquery_table_refs(),
            AstExpr::IsNull { expr, .. } => expr.subquery_table_refs(),
            AstExpr::Func { args, .. } => args.iter().map(|a| a.subquery_table_refs()).sum(),
            AstExpr::Case { operand, branches, else_expr } => {
                operand.as_deref().map_or(0, |o| o.subquery_table_refs())
                    + branches
                        .iter()
                        .map(|(w, t)| w.subquery_table_refs() + t.subquery_table_refs())
                        .sum::<usize>()
                    + else_expr.as_deref().map_or(0, |e| e.subquery_table_refs())
            }
            AstExpr::InList { expr, list, .. } => {
                expr.subquery_table_refs()
                    + list.iter().map(|e| e.subquery_table_refs()).sum::<usize>()
            }
            AstExpr::InSubquery { expr, query, .. } => {
                expr.subquery_table_refs() + query.table_ref_count()
            }
            AstExpr::Exists { query, .. } => query.table_ref_count(),
            AstExpr::ScalarSubquery(q) => q.table_ref_count(),
            AstExpr::Like { expr, pattern, .. } => {
                expr.subquery_table_refs() + pattern.subquery_table_refs()
            }
            AstExpr::Between { expr, low, high, .. } => {
                expr.subquery_table_refs() + low.subquery_table_refs() + high.subquery_table_refs()
            }
            AstExpr::Cast { expr, .. } => expr.subquery_table_refs(),
            AstExpr::Extract { expr, .. } => expr.subquery_table_refs(),
        }
    }

    /// Convenience: name expression from one segment.
    pub fn name(s: &str) -> AstExpr {
        AstExpr::Name(vec![s.to_string()])
    }

    /// Convenience: `tbl.col`.
    pub fn qname(t: &str, c: &str) -> AstExpr {
        AstExpr::Name(vec![t.to_string(), c.to_string()])
    }
}
