//! Fig 10 — TPC-H execution time for MySQL-optimized vs Orca-optimized
//! plans (paper §6.1).
//!
//! One group per query with a `mysql` and an `orca` benchmark; each
//! measurement covers optimization + execution, as the paper's wall-clock
//! runs do. The `harness fig10` binary prints the same data as a single
//! table with totals.

use mylite::{Engine, MySqlOptimizer};
use orcalite::{JoinOrderStrategy, OrcaConfig};
use taurus_bench::micro::{scale_from_env, Group};
use taurus_bridge::OrcaOptimizer;
use taurus_workloads::{tpch, Scale};

fn main() {
    let scale = Scale(scale_from_env(0.15));
    let engine = Engine::new(tpch::build_catalog(scale));
    // The paper's TPC-H setup: threshold 3, EXHAUSTIVE2 (§6.1).
    let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Exhaustive2), 3);
    for q in tpch::queries() {
        let group = Group::new(format!("fig10/{}", q.name)).sample_size(10);
        group.bench("mysql", || {
            engine.query_with(&q.sql, &MySqlOptimizer).expect("query runs");
        });
        group.bench("orca", || {
            engine.query_with(&q.sql, &orca).expect("query runs");
        });
    }
}
