//! In-memory storage engine: heap tables and ordered indexes.
//!
//! The paper's system executes inside MySQL/InnoDB over Taurus Page Stores;
//! this reproduction substitutes an in-memory heap per table with B-tree
//! (`BTreeMap`) secondary structures. What matters for the experiments is
//! that the same *access methods* exist — full table scan, ordered index
//! scan, and index lookup ("ref" access) — with the same asymptotic costs,
//! because the two optimizers' divergent access-method choices are a main
//! source of the paper's run-time differences.

pub mod index;
pub mod table;

pub use index::{IndexDef, IndexKey, OrderedIndex};
pub use table::{RowId, TableData};
