//! The worker pool: scoped threads pulling work units off a shared counter.
//!
//! Morsel-driven scheduling needs no queues: units are numbered `0..n` and
//! workers claim the next index with a single `fetch_add`. Results come back
//! in *unit order* regardless of which worker ran what, which is what makes
//! the exchange merges deterministic.

use crate::exec::{lock, ExecContext, ExecStats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use taurus_common::error::{Error, Result};

/// Run `n_units` closures on up to `dop` worker threads and return their
/// results in unit order.
///
/// Each worker executes with a private [`ExecContext`] derived from `ctx`
/// (own counters, shared materialization/broadcast caches). After the pool
/// joins, worker counters are merged into `ctx.stats` and the exchange-level
/// parallel accounting is updated: `parallel_work` grows by the units' total
/// work and `parallel_critical` by the *makespan* of an ideal list schedule
/// of the per-unit work over `dop` workers (each unit goes to the currently
/// least-loaded worker, in unit order). Using the ideal schedule instead of
/// the observed per-thread split keeps the critical path a property of the
/// plan and the data — the same on a 1-core CI box as on a 64-core machine,
/// where the OS may hand every morsel to a single thread.
///
/// A panicking unit is caught (`catch_unwind`) and surfaced as an execution
/// error; when several units fail, the error of the *lowest* unit index wins
/// so failures are deterministic under any scheduling.
pub(crate) fn run_units<'a, T: Send>(
    ctx: &ExecContext<'a>,
    dop: usize,
    n_units: usize,
    run: impl Fn(&ExecContext<'a>, usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    let shared = ctx.shared();
    let n_workers = dop.min(n_units).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_units).map(|_| Mutex::new(None)).collect();
    let unit_work: Vec<AtomicU64> = (0..n_units).map(|_| AtomicU64::new(0)).collect();
    let failures: Mutex<Vec<(usize, Error)>> = Mutex::new(Vec::new());
    let worker_stats: Mutex<Vec<ExecStats>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|| {
                let wctx = shared.worker();
                loop {
                    // The morsel-boundary governance check: a cancelled or
                    // out-of-time query stops claiming units, so the pool
                    // drains promptly instead of finishing doomed work.
                    if let Err(e) = wctx.check_governor() {
                        lock(&failures).push((usize::MAX, e));
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_units {
                        break;
                    }
                    let before = wctx.stats.work_units();
                    // AssertUnwindSafe: the shared caches the closure can
                    // touch are only ever written whole under their locks,
                    // so a mid-unit panic cannot leave torn state behind.
                    match catch_unwind(AssertUnwindSafe(|| run(&wctx, i))) {
                        Ok(Ok(v)) => *lock(&slots[i]) = Some(v),
                        Ok(Err(e)) => lock(&failures).push((i, e)),
                        Err(payload) => lock(&failures).push((
                            i,
                            Error::internal(format!(
                                "parallel worker panicked: {}",
                                panic_message(payload.as_ref())
                            )),
                        )),
                    }
                    unit_work[i].store(wctx.stats.work_units() - before, Ordering::Relaxed);
                }
                lock(&worker_stats).push(wctx.stats);
            });
        }
    });

    let per_worker = worker_stats.into_inner().unwrap_or_else(|e| e.into_inner());
    for ws in &per_worker {
        ctx.stats.merge(ws);
    }
    // Ideal list schedule: hand each unit, in unit order, to the currently
    // least-loaded of `dop` workers. The resulting makespan is the critical
    // path a dop-wide machine would see for this morsel set.
    let mut bins = vec![0u64; dop.max(1)];
    let mut total = 0u64;
    for w in &unit_work {
        let w = w.load(Ordering::Relaxed);
        total += w;
        if let Some(min) = bins.iter_mut().min() {
            *min += w;
        }
    }
    ExecStats::bump(&ctx.stats.parallel_work, total);
    ExecStats::bump(&ctx.stats.parallel_critical, bins.into_iter().max().unwrap_or(0));

    let mut failures = failures.into_inner().unwrap_or_else(|e| e.into_inner());
    if !failures.is_empty() {
        failures.sort_by_key(|(i, _)| *i);
        return Err(failures.swap_remove(0).1);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .ok_or_else(|| Error::internal("parallel pool lost a unit result"))
        })
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_catalog::Catalog;

    fn ctx(cat: &Catalog) -> ExecContext<'_> {
        ExecContext::new(cat, 0, 0)
    }

    #[test]
    fn results_come_back_in_unit_order() {
        let cat = Catalog::new();
        let ctx = ctx(&cat);
        let out = run_units(&ctx, 4, 17, |_, i| Ok(i * 10)).unwrap();
        assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_counters_fold_into_parent_with_critical_path() {
        let cat = Catalog::new();
        let ctx = ctx(&cat);
        // Each unit "scans" 5 rows in its worker context.
        run_units(&ctx, 2, 6, |w, _| {
            ExecStats::bump(&w.stats.rows_scanned, 5);
            Ok(())
        })
        .unwrap();
        assert_eq!(ctx.stats.rows_scanned.get(), 30);
        assert_eq!(ctx.stats.parallel_work.get(), 30);
        // Ideal schedule of six 5-unit morsels over two workers: 15 each,
        // regardless of how the OS actually interleaved the threads.
        assert_eq!(ctx.stats.parallel_critical.get(), 15);
        assert_eq!(ctx.stats.critical_path_work(), 15);
    }

    #[test]
    fn lowest_unit_error_wins_and_panics_are_isolated() {
        let cat = Catalog::new();
        let ctx = ctx(&cat);
        let err = run_units(&ctx, 4, 8, |_, i| -> Result<()> {
            match i {
                2 => panic!("boom in unit two"),
                5 => Err(Error::internal("unit five failed")),
                _ => Ok(()),
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("boom in unit two"), "unit 2 outranks unit 5: {err}");
    }
}
