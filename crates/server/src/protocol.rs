//! The wire protocol: length-prefixed frames carrying requests and replies.
//!
//! Everything on the wire is little-endian and self-describing enough for a
//! blocking reader: a `u32` payload length, then the payload. Requests open
//! with an opcode byte; per-statement options ride along as `(key, u64)`
//! pairs (floats as IEEE bits), so the option set can grow without a frame
//! version bump — unknown keys are a decode error, which is the right
//! failure for a single-version protocol. Replies open with a status byte;
//! errors round-trip *typed* (a `DeadlineExceeded` on the server is a
//! `DeadlineExceeded` in the client), because the concurrency harness and
//! the fuzzer assert on error identity, not just error text.
//!
//! Decoding never trusts the peer: lengths are bounded by the frame size
//! (itself capped at [`MAX_FRAME`]), and every read checks the remaining
//! buffer, so a malformed frame yields a protocol error instead of a panic
//! or an unbounded allocation.

use mylite::{CacheOutcome, SessionOpts};
use std::io::{Read, Write};
use taurus_common::error::{Error, Result};
use taurus_common::Value;

/// Upper bound on a frame payload (16 MiB): big enough for any plausible
/// result set at benchmark scale, small enough that a corrupt length
/// prefix cannot trigger a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 16 << 20;

// Request opcodes.
const OP_QUERY: u8 = 0x01;
const OP_EXPLAIN: u8 = 0x02;
const OP_SET: u8 = 0x03;
const OP_ANALYZE: u8 = 0x04;
const OP_QUIT: u8 = 0x06;

// Session/statement option keys.
const KEY_DOP: u8 = 1;
const KEY_MORSEL_ROWS: u8 = 2;
const KEY_PARALLEL_THRESHOLD: u8 = 3;
const KEY_DEADLINE_MS: u8 = 4;
const KEY_MEMORY_BUDGET: u8 = 5;
const KEY_REOPT_Q_THRESHOLD: u8 = 6;
const KEY_VECTORIZED: u8 = 7;
const KEY_ORDER_OPT: u8 = 8;

// Reply status bytes.
const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

// Ok-reply kinds.
const REPLY_ROWS: u8 = 0;
const REPLY_TEXT: u8 = 1;
const REPLY_UNIT: u8 = 2;

// Value tags.
const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_DOUBLE: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_DATE: u8 = 4;
const VAL_BOOL: u8 = 5;

// Error codes.
const ERR_PARSE: u8 = 1;
const ERR_RESOLUTION: u8 = 2;
const ERR_SEMANTIC: u8 = 3;
const ERR_CATALOG: u8 = 4;
const ERR_FALLBACK: u8 = 5;
const ERR_EXECUTION: u8 = 6;
const ERR_RESOURCE: u8 = 7;
const ERR_CANCELLED: u8 = 8;
const ERR_DEADLINE: u8 = 9;
const ERR_MEMORY: u8 = 10;
const ERR_INTERNAL: u8 = 11;

/// How a statement was served, as reported to the client. Mirrors the
/// engine's [`CacheOutcome`] plus `Uncached` for statements that bypass
/// the plan cache entirely (INSERT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    Miss,
    Hit,
    Invalidated,
    Reoptimized,
    Uncached,
}

impl From<CacheOutcome> for ServeOutcome {
    fn from(o: CacheOutcome) -> ServeOutcome {
        match o {
            CacheOutcome::Miss => ServeOutcome::Miss,
            CacheOutcome::Hit => ServeOutcome::Hit,
            CacheOutcome::Invalidated => ServeOutcome::Invalidated,
            CacheOutcome::Reoptimized => ServeOutcome::Reoptimized,
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a statement. Options apply to this statement only, layered
    /// over the session's `SET` state.
    Query { opts: SessionOpts, sql: String },
    /// EXPLAIN a statement through the plan cache.
    Explain { opts: SessionOpts, sql: String },
    /// Fold options into the session state (later statements inherit them).
    Set { opts: SessionOpts },
    /// Run ANALYZE on every table — the DDL that bumps the catalog version.
    Analyze,
    /// Close the session.
    Quit,
}

/// One server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Query results.
    Rows { outcome: ServeOutcome, columns: Vec<String>, rows: Vec<Vec<Value>> },
    /// EXPLAIN text.
    Text(String),
    /// Success with no payload (SET, ANALYZE).
    Unit,
    /// The statement failed; the error is reconstructed typed.
    Err(Error),
}

fn protocol_err(what: &str) -> Error {
    Error::internal(format!("wire protocol: {what}"))
}

// ---------------------------------------------------------------- framing

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    // One write per frame: splitting the length prefix and the payload
    // into separate small writes puts the payload segment behind Nagle
    // waiting on the peer's delayed ACK of the prefix segment — a ~40ms
    // stall per round trip on back-to-back requests.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // A clean EOF before any length byte is a normal hangup.
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len[n..])?,
        Err(e) => return Err(e),
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------- cursor

/// A bounds-checked reader over one frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|e| *e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(protocol_err("truncated frame")),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| protocol_err("non-UTF-8 string"))
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(protocol_err("trailing bytes after message"))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------- options

fn encode_opts(out: &mut Vec<u8>, opts: &SessionOpts) {
    let mut pairs: Vec<(u8, u64)> = Vec::new();
    if let Some(v) = opts.dop {
        pairs.push((KEY_DOP, v as u64));
    }
    if let Some(v) = opts.morsel_rows {
        pairs.push((KEY_MORSEL_ROWS, v as u64));
    }
    if let Some(v) = opts.parallel_threshold {
        pairs.push((KEY_PARALLEL_THRESHOLD, v as u64));
    }
    if let Some(v) = opts.deadline_ms {
        pairs.push((KEY_DEADLINE_MS, v));
    }
    if let Some(v) = opts.memory_budget {
        pairs.push((KEY_MEMORY_BUDGET, v));
    }
    if let Some(v) = opts.reopt_q_threshold {
        pairs.push((KEY_REOPT_Q_THRESHOLD, v.to_bits()));
    }
    if let Some(v) = opts.vectorized {
        pairs.push((KEY_VECTORIZED, v as u64));
    }
    if let Some(v) = opts.order_opt {
        pairs.push((KEY_ORDER_OPT, v as u64));
    }
    out.push(pairs.len() as u8);
    for (k, v) in pairs {
        out.push(k);
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_opts(c: &mut Cursor) -> Result<SessionOpts> {
    let n = c.u8()?;
    let mut opts = SessionOpts::default();
    for _ in 0..n {
        let key = c.u8()?;
        let val = c.u64()?;
        match key {
            KEY_DOP => opts.dop = Some(val as usize),
            KEY_MORSEL_ROWS => opts.morsel_rows = Some(val as usize),
            KEY_PARALLEL_THRESHOLD => opts.parallel_threshold = Some(val as usize),
            KEY_DEADLINE_MS => opts.deadline_ms = Some(val),
            KEY_MEMORY_BUDGET => opts.memory_budget = Some(val),
            KEY_REOPT_Q_THRESHOLD => opts.reopt_q_threshold = Some(f64::from_bits(val)),
            KEY_VECTORIZED => opts.vectorized = Some(val != 0),
            KEY_ORDER_OPT => opts.order_opt = Some(val != 0),
            other => return Err(protocol_err(&format!("unknown option key {other}"))),
        }
    }
    Ok(opts)
}

// ---------------------------------------------------------------- requests

pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Query { opts, sql } => {
            out.push(OP_QUERY);
            encode_opts(&mut out, opts);
            put_string(&mut out, sql);
        }
        Request::Explain { opts, sql } => {
            out.push(OP_EXPLAIN);
            encode_opts(&mut out, opts);
            put_string(&mut out, sql);
        }
        Request::Set { opts } => {
            out.push(OP_SET);
            encode_opts(&mut out, opts);
        }
        Request::Analyze => out.push(OP_ANALYZE),
        Request::Quit => out.push(OP_QUIT),
    }
    out
}

pub fn decode_request(payload: &[u8]) -> Result<Request> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        OP_QUERY => {
            let opts = decode_opts(&mut c)?;
            let sql = c.string()?;
            Request::Query { opts, sql }
        }
        OP_EXPLAIN => {
            let opts = decode_opts(&mut c)?;
            let sql = c.string()?;
            Request::Explain { opts, sql }
        }
        OP_SET => Request::Set { opts: decode_opts(&mut c)? },
        OP_ANALYZE => Request::Analyze,
        OP_QUIT => Request::Quit,
        other => return Err(protocol_err(&format!("unknown opcode {other:#04x}"))),
    };
    c.done()?;
    Ok(req)
}

// ---------------------------------------------------------------- values

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VAL_NULL),
        Value::Int(i) => {
            out.push(VAL_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(VAL_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            put_string(out, s);
        }
        Value::Date(d) => {
            out.push(VAL_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(*b as u8);
        }
    }
}

fn decode_value(c: &mut Cursor) -> Result<Value> {
    Ok(match c.u8()? {
        VAL_NULL => Value::Null,
        VAL_INT => Value::Int(c.i64()?),
        VAL_DOUBLE => Value::Double(f64::from_bits(c.u64()?)),
        VAL_STR => Value::str(c.string()?),
        VAL_DATE => Value::Date(c.u32()? as i32),
        VAL_BOOL => Value::Bool(c.u8()? != 0),
        other => return Err(protocol_err(&format!("unknown value tag {other}"))),
    })
}

// ---------------------------------------------------------------- errors

fn encode_error(out: &mut Vec<u8>, e: &Error) {
    match e {
        Error::Parse { message, offset } => {
            out.push(ERR_PARSE);
            out.extend_from_slice(&(*offset as u64).to_le_bytes());
            put_string(out, message);
        }
        Error::Resolution(m) => {
            out.push(ERR_RESOLUTION);
            put_string(out, m);
        }
        Error::Semantic(m) => {
            out.push(ERR_SEMANTIC);
            put_string(out, m);
        }
        Error::CatalogMissing(m) => {
            out.push(ERR_CATALOG);
            put_string(out, m);
        }
        Error::OrcaFallback(m) => {
            out.push(ERR_FALLBACK);
            put_string(out, m);
        }
        Error::Execution(m) => {
            out.push(ERR_EXECUTION);
            put_string(out, m);
        }
        Error::ResourceExhausted { resource, limit } => {
            out.push(ERR_RESOURCE);
            out.extend_from_slice(&limit.to_le_bytes());
            put_string(out, resource);
        }
        Error::Cancelled => out.push(ERR_CANCELLED),
        Error::DeadlineExceeded { budget_ms } => {
            out.push(ERR_DEADLINE);
            out.extend_from_slice(&budget_ms.to_le_bytes());
        }
        Error::MemoryExceeded { used, budget } => {
            out.push(ERR_MEMORY);
            out.extend_from_slice(&used.to_le_bytes());
            out.extend_from_slice(&budget.to_le_bytes());
        }
        Error::Internal(m) => {
            out.push(ERR_INTERNAL);
            put_string(out, m);
        }
    }
}

fn decode_error(c: &mut Cursor) -> Result<Error> {
    Ok(match c.u8()? {
        ERR_PARSE => {
            let offset = c.u64()? as usize;
            Error::Parse { message: c.string()?, offset }
        }
        ERR_RESOLUTION => Error::Resolution(c.string()?),
        ERR_SEMANTIC => Error::Semantic(c.string()?),
        ERR_CATALOG => Error::CatalogMissing(c.string()?),
        ERR_FALLBACK => Error::OrcaFallback(c.string()?),
        ERR_EXECUTION => Error::Execution(c.string()?),
        ERR_RESOURCE => {
            let limit = c.u64()?;
            Error::ResourceExhausted { resource: c.string()?, limit }
        }
        ERR_CANCELLED => Error::Cancelled,
        ERR_DEADLINE => Error::DeadlineExceeded { budget_ms: c.u64()? },
        ERR_MEMORY => {
            let used = c.u64()?;
            Error::MemoryExceeded { used, budget: c.u64()? }
        }
        ERR_INTERNAL => Error::Internal(c.string()?),
        other => return Err(protocol_err(&format!("unknown error code {other}"))),
    })
}

// ---------------------------------------------------------------- replies

pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut out = Vec::new();
    match reply {
        Reply::Rows { outcome, columns, rows } => {
            out.push(STATUS_OK);
            out.push(REPLY_ROWS);
            out.push(match outcome {
                ServeOutcome::Miss => 0,
                ServeOutcome::Hit => 1,
                ServeOutcome::Invalidated => 2,
                ServeOutcome::Reoptimized => 3,
                ServeOutcome::Uncached => 4,
            });
            out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
            for col in columns {
                put_string(&mut out, col);
            }
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for row in rows {
                for v in row {
                    encode_value(&mut out, v);
                }
            }
        }
        Reply::Text(t) => {
            out.push(STATUS_OK);
            out.push(REPLY_TEXT);
            put_string(&mut out, t);
        }
        Reply::Unit => {
            out.push(STATUS_OK);
            out.push(REPLY_UNIT);
        }
        Reply::Err(e) => {
            out.push(STATUS_ERR);
            encode_error(&mut out, e);
        }
    }
    out
}

pub fn decode_reply(payload: &[u8]) -> Result<Reply> {
    let mut c = Cursor::new(payload);
    let reply = match c.u8()? {
        STATUS_OK => match c.u8()? {
            REPLY_ROWS => {
                let outcome = match c.u8()? {
                    0 => ServeOutcome::Miss,
                    1 => ServeOutcome::Hit,
                    2 => ServeOutcome::Invalidated,
                    3 => ServeOutcome::Reoptimized,
                    4 => ServeOutcome::Uncached,
                    other => {
                        return Err(protocol_err(&format!("unknown outcome {other}")));
                    }
                };
                let ncols = c.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    columns.push(c.string()?);
                }
                let nrows = c.u32()? as usize;
                let mut rows = Vec::new();
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(decode_value(&mut c)?);
                    }
                    rows.push(row);
                }
                Reply::Rows { outcome, columns, rows }
            }
            REPLY_TEXT => Reply::Text(c.string()?),
            REPLY_UNIT => Reply::Unit,
            other => return Err(protocol_err(&format!("unknown reply kind {other}"))),
        },
        STATUS_ERR => Reply::Err(decode_error(&mut c)?),
        other => return Err(protocol_err(&format!("unknown status {other}"))),
    };
    c.done()?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Query {
                opts: SessionOpts {
                    dop: Some(4),
                    deadline_ms: Some(0),
                    reopt_q_threshold: Some(2.5),
                    ..SessionOpts::default()
                },
                sql: "SELECT 1".into(),
            },
            Request::Explain { opts: SessionOpts::default(), sql: "SELECT x FROM t".into() },
            Request::Set {
                opts: SessionOpts {
                    memory_budget: Some(1 << 20),
                    morsel_rows: Some(512),
                    parallel_threshold: Some(9),
                    vectorized: Some(true),
                    ..SessionOpts::default()
                },
            },
            Request::Analyze,
            Request::Quit,
        ];
        for req in reqs {
            let decoded = decode_request(&encode_request(&req)).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn replies_round_trip_values_and_typed_errors() {
        let rows = Reply::Rows {
            outcome: ServeOutcome::Reoptimized,
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                vec![Value::Int(-7), Value::str("héllo")],
                vec![Value::Null, Value::Double(2.5)],
                vec![Value::Date(-3), Value::Bool(true)],
            ],
        };
        for reply in [
            rows,
            Reply::Text("EXPLAIN\n-> scan".into()),
            Reply::Unit,
            Reply::Err(Error::DeadlineExceeded { budget_ms: 42 }),
            Reply::Err(Error::MemoryExceeded { used: 100, budget: 64 }),
            Reply::Err(Error::Cancelled),
            Reply::Err(Error::Parse { message: "bad token".into(), offset: 17 }),
            Reply::Err(Error::ResourceExhausted { resource: "groups".into(), limit: 9 }),
        ] {
            let decoded = decode_reply(&encode_reply(&reply)).unwrap();
            assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn malformed_frames_fail_without_panicking() {
        assert!(decode_request(&[]).is_err(), "empty payload");
        assert!(decode_request(&[0xEE]).is_err(), "unknown opcode");
        assert!(decode_request(&[0x01, 1, 99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err(), "bad key");
        // Truncated string length.
        assert!(decode_request(&[0x01, 0, 255, 0, 0, 0]).is_err());
        let mut ok = encode_request(&Request::Analyze);
        ok.push(0);
        assert!(decode_request(&ok).is_err(), "trailing bytes rejected");
        assert!(decode_reply(&[0, 0, 9]).is_err(), "unknown outcome");
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let payload = encode_request(&Request::Query {
            opts: SessionOpts::default(),
            sql: "SELECT 1".into(),
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after last frame");
    }
}
