//! Skeleton plans — the integration's intermediary format.
//!
//! A skeleton plan "encodes the best join position and the best join method
//! for each table appearing in a query" (§4.2): join order, join methods,
//! and table access methods, with everything else (predicates, aggregation,
//! ordering, limits) left for plan refinement. Both the MySQL greedy
//! optimizer and the bridge's Orca plan converter produce skeletons; the
//! refinement phase is shared — exactly the paper's architecture.
//!
//! MySQL's native representation is the *best-position array* (Fig 7); the
//! paper extended it slightly to express bushy trees (§7 item 1). Here the
//! tree is primary and the best-position array is derived from it as the
//! pre-order left-to-right leaf sequence.

use taurus_common::Expr;

/// Join methods a skeleton records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMethod {
    NestedLoop,
    Hash,
}

/// Access method chosen for a leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessChoice {
    TableScan,
    /// Full ordered scan of an index (can supply a sort order, §7 item 4).
    IndexScan {
        index: usize,
    },
    /// Range scan on an index's leading column with constant bounds; the
    /// consumed conjuncts are recorded so refinement doesn't re-apply them.
    IndexRange {
        index: usize,
        lo: Option<(Expr, bool)>,
        hi: Option<(Expr, bool)>,
        consumed: Vec<Expr>,
    },
    /// Index lookup ("ref" access) keyed by outer-row expressions.
    IndexLookup {
        index: usize,
        keys: Vec<Expr>,
        consumed: Vec<Expr>,
    },
    /// Cost-based IN-list rewrite: one point lookup per literal, results
    /// concatenated. The keys are sorted ascending and deduplicated, so the
    /// concatenation delivers the index's leading column in ascending order.
    InListProbes {
        index: usize,
        keys: Vec<Expr>,
        consumed: Vec<Expr>,
    },
    /// Derived table / CTE copy: the inner block's own skeleton.
    Derived {
        skeleton: Box<Skeleton>,
    },
}

impl AccessChoice {
    /// Short name for best-position displays and EXPLAIN.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AccessChoice::TableScan => "table scan",
            AccessChoice::IndexScan { .. } => "index scan",
            AccessChoice::IndexRange { .. } => "index range",
            AccessChoice::IndexLookup { .. } => "index lookup",
            AccessChoice::InListProbes { .. } => "in-list probes",
            AccessChoice::Derived { .. } => "derived",
        }
    }
}

/// One best-position entry: a table, its access method, and the estimates
/// the paper says get copied into MySQL ("cost and cardinality estimations
/// ... are copied over to MySQL side", §4.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SkelLeaf {
    /// Global query-table index.
    pub qt: usize,
    pub access: AccessChoice,
    pub rows: f64,
    pub cost: f64,
}

/// A skeleton node: leaf or join.
#[derive(Debug, Clone, PartialEq)]
pub enum SkelNode {
    Leaf(SkelLeaf),
    Join {
        method: JoinMethod,
        left: Box<SkelNode>,
        right: Box<SkelNode>,
        rows: f64,
        cost: f64,
    },
    /// Sort-ahead the optimizer chose as cheaper than sorting the final
    /// result (`(key, desc)` per key). Refinement lowers it to a `Plan::Sort`
    /// and then independently re-verifies whether it (or the block-level
    /// enforcer above it) is redundant — the skeleton's claim is a costing
    /// decision, never trusted for correctness.
    Sort {
        input: Box<SkelNode>,
        keys: Vec<(Expr, bool)>,
        rows: f64,
        cost: f64,
    },
}

impl SkelNode {
    /// Pre-order left-to-right leaves — MySQL's best-position array.
    pub fn best_positions(&self) -> Vec<&SkelLeaf> {
        let mut out = Vec::new();
        fn walk<'a>(n: &'a SkelNode, out: &mut Vec<&'a SkelLeaf>) {
            match n {
                SkelNode::Leaf(l) => out.push(l),
                SkelNode::Join { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                SkelNode::Sort { input, .. } => walk(input, out),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Qts covered by this subtree.
    pub fn qts(&self) -> Vec<usize> {
        self.best_positions().iter().map(|l| l.qt).collect()
    }

    pub fn rows(&self) -> f64 {
        match self {
            SkelNode::Leaf(l) => l.rows,
            SkelNode::Join { rows, .. } | SkelNode::Sort { rows, .. } => *rows,
        }
    }

    pub fn cost(&self) -> f64 {
        match self {
            SkelNode::Leaf(l) => l.cost,
            SkelNode::Join { cost, .. } | SkelNode::Sort { cost, .. } => *cost,
        }
    }

    /// Whether the tree is left-deep (every right child is a leaf).
    pub fn is_left_deep(&self) -> bool {
        match self {
            SkelNode::Leaf(_) => true,
            SkelNode::Join { left, right, .. } => {
                matches!(right.as_ref(), SkelNode::Leaf(_)) && left.is_left_deep()
            }
            SkelNode::Sort { input, .. } => input.is_left_deep(),
        }
    }
}

/// Optimizer search-effort trace for one statement: what the join-order
/// search did to produce this skeleton. Populated by the Orca detour
/// (summed over the statement's blocks); `None` for the native MySQL
/// optimizer, whose greedy walk has no memo to trace. Rendered as its own
/// line after the EXPLAIN banner and surfaced through `RouterStats`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchTrace {
    /// Memo groups created.
    pub groups: usize,
    /// Group expressions (join splits) explored.
    pub group_exprs: u64,
    /// Normalization-rule applications attempted (e.g. OR factorization).
    pub rules_applied: u64,
    /// Rule applications that rewrote their input.
    pub rules_hit: u64,
    /// Physical alternatives costed.
    pub plans_costed: u64,
    /// Fraction of the plans-costed budget consumed, in [0, 1].
    pub budget_used: f64,
    /// Never-fail ladder rung that produced the plan (0 = the configured
    /// strategy succeeded outright).
    pub rung: usize,
    /// Join-order strategy of the winning rung.
    pub strategy: &'static str,
}

impl SearchTrace {
    /// One-line rendering for the EXPLAIN header block.
    pub fn display(&self) -> String {
        format!(
            "[search: strategy={} rung={} groups={} group_exprs={} rules={}/{} \
             plans_costed={} budget={:.0}%]",
            self.strategy,
            self.rung,
            self.groups,
            self.group_exprs,
            self.rules_hit,
            self.rules_applied,
            self.plans_costed,
            (self.budget_used * 100.0).min(100.0)
        )
    }
}

/// A full skeleton plan for one query block.
#[derive(Debug, Clone, PartialEq)]
pub struct Skeleton {
    pub root: SkelNode,
    /// Whether Orca chose this skeleton (drives the `EXPLAIN (ORCA)`
    /// banner, Listing 7).
    pub orca_assisted: bool,
    /// When the Orca detour was attempted but aborted, the fallback reason
    /// (e.g. `"panicked"`, `"budget-exhausted"`); `None` for Orca-assisted
    /// plans and for queries below the complex-query threshold. Shown in
    /// the EXPLAIN banner so fallbacks are observable per statement.
    pub orca_fallback: Option<String>,
    /// Degree of parallelism Orca's cost model chose for this block
    /// (`None` = serial). Refinement turns this into exchange operators;
    /// the engine clamps it to its own configured dop.
    pub dop: Option<usize>,
    /// Search-effort trace from the optimizer that built this skeleton
    /// (`None` when the backend doesn't trace, e.g. the native optimizer).
    pub search: Option<SearchTrace>,
    /// Set when this plan came from feedback-driven re-optimization: a
    /// short description of the injected observations (rendered as a
    /// `[reopt: …]` EXPLAIN line). `None` for estimate-only compiles.
    pub reopt: Option<String>,
}

impl Skeleton {
    /// The EXPLAIN first line (Listing 7, extended with fallback reasons).
    pub fn explain_banner(&self) -> String {
        if self.orca_assisted {
            "EXPLAIN (ORCA)".to_string()
        } else if let Some(reason) = &self.orca_fallback {
            format!("EXPLAIN (ORCA fallback: {reason})")
        } else {
            "EXPLAIN".to_string()
        }
    }

    /// Render the best-position array like Fig 7: `[part, derived_1_2,
    /// lineitem]`, via a caller-provided qt namer.
    pub fn best_position_display(&self, namer: &dyn Fn(usize) -> String) -> String {
        let names: Vec<String> = self.root.best_positions().iter().map(|l| namer(l.qt)).collect();
        format!("[{}]", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(qt: usize) -> SkelNode {
        SkelNode::Leaf(SkelLeaf { qt, access: AccessChoice::TableScan, rows: 10.0, cost: 10.0 })
    }

    fn join(l: SkelNode, r: SkelNode) -> SkelNode {
        SkelNode::Join {
            method: JoinMethod::NestedLoop,
            left: Box::new(l),
            right: Box::new(r),
            rows: 100.0,
            cost: 100.0,
        }
    }

    #[test]
    fn best_positions_are_preorder_leaves() {
        // ((0 ⋈ 2) ⋈ 1)
        let tree = join(join(leaf(0), leaf(2)), leaf(1));
        let sk = Skeleton {
            root: tree,
            orca_assisted: false,
            orca_fallback: None,
            dop: None,
            search: None,
            reopt: None,
        };
        assert_eq!(sk.root.qts(), vec![0, 2, 1]);
        assert!(sk.root.is_left_deep());
        assert_eq!(sk.best_position_display(&|qt| format!("t{qt}")), "[t0, t2, t1]");
    }

    #[test]
    fn banner_reflects_provenance() {
        let mut sk = Skeleton {
            root: leaf(0),
            orca_assisted: true,
            orca_fallback: None,
            dop: None,
            search: None,
            reopt: None,
        };
        assert_eq!(sk.explain_banner(), "EXPLAIN (ORCA)");
        sk.orca_assisted = false;
        assert_eq!(sk.explain_banner(), "EXPLAIN");
        sk.orca_fallback = Some("panicked".into());
        assert_eq!(sk.explain_banner(), "EXPLAIN (ORCA fallback: panicked)");
    }

    #[test]
    fn search_trace_displays_every_counter() {
        let t = SearchTrace {
            groups: 7,
            group_exprs: 42,
            rules_applied: 3,
            rules_hit: 1,
            plans_costed: 99,
            budget_used: 0.25,
            rung: 1,
            strategy: "EXHAUSTIVE",
        };
        assert_eq!(
            t.display(),
            "[search: strategy=EXHAUSTIVE rung=1 groups=7 group_exprs=42 rules=1/3 \
             plans_costed=99 budget=25%]"
        );
    }

    #[test]
    fn bushy_detection() {
        let bushy = join(leaf(0), join(leaf(1), leaf(2)));
        assert!(!bushy.is_left_deep());
        assert_eq!(bushy.qts(), vec![0, 1, 2]);
    }
}
