//! Property-based tests on the core invariants.
//!
//! * rewrites (`factor_or`, `push_not`) preserve three-valued semantics on
//!   arbitrary expressions and rows;
//! * the metadata provider's OID cubes are bijective and commutation /
//!   inversion are involutions (§5.2–5.3);
//! * histogram selectivities are probabilities that partition correctly;
//! * `LIKE` matching agrees with a reference backtracking matcher;
//! * the string→i64 prefix encoding is order-preserving (§7);
//! * and the end-to-end invariant: random queries produce identical results
//!   under the MySQL optimizer and the Orca detour.

use proptest::prelude::*;
use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::catalog::histogram::Histogram;
use taurus_orca::catalog::encode_str_prefix;
use taurus_orca::common::expr::{factor_or, like_match, EvalCtx};
use taurus_orca::common::{BinOp, Expr, Layout, Value};
use taurus_orca::orcalite::OrcaConfig;
use taurus_orca::workloads::{tpch, Scale};

// ---------------------------------------------------------------- rewrites

/// Random boolean expressions over 4 integer columns of one table.
fn bool_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0usize..4, 0i64..5, prop::sample::select(vec![
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Ge,
    ]))
        .prop_map(|(col, v, op)| Expr::binary(op, Expr::col(0, col), Expr::int(v)));
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.prop_map(Expr::not),
        ]
    })
}

/// Random rows for that table; column values may be NULL.
fn row() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        prop_oneof![3 => (0i64..5).prop_map(Value::Int), 1 => Just(Value::Null)],
        4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn factor_or_preserves_three_valued_semantics(e in bool_expr(), r in row()) {
        let layout = Layout::single(1, 0, 4);
        let ctx = EvalCtx::new(&r, &layout);
        let before = e.eval(ctx).unwrap().truth();
        let after = factor_or(e).eval(ctx).unwrap().truth();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn push_not_preserves_three_valued_semantics(e in bool_expr(), r in row()) {
        let layout = Layout::single(1, 0, 4);
        let ctx = EvalCtx::new(&r, &layout);
        let before = Expr::not(e.clone()).eval(ctx).unwrap().truth();
        let after = mylite::resolve::push_not(Expr::not(e)).eval(ctx).unwrap().truth();
        prop_assert_eq!(before, after);
    }
}

// ---------------------------------------------------------------- OID cubes

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn oid_decoders_partition_the_space(raw in 0u64..3_000_000) {
        use taurus_orca::bridge::oid;
        let o = taurus_orca::common::Oid(raw);
        // At most one decoder accepts any OID (the §5.6 layout is
        // collision-free), and whatever decodes re-encodes to the same OID.
        let mut hits = 0;
        if let Some(t) = oid::decode_type(o) {
            hits += 1;
            prop_assert_eq!(oid::type_oid(t), o);
        }
        if let Some((l, r, op)) = oid::decode_arith(o) {
            hits += 1;
            prop_assert_eq!(oid::arith_oid(l, r, op).unwrap(), o);
        }
        if let Some((l, r, op)) = oid::decode_cmp(o) {
            hits += 1;
            prop_assert_eq!(oid::cmp_oid(l, r, op).unwrap(), o);
        }
        if let Some((c, op)) = oid::decode_agg(o) {
            hits += 1;
            prop_assert_eq!(oid::agg_oid(c, op).unwrap(), o);
        }
        if let Some(t) = oid::decode_relation(o) {
            hits += 1;
            prop_assert_eq!(oid::relation_oid(t), o);
        }
        if let Some((t, c)) = oid::decode_column(o) {
            hits += 1;
            prop_assert_eq!(oid::column_oid(t, c), o);
        }
        prop_assert!(hits <= 1, "OID {raw} decoded by {hits} slots");
    }

    #[test]
    fn commutation_and_inversion_are_involutions(raw in 3_000u64..3_864) {
        use taurus_orca::bridge::oid;
        let o = taurus_orca::common::Oid(raw);
        prop_assert!(oid::decode_cmp(o).is_some());
        let c = oid::commutator_oid(o);
        prop_assert_eq!(oid::commutator_oid(c), o);
        let i = oid::inverse_oid(o);
        prop_assert_eq!(oid::inverse_oid(i), o);
    }
}

// --------------------------------------------------------------- histograms

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_selectivities_partition(
        mut data in prop::collection::vec(-50i64..50, 1..300),
        probe in -60i64..60,
        buckets in 1usize..20,
    ) {
        data.sort_unstable();
        let values: Vec<Value> = data.iter().map(|&i| Value::Int(i)).collect();
        let h = Histogram::build(&values, buckets).unwrap();
        let probe = Value::Int(probe);
        let lt = h.selectivity(BinOp::Lt, &probe);
        let eq = h.selectivity(BinOp::Eq, &probe);
        let gt = h.selectivity(BinOp::Gt, &probe);
        for s in [lt, eq, gt] {
            prop_assert!((0.0..=1.0).contains(&s), "selectivity {s} out of range");
        }
        // <, =, > partition the non-null rows: exactly for singleton
        // histograms, approximately for equi-height (whose equality mass is
        // a bucket-NDV estimate, not an exact count).
        let slack = if h.is_singleton() { 1e-9 } else { 0.2 };
        prop_assert!(
            (lt + eq + gt - 1.0).abs() <= slack,
            "lt={} eq={} gt={} singleton={}", lt, eq, gt, h.is_singleton()
        );
    }

    #[test]
    fn histogram_lt_is_monotone(
        mut data in prop::collection::vec(-50i64..50, 2..200),
        a in -60i64..60,
        b in -60i64..60,
    ) {
        data.sort_unstable();
        let values: Vec<Value> = data.iter().map(|&i| Value::Int(i)).collect();
        let h = Histogram::build(&values, 8).unwrap();
        let (lo, hi) = (a.min(b), a.max(b));
        let s_lo = h.selectivity(BinOp::Lt, &Value::Int(lo));
        let s_hi = h.selectivity(BinOp::Lt, &Value::Int(hi));
        prop_assert!(s_lo <= s_hi + 1e-9, "Lt selectivity must be monotone: {s_lo} > {s_hi}");
    }

    #[test]
    fn string_prefix_encoding_is_monotone(a in "[ -~]{0,16}", b in "[ -~]{0,16}") {
        // The encoding is exactly the order of the zero-padded 8-byte
        // prefixes — monotone in byte order, with §7's caveat that longer
        // strings sharing an 8-byte prefix collapse.
        fn pad8(s: &str) -> [u8; 8] {
            let mut out = [0u8; 8];
            let n = s.len().min(8);
            out[..n].copy_from_slice(&s.as_bytes()[..n]);
            out
        }
        let (ea, eb) = (encode_str_prefix(&a), encode_str_prefix(&b));
        prop_assert_eq!(ea.cmp(&eb), pad8(&a).cmp(&pad8(&b)), "{:?} vs {:?}", a, b);
        if a.as_bytes() <= b.as_bytes() {
            prop_assert!(ea <= eb, "monotone: {:?} vs {:?}", a, b);
        }
    }
}

// -------------------------------------------------------------------- LIKE

/// Reference LIKE matcher: exponential backtracking, obviously correct.
fn like_reference(s: &[u8], p: &[u8]) -> bool {
    match (s.first(), p.first()) {
        (_, None) => s.is_empty(),
        (_, Some(b'%')) => like_reference(s, &p[1..]) || (!s.is_empty() && like_reference(&s[1..], p)),
        (Some(c), Some(b'_')) => {
            let _ = c;
            like_reference(&s[1..], &p[1..])
        }
        (Some(c), Some(pc)) => c == pc && like_reference(&s[1..], &p[1..]),
        (None, Some(_)) => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn like_match_agrees_with_reference(s in "[abc]{0,10}", p in "[abc%_]{0,8}") {
        prop_assert_eq!(
            like_match(s.as_bytes(), p.as_bytes()),
            like_reference(s.as_bytes(), p.as_bytes()),
            "s={:?} p={:?}", s, p
        );
    }
}

// --------------------------------------------------- end-to-end equivalence

/// Random single-block queries over the TPC-H schema: filters, a join or
/// two, optional grouping. Both optimizers must agree on the result.
#[test]
fn random_queries_agree_between_optimizers() {
    let engine = mylite::Engine::new(tpch::build_catalog(Scale(0.05)));
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let cmps = ["<", "<=", ">", ">=", "=", "<>"];
    let mut cases: Vec<String> = Vec::new();
    for i in 0..24 {
        let cmp = cmps[i % cmps.len()];
        let v = (i * 7) % 50;
        cases.push(format!(
            "SELECT COUNT(*) AS n FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND l_quantity {cmp} {v}"
        ));
        cases.push(format!(
            "SELECT o_orderpriority, COUNT(*) AS n FROM orders, customer \
             WHERE o_custkey = c_custkey AND c_acctbal {cmp} {v} \
             GROUP BY o_orderpriority ORDER BY o_orderpriority"
        ));
        cases.push(format!(
            "SELECT COUNT(*) AS n FROM part, partsupp, supplier \
             WHERE p_partkey = ps_partkey AND ps_suppkey = s_suppkey \
               AND (p_size {cmp} {v} OR s_acctbal < 0)"
        ));
    }
    for sql in cases {
        let a = engine.query(&sql).unwrap_or_else(|e| panic!("mysql failed on {sql}: {e}"));
        let b = engine
            .query_with(&sql, &orca)
            .unwrap_or_else(|e| panic!("orca failed on {sql}: {e}"));
        assert_eq!(a.rows, b.rows, "disagreement on {sql}");
    }
}
