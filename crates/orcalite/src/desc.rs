//! Logical block descriptions — Orca's input.
//!
//! The paper's parse-tree converter produces Orca logical trees in which
//! selection pushdown has already been performed and subqueries have become
//! semi-joins or derived tables (Listings 3/4). This module is the typed
//! equivalent: a flat member list with a predicate pool, dependency edges
//! and join-entry semantics. Table descriptors carry the *query-table
//! index* (`qt`) the way the paper's descriptors carry `TABLE_LIST`
//! pointers (§4.1) — they flow through optimization untouched and come back
//! out on the physical plan, which is what makes plan translation cheap and
//! reliable.

use std::collections::BTreeSet;
use taurus_catalog::estimate::ColView;
use taurus_common::{Expr, Oid};

/// One key of an order descriptor: a bare column with a direction. NULLS
/// placement follows direction (ASC ⇒ NULLS FIRST, DESC ⇒ NULLS LAST),
/// matching the host's B-tree iteration order and its shared sort
/// comparator — so an index scan, a sort enforcer, and a merge all agree
/// on what "ordered on this key" means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    /// Global query-table index owning the column.
    pub qt: usize,
    /// Column position within the table.
    pub col: usize,
    /// Descending direction (NULLS LAST); ascending (NULLS FIRST) otherwise.
    pub desc: bool,
}

/// Where a member's rows come from, as far as Orca is concerned.
#[derive(Debug, Clone, PartialEq)]
pub enum RelSource {
    /// Base relation identified by a metadata OID; everything else about it
    /// (name, cardinality, columns, indexes, histograms) comes from the
    /// metadata accessor.
    Base { oid: Oid },
    /// A derived table (subquery/CTE consumer). Opaque to the join search:
    /// the host already optimized its inner block and supplies estimates.
    /// `cols` carries per-output-column statistics propagated from the
    /// inner block (bare-column projections keep the base column's NDV,
    /// capped at the derived row count); empty means no column stats.
    Derived { rows: f64, cost: f64, width: usize, correlated: bool, cols: Vec<Option<ColView>> },
}

/// How a member joins its block (mirrors the host's prepared semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum EntryDesc {
    Inner,
    LeftOuter { on: Vec<Expr> },
    Semi { on: Vec<Expr> },
    Anti { on: Vec<Expr>, null_aware: bool },
}

impl EntryDesc {
    pub fn is_inner(&self) -> bool {
        matches!(self, EntryDesc::Inner)
    }

    pub fn on(&self) -> &[Expr] {
        match self {
            EntryDesc::Inner => &[],
            EntryDesc::LeftOuter { on } | EntryDesc::Semi { on } | EntryDesc::Anti { on, .. } => on,
        }
    }
}

/// One table in the block.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberDesc {
    /// Global query-table index (the TABLE_LIST pointer stand-in).
    pub qt: usize,
    pub source: RelSource,
    pub entry: EntryDesc,
    /// Same-block qts that must join before this member.
    pub deps: BTreeSet<usize>,
}

impl MemberDesc {
    pub fn is_dependent(&self) -> bool {
        !self.entry.is_inner() || !self.deps.is_empty()
    }

    pub fn is_correlated_derived(&self) -> bool {
        matches!(self.source, RelSource::Derived { correlated: true, .. })
    }
}

/// A prepared query block, ready for join-order optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDesc {
    /// Size of the global query-table space (for layout bookkeeping).
    pub num_tables: usize,
    pub members: Vec<MemberDesc>,
    /// WHERE-conjunct pool over global qts (selection pushdown input).
    pub predicates: Vec<Expr>,
    /// Tables outside this block usable as parameters (correlation).
    pub outer: BTreeSet<usize>,
    /// Whether the block aggregates — used by the (disabled-by-default)
    /// GbAgg-below-join rule to report a changed block structure.
    pub has_aggregation: bool,
    /// The block's *interesting order* (System R): the minimal sort key the
    /// host will enforce above this block — GROUP BY columns (ascending)
    /// for aggregating blocks, ORDER BY keys otherwise, already reduced to
    /// bare columns with duplicates and constant-equated keys dropped.
    /// Empty when the block needs no order (or the keys are not bare
    /// columns). The memo costs order-delivering alternatives against
    /// plan-plus-enforcer and keeps whichever wins; the host's refinement
    /// independently re-verifies delivery before dropping any Sort.
    pub required_order: Vec<OrderKey>,
}

impl BlockDesc {
    pub fn member_qts(&self) -> BTreeSet<usize> {
        self.members.iter().map(|m| m.qt).collect()
    }

    pub fn member_by_qt(&self, qt: usize) -> Option<&MemberDesc> {
        self.members.iter().find(|m| m.qt == qt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependency_classification() {
        let inner = MemberDesc {
            qt: 0,
            source: RelSource::Base { oid: Oid(1) },
            entry: EntryDesc::Inner,
            deps: BTreeSet::new(),
        };
        assert!(!inner.is_dependent());
        let semi = MemberDesc {
            qt: 1,
            source: RelSource::Base { oid: Oid(2) },
            entry: EntryDesc::Semi { on: vec![] },
            deps: BTreeSet::new(),
        };
        assert!(semi.is_dependent());
        let correlated = MemberDesc {
            qt: 2,
            source: RelSource::Derived {
                rows: 1.0,
                cost: 10.0,
                width: 1,
                correlated: true,
                cols: Vec::new(),
            },
            entry: EntryDesc::Inner,
            deps: BTreeSet::from([0]),
        };
        assert!(correlated.is_dependent());
        assert!(correlated.is_correlated_derived());
    }
}
