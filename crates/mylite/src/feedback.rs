//! Feedback-driven re-optimization: fold observed per-operator actuals
//! into per-statement cardinality overrides.
//!
//! After an instrumented (`EXPLAIN ANALYZE`-style) execution of a cached
//! statement, [`fold_plan`] walks the executed plan and its per-node
//! observations in lockstep and distills them into a
//! [`CardOverrides`] table keyed by query-table sets — the join-set
//! identity both optimizers reason in. The [`ObservationStore`] keeps one
//! [`FeedbackState`] per statement fingerprint; when a cached plan's
//! recorded worst q-error crosses the session threshold, the engine evicts
//! the entry and recompiles with the observations injected into the
//! optimizer's estimation path (`optimize_with_feedback`).
//!
//! ## What the fold records
//!
//! * **rel** entries at scan leaves (post-filter output of table, index
//!   and range scans), at join nodes whose subtree is still a join tree,
//!   at `Derived` nodes (the inner block's produced rows, keyed by the
//!   derived table's own qt), and at filters/materializations sitting on a
//!   join tree. The fold is pre-order and [`CardOverrides::record_rel`]
//!   keeps the first entry per key, so the *highest* (post-filter) node
//!   wins for each qt-set.
//! * **agg** entries at `Aggregate` nodes, keyed by the qt-set under the
//!   aggregate's input — the observed group count that replaces the
//!   static one-in-ten grouping guess.
//!
//! ## What the fold skips
//!
//! Nodes on the inner side of a nested-loop join run once per outer row:
//! their observed totals are sums over bindings, not whole-relation
//! cardinalities, so nothing is recorded inside such a subtree — *except*
//! under a non-rebinding `Materialize`, whose input executed exactly once
//! and is whole-relation again. `IndexLookup` leaves are inherently
//! per-probe and never recorded. Slot-space regions (above a `Project`,
//! `Aggregate` or `Union`) are not join trees; rel recording stops there,
//! which keeps HAVING filters from masquerading as join cardinalities.

use crate::explain::NodeAnnotation;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Mutex, MutexGuard};
use taurus_catalog::CardOverrides;
use taurus_executor::Plan;

/// Query tables referenced under a node, with derived tables opaque: a
/// `Derived` contributes its own qt and masks its inner block's members —
/// the same identity the optimizers key join sets by.
fn qts_under(p: &Plan, out: &mut BTreeSet<usize>) {
    match p {
        Plan::TableScan { qt, .. }
        | Plan::IndexScan { qt, .. }
        | Plan::IndexRange { qt, .. }
        | Plan::IndexLookup { qt, .. }
        | Plan::Derived { qt, .. } => {
            out.insert(*qt);
        }
        _ => {
            for c in p.children() {
                qts_under(c, out);
            }
        }
    }
}

fn qt_set(p: &Plan) -> BTreeSet<usize> {
    let mut s = BTreeSet::new();
    qts_under(p, &mut s);
    s
}

/// Whether a subtree consists purely of join-tree operators (scans,
/// derived leaves, joins, and the transparent filter/materialize/exchange
/// wrappers) — the shapes whose output rows mean "the join of exactly
/// these qts with all local predicates applied".
fn join_tree(p: &Plan) -> bool {
    match p {
        Plan::TableScan { .. }
        | Plan::IndexScan { .. }
        | Plan::IndexRange { .. }
        | Plan::IndexLookup { .. }
        | Plan::Derived { .. } => true,
        Plan::Filter { input, .. }
        | Plan::Materialize { input, .. }
        | Plan::Exchange { input, .. } => join_tree(input),
        Plan::NestedLoop { left, right, .. } | Plan::HashJoin { left, right, .. } => {
            join_tree(left) && join_tree(right)
        }
        _ => false,
    }
}

/// Number of plan nodes in pre-order — the annotation count [`fold_plan`]
/// expects for this plan (and the renderer/observer produce).
pub fn count_nodes(p: &Plan) -> usize {
    1 + p.children().iter().map(|c| count_nodes(c)).sum::<usize>()
}

/// Distill one observed execution of `plan` into cardinality overrides.
///
/// `nodes` must be the per-operator annotations of an execution of this
/// exact plan shape, in the shared pre-order (see
/// [`crate::explain::annotate`]). Never-executed operators contribute
/// nothing.
pub fn fold_plan(plan: &Plan, nodes: &[NodeAnnotation]) -> CardOverrides {
    let mut out = CardOverrides::new();
    let mut cursor = 0usize;
    fold_walk(plan, nodes, &mut cursor, false, &mut out);
    out
}

fn fold_walk(
    p: &Plan,
    nodes: &[NodeAnnotation],
    cursor: &mut usize,
    per_probe: bool,
    out: &mut CardOverrides,
) {
    let ann = nodes.get(*cursor).copied();
    *cursor += 1;
    let executed = ann.is_some_and(|a| a.loops > 0);
    if executed {
        // Inside a per-probe subtree (a rebinding nested-loop inner side)
        // totals are per-binding sums; the per-loop average is the number
        // the optimizer's estimate means there — same normalization the
        // q-error annotation applies. Pre-order or_insert semantics keep
        // whole-operator records from elsewhere winning over these.
        let actual = ann.map_or(0.0, |a| {
            if per_probe {
                a.actual_rows as f64 / a.loops as f64
            } else {
                a.actual_rows as f64
            }
        });
        match p {
            Plan::TableScan { qt, .. }
            | Plan::IndexScan { qt, .. }
            | Plan::IndexRange { qt, .. }
            | Plan::Derived { qt, .. } => out.record_rel(BTreeSet::from([*qt]), actual),
            Plan::NestedLoop { .. }
            | Plan::HashJoin { .. }
            | Plan::Filter { .. }
            | Plan::Materialize { .. }
                if join_tree(p) =>
            {
                out.record_rel(qt_set(p), actual)
            }
            Plan::Aggregate { input, .. } => out.record_agg(qt_set(input), actual),
            _ => {}
        }
    }
    match p {
        Plan::NestedLoop { left, right, .. } => {
            fold_walk(left, nodes, cursor, per_probe, out);
            // The inner side re-opens per outer row: totals there are
            // per-binding sums, not relation cardinalities.
            fold_walk(right, nodes, cursor, true, out);
        }
        Plan::Materialize { input, rebind, .. } => {
            // A non-rebinding materialization executes its input exactly
            // once regardless of how many probes read the buffer.
            let inner_probe = if *rebind { per_probe } else { false };
            fold_walk(input, nodes, cursor, inner_probe, out);
        }
        _ => {
            for c in p.children() {
                fold_walk(c, nodes, cursor, per_probe, out);
            }
        }
    }
}

/// Worst (loop-normalized) per-operator q-error of an observed execution,
/// ≥ 1; 1.0 when nothing executed.
pub fn worst_q(nodes: &[NodeAnnotation]) -> f64 {
    nodes.iter().filter_map(|n| n.q_error).fold(1.0, f64::max)
}

/// Accumulated observations for one cached statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackState {
    /// Per-union-branch overrides (branches have separate qt spaces).
    /// Fresher executions overwrite same-key entries.
    pub branches: Vec<CardOverrides>,
    /// Snapshot of `branches` at the last re-optimization. The convergence
    /// guard: a statement is never re-optimized twice on the same
    /// observations, so a re-optimized plan that yields no *new*
    /// information stops the loop no matter its residual q-error.
    applied: Option<Vec<CardOverrides>>,
    /// Worst per-operator q-error of the most recent observed execution.
    pub worst_q: f64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fingerprint-keyed store of observed executions, shared by all sessions
/// of an engine. Lock order when combined with the plan cache is always
/// *cache → feedback*; the store never calls back into the cache.
#[derive(Debug, Default)]
pub struct ObservationStore {
    inner: Mutex<HashMap<u64, FeedbackState>>,
}

impl ObservationStore {
    pub fn new() -> ObservationStore {
        ObservationStore::default()
    }

    /// Merge one observed execution into the statement's state. `folds` is
    /// one [`CardOverrides`] per planned branch; `worst_q` is the
    /// execution's worst per-operator q-error (replaces, not maxes: the
    /// state describes the *current* cached plan's latest run).
    pub fn record(&self, fingerprint: u64, folds: Vec<CardOverrides>, worst_q: f64) {
        let mut m = lock(&self.inner);
        let st = m.entry(fingerprint).or_default();
        if st.branches.len() < folds.len() {
            st.branches.resize(folds.len(), CardOverrides::new());
        }
        for (slot, newer) in st.branches.iter_mut().zip(&folds) {
            slot.merge_from(newer);
        }
        st.worst_q = worst_q;
    }

    /// Whether the statement's next cached serve should re-optimize: its
    /// last observed run was worse than `threshold` (strictly above), it
    /// has observations to inject, and those observations differ from what
    /// the current plan was already compiled with.
    pub fn should_reopt(&self, fingerprint: u64, threshold: f64) -> bool {
        match lock(&self.inner).get(&fingerprint) {
            Some(st) => {
                st.worst_q > threshold
                    && st.branches.iter().any(|b| !b.is_empty())
                    && st.applied.as_ref() != Some(&st.branches)
            }
            None => false,
        }
    }

    /// Snapshot the statement's observations for a re-optimization and
    /// mark them applied (arming the convergence guard).
    pub fn begin_reopt(&self, fingerprint: u64) -> Option<Vec<CardOverrides>> {
        let mut m = lock(&self.inner);
        let st = m.get_mut(&fingerprint)?;
        st.applied = Some(st.branches.clone());
        Some(st.branches.clone())
    }

    /// Current state for one statement (for tests and reports).
    pub fn state(&self, fingerprint: u64) -> Option<FeedbackState> {
        lock(&self.inner).get(&fingerprint).cloned()
    }

    /// Fingerprints with recorded observations, sorted (for tests and
    /// reports).
    pub fn fingerprints(&self) -> Vec<u64> {
        let mut v: Vec<u64> = lock(&self.inner).keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of statements with recorded observations.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Forget everything (e.g. after ANALYZE changes the data).
    pub fn clear(&self) {
        lock(&self.inner).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_executor::{Est, JoinKind, Plan};

    fn set(qts: &[usize]) -> BTreeSet<usize> {
        qts.iter().copied().collect()
    }

    fn scan(qt: usize) -> Plan {
        Plan::TableScan {
            table: taurus_common::TableId(qt as u32),
            qt,
            width: 1,
            filter: vec![],
            est: Est::default(),
        }
    }

    fn ann(rows: u64, loops: u64) -> NodeAnnotation {
        NodeAnnotation {
            est_rows: 1.0,
            actual_rows: rows,
            loops,
            q_error: (loops > 0).then_some(1.0),
        }
    }

    #[test]
    fn fold_records_scans_joins_and_aggregates() {
        // Aggregate(HashJoin(scan0, scan1))
        let plan = Plan::Aggregate {
            input: Box::new(Plan::HashJoin {
                kind: JoinKind::Inner,
                build_left: false,
                left: Box::new(scan(0)),
                right: Box::new(scan(1)),
                keys: vec![],
                residual: vec![],
                null_aware: false,
                est: Est::default(),
            }),
            group_by: vec![taurus_common::Expr::col(0, 0)],
            aggs: vec![],
            strategy: taurus_executor::AggStrategy::Hash,
            est: Est::default(),
        };
        let nodes = [ann(7, 1), ann(50, 1), ann(10, 1), ann(20, 1)];
        let o = fold_plan(&plan, &nodes);
        assert_eq!(o.agg(&set(&[0, 1])), Some(7.0));
        assert_eq!(o.rel(&set(&[0, 1])), Some(50.0));
        assert_eq!(o.rel_singleton(0), Some(10.0));
        assert_eq!(o.rel_singleton(1), Some(20.0));
    }

    #[test]
    fn nlj_materialized_inner_side_attributes_to_the_single_execution() {
        // NLJ(scan0, Materialize{rebind:false}(scan1)): the materialize
        // node's totals are per-probe, its input's are whole-relation.
        let plan = Plan::NestedLoop {
            kind: JoinKind::Inner,
            left: Box::new(scan(0)),
            right: Box::new(Plan::Materialize {
                input: Box::new(scan(1)),
                rebind: false,
                cache_slot: 0,
                est: Est::default(),
            }),
            on: vec![],
            null_aware: false,
            est: Est::default(),
        };
        // join out 30; scan0 10 rows; materialize served 10 probes × 3
        // rows = 30 total; the inner scan ran once producing 3.
        let nodes = [ann(30, 1), ann(10, 1), ann(30, 10), ann(3, 1)];
        let o = fold_plan(&plan, &nodes);
        assert_eq!(o.rel(&set(&[0, 1])), Some(30.0), "join output recorded");
        assert_eq!(o.rel_singleton(0), Some(10.0));
        assert_eq!(o.rel_singleton(1), Some(3.0), "the once-executed input, not the probe sums");
    }

    #[test]
    fn rebinding_materialize_records_the_per_probe_average() {
        let plan = Plan::NestedLoop {
            kind: JoinKind::Inner,
            left: Box::new(scan(0)),
            right: Box::new(Plan::Materialize {
                input: Box::new(scan(1)),
                rebind: true,
                cache_slot: 0,
                est: Est::default(),
            }),
            on: vec![],
            null_aware: false,
            est: Est::default(),
        };
        // The correlated inner side re-executed per probe: 10 probes
        // produced 30 rows total, so the observed cardinality — matching
        // what a per-probe estimate means — is the average, 3 rows.
        let nodes = [ann(30, 1), ann(10, 1), ann(30, 10), ann(30, 10)];
        let o = fold_plan(&plan, &nodes);
        assert_eq!(o.rel_singleton(1), Some(3.0), "per-loop average, not the probe sum");
    }

    #[test]
    fn post_filter_ancestor_wins_over_the_leaf() {
        // Filter({0}) over Materialize over Derived{0}: pre-order records
        // the post-filter count first; the leaf's pre-filter count loses.
        let derived = Plan::Derived {
            input: Box::new(scan(1)),
            qt: 0,
            width: 1,
            name: "d".into(),
            est: Est::default(),
        };
        let plan = Plan::Filter {
            input: Box::new(Plan::Materialize {
                input: Box::new(derived),
                rebind: false,
                cache_slot: 0,
                est: Est::default(),
            }),
            predicate: vec![],
            est: Est::default(),
        };
        let nodes = [ann(4, 1), ann(100, 1), ann(100, 1), ann(100, 1)];
        let o = fold_plan(&plan, &nodes);
        assert_eq!(o.rel_singleton(0), Some(4.0), "post-filter rows win");
    }

    #[test]
    fn never_executed_nodes_record_nothing() {
        let plan = scan(0);
        let o = fold_plan(&plan, &[ann(0, 0)]);
        assert!(o.is_empty());
        // A fold with no annotations at all is also empty.
        assert!(fold_plan(&plan, &[]).is_empty());
    }

    #[test]
    fn store_reopt_trigger_and_convergence_guard() {
        let store = ObservationStore::new();
        let mut o = CardOverrides::new();
        o.record_rel(set(&[0]), 42.0);
        store.record(7, vec![o.clone()], 300.0);
        assert!(store.should_reopt(7, 10.0), "worst q 300 over threshold 10");
        assert!(!store.should_reopt(7, 300.0), "threshold is strictly below");
        assert!(!store.should_reopt(8, 10.0), "unknown fingerprint");
        // Applying the observations arms the guard …
        let snap = store.begin_reopt(7).unwrap();
        assert_eq!(snap.len(), 1);
        assert!(!store.should_reopt(7, 10.0), "same observations never re-applied");
        // … and a genuinely new observation re-arms the trigger.
        let mut o2 = CardOverrides::new();
        o2.record_rel(set(&[0, 1]), 9000.0);
        store.record(7, vec![o2], 50.0);
        assert!(store.should_reopt(7, 10.0));
        // A follow-up run that adds nothing new keeps the guard closed.
        store.begin_reopt(7).unwrap();
        store.record(7, vec![CardOverrides::new()], 50.0);
        assert!(!store.should_reopt(7, 10.0));
    }

    #[test]
    fn record_replaces_worst_q_and_merges_branches() {
        let store = ObservationStore::new();
        let mut o = CardOverrides::new();
        o.record_rel(set(&[0]), 10.0);
        store.record(1, vec![o], 100.0);
        let mut o2 = CardOverrides::new();
        o2.record_rel(set(&[0]), 12.0);
        o2.record_rel(set(&[1]), 5.0);
        store.record(1, vec![o2], 2.0);
        let st = store.state(1).unwrap();
        assert_eq!(st.worst_q, 2.0, "latest run's worst q, not the max");
        assert_eq!(st.branches[0].rel_singleton(0), Some(12.0), "fresher value wins");
        assert_eq!(st.branches[0].rel_singleton(1), Some(5.0));
    }
}
