//! Plan-cache regression tests for typed bind parameters: literal type
//! classes are part of a statement's fingerprint, so differently-typed
//! literals must compile (and cache) separately — never share a plan whose
//! peeked constants have another type — and each shape must keep answering
//! correctly after the other has been cached.

use mylite::{Engine, MySqlOptimizer};
use taurus_catalog::Catalog;
use taurus_common::{Column, DataType, Schema, Value};

fn engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "m",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::nullable("score", DataType::Double),
                Column::nullable("tag", DataType::Str),
            ]),
        )
        .unwrap();
    cat.insert(
        t,
        vec![
            vec![Value::Int(1), Value::Double(1.5), Value::str("a")],
            vec![Value::Int(2), Value::Double(2.0), Value::str("b")],
            vec![Value::Int(3), Value::Null, Value::Null],
            vec![Value::Int(4), Value::Double(4.5), Value::str("a")],
        ],
    )
    .unwrap();
    cat.create_index(t, "m_pk", vec![0], true).unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

fn ids(e: &Engine, sql: &str) -> Vec<i64> {
    e.query_cached(sql, &MySqlOptimizer)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect()
}

#[test]
fn int_and_double_literals_compile_separately() {
    let e = engine();
    // Same text shape up to the literal, different literal type class:
    // these must be two cache entries, not one rebound entry.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 2 ORDER BY id"), vec![4]);
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 1.9 ORDER BY id"), vec![2, 4]);
    assert_eq!(e.plan_cache_len(), 2, "Int and Double shapes are distinct");
    let s = e.plan_cache_stats();
    assert_eq!((s.hits, s.misses), (0, 2));
    // Re-serving each shape hits its own entry and still rebinds correctly.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 4 ORDER BY id"), vec![4]);
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 0.5 ORDER BY id"), vec![1, 2, 4]);
    assert_eq!(e.plan_cache_len(), 2);
    assert_eq!(e.plan_cache_stats().hits, 2);
}

#[test]
fn string_literal_shape_is_distinct_from_numeric() {
    let e = engine();
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 'a' ORDER BY id"), vec![1, 4]);
    // An Int literal in the same position: different fingerprint, fresh
    // compile; the comparison is UNKNOWN for every row (Str vs Int).
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 7 ORDER BY id"), Vec::<i64>::new());
    assert_eq!(e.plan_cache_len(), 2, "Str and Int shapes are distinct");
    // And the string shape still serves correct answers afterwards.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 'b' ORDER BY id"), vec![2]);
    assert_eq!(e.plan_cache_stats().hits, 1);
}

#[test]
fn rebound_results_match_cold_compiles() {
    // The fresh-vs-rebound oracle, distilled: for every literal variant,
    // the cache-served result must equal a from-scratch compile.
    let e = engine();
    let variants = [
        "SELECT id, score FROM m WHERE score > 1.0 ORDER BY id",
        "SELECT id, score FROM m WHERE score > 1.6 ORDER BY id",
        "SELECT id, score FROM m WHERE score > 4.4 ORDER BY id",
    ];
    for sql in variants {
        let warm = e.query_cached(sql, &MySqlOptimizer).unwrap();
        let cold = e.query(sql).unwrap();
        assert_eq!(warm.rows, cold.rows, "rebound plan diverged for: {sql}");
    }
    let s = e.plan_cache_stats();
    assert_eq!((s.hits, s.misses), (2, 1), "one shape, two rebound serves");
}
