//! Plan-cache regression tests for typed bind parameters: literal type
//! classes are part of a statement's fingerprint, so differently-typed
//! literals must compile (and cache) separately — never share a plan whose
//! peeked constants have another type — and each shape must keep answering
//! correctly after the other has been cached.
//!
//! Plus the eviction/concurrency audit from the feedback loop: a
//! re-optimizing eviction racing in-flight serves of the same statement
//! must neither corrupt a serve nor let a straggling static compile
//! clobber (and thereby pin) the re-optimized entry.

use mylite::feedback::worst_q;
use mylite::{Engine, MySqlOptimizer};
use taurus_catalog::Catalog;
use taurus_common::{Column, DataType, Schema, Value};

fn engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "m",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::nullable("score", DataType::Double),
                Column::nullable("tag", DataType::Str),
            ]),
        )
        .unwrap();
    cat.insert(
        t,
        vec![
            vec![Value::Int(1), Value::Double(1.5), Value::str("a")],
            vec![Value::Int(2), Value::Double(2.0), Value::str("b")],
            vec![Value::Int(3), Value::Null, Value::Null],
            vec![Value::Int(4), Value::Double(4.5), Value::str("a")],
        ],
    )
    .unwrap();
    cat.create_index(t, "m_pk", vec![0], true).unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

fn ids(e: &Engine, sql: &str) -> Vec<i64> {
    e.query_cached(sql, &MySqlOptimizer)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect()
}

#[test]
fn int_and_double_literals_compile_separately() {
    let e = engine();
    // Same text shape up to the literal, different literal type class:
    // these must be two cache entries, not one rebound entry.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 2 ORDER BY id"), vec![4]);
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 1.9 ORDER BY id"), vec![2, 4]);
    assert_eq!(e.plan_cache_len(), 2, "Int and Double shapes are distinct");
    let s = e.plan_cache_stats();
    assert_eq!((s.hits, s.misses), (0, 2));
    // Re-serving each shape hits its own entry and still rebinds correctly.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 4 ORDER BY id"), vec![4]);
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 0.5 ORDER BY id"), vec![1, 2, 4]);
    assert_eq!(e.plan_cache_len(), 2);
    assert_eq!(e.plan_cache_stats().hits, 2);
}

#[test]
fn string_literal_shape_is_distinct_from_numeric() {
    let e = engine();
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 'a' ORDER BY id"), vec![1, 4]);
    // An Int literal in the same position: different fingerprint, fresh
    // compile; the comparison is UNKNOWN for every row (Str vs Int).
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 7 ORDER BY id"), Vec::<i64>::new());
    assert_eq!(e.plan_cache_len(), 2, "Str and Int shapes are distinct");
    // And the string shape still serves correct answers afterwards.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 'b' ORDER BY id"), vec![2]);
    assert_eq!(e.plan_cache_stats().hits, 1);
}

#[test]
fn rebound_results_match_cold_compiles() {
    // The fresh-vs-rebound oracle, distilled: for every literal variant,
    // the cache-served result must equal a from-scratch compile.
    let e = engine();
    let variants = [
        "SELECT id, score FROM m WHERE score > 1.0 ORDER BY id",
        "SELECT id, score FROM m WHERE score > 1.6 ORDER BY id",
        "SELECT id, score FROM m WHERE score > 4.4 ORDER BY id",
    ];
    for sql in variants {
        let warm = e.query_cached(sql, &MySqlOptimizer).unwrap();
        let cold = e.query(sql).unwrap();
        assert_eq!(warm.rows, cold.rows, "rebound plan diverged for: {sql}");
    }
    let s = e.plan_cache_stats();
    assert_eq!((s.hits, s.misses), (2, 1), "one shape, two rebound serves");
}

// ---------------------------------------------- reopt eviction vs serves

/// Four perfectly-correlated columns: the static estimate for the
/// four-way conjunction is low by 7³, so the first observed execution
/// pushes the statement far over the default re-optimization threshold.
fn correlated_engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "f",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
                Column::new("c", DataType::Int),
                Column::new("d", DataType::Int),
            ]),
        )
        .unwrap();
    cat.insert(
        t,
        (0..3430i64).map(|i| {
            let v = Value::Int(i % 7);
            vec![v.clone(), v.clone(), v.clone(), v]
        }),
    )
    .unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

/// The audited race: the miss path compiles *after* releasing the cache
/// lock, so a static compile that started before a concurrent serve
/// re-optimized the statement can try to insert afterwards. If it were
/// allowed to overwrite, the misestimated plan would come back — and stay,
/// because the feedback store's applied-observations snapshot suppresses a
/// second re-optimization on the same observations. Hammer both serve
/// paths from several threads and then require that the surviving cache
/// entry is the re-optimized one.
#[test]
fn reopt_eviction_racing_concurrent_serves_keeps_the_reoptimized_plan() {
    let e = correlated_engine();
    let sql = "SELECT COUNT(*) FROM f WHERE a = 3 AND b = 3 AND c = 3 AND d = 3";
    let want = vec![vec![Value::Int(490)]];

    std::thread::scope(|s| {
        for t in 0..4usize {
            let (e, want) = (&e, &want);
            s.spawn(move || {
                for i in 0..12usize {
                    // Alternate the instrumented path (folds observations,
                    // can re-optimize) with the plain cached path (static
                    // compiles on a miss — the clobber candidate).
                    if (t + i) % 2 == 0 {
                        let out = e.query_cached(sql, &MySqlOptimizer).unwrap();
                        assert_eq!(&out.rows, want, "cached serve corrupted mid-race");
                    } else {
                        let (a, _) = e.analyze_cached(sql, &MySqlOptimizer).unwrap();
                        assert_eq!(&a.output.rows, want, "instrumented serve corrupted mid-race");
                    }
                }
            });
        }
    });

    assert!(
        e.plan_cache_stats().reoptimizations >= 1,
        "the hammer never crossed the re-optimization threshold"
    );
    // The dust settles onto a converged hit within a serve or two (a last
    // straggler fold may legitimately trigger one more re-optimization).
    let mut settled = None;
    for _ in 0..3 {
        let (a, o) = e.analyze_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(&a.output.rows, &want);
        if o.label() == "hit" {
            settled = Some(a);
            break;
        }
    }
    let a = settled.expect("cache never settled to a hit after the hammer");
    let q = worst_q(&a.nodes);
    assert!(q <= 2.0, "a static compile clobbered the re-optimized entry (worst q {q:.1})");
    assert_eq!(e.plan_cache_len(), 1);
}

// ----------------------------------------------------- governed batch path

/// 4096 rows: enough for several full 1K-row batches, so the columnar
/// path allocates (and must charge) real batch buffers.
fn batch_engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "big",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("amt", DataType::Double),
            ]),
        )
        .unwrap();
    cat.insert(
        t,
        (0..4096i64)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Double((i % 100) as f64 / 2.0)]),
    )
    .unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

const BATCH_SQL: &str = "SELECT id, grp, amt FROM big WHERE amt > 10.0";

#[test]
fn batch_buffers_are_charged_to_the_governor() {
    let e = batch_engine();
    e.set_vectorized(false);
    let row_out = e.query(BATCH_SQL).unwrap();
    let row_peak = e.last_peak_bytes();
    e.set_vectorized(true);
    let batch_out = e.query(BATCH_SQL).unwrap();
    let batch_peak = e.last_peak_bytes();
    assert_eq!(row_out.rows, batch_out.rows, "knob changed the answer");
    // The batch path's column vectors are real allocations the governor
    // must see — an uncharged batch buffer would let a vectorized query
    // blow straight through a memory budget the row path respects.
    assert!(batch_peak > 0, "batch buffers left no trace in the governor");
    assert!(
        batch_peak > row_peak,
        "batch peak {batch_peak} not above row peak {row_peak}: buffers uncharged?"
    );
}

#[test]
fn cancellation_lands_at_batch_boundaries() {
    let e = batch_engine();
    e.set_vectorized(true);
    // The batch path polls the governor at every chunk flush, so an early
    // cancel point must surface as a clean Cancelled error, not a hang or
    // a partial answer.
    e.set_cancel_after(Some(2));
    match e.query(BATCH_SQL) {
        Err(taurus_common::error::Error::Cancelled) => {}
        other => panic!("expected Cancelled from the batch path, got {other:?}"),
    }
    // Recovery: the engine answers the same statement correctly right after.
    e.set_cancel_after(None);
    let after = e.query(BATCH_SQL).unwrap();
    e.set_vectorized(false);
    let reference = e.query(BATCH_SQL).unwrap();
    assert_eq!(reference.rows, after.rows, "post-cancel serve diverged");
}

#[test]
fn memory_exceeded_on_batch_degrades_to_serial_row() {
    let e = batch_engine();
    // Measure both engines unbudgeted to place the budget between them.
    e.set_vectorized(false);
    let reference = e.query(BATCH_SQL).unwrap();
    let row_peak = e.last_peak_bytes();
    e.set_vectorized(true);
    e.query(BATCH_SQL).unwrap();
    let batch_peak = e.last_peak_bytes();
    assert!(
        batch_peak > row_peak + 4096,
        "peaks too close to separate ({row_peak} vs {batch_peak}); grow the table"
    );
    // A budget the row engine fits under but the batch engine cannot: the
    // first (vectorized) attempt must trip MemoryExceeded and the
    // degradation rung must rerun it as serial row — same bytes, and a
    // recorded peak that proves the batch path did not produce the answer.
    let budget = (row_peak + batch_peak) / 2;
    e.set_memory_budget(Some(budget));
    let rescued = e.query(BATCH_SQL).expect("degradation rung failed to rescue");
    assert_eq!(reference.rows, rescued.rows, "degraded serve changed the answer");
    assert!(
        e.last_peak_bytes() <= budget,
        "rescue peak {} exceeds the budget {budget}: still on the batch path?",
        e.last_peak_bytes()
    );
    e.set_memory_budget(None);
}
