//! The feedback loop's pinned bad actor, and the knob/attribution
//! guarantees around it.
//!
//! The golden construction: four perfectly-correlated columns with seven
//! distinct values each. Independence multiplies the per-column equality
//! selectivities, so the static estimate is low by a factor of 7³ = 343 —
//! the magnitude of the worst grouped-aggregate offender the observe
//! report surfaced before the loop existed. One observed execution and one
//! feedback-driven re-optimization must collapse that to ~1.

use mylite::feedback::worst_q;
use mylite::{Engine, MySqlOptimizer};
use taurus_catalog::Catalog;
use taurus_common::{Column, DataType, Schema, Value};

/// 3430 rows where a = b = c = d = i mod 7: each column's equality
/// selectivity is exactly 1/7, but the conjunction passes 490 rows, not
/// 3430/7⁴ ≈ 1.43.
fn engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "f",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
                Column::new("c", DataType::Int),
                Column::new("d", DataType::Int),
            ]),
        )
        .unwrap();
    cat.insert(
        t,
        (0..3430i64).map(|i| {
            let v = Value::Int(i % 7);
            vec![v.clone(), v.clone(), v.clone(), v]
        }),
    )
    .unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

const SQL: &str = "SELECT COUNT(*) FROM f WHERE a = 3 AND b = 3 AND c = 3 AND d = 3";

#[test]
fn pinned_340x_bad_actor_converges_in_one_reoptimization() {
    let e = engine();
    assert_eq!(e.reopt_q_threshold(), Some(10.0), "feedback loop is on by default");

    let (first, o1) = e.analyze_cached(SQL, &MySqlOptimizer).unwrap();
    assert_eq!(o1.label(), "miss");
    let q1 = worst_q(&first.nodes);
    assert!(
        (300.0..400.0).contains(&q1),
        "correlated conjunction must misestimate ~343x, got {q1:.1}"
    );

    let (second, o2) = e.analyze_cached(SQL, &MySqlOptimizer).unwrap();
    assert_eq!(o2.label(), "reoptimized");
    let q2 = worst_q(&second.nodes);
    assert!(q2 <= 2.0, "re-optimized plan must converge to ~1, got {q2:.2}");
    assert_eq!(first.output.rows, second.output.rows, "re-optimization must not change results");

    // Convergence guarantee: the same observations never re-apply.
    let (third, o3) = e.analyze_cached(SQL, &MySqlOptimizer).unwrap();
    assert_eq!(o3.label(), "hit");
    assert!(worst_q(&third.nodes) <= 2.0);
    assert_eq!(first.output.rows, third.output.rows);
    assert_eq!(e.plan_cache_stats().reoptimizations, 1);
}

#[test]
fn feedback_off_keeps_serving_the_static_plan() {
    let e = engine();
    e.set_reopt_q_threshold(None);
    let (_, o1) = e.analyze_cached(SQL, &MySqlOptimizer).unwrap();
    assert_eq!(o1.label(), "miss");
    for _ in 0..2 {
        let (a, o) = e.analyze_cached(SQL, &MySqlOptimizer).unwrap();
        assert_eq!(o.label(), "hit", "with the loop off a bad plan keeps serving");
        assert!(worst_q(&a.nodes) > 300.0, "still the misestimated static plan");
    }
    assert_eq!(e.plan_cache_stats().reoptimizations, 0);
}

#[test]
fn threshold_is_strictly_above() {
    let e = engine();
    let (first, _) = e.analyze_cached(SQL, &MySqlOptimizer).unwrap();
    let q1 = worst_q(&first.nodes);
    // A threshold exactly at the observed worst q-error must not trigger.
    e.set_reopt_q_threshold(Some(q1));
    let (_, o2) = e.analyze_cached(SQL, &MySqlOptimizer).unwrap();
    assert_eq!(o2.label(), "hit");
    // Nudging it below does.
    e.set_reopt_q_threshold(Some(q1 * 0.99));
    let (_, o3) = e.analyze_cached(SQL, &MySqlOptimizer).unwrap();
    assert_eq!(o3.label(), "reoptimized");
}

/// Parallel execution (dop 4 and 8) must fold the same observed
/// cardinalities as serial execution: loop-count normalization makes the
/// per-operator attribution invariant to morsel multiplicity.
#[test]
fn parallel_folds_match_serial_attribution() {
    let serial = engine();
    let (_, _) = serial.analyze_cached(SQL, &MySqlOptimizer).unwrap();
    let fps = serial.feedback().fingerprints();
    assert_eq!(fps.len(), 1);
    let want = serial.feedback().state(fps[0]).unwrap();

    for dop in [4usize, 8] {
        let par = engine();
        par.set_parallel_threshold(1);
        par.set_morsel_rows(64);
        par.set_dop(dop);
        let (_, _) = par.analyze_cached(SQL, &MySqlOptimizer).unwrap();
        let got = par.feedback().state(fps[0]).expect("same fingerprint as serial");
        assert_eq!(got.branches, want.branches, "dop {dop} attribution diverged from serial");
        assert_eq!(got.worst_q, want.worst_q, "dop {dop} worst q-error diverged");
    }
}
