//! Tier-1 integration: the compile-once, serve-many plan cache end to end.
//!
//! Exercises the statement lifecycle on real TPC-H data — token-digest
//! fingerprint → cache lookup → catalog-version validation → in-place
//! rebind → execution — and pins the bind-order contract between the
//! token digest and AST parameterization over every workload query.

use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::common::Value;
use taurus_orca::mylite::{CacheOutcome, Engine, MySqlOptimizer};
use taurus_orca::orcalite::OrcaConfig;
use taurus_orca::sql::fingerprint::{parameterize, token_digest};
use taurus_orca::sql::{parse, Statement};
use taurus_orca::workloads::{tpcds, tpch, Scale};

/// Canonicalize result rows for comparison across plan shapes.
fn canon(rows: Vec<Vec<Value>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|r| {
            r.into_iter()
                .map(|v| match v {
                    Value::Double(d) => format!("D{:.4}", d),
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

#[test]
fn repeated_statements_hit_and_rebind_on_real_data() {
    let engine = Engine::new(tpch::build_catalog(Scale(0.05)));
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 3);
    let template = |seg: &str| {
        format!(
            "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = '{seg}' AND c_custkey = o_custkey \
               AND l_orderkey = o_orderkey \
             GROUP BY l_orderkey ORDER BY revenue DESC LIMIT 5"
        )
    };
    // First instantiation compiles; the shape enters the cache.
    let (_, first) = engine.plan_cached(&template("BUILDING"), &orca).unwrap();
    assert_eq!(first, CacheOutcome::Miss);
    // Later instantiations are served from the cached plan with the new
    // literal re-bound in place — and must return exactly what a fresh
    // compile of the same text returns.
    for seg in ["AUTOMOBILE", "MACHINERY", "HOUSEHOLD"] {
        let cached = engine.query_cached(&template(seg), &orca).unwrap();
        let fresh = engine.query_with(&template(seg), &orca).unwrap();
        assert_eq!(
            canon(cached.rows),
            canon(fresh.rows),
            "cached plan re-bound to '{seg}' diverged from a fresh compile"
        );
    }
    let stats = engine.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses), (3, 1));
}

#[test]
fn dop_change_recompiles_instead_of_serving_a_parallel_plan() {
    // A cached plan embeds its exchange placement: a plan compiled at
    // dop=4 carries Exchange operators a serial session must never
    // execute. Changing the knob has to force a recompile, end to end.
    let engine = Engine::new(tpch::build_catalog(Scale(0.05)));
    engine.set_parallel_threshold(8);
    engine.set_dop(4);
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let sql = "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag";

    let (_, first) = engine.plan_cached(sql, &orca).unwrap();
    assert_eq!(first, CacheOutcome::Miss);
    let parallel_text = engine.explain_cached(sql, &orca).unwrap();
    assert!(parallel_text.contains("[plan cache: hit]"), "{parallel_text}");
    assert!(parallel_text.contains("Exchange ("), "dop=4 plan is parallel: {parallel_text}");
    let parallel_rows = canon(engine.query_cached(sql, &orca).unwrap().rows);

    // The knob change must drop the parallel plan; the next serve
    // recompiles under the new setting rather than serving dop=4 shapes.
    engine.set_dop(1);
    let (_, after) = engine.plan_cached(sql, &orca).unwrap();
    assert_eq!(after, CacheOutcome::Miss, "dop change dropped the parallel plan");
    let serial_text = engine.explain_cached(sql, &orca).unwrap();
    assert!(serial_text.contains("[plan cache: hit]"), "{serial_text}");
    assert!(!serial_text.contains("Exchange ("), "recompiled serial: {serial_text}");
    assert_eq!(canon(engine.query_cached(sql, &orca).unwrap().rows), parallel_rows);
}

#[test]
fn ddl_invalidates_across_the_engine() {
    let mut engine = Engine::new(tpch::build_catalog(Scale(0.02)));
    let sql = "SELECT o_orderdate FROM orders WHERE o_orderkey = 42";
    let (_, a) = engine.plan_cached(sql, &MySqlOptimizer).unwrap();
    assert_eq!(a, CacheOutcome::Miss);
    let (_, b) = engine.plan_cached(sql, &MySqlOptimizer).unwrap();
    assert_eq!(b, CacheOutcome::Hit);
    // ANALYZE publishes new statistics, bumping the catalog version: the
    // cached plan was costed against stale stats and must not survive.
    engine.analyze();
    let (_, c) = engine.plan_cached(sql, &MySqlOptimizer).unwrap();
    assert_eq!(c, CacheOutcome::Invalidated);
    let (_, d) = engine.plan_cached(sql, &MySqlOptimizer).unwrap();
    assert_eq!(d, CacheOutcome::Hit);
}

#[test]
fn deadline_on_a_cached_serve_keeps_the_entry_intact() {
    // A wall-clock budget must govern cached serves exactly like fresh
    // compiles — and a serve that dies on its deadline must leave the
    // cached plan ready for the next caller, not evicted or corrupted.
    let engine = Engine::new(tpch::build_catalog(Scale(0.05)));
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 3);
    // Correlated subquery: the inner block reopens per outer row, so the
    // governor observes the clock throughout the scan — a 1ms budget trips
    // deterministically on a multi-millisecond statement.
    let sql = "SELECT COUNT(*) AS n FROM lineitem \
               WHERE l_orderkey < 6000 AND l_quantity < \
               (SELECT AVG(l_quantity) FROM lineitem l2 \
                WHERE l2.l_partkey = lineitem.l_partkey)";
    let reference = canon(engine.query_cached(sql, &orca).expect("warming compile").rows);

    engine.set_deadline(Some(std::time::Duration::from_millis(1)));
    let err = engine.query_cached(sql, &orca).expect_err("1ms must not suffice");
    assert!(
        matches!(err, taurus_orca::common::Error::DeadlineExceeded { budget_ms: 1 }),
        "typed deadline error on the cached path, got: {err}"
    );

    // The entry survived: the next serve is a hit and answers identically.
    engine.set_deadline(None);
    assert_eq!(canon(engine.query_cached(sql, &orca).expect("after deadline").rows), reference);
    let stats = engine.plan_cache_stats();
    assert_eq!(stats.misses, 1, "the deadline death must not evict the entry: {stats:?}");
    assert_eq!(stats.hits, 2, "both later serves were cache hits: {stats:?}");
}

#[test]
fn memory_budget_on_a_cached_serve_keeps_the_entry_intact() {
    let engine = Engine::new(tpch::build_catalog(Scale(0.05)));
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 3);
    // The sort buffer is charged against the session budget, so a one-byte
    // budget fails the serve even after the engine's serial retry rung.
    let sql = "SELECT l_orderkey, l_extendedprice FROM lineitem \
               WHERE l_quantity < 10 ORDER BY l_extendedprice DESC";
    let reference = canon(engine.query_cached(sql, &orca).expect("warming compile").rows);

    engine.set_memory_budget(Some(1));
    let err = engine.query_cached(sql, &orca).expect_err("one byte must not suffice");
    assert!(
        matches!(err, taurus_orca::common::Error::MemoryExceeded { budget: 1, .. }),
        "typed memory error on the cached path, got: {err}"
    );
    let peak = engine.last_peak_bytes();
    assert!(peak <= 1, "tracked peak stayed within the budget: {peak}");

    // Over-budget serves must not evict or corrupt the cached plan.
    engine.set_memory_budget(None);
    assert_eq!(canon(engine.query_cached(sql, &orca).expect("after budget").rows), reference);
    let stats = engine.plan_cache_stats();
    assert_eq!(stats.misses, 1, "the budget death must not evict the entry: {stats:?}");
    assert_eq!(stats.hits, 2, "{stats:?}");
}

#[test]
fn digest_binds_agree_with_ast_parameterization_across_suites() {
    // The serve path rebinds cached plans using token-order binds while
    // parameter numbering happens in AST order; they must agree for every
    // statement shape we ship. (The engine also verifies this per shape at
    // insert time and declines to cache on divergence — this test makes
    // sure that safety valve never actually fires for the workloads.)
    for q in tpch::queries().into_iter().chain(tpcds::queries()) {
        let d = token_digest(&q.sql).unwrap_or_else(|| panic!("{} does not lex", q.name));
        let stmt = match parse(&q.sql).unwrap() {
            Statement::Select(s) => s,
            _ => continue,
        };
        let p = parameterize(&stmt);
        assert_eq!(
            d.binds, p.binds,
            "{}: token-order binds diverge from AST parameter order",
            q.name
        );
    }
}
