//! The session facade: parse → resolve/prepare → optimize → refine →
//! execute, with a pluggable cost-based-optimizer backend.
//!
//! The backend hook is the integration point of the whole paper: the bridge
//! crate implements [`CostBasedOptimizer`] with the Orca detour (convert →
//! optimize in Orca → convert back to a skeleton), and everything else —
//! parsing, preparation, refinement, execution — is shared, exactly as in
//! Fig 3.

use crate::bound::BoundStatement;
use crate::explain::{annotate, explain_plan, explain_plan_analyzed, NodeAnnotation};
use crate::optimizer::optimize_statement;
use crate::plancache::{CacheOutcome, CachedPlan, PlanCache, PlanCacheStats};
use crate::refine::refine_statement_parallel;
use crate::resolve::resolve_union_branches;
use crate::skeleton::Skeleton;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use taurus_catalog::stats::AnalyzeOptions;
use taurus_catalog::Catalog;
use taurus_common::error::{Error, Result};
use taurus_common::expr::EvalCtx;
use taurus_common::{Layout, Row, Value};
use taurus_executor::{
    execute, ExecContext, ObserverIndex, ParallelOpts, Plan, DEFAULT_MORSEL_ROWS,
};
use taurus_sql::fingerprint::{parameterize, token_digest};
use taurus_sql::rewrite::rewrite_set_ops;
use taurus_sql::{parse, SelectStmt, Statement};

/// A pluggable cost-based optimizer (the orange box in paper Fig 2).
pub trait CostBasedOptimizer {
    /// Short name for EXPLAIN banners and logs.
    fn name(&self) -> &'static str;
    /// Produce a skeleton plan for a prepared statement.
    fn optimize(&self, catalog: &Catalog, bound: &BoundStatement) -> Result<Skeleton>;
}

/// MySQL's native greedy optimizer.
#[derive(Debug, Default, Clone, Copy)]
pub struct MySqlOptimizer;

impl CostBasedOptimizer for MySqlOptimizer {
    fn name(&self) -> &'static str {
        "mysql"
    }

    fn optimize(&self, catalog: &Catalog, bound: &BoundStatement) -> Result<Skeleton> {
        optimize_statement(catalog, bound)
    }
}

/// One fully planned union branch.
#[derive(Debug, Clone)]
pub struct PlannedBranch {
    pub bound: BoundStatement,
    pub skeleton: Skeleton,
    pub plan: Plan,
    /// UNION ALL with respect to the previous branch.
    pub all: bool,
}

/// A fully planned statement (one or more union branches).
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    pub branches: Vec<PlannedBranch>,
    pub columns: Vec<String>,
}

impl PlannedQuery {
    /// The primary branch (non-union statements have exactly one).
    pub fn primary(&self) -> &PlannedBranch {
        &self.branches[0]
    }
}

/// Query results plus the executor's work-unit accounting.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// Machine-independent work measure (see `ExecStats::work_units`).
    pub work_units: u64,
    /// Work on the critical path: parallel fragments count only their
    /// slowest worker, so `work_units / critical_work_units` is the
    /// machine-independent parallel speedup.
    pub critical_work_units: u64,
}

/// What `EXPLAIN ANALYZE` returns: the query's results (so callers can
/// verify instrumentation didn't perturb them), the annotated plan text,
/// and the raw per-operator annotations for programmatic q-error checks
/// (pre-order per branch, branches concatenated).
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    pub output: QueryOutput,
    pub text: String,
    pub nodes: Vec<NodeAnnotation>,
}

/// Lock a mutex, recovering the data if a previous holder panicked — the
/// plan cache and the dop knobs hold only plain data, so a poisoned guard
/// is still structurally sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The engine: a catalog plus the machinery to run SQL against it.
///
/// `Engine` is `Send + Sync`: the plan cache sits behind a `Mutex` and the
/// parallelism knobs are atomics, so sessions can share one engine across
/// threads while the single-threaded API stays unchanged.
pub struct Engine {
    catalog: Catalog,
    /// Fingerprint-keyed plan cache for the `*_cached` entry points.
    /// `Mutex` (not `RefCell`) because cache bookkeeping mutates under
    /// `&self` queries that may now arrive from several threads.
    plan_cache: Mutex<PlanCache>,
    /// Session degree of parallelism (1 = serial, the default).
    dop: AtomicUsize,
    /// Runtime morsel size for parallel scans (rows per morsel).
    morsel_rows: AtomicUsize,
    /// Minimum driving-table rows before an exchange is worth placing.
    parallel_threshold: AtomicUsize,
}

impl Engine {
    pub fn new(catalog: Catalog) -> Engine {
        Engine {
            catalog,
            plan_cache: Mutex::new(PlanCache::default()),
            dop: AtomicUsize::new(1),
            morsel_rows: AtomicUsize::new(DEFAULT_MORSEL_ROWS),
            parallel_threshold: AtomicUsize::new(DEFAULT_MORSEL_ROWS),
        }
    }

    // ------------------------------------------------------- parallelism

    /// Set the session degree of parallelism. Plans depend on it (exchange
    /// placement), so cached plans are dropped.
    pub fn set_dop(&self, dop: usize) {
        self.dop.store(dop.max(1), Ordering::Relaxed);
        lock(&self.plan_cache).clear();
    }

    /// Set the dop from the machine's available parallelism.
    pub fn set_auto_dop(&self) {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.set_dop(n);
    }

    pub fn dop(&self) -> usize {
        self.dop.load(Ordering::Relaxed).max(1)
    }

    /// Runtime morsel size for parallel scans. Purely an execution knob —
    /// plans are unaffected, so the cache survives.
    pub fn set_morsel_rows(&self, rows: usize) {
        self.morsel_rows.store(rows.max(1), Ordering::Relaxed);
    }

    /// Minimum driving-table rows before refinement places an exchange.
    /// Affects plans, so cached plans are dropped.
    pub fn set_parallel_threshold(&self, rows: usize) {
        self.parallel_threshold.store(rows, Ordering::Relaxed);
        lock(&self.plan_cache).clear();
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Run ANALYZE on every table with default options.
    pub fn analyze(&mut self) {
        self.catalog.analyze_all(&AnalyzeOptions::default());
    }

    /// Execute any statement with the native MySQL optimizer.
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryOutput> {
        match parse(sql)? {
            Statement::Insert { table, rows } => self.execute_insert(&table, rows),
            Statement::Select(stmt) => self.run_select(&stmt, &MySqlOptimizer),
        }
    }

    /// Run a SELECT with the native optimizer.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.query_with(sql, &MySqlOptimizer)
    }

    /// Run a SELECT with a specific optimizer backend.
    pub fn query_with(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<QueryOutput> {
        let stmt = parse_select_text(sql)?;
        self.run_select(&stmt, opt)
    }

    /// Plan a SELECT without executing (what `EXPLAIN` does; used by the
    /// compile-time experiment, Table 1).
    pub fn plan(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<PlannedQuery> {
        let stmt = parse_select_text(sql)?;
        self.plan_select(&stmt, opt)
    }

    /// EXPLAIN output for a SELECT under a given optimizer.
    pub fn explain(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<String> {
        let planned = self.plan(sql, opt)?;
        let mut out = String::new();
        for (i, b) in planned.branches.iter().enumerate() {
            if i > 0 {
                out.push_str(&format!("UNION {}\n", if b.all { "ALL" } else { "DISTINCT" }));
            }
            out.push_str(&explain_plan(&b.plan, &b.bound, &self.catalog, &b.skeleton));
        }
        Ok(out)
    }

    // ------------------------------------------------------- plan cache

    /// Serve a statement through the fingerprint-keyed plan cache without
    /// copying the plan. The serve path is the token digest
    /// ([`token_digest`]): one pass over the source bytes yields the
    /// fingerprint and the literal binds — no parse tree. On a hit, the
    /// cached plan's parameters are re-bound *in place* and `f` runs
    /// against the shared plan, so a hit costs one lex-level scan, one
    /// hash lookup and a rebind; never a parse or a plan deep-copy.
    ///
    /// On a miss (or invalidation) the statement is parsed and
    /// parameterized — planning still sees the peeked literal values —
    /// served to `f`, and moved into the cache keyed by the digest
    /// fingerprint. The digest extracts binds in token order while
    /// [`parameterize`] numbers parameters in AST order; the two agree for
    /// this grammar, and the insert verifies it per shape — a statement
    /// whose orders diverge is simply never cached (compiled every time,
    /// correct either way).
    pub fn serve_cached<R>(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
        f: impl FnOnce(&PlannedQuery) -> Result<R>,
    ) -> Result<(R, CacheOutcome)> {
        let digest = token_digest(sql);
        let version = self.catalog.version();
        // Knobs captured once per serve: a plan compiled under these is
        // only valid while they hold (lookup validates, insert records).
        let dop = self.dop();
        let parallel_threshold = self.parallel_threshold.load(Ordering::Relaxed);
        let mut outcome = CacheOutcome::Miss;
        if let Some(d) = &digest {
            let mut cache = lock(&self.plan_cache);
            let before = cache.stats();
            if let Some(entry) = cache.lookup(d.fingerprint, version, dop, parallel_threshold) {
                // A rebind refusal (slot count or type-class mismatch with
                // the peeked values) means the cached plan cannot serve
                // these binds: discard it and recompile below, exactly as
                // for any other invalidation. Serving the stale plan — or
                // failing the query — would turn a cache artifact into a
                // user-visible behaviour change.
                if rebind_planned(&mut entry.planned, &d.binds).is_ok() {
                    let r = f(&entry.planned)?;
                    return Ok((r, CacheOutcome::Hit));
                }
                cache.discard(d.fingerprint);
            }
            // The lookup (or the discard above) classified the failure.
            if cache.stats().invalidations > before.invalidations {
                outcome = CacheOutcome::Invalidated;
            }
        }
        // Miss, invalidation, or unlexable input (the parser produces the
        // real error for the latter).
        let stmt = parse_select_text(sql)?;
        let p = parameterize(&stmt);
        let planned = self.plan_select(&p.stmt, opt)?;
        let r = f(&planned)?;
        if let Some(d) = digest {
            if d.binds == p.binds {
                lock(&self.plan_cache).insert(
                    d.fingerprint,
                    CachedPlan {
                        planned,
                        catalog_version: version,
                        dop,
                        parallel_threshold,
                        optimizer: opt.name(),
                        serves: 0,
                    },
                );
            }
        }
        Ok((r, outcome))
    }

    /// Plan through the plan cache, returning an owned copy of the plan.
    /// Returns the outcome for banners/reports.
    pub fn plan_cached(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
    ) -> Result<(PlannedQuery, CacheOutcome)> {
        self.serve_cached(sql, opt, |planned| Ok(planned.clone()))
    }

    /// Run a SELECT through the plan cache (executes straight off the
    /// shared cached plan).
    pub fn query_cached(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<QueryOutput> {
        let (out, _) = self.serve_cached(sql, opt, |planned| self.execute_planned(planned))?;
        Ok(out)
    }

    /// EXPLAIN through the plan cache: the banner's first line gains a
    /// `[plan cache: hit|miss|invalidated]` suffix.
    pub fn explain_cached(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<String> {
        let (text, outcome) = self.serve_cached(sql, opt, |planned| {
            let mut out = String::new();
            for (i, b) in planned.branches.iter().enumerate() {
                if i > 0 {
                    out.push_str(&format!("UNION {}\n", if b.all { "ALL" } else { "DISTINCT" }));
                }
                out.push_str(&explain_plan(&b.plan, &b.bound, &self.catalog, &b.skeleton));
            }
            Ok(out)
        })?;
        // Suffix the banner line (first line) with the cache state.
        Ok(match text.split_once('\n') {
            Some((banner, rest)) => {
                format!("{banner} [plan cache: {}]\n{rest}", outcome.label())
            }
            None => text,
        })
    }

    /// Plan-cache counters for reports.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        lock(&self.plan_cache).stats()
    }

    /// Number of currently cached statements.
    pub fn plan_cache_len(&self) -> usize {
        lock(&self.plan_cache).len()
    }

    /// Drop every cached plan (counters survive).
    pub fn clear_plan_cache(&self) {
        lock(&self.plan_cache).clear();
    }

    /// Plan a parsed SELECT.
    pub fn plan_select(
        &self,
        stmt: &SelectStmt,
        opt: &dyn CostBasedOptimizer,
    ) -> Result<PlannedQuery> {
        // MySQL does not support INTERSECT/EXCEPT; the paper rewrote the
        // affected queries (§6.2). We apply the mechanical rewrite here.
        let stmt = rewrite_set_ops(stmt.clone())?;
        let branches = resolve_union_branches(&self.catalog, &stmt)?;
        if branches.is_empty() {
            return Err(Error::internal("statement resolved to no branches"));
        }
        let mut planned = Vec::with_capacity(branches.len());
        let mut columns: Option<Vec<String>> = None;
        let engine_dop = self.dop();
        for (bound, all) in branches {
            let skeleton = opt.optimize(&self.catalog, &bound)?;
            // The optimizer's dop choice wins when present, clamped to the
            // session knob; otherwise the session knob applies directly.
            let dop = skeleton.dop.unwrap_or(engine_dop).min(engine_dop).max(1);
            let opts = ParallelOpts {
                dop,
                min_driver_rows: self.parallel_threshold.load(Ordering::Relaxed),
            };
            let plan = refine_statement_parallel(&self.catalog, &bound, &skeleton, &opts)?;
            let cols: Vec<String> = bound.root.select.iter().map(|o| o.name.clone()).collect();
            match &columns {
                None => columns = Some(cols),
                Some(c) => {
                    if c.len() != cols.len() {
                        return Err(Error::semantic("UNION branches have different arity"));
                    }
                }
            }
            planned.push(PlannedBranch { bound, skeleton, plan, all });
        }
        Ok(PlannedQuery { branches: planned, columns: columns.expect("at least one branch") })
    }

    /// Execute a previously planned query.
    pub fn execute_planned(&self, planned: &PlannedQuery) -> Result<QueryOutput> {
        let mut rows: Vec<Row> = Vec::new();
        let mut work = 0u64;
        let mut critical = 0u64;
        for (i, b) in planned.branches.iter().enumerate() {
            let mut plan = b.plan.clone();
            let slots = plan.assign_cache_slots();
            let mut ctx = ExecContext::new(&self.catalog, b.bound.num_tables(), slots);
            ctx.set_morsel_rows(self.morsel_rows.load(Ordering::Relaxed));
            let branch_rows = execute(&plan, &ctx)?;
            work += ctx.stats.work_units();
            critical += ctx.stats.critical_path_work();
            if i == 0 {
                rows = branch_rows;
            } else {
                rows.extend(branch_rows);
                if !b.all {
                    let mut seen = std::collections::HashSet::new();
                    rows.retain(|r| seen.insert(r.clone()));
                }
            }
        }
        Ok(QueryOutput {
            columns: planned.columns.clone(),
            rows,
            work_units: work,
            critical_work_units: critical,
        })
    }

    /// EXPLAIN ANALYZE: plan, execute with per-operator observation
    /// enabled, and render the plan tree annotated with actual rows, loop
    /// counts, and q-errors.
    pub fn explain_analyze(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
    ) -> Result<AnalyzedQuery> {
        let planned = self.plan(sql, opt)?;
        self.analyze_planned(&planned)
    }

    /// Execute a planned query with observation enabled and render the
    /// annotated EXPLAIN ANALYZE tree. Mirrors [`Engine::execute_planned`]
    /// — same execution path, plus an [`ObserverIndex`] installed over each
    /// branch's plan instance — so results are identical to an
    /// uninstrumented run.
    pub fn analyze_planned(&self, planned: &PlannedQuery) -> Result<AnalyzedQuery> {
        let mut rows: Vec<Row> = Vec::new();
        let mut work = 0u64;
        let mut critical = 0u64;
        let mut text = String::new();
        let mut nodes: Vec<NodeAnnotation> = Vec::new();
        for (i, b) in planned.branches.iter().enumerate() {
            let mut plan = b.plan.clone();
            let slots = plan.assign_cache_slots();
            // The index keys nodes by address, so it must be built over the
            // exact tree we execute (`plan` is not moved afterwards).
            let index = Arc::new(ObserverIndex::new(&plan));
            let mut ctx = ExecContext::new(&self.catalog, b.bound.num_tables(), slots);
            ctx.set_morsel_rows(self.morsel_rows.load(Ordering::Relaxed));
            ctx.set_observer(Arc::clone(&index));
            let branch_rows = execute(&plan, &ctx)?;
            work += ctx.stats.work_units();
            critical += ctx.stats.critical_path_work();
            let observed = ctx.stats.nodes.borrow();
            let ann = annotate(&plan, &index, &observed);
            if i > 0 {
                text.push_str(&format!("UNION {}\n", if b.all { "ALL" } else { "DISTINCT" }));
            }
            text.push_str(&explain_plan_analyzed(
                &plan,
                &b.bound,
                &self.catalog,
                &b.skeleton,
                &ann,
            ));
            nodes.extend(ann);
            if i == 0 {
                rows = branch_rows;
            } else {
                rows.extend(branch_rows);
                if !b.all {
                    let mut seen = std::collections::HashSet::new();
                    rows.retain(|r| seen.insert(r.clone()));
                }
            }
        }
        Ok(AnalyzedQuery {
            output: QueryOutput {
                columns: planned.columns.clone(),
                rows,
                work_units: work,
                critical_work_units: critical,
            },
            text,
            nodes,
        })
    }

    fn run_select(&self, stmt: &SelectStmt, opt: &dyn CostBasedOptimizer) -> Result<QueryOutput> {
        let planned = self.plan_select(stmt, opt)?;
        self.execute_planned(&planned)
    }

    fn execute_insert(
        &mut self,
        table: &str,
        rows: Vec<Vec<taurus_sql::AstExpr>>,
    ) -> Result<QueryOutput> {
        let id = self.catalog.table_by_name(table)?.id;
        let layout = Layout::empty(0);
        let mut materialized: Vec<Row> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut out = Vec::with_capacity(row.len());
            for e in row {
                // INSERT values are constant expressions.
                let bound = ast_const_to_value(&e, &layout)?;
                out.push(bound);
            }
            materialized.push(out);
        }
        let n = materialized.len();
        self.catalog.insert(id, materialized)?;
        self.catalog.build_indexes(id)?;
        Ok(QueryOutput {
            columns: vec!["rows_inserted".into()],
            rows: vec![vec![Value::Int(n as i64)]],
            work_units: n as u64,
            critical_work_units: n as u64,
        })
    }
}

/// Re-bind a cached plan's parameters to a new statement's literal values.
/// Only the executable plans need it — `bound`/`skeleton` are kept for
/// EXPLAIN, where the `$n` markers render instead of stale values.
fn rebind_planned(planned: &mut PlannedQuery, binds: &[Value]) -> Result<()> {
    let mut err: Option<Error> = None;
    for b in &mut planned.branches {
        b.plan.for_each_expr_mut(&mut |e| {
            if err.is_none() {
                if let Err(x) = e.rebind_params(binds) {
                    err = Some(x);
                }
            }
        });
    }
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn parse_select_text(sql: &str) -> Result<SelectStmt> {
    match parse(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(Error::semantic(format!("expected SELECT, got {other:?}"))),
    }
}

/// Evaluate a constant INSERT expression.
fn ast_const_to_value(e: &taurus_sql::AstExpr, layout: &Layout) -> Result<Value> {
    use taurus_sql::AstExpr as A;
    let expr = match e {
        A::Lit(v) => taurus_common::Expr::Literal(v.clone()),
        A::Neg(inner) => return ast_const_to_value(inner, layout)?.neg(),
        other => {
            return Err(Error::semantic(format!("INSERT values must be literals, got {other:?}")))
        }
    };
    expr.eval(EvalCtx::new(&[], layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{Column, DataType, Schema};

    fn engine() -> Engine {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "emp",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("dept", DataType::Int),
                    Column::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        cat.insert(
            t,
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(2), Value::Int(10), Value::Int(200)],
                vec![Value::Int(3), Value::Int(20), Value::Int(300)],
                vec![Value::Int(4), Value::Null, Value::Int(50)],
            ],
        )
        .unwrap();
        cat.create_index(t, "emp_pk", vec![0], true).unwrap();
        let d = cat
            .create_table(
                "dept",
                Schema::new(vec![
                    Column::new("did", DataType::Int),
                    Column::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        cat.insert(
            d,
            vec![vec![Value::Int(10), Value::str("eng")], vec![Value::Int(20), Value::str("ops")]],
        )
        .unwrap();
        cat.create_index(d, "dept_pk", vec![0], true).unwrap();
        let mut e = Engine::new(cat);
        e.analyze();
        e
    }

    fn ints(out: &QueryOutput, col: usize) -> Vec<i64> {
        out.rows.iter().map(|r| r[col].as_i64().unwrap()).collect()
    }

    #[test]
    fn select_filter_order_limit() {
        let e = engine();
        let out = e
            .query("SELECT id, salary FROM emp WHERE salary > 60 ORDER BY salary DESC LIMIT 2")
            .unwrap();
        assert_eq!(out.columns, vec!["id", "salary"]);
        assert_eq!(ints(&out, 1), vec![300, 200]);
        assert!(out.work_units > 0);
    }

    #[test]
    fn join_query() {
        let e = engine();
        let out = e.query("SELECT id, dname FROM emp, dept WHERE dept = did ORDER BY id").unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0][1], Value::str("eng"));
    }

    #[test]
    fn group_by_having() {
        let e = engine();
        let out = e
            .query(
                "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp \
                 GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(ints(&out, 1), vec![2]);
        assert_eq!(ints(&out, 2), vec![300]);
    }

    #[test]
    fn scalar_aggregate() {
        let e = engine();
        let out = e.query("SELECT COUNT(*), AVG(salary) FROM emp").unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(4));
    }

    #[test]
    fn exists_semi_join() {
        let e = engine();
        let out = e
            .query(
                "SELECT dname FROM dept WHERE EXISTS \
                 (SELECT * FROM emp WHERE dept = did AND salary > 250) ORDER BY dname",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::str("ops"));
    }

    #[test]
    fn not_in_anti_join_null_semantics() {
        let e = engine();
        // dept values include NULL -> NOT IN filters everything when the
        // subquery contains no NULLs but the probe is NULL.
        let out = e
            .query("SELECT id FROM emp WHERE dept NOT IN (SELECT did FROM dept) ORDER BY id")
            .unwrap();
        // emp 4's NULL dept: membership UNKNOWN -> excluded.
        assert_eq!(out.rows.len(), 0);
    }

    #[test]
    fn scalar_subquery_correlated() {
        let e = engine();
        // Employees earning above their department average.
        let out = e
            .query(
                "SELECT id FROM emp e1 WHERE salary > \
                 (SELECT AVG(salary) FROM emp e2 WHERE e2.dept = e1.dept) ORDER BY id",
            )
            .unwrap();
        assert_eq!(ints(&out, 0), vec![2]);
    }

    #[test]
    fn left_join_preserved_and_where_filter() {
        let e = engine();
        let out =
            e.query("SELECT id, dname FROM emp LEFT JOIN dept ON dept = did ORDER BY id").unwrap();
        assert_eq!(out.rows.len(), 4);
        assert!(out.rows[3][1].is_null());
    }

    #[test]
    fn distinct_and_union() {
        let e = engine();
        let out = e.query("SELECT DISTINCT dept FROM emp ORDER BY dept").unwrap();
        assert_eq!(out.rows.len(), 3); // NULL, 10, 20
        let out = e
            .query("SELECT id FROM emp WHERE id < 2 UNION ALL SELECT id FROM emp WHERE id < 3")
            .unwrap();
        assert_eq!(out.rows.len(), 3);
        let out = e
            .query("SELECT id FROM emp WHERE id < 2 UNION SELECT id FROM emp WHERE id < 3")
            .unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn intersect_auto_rewrites() {
        let e = engine();
        let out = e
            .query("SELECT dept FROM emp WHERE salary > 150 INTERSECT SELECT dept FROM emp")
            .unwrap();
        // depts with salary > 150: {10, 20}; intersect with all: {10, 20}.
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn insert_and_query() {
        let mut e = engine();
        let out = e.execute_sql("INSERT INTO dept VALUES (30, 'hr')").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(1));
        let q = e.query("SELECT dname FROM dept WHERE did = 30").unwrap();
        assert_eq!(q.rows[0][0], Value::str("hr"));
    }

    #[test]
    fn explain_shows_banner_and_tree() {
        let e = engine();
        let text =
            e.explain("SELECT id, dname FROM emp, dept WHERE dept = did", &MySqlOptimizer).unwrap();
        assert!(text.starts_with("EXPLAIN\n"), "{text}");
        assert!(text.contains("join"), "{text}");
        assert!(text.contains("emp"), "{text}");
    }

    #[test]
    fn case_expression_query() {
        let e = engine();
        let out = e
            .query(
                "SELECT id, CASE WHEN salary >= 200 THEN 'high' ELSE 'low' END AS band \
                 FROM emp ORDER BY id",
            )
            .unwrap();
        assert_eq!(out.rows[0][1], Value::str("low"));
        assert_eq!(out.rows[1][1], Value::str("high"));
    }

    #[test]
    fn order_by_hidden_column() {
        let e = engine();
        let out = e.query("SELECT id FROM emp ORDER BY salary DESC").unwrap();
        assert_eq!(ints(&out, 0), vec![3, 2, 1, 4]);
        assert_eq!(out.rows[0].len(), 1, "hidden sort column trimmed");
    }

    #[test]
    fn derived_table_query() {
        let e = engine();
        let out = e
            .query(
                "SELECT d, total FROM (SELECT dept AS d, SUM(salary) AS total FROM emp \
                 WHERE dept IS NOT NULL GROUP BY dept) t WHERE total > 250 ORDER BY d",
            )
            .unwrap();
        assert_eq!(ints(&out, 0), vec![10, 20]);
    }

    #[test]
    fn index_scan_supplies_order_and_skips_sort() {
        // §2.2/§7 item 4: ORDER BY on an indexed column uses the ordered
        // index scan and elides the sort.
        let e = engine();
        let text =
            e.explain("SELECT id, salary FROM emp ORDER BY id LIMIT 3", &MySqlOptimizer).unwrap();
        assert!(text.contains("Index scan on emp"), "{text}");
        assert!(!text.contains("Sort:"), "{text}");
        let out = e.query("SELECT id, salary FROM emp ORDER BY id LIMIT 3").unwrap();
        assert_eq!(ints(&out, 0), vec![1, 2, 3]);
        // An unindexed ORDER BY column still sorts.
        let text = e.explain("SELECT id FROM emp ORDER BY salary", &MySqlOptimizer).unwrap();
        assert!(text.contains("Sort:"), "{text}");
        // Descending order cannot come from the index either.
        let text = e.explain("SELECT id FROM emp ORDER BY id DESC", &MySqlOptimizer).unwrap();
        assert!(text.contains("Sort:"), "{text}");
    }

    #[test]
    fn aggregate_in_order_by() {
        let e = engine();
        let out = e
            .query(
                "SELECT dept FROM emp WHERE dept IS NOT NULL GROUP BY dept \
                 ORDER BY SUM(salary) DESC",
            )
            .unwrap();
        assert_eq!(ints(&out, 0), vec![10, 20]);
    }

    #[test]
    fn plan_cache_hit_rebinds_new_literals() {
        let e = engine();
        let sql_a = "SELECT id FROM emp WHERE salary > 60 ORDER BY id";
        let sql_b = "SELECT id FROM emp WHERE salary > 250 ORDER BY id";
        let (_, out) = e.plan_cached(sql_a, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Miss);
        let a = e.query_cached(sql_a, &MySqlOptimizer).unwrap();
        assert_eq!(ints(&a, 0), vec![1, 2, 3]);
        // Same fingerprint, different literal: served from cache, re-bound.
        let (_, out) = e.plan_cached(sql_b, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Hit);
        let b = e.query_cached(sql_b, &MySqlOptimizer).unwrap();
        assert_eq!(ints(&b, 0), vec![3]);
        assert_eq!(e.plan_cache_len(), 1, "one entry serves both literals");
        // The cached results match a cold compile of the same statements.
        assert_eq!(b.rows, e.query(sql_b).unwrap().rows);
        let s = e.plan_cache_stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (3, 1, 0));
    }

    #[test]
    fn plan_cache_rebinds_index_range_bounds() {
        // The pk index range is driven by the literal: rebinding must reach
        // the IndexRange lo/hi, not just Filter predicates.
        let e = engine();
        let a = e.query_cached("SELECT salary FROM emp WHERE id = 1", &MySqlOptimizer).unwrap();
        assert_eq!(ints(&a, 0), vec![100]);
        let b = e.query_cached("SELECT salary FROM emp WHERE id = 3", &MySqlOptimizer).unwrap();
        assert_eq!(ints(&b, 0), vec![300]);
        assert_eq!(e.plan_cache_stats().hits, 1);
    }

    #[test]
    fn rebind_type_mismatch_discards_and_recompiles() {
        // Differently-typed literals hash to different fingerprints, so a
        // cached plan should never legitimately see binds of another type
        // class. If one ever does (here: an entry planted under the wrong
        // shape's fingerprint), the rebind must refuse and the serve path
        // must recompile — not serve the stale plan, not fail the query.
        let e = engine();
        let sql_int = "SELECT salary FROM emp WHERE id = 2";
        let sql_str = "SELECT salary FROM emp WHERE id = 'two'";
        let (planned, _) = e.plan_cached(sql_int, &MySqlOptimizer).unwrap();
        let poisoned_fp = token_digest(sql_str).unwrap().fingerprint;
        lock(&e.plan_cache).insert(
            poisoned_fp,
            CachedPlan {
                planned,
                catalog_version: e.catalog.version(),
                dop: e.dop(),
                parallel_threshold: e.parallel_threshold.load(Ordering::Relaxed),
                optimizer: "mysql",
                serves: 0,
            },
        );
        let before = e.plan_cache_stats();
        // The Str-literal query hits the poisoned Int-peeked entry; the
        // type-class check rejects the rebind and a fresh compile serves.
        let out = e.query_cached(sql_str, &MySqlOptimizer).unwrap();
        assert_eq!(out.rows.len(), 0, "recompiled plan answers the actual query");
        let after = e.plan_cache_stats();
        assert_eq!(after.invalidations, before.invalidations + 1, "hit reclassified");
        assert_eq!(after.hits, before.hits, "a refused rebind is not a serve");
        // The poisoned entry is gone: the shape recompiled and re-cached.
        let (_, outcome) = e.plan_cached(sql_str, &MySqlOptimizer).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "fresh entry serves the shape now");
    }

    #[test]
    fn ddl_invalidates_cached_plans() {
        let mut e = engine();
        let sql = "SELECT id FROM emp WHERE salary > 60";
        e.query_cached(sql, &MySqlOptimizer).unwrap();
        let (_, out) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Hit);
        // ANALYZE publishes new statistics -> version bump -> stale entry.
        e.analyze();
        let (_, out) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Invalidated);
        let (_, out) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Hit, "re-inserted under the new version");
        let s = e.plan_cache_stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (2, 1, 1));
    }

    #[test]
    fn explain_cached_banner_shows_outcome() {
        let e = engine();
        let sql = "SELECT id, dname FROM emp, dept WHERE dept = did";
        let text = e.explain_cached(sql, &MySqlOptimizer).unwrap();
        assert!(text.starts_with("EXPLAIN [plan cache: miss]\n"), "{text}");
        let text = e.explain_cached(sql, &MySqlOptimizer).unwrap();
        assert!(text.starts_with("EXPLAIN [plan cache: hit]\n"), "{text}");
        assert!(text.contains("join"), "{text}");
    }

    // The whole point of the Mutex/atomic migration: one engine, many
    // session threads.
    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    };

    /// A wider emp table so the parallel threshold can be crossed.
    fn big_engine(rows: i64) -> Engine {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "emp",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("dept", DataType::Int),
                    Column::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        cat.insert(
            t,
            (0..rows)
                .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i * 13 % 1000)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mut e = Engine::new(cat);
        e.analyze();
        e
    }

    #[test]
    fn parallel_query_matches_serial_and_shortens_critical_path() {
        let e = big_engine(5000);
        let sql = "SELECT dept, COUNT(*) AS n, SUM(salary) AS s FROM emp \
                   WHERE salary < 900 GROUP BY dept ORDER BY dept";
        let serial = e.query(sql).unwrap();
        e.set_dop(4);
        e.set_morsel_rows(512);
        let parallel = e.query(sql).unwrap();
        assert_eq!(serial.rows, parallel.rows, "parallel results must be identical");
        assert!(
            parallel.critical_work_units < serial.work_units,
            "critical path {} should shrink below serial work {}",
            parallel.critical_work_units,
            serial.work_units
        );
        assert_eq!(serial.critical_work_units, serial.work_units, "serial has no parallelism");
    }

    #[test]
    fn explain_shows_exchange_and_dop_only_when_parallel() {
        let e = big_engine(3000);
        let sql = "SELECT id FROM emp WHERE salary > 500";
        let text = e.explain(sql, &MySqlOptimizer).unwrap();
        assert!(!text.contains("dop="), "serial EXPLAIN unchanged: {text}");
        e.set_dop(4);
        let text = e.explain(sql, &MySqlOptimizer).unwrap();
        assert!(text.contains("Exchange (gather, dop=4)"), "{text}");
        assert!(text.contains("dop=4)"), "{text}");
    }

    #[test]
    fn small_tables_stay_serial_under_dop() {
        let e = engine();
        e.set_dop(8);
        let text = e.explain("SELECT id FROM emp", &MySqlOptimizer).unwrap();
        assert!(!text.contains("Exchange"), "4-row table below threshold: {text}");
        let out = e.query("SELECT id FROM emp ORDER BY id").unwrap();
        assert_eq!(ints(&out, 0), vec![1, 2, 3, 4]);
    }

    #[test]
    fn set_dop_invalidates_cached_plans() {
        let e = big_engine(3000);
        let sql = "SELECT id FROM emp WHERE salary > 500";
        e.query_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(e.plan_cache_len(), 1);
        e.set_dop(4);
        assert_eq!(e.plan_cache_len(), 0, "dop change drops serial plans");
        let (planned, _) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        let has_exchange = format!("{:?}", planned.primary().plan).contains("Exchange");
        assert!(has_exchange, "recompiled plan is parallel");
    }

    #[test]
    fn concurrent_sessions_share_engine_and_plan_cache() {
        let e = std::sync::Arc::new(big_engine(3000));
        e.set_dop(2);
        // Prime the cache so every session thread hits the shared entry.
        let expected = e
            .query_cached(
                "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept",
                &MySqlOptimizer,
            )
            .unwrap()
            .rows;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = e.clone();
                let expected = expected.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let out = e
                            .query_cached(
                                "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept",
                                &MySqlOptimizer,
                            )
                            .unwrap();
                        assert_eq!(out.rows, expected);
                    }
                });
            }
        });
        let s = e.plan_cache_stats();
        assert_eq!(s.hits, 20, "every threaded run hits the primed entry: {s:?}");
        assert_eq!(e.plan_cache_len(), 1);
    }

    #[test]
    fn structurally_different_statements_do_not_collide() {
        let e = engine();
        e.query_cached("SELECT id FROM emp WHERE salary > 60", &MySqlOptimizer).unwrap();
        e.query_cached("SELECT id FROM emp WHERE salary > 60 AND dept = 10", &MySqlOptimizer)
            .unwrap();
        e.query_cached("SELECT dept FROM emp WHERE salary > 60", &MySqlOptimizer).unwrap();
        assert_eq!(e.plan_cache_len(), 3);
        assert_eq!(e.plan_cache_stats().hits, 0);
    }

    #[test]
    fn explain_analyze_annotates_every_operator() {
        let e = engine();
        let sql = "SELECT id, salary FROM emp WHERE salary > 60 ORDER BY salary DESC LIMIT 2";
        let plain = e.query(sql).unwrap();
        let analyzed = e.explain_analyze(sql, &MySqlOptimizer).unwrap();
        assert_eq!(analyzed.output.rows, plain.rows, "observation must not change results");
        assert!(analyzed.text.starts_with("EXPLAIN ANALYZE\n"), "{}", analyzed.text);
        // Every operator line carries actuals (or a never-executed marker).
        for line in analyzed.text.lines().skip(1) {
            assert!(
                line.contains("actual rows=") || line.contains("(never executed)"),
                "unannotated line: {line}"
            );
        }
        assert!(analyzed.text.contains("q-error="), "{}", analyzed.text);
        // Limit 2 over 3 qualifying rows: the root actually returns 2.
        assert_eq!(analyzed.nodes[0].actual_rows, 2);
        assert!(!analyzed.nodes.is_empty());
        for n in &analyzed.nodes {
            if n.loops > 0 {
                assert!(n.q_error.unwrap() >= 1.0);
            }
        }
    }

    #[test]
    fn explain_analyze_normalizes_lookup_rows_per_probe() {
        let e = engine();
        // emp ⋈ dept via index lookup: the lookup runs once per outer row.
        let sql = "SELECT id, dname FROM emp, dept WHERE dept = did ORDER BY id";
        let analyzed = e.explain_analyze(sql, &MySqlOptimizer).unwrap();
        assert_eq!(analyzed.output.rows.len(), 3);
        if let Some(line) = analyzed.text.lines().find(|l| l.contains("Index lookup on dept")) {
            // 4 probes (one NULL misses): loops=4 and the per-probe actual
            // is under 1, so the est=1 lookup stays well-calibrated.
            assert!(line.contains("loops=4"), "{line}");
        }
        let lookup_q = analyzed
            .nodes
            .iter()
            .filter(|n| n.loops > 1)
            .map(|n| n.q_error.unwrap())
            .fold(1.0f64, f64::max);
        assert!(lookup_q < 5.0, "per-probe normalization keeps q-error small: {lookup_q}");
    }

    #[test]
    fn explain_analyze_parallel_matches_serial_results() {
        let e = big_engine(5000);
        let sql = "SELECT dept, COUNT(*) AS n, SUM(salary) AS s FROM emp \
                   WHERE salary < 900 GROUP BY dept ORDER BY dept";
        let serial = e.query(sql).unwrap();
        e.set_dop(4);
        e.set_morsel_rows(512);
        let analyzed = e.explain_analyze(sql, &MySqlOptimizer).unwrap();
        assert_eq!(analyzed.output.rows, serial.rows, "analyze at dop=4 must not perturb results");
        // The aggregate shape parallelizes through a repartition exchange;
        // its actuals must be attributed exactly once despite dop workers.
        let exchange = analyzed
            .text
            .lines()
            .find(|l| l.contains("Exchange (") && l.contains("dop=4"))
            .expect("exchange line");
        assert!(exchange.contains("actual rows="), "{exchange}");
    }

    #[test]
    fn explain_analyze_union_annotates_all_branches() {
        let e = engine();
        let analyzed = e
            .explain_analyze(
                "SELECT id FROM emp WHERE salary > 250 UNION SELECT did FROM dept",
                &MySqlOptimizer,
            )
            .unwrap();
        assert_eq!(analyzed.output.rows.len(), 3, "{:?}", analyzed.output.rows);
        assert!(analyzed.text.contains("UNION DISTINCT\n"), "{}", analyzed.text);
        let banners = analyzed.text.lines().filter(|l| l.starts_with("EXPLAIN ANALYZE")).count();
        assert_eq!(banners, 2, "one banner per branch: {}", analyzed.text);
    }
}
