//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (§6) and prints them as markdown.
//!
//! ```text
//! harness fig10      # TPC-H per-query comparison (Fig 10)
//! harness fig11      # TPC-DS per-query comparison (Fig 11)
//! harness fig12      # ratio-vs-runtime scatter (Fig 12)
//! harness table1     # compile-overhead totals (Table 1)
//! harness q72        # Q72 plan shapes (Fig 4/5)
//! harness q17        # Q17 plans + best-position behaviour (Fig 6/7, Listing 7)
//! harness q41        # the OR-factorization case (§6.2)
//! harness ablations  # §7 lesson on/off comparisons
//! harness routing    # never-fail-detour routing + fallback-reason table
//! harness plancache  # compile-once serve-many plan cache (exits 1 on gate failure)
//! harness parallel   # morsel-driven parallel execution (exits 1 on gate failure)
//! harness vectorized # columnar batch engine wall-clock gate (exits 1 on gate failure)
//! harness observe    # EXPLAIN ANALYZE q-error harness (exits 1 on gate failure)
//! harness orders     # interesting-order enforcer elimination (exits 1 on gate failure)
//! harness feedback   # feedback-driven re-optimization loop (exits 1 on gate failure)
//! harness fuzz [--seed-range a..b]
//!                    # differential query fuzzer (exits 1 on any miscompare)
//! harness governance # query-governor chaos report (exits 1 on gate failure)
//! harness concurrency# multi-session closed-loop bench (exits 1 on gate failure)
//! harness all        # everything, in order
//! ```
//!
//! Environment knobs: `SCALE` (default 0.3), `REPS` (default 5),
//! `VECTORIZED_BUDGET` (timed runs per cell for `vectorized`, default 9),
//! `FUZZ_BUDGET` (queries per seed for `fuzz`, default 500),
//! `GOVERNANCE_BUDGET` (disturbed executions for `governance`, default 200),
//! `CONCURRENCY_BUDGET` (loaded-level statements for `concurrency`,
//! default 320 — split across 8 clients).

use taurus_bench::*;
use taurus_workloads::Scale;

fn scale() -> Scale {
    Scale(std::env::var("SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.3))
}

fn reps() -> usize {
    std::env::var("REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(5)
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run_all = arg == "all";
    let want = |name: &str| run_all || arg == name;

    if want("fig10") {
        fig10();
    }
    if want("fig11") {
        fig11();
    }
    if want("fig12") {
        fig12();
    }
    if want("table1") {
        table1();
    }
    if want("q72") {
        q72();
    }
    if want("q17") {
        q17();
    }
    if want("q41") {
        q41();
    }
    if want("ablations") {
        ablations_report();
    }
    if want("routing") {
        routing_report();
    }
    if want("plancache") {
        plancache_report();
    }
    if want("parallel") {
        parallel_report();
    }
    if want("vectorized") {
        vectorized_report();
    }
    if want("observe") {
        observe_report();
    }
    if want("orders") {
        orders_report();
    }
    if want("feedback") {
        feedback_report();
    }
    if want("fuzz") {
        fuzz_report();
    }
    if want("governance") {
        governance_report();
    }
    if want("concurrency") {
        concurrency_report();
    }
    if !run_all
        && ![
            "fig10",
            "fig11",
            "fig12",
            "table1",
            "q72",
            "q17",
            "q41",
            "ablations",
            "routing",
            "plancache",
            "parallel",
            "vectorized",
            "observe",
            "orders",
            "feedback",
            "fuzz",
            "governance",
            "concurrency",
        ]
        .contains(&arg.as_str())
    {
        eprintln!("unknown experiment '{arg}'; see the module docs for the list");
        std::process::exit(2);
    }
}

fn fig10() {
    println!("\n## Fig 10 — TPC-H execution time, MySQL vs Orca plans (scale {:?})\n", scale());
    let results =
        run_suite(Workload::TpcH, scale(), orcalite::JoinOrderStrategy::Exhaustive2, reps());
    print!("{}", format_suite_table(&results));
}

fn fig11() {
    println!("\n## Fig 11 — TPC-DS execution time, MySQL vs Orca plans (scale {:?})\n", scale());
    let results =
        run_suite(Workload::TpcDs, scale(), orcalite::JoinOrderStrategy::Exhaustive2, reps());
    print!("{}", format_suite_table(&results));
}

fn fig12() {
    println!("\n## Fig 12 — Orca is slower only on short queries (scale {:?})\n", scale());
    let results =
        run_suite(Workload::TpcDs, scale(), orcalite::JoinOrderStrategy::Exhaustive2, reps());
    println!("| query | MySQL run time (X axis) | Orca/MySQL ratio (Y axis) |");
    println!("|---|---|---|");
    let mut points = fig12_points(&results);
    points.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    for (name, x, y) in &points {
        println!("| {name} | {:.4}s | {:.2} |", x, y);
    }
    // The paper's claim: ratios above 1 concentrate at small X.
    let slow: Vec<&(String, f64, f64)> = points.iter().filter(|(_, _, y)| *y > 1.1).collect();
    let median_x = points[points.len() / 2].1;
    let short_slow = slow.iter().filter(|(_, x, _)| *x <= median_x).count();
    println!(
        "\nqueries where the Orca path is >10% slower: {}; of those, {} are in the \
         shorter half of MySQL run times (paper: Orca loses only on short queries)",
        slow.len(),
        short_slow
    );
}

fn table1() {
    println!(
        "\n## Table 1 — query compilation overhead (threshold 1: every query takes the \
         Orca detour; scale {:?})\n",
        scale()
    );
    println!("| Compiler | TPC-H total EXPLAIN | TPC-DS total EXPLAIN |");
    println!("|---|---|---|");
    let h = compile_totals(Workload::TpcH, scale());
    let ds = compile_totals(Workload::TpcDs, scale());
    for (hrow, dsrow) in h.iter().zip(&ds) {
        println!("| {} | {:.3?} | {:.3?} |", hrow.compiler, hrow.total, dsrow.total);
    }
    // The paper attributes the EXHAUSTIVE2 overhead almost entirely to the
    // CTE-heavy multi-join queries Q14/Q64 (§6.3 obs. 3).
    let exh = &ds[1].per_query;
    let exh2 = &ds[2].per_query;
    let mut deltas: Vec<(String, f64)> = exh2
        .iter()
        .zip(exh)
        .map(|((name, t2), (_, t1))| (name.clone(), t2.as_secs_f64() - t1.as_secs_f64()))
        .collect();
    deltas.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("\nlargest EXHAUSTIVE2-over-EXHAUSTIVE compile deltas (TPC-DS):");
    for (name, d) in deltas.iter().take(4) {
        println!("  {name}: {:+.3}s", d);
    }
}

fn q72() {
    println!("\n## Fig 4/5 — TPC-DS Q72 plan shapes (scale {:?})\n", scale());
    let cs = q72_case_study(scale(), reps());
    print_case(&cs);
    println!(
        "join methods — MySQL: {} nested loops + {} hash (Fig 4: 10 NLJ + 1 HJ, left-deep); \
         Orca: {} nested loops + {} hash (Fig 5: 4 NLJ + 6 HJ, bushy allowed)",
        cs.mysql_joins.0, cs.mysql_joins.1, cs.orca_joins.0, cs.orca_joins.1
    );
    println!(
        "tree shapes — MySQL left-deep: {}; Orca left-deep: {}",
        cs.mysql_left_deep, cs.orca_left_deep
    );
}

fn q17() {
    println!("\n## Fig 6/7 + Listing 7 — TPC-H Q17 (scale {:?})\n", scale());
    let cs = q17_case_study(scale(), reps());
    print_case(&cs);
}

fn q41() {
    println!("\n## §6.2 Q41 — OR factorization (scale {:?})\n", scale());
    let cs = q41_case_study(scale(), reps());
    print_case(&cs);
    println!(
        "speedup: {:.1}× wall clock, {:.1}× work (paper: 222× at SF 100)",
        cs.mysql_time.as_secs_f64() / cs.orca_time.as_secs_f64().max(1e-9),
        cs.mysql_work as f64 / cs.orca_work.max(1) as f64
    );
}

fn ablations_report() {
    println!("\n## §7 lesson ablations (scale {:?})\n", scale());
    println!("| lesson | query | with rule | without rule | work with | work without |");
    println!("|---|---|---|---|---|---|");
    for a in ablations(scale(), reps()) {
        println!(
            "| {} | {} | {:.3?} | {:.3?} | {} | {} |",
            a.name, a.query, a.with_rule, a.without_rule, a.with_work, a.without_work
        );
    }
}

fn routing_report() {
    println!("\n## Never-fail detour — routing and fallback reasons (scale {:?})\n", scale());
    for workload in [Workload::TpcH, Workload::TpcDs] {
        let report = run_routing(
            workload,
            scale(),
            orcalite::JoinOrderStrategy::Exhaustive2,
            orcalite::OrcaConfig::default(),
        );
        print!("{}", format_routing_table(&report));
        println!();
    }
}

fn plancache_report() {
    println!("\n## Plan cache — compile once, serve many (scale {:?})\n", scale());
    // 25 literal variations per template: enough to amortize the
    // compulsory misses past the 95% hit-rate gate.
    let r = run_plan_cache(scale(), 25.max(reps()));
    print!("{}", format_plan_cache_report(&r));
    if let Err(violation) = r.gate() {
        eprintln!("\nplan-cache gate FAILED: {violation}");
        std::process::exit(1);
    }
    println!("\nplan-cache gate passed: hits skip memo search; DDL invalidates entries");
}

fn parallel_report() {
    println!("\n## Parallel execution — morsel-driven workers (scale {:?}, dop 4)\n", scale());
    let r = run_parallel(scale(), 4);
    print!("{}", format_parallel_report(&r));
    if let Err(violation) = r.gate() {
        eprintln!("\nparallel gate FAILED: {violation}");
        std::process::exit(1);
    }
    println!(
        "\nparallel gate passed: identical rows, every template exchanged, \
         ≥2x median critical-path speedup"
    );
}

fn vectorized_report() {
    let reps =
        std::env::var("VECTORIZED_BUDGET").ok().and_then(|s| s.parse().ok()).unwrap_or(9usize);
    println!(
        "\n## Vectorized execution — serial row vs columnar batch engine \
         (scale {:?}, dop 4, {reps} runs per cell)\n",
        scale()
    );
    let r = run_vectorized(scale(), 4, reps);
    print!("{}", format_vectorized_report(&r));
    if let Err(violation) = r.gate() {
        eprintln!("\nvectorized gate FAILED: {violation}");
        std::process::exit(1);
    }
    println!(
        "\nvectorized gate passed: batch rows byte-identical to serial row (dop 1 and 4), \
         ≥2x median wall-clock speedup on the scan/filter/agg templates"
    );
}

fn observe_report() {
    println!(
        "\n## EXPLAIN ANALYZE — per-operator q-errors, every template (scale {:?}, dop 4)\n",
        scale()
    );
    let r = run_observe(scale(), 4);
    print!("{}", format_observe_report(&r));
    if let Err(violation) = r.gate(OBSERVE_Q_CEILING) {
        eprintln!("\nobserve gate FAILED: {violation}");
        std::process::exit(1);
    }
    println!(
        "\nobserve gate passed: instrumented runs byte-identical (serial and dop 4), \
         max q-error under {OBSERVE_Q_CEILING:.0}"
    );
}

fn orders_report() {
    println!(
        "\n## Interesting orders — Sort-enforcer elimination vs always-enforce \
         (scale {:?})\n",
        scale()
    );
    let r = run_orders(scale());
    print!("{}", format_orders_report(&r));
    if let Err(violation) = r.gate() {
        eprintln!("\norders gate FAILED: {violation}");
        std::process::exit(1);
    }
    let (off, on) = r.total_sorts();
    println!(
        "\norders gate passed: {off} → {on} Sort nodes across TPC-H/TPC-DS, \
         byte-identical at dop 1/4/8, plans_costed within 1.5× per template"
    );
}

fn feedback_report() {
    println!(
        "\n## Feedback loop — observe, re-optimize, converge (scale {:?}, threshold 10)\n",
        scale()
    );
    let r = run_feedback(scale());
    print!("{}", format_feedback_report(&r));
    if let Err(violation) = r.gate() {
        eprintln!("\nfeedback gate FAILED: {violation}");
        std::process::exit(1);
    }
    println!(
        "\nfeedback gate passed: every template over q-error 10 re-optimized to ≤ \
         {FEEDBACK_Q_CEILING:.0} on its second compile, identical rows, third serve a hit"
    );
}

fn fuzz_report() {
    // Seeds from `--seed-range a..b` (half-open), default 0..2; queries per
    // seed from FUZZ_BUDGET (default 500 — the acceptance floor).
    let seeds = std::env::args()
        .skip_while(|a| a != "--seed-range")
        .nth(1)
        .and_then(|r| fuzz::parse_seed_range(&r))
        .unwrap_or_else(|| vec![0, 1]);
    let budget = std::env::var("FUZZ_BUDGET").ok().and_then(|s| s.parse().ok()).unwrap_or(500usize);
    println!("\n## Differential fuzzer — nine oracles over random queries (scale {:?})\n", scale());
    let r = fuzz::run_fuzz(&seeds, budget, scale());
    print!("{}", fuzz::format_fuzz_report(&r));
    if let Err(violation) = r.gate() {
        eprintln!("\nfuzz gate FAILED: {violation}");
        std::process::exit(1);
    }
    println!("\nfuzz gate passed: {} queries × 9 oracles, zero miscompares", r.generated);
}

fn governance_report() {
    let budget =
        std::env::var("GOVERNANCE_BUDGET").ok().and_then(|s| s.parse().ok()).unwrap_or(200usize);
    println!(
        "\n## Query governor — chaos under cancel/deadline/memory disturbances \
         (scale {:?}, {budget} injections)\n",
        scale()
    );
    let r = run_governance(scale(), budget);
    print!("{}", format_governance_report(&r));
    if let Err(violation) = r.gate() {
        eprintln!("\ngovernance gate FAILED: {violation}");
        std::process::exit(1);
    }
    println!(
        "\ngovernance gate passed: zero panics, peak memory within budget, \
         engine serviceable after every governed failure"
    );
}

fn concurrency_report() {
    let budget =
        std::env::var("CONCURRENCY_BUDGET").ok().and_then(|s| s.parse().ok()).unwrap_or(320usize);
    println!(
        "\n## Multi-session server — closed-loop concurrency, {} clients vs 1 \
         (scale {:?}, budget {budget})\n",
        concurrency::LOADED_CLIENTS,
        scale()
    );
    let r = concurrency::run_concurrency(scale(), budget);
    print!("{}", concurrency::format_concurrency_report(&r));
    if let Err(violation) = r.gate() {
        eprintln!("\nconcurrency gate FAILED: {violation}");
        std::process::exit(1);
    }
    println!(
        "\nconcurrency gate passed: {:.2}× aggregate QPS at {} clients, \
         zero divergence from single-session serves",
        r.speedup, r.loaded.clients
    );
}

fn print_case(cs: &CaseStudy) {
    println!("### MySQL plan\n```\n{}```", cs.mysql_explain);
    println!("### Orca plan\n```\n{}```", cs.orca_explain);
    println!(
        "\ntimes — MySQL {:.3?} ({} work units), Orca {:.3?} ({} work units)\n",
        cs.mysql_time, cs.mysql_work, cs.orca_time, cs.orca_work
    );
}
