//! The one comparator definition for sorted row orders.
//!
//! Three places in the engine must agree byte-for-byte on what "sorted by
//! these keys" means: the `Sort` enforcer, `GatherMerge`'s k-way run merge,
//! and the partitioned aggregation's group-key output sort. Before this
//! module each carried its own inline comparator; a drift between them (say
//! on NULL placement under DESC) would produce silent order divergence
//! between serial and parallel plans. Now they all call here, and the
//! delivered-order descriptor (`mylite`'s order-property pass) matches
//! against the same convention.
//!
//! ## The convention
//!
//! `Value::total_cmp` places NULL before every non-NULL value. A sort key is
//! `(expr, desc)`; DESC reverses the whole comparison, NULLs included. So:
//!
//! - ASC  ⇒ NULLS FIRST (`nulls_first == !desc` is `true`)
//! - DESC ⇒ NULLS LAST  (`nulls_first == !desc` is `false`)
//!
//! which is exactly the order a B-tree index delivers ascending (NULL keys
//! sort first in `IndexKey`) and in reverse descending. [`nulls_first`]
//! makes the placement explicit for order descriptors; [`cmp_values`] is the
//! single point of truth the comparators compose.

use crate::plan::SortKey;
use std::cmp::Ordering;
use taurus_common::{Row, Value};

/// NULL placement implied by a key's direction under the engine's total
/// order: ascending keys see NULLs first, descending keys see NULLs last.
pub fn nulls_first(desc: bool) -> bool {
    !desc
}

/// Compare two values under one sort key's direction. NULL placement follows
/// [`nulls_first`]; there is no independent NULLS FIRST/LAST knob — every
/// consumer of this module inherits the same placement.
pub fn cmp_values(a: &Value, b: &Value, desc: bool) -> Ordering {
    let ord = a.total_cmp(b);
    if desc {
        ord.reverse()
    } else {
        ord
    }
}

/// Compare two pre-evaluated key tuples under a sort-key list. Equal tuples
/// return `Equal` — callers needing determinism on ties must break them by
/// input position (stable sort) or run index (merge).
pub fn cmp_key_tuples(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let ord = cmp_values(&a[i], &b[i], k.desc);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Compare two rows by their leading `k` columns, ascending — the shape the
/// partitioned-aggregation output sort and group-key merges use.
pub fn cmp_leading_cols(a: &Row, b: &Row, k: usize) -> Ordering {
    for i in 0..k {
        let ord = cmp_values(&a[i], &b[i], false);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Whether `rows` is sorted under `keys`, with key values already projected
/// into each row at `key_slots[i]`. Used by test oracles to check ORDER BY
/// output without re-evaluating expressions.
pub fn rows_sorted_by<F>(rows: &[Row], num_keys: usize, descs: F) -> bool
where
    F: Fn(usize) -> bool,
{
    rows.windows(2).all(|w| {
        for (i, (a, b)) in w[0].iter().zip(w[1].iter()).take(num_keys).enumerate() {
            match cmp_values(a, b, descs(i)) {
                Ordering::Less => return true,
                Ordering::Greater => return false,
                Ordering::Equal => {}
            }
        }
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::Expr;

    #[test]
    fn null_placement_follows_direction() {
        assert!(nulls_first(false), "ASC is NULLS FIRST");
        assert!(!nulls_first(true), "DESC is NULLS LAST");
        assert_eq!(cmp_values(&Value::Null, &Value::Int(1), false), Ordering::Less);
        assert_eq!(cmp_values(&Value::Null, &Value::Int(1), true), Ordering::Greater);
    }

    #[test]
    fn key_tuple_comparison_mixes_directions() {
        let keys = vec![
            SortKey { expr: Expr::Slot(0), desc: false },
            SortKey { expr: Expr::Slot(1), desc: true },
        ];
        let a = [Value::Int(1), Value::Int(5)];
        let b = [Value::Int(1), Value::Int(9)];
        // Equal on the ASC key; the DESC key ranks 9 before 5.
        assert_eq!(cmp_key_tuples(&a, &b, &keys), Ordering::Greater);
        assert_eq!(cmp_key_tuples(&a, &a, &keys), Ordering::Equal);
    }

    #[test]
    fn leading_cols_sort_ascending_nulls_first() {
        let a = vec![Value::Null, Value::Int(0)];
        let b = vec![Value::Int(1), Value::Int(0)];
        assert_eq!(cmp_leading_cols(&a, &b, 1), Ordering::Less);
    }

    #[test]
    fn sortedness_check_honors_desc() {
        let rows = vec![vec![Value::Int(3)], vec![Value::Int(2)], vec![Value::Null]];
        assert!(rows_sorted_by(&rows, 1, |_| true), "descending with NULL last");
        assert!(!rows_sorted_by(&rows, 1, |_| false));
    }
}
