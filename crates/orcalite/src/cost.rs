//! Orca's cost model.
//!
//! Honest, fully cost-based comparisons between join methods and access
//! paths — the property MySQL's optimizer lacks (§3.1: "hash join selection
//! is not cost-based"). Constants reflect the paper's observation that
//! Orca carries "relatively high index lookup and hash join costs" tuned
//! for MPP scans rather than InnoDB (§9): random access is priced
//! noticeably above sequential.
//!
//! Every function here is a pure function of *row counts*, which is what
//! makes feedback-driven re-optimization compose cleanly: when the memo's
//! group cardinalities are replaced by observed actuals (overrides carried
//! on [`crate::md::MdCache`]), the same formulas re-rank join orders and
//! methods with no cost-model changes — garbage-in stops, garbage-out
//! stops.

/// Sequential row processing (scan).
pub const SEQ_ROW: f64 = 1.0;
/// Random-access row via an index range.
pub const RANGE_ROW: f64 = 2.0;
/// Fixed cost of one index probe ("relatively high index lookup cost").
pub const LOOKUP_BASE: f64 = 4.0;
/// Per matched row of an index probe.
pub const LOOKUP_ROW: f64 = 1.5;
/// Hash-table insert per build row ("relatively high hash join cost").
pub const HASH_BUILD_ROW: f64 = 1.8;
/// Hash probe per probe row.
pub const HASH_PROBE_ROW: f64 = 1.0;
/// Per output row of any join.
pub const JOIN_OUT_ROW: f64 = 0.1;
/// Re-execution multiplier for correlated apply (inner plan per outer row).
pub const APPLY_ROW: f64 = 1.0;
/// Cost of one nested-loop pair evaluation (joined-row construction plus
/// condition check — measurably pricier than a hash probe).
pub const NL_PAIR: f64 = 2.5;
/// Exchange transfer cost per row crossing a gather/repartition boundary —
/// the Orca-style penalty that keeps small queries serial.
pub const TRANSFER_ROW: f64 = 0.2;
/// Fixed cost of spinning up one parallel worker (pool + context setup).
pub const WORKER_STARTUP: f64 = 25.0;

/// Cost of scanning `n` rows sequentially.
pub fn scan(n: f64) -> f64 {
    n * SEQ_ROW
}

/// Cost of an index range retrieving `n` rows.
pub fn range(n: f64) -> f64 {
    n.max(1.0) * RANGE_ROW
}

/// Cost of a *full ordered* index scan over `n` rows: every row is fetched
/// through the index (random access, priced like [`range`]) but the output
/// arrives already sorted on the index key — the alternative the memo
/// weighs against scan-then-sort when a block has a required order.
pub fn ordered_scan(n: f64) -> f64 {
    n.max(1.0) * RANGE_ROW
}

/// Per-row-per-doubling cost of an in-memory sort. Deliberately cheap
/// relative to random access: a sort enforcer only loses to an ordered
/// index scan when the scanned row count is small or the sort input is
/// large, which mirrors the host executor's actual behaviour.
pub const SORT_ROW_LOG: f64 = 0.1;

/// Cost of sorting `n` rows: `n · log2(n)` comparisons at
/// [`SORT_ROW_LOG`] each. This prices both the host's Sort enforcer (when
/// the memo decides enforcing is cheaper than delivering order) and
/// sort-ahead alternatives inside the memo (sort a small leaf early, let
/// joins preserve the order for free).
pub fn sort(n: f64) -> f64 {
    let n = n.max(1.0);
    n * n.max(2.0).log2() * SORT_ROW_LOG
}

/// Cost of `probes` index lookups each matching `rows_per_probe` rows.
pub fn lookups(probes: f64, rows_per_probe: f64) -> f64 {
    probes * (LOOKUP_BASE + rows_per_probe * LOOKUP_ROW)
}

/// Cost of a hash join given already-costed children.
pub fn hash_join(build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
    build_rows * HASH_BUILD_ROW + probe_rows * HASH_PROBE_ROW + out_rows * JOIN_OUT_ROW
}

/// Cost of a plain (materialized-inner) nested loop join: every
/// outer×inner pair is constructed and checked.
pub fn nl_join(outer_rows: f64, inner_rows: f64, out_rows: f64) -> f64 {
    outer_rows * inner_rows * NL_PAIR + out_rows * JOIN_OUT_ROW
}

/// Cost of a correlated apply: the inner plan re-executes per outer row.
pub fn apply(outer_rows: f64, inner_cost: f64, inner_rows: f64) -> f64 {
    outer_rows * (inner_cost + inner_rows * APPLY_ROW)
}

/// DOP-aware cost of running a fragment of serial cost `serial_cost`
/// emitting `out_rows` under `dop` workers: per-worker tuple cost (the
/// fragment's work divides across workers) plus the exchange transfer cost
/// of every output row and the workers' startup cost.
pub fn parallel_fragment(serial_cost: f64, out_rows: f64, dop: usize) -> f64 {
    let d = dop.max(1) as f64;
    serial_cost / d + out_rows * TRANSFER_ROW + d * WORKER_STARTUP
}

/// Choose the degree of parallelism for a plan whose root costs
/// `root_cost` and emits `root_rows`: the candidate dop (2..=max_dop) with
/// the cheapest [`parallel_fragment`] estimate, or 1 when serial wins.
/// This is the memo's serial-vs-parallel decision — the same honest
/// cost-based comparison the paper makes for join methods, applied to
/// parallelism (a "query optimization in the wild" industrial trait).
pub fn choose_dop(root_cost: f64, root_rows: f64, max_dop: usize) -> usize {
    let mut best_dop = 1;
    let mut best_cost = root_cost;
    for dop in 2..=max_dop.max(1) {
        let c = parallel_fragment(root_cost, root_rows, dop);
        if c < best_cost {
            best_cost = c;
            best_dop = dop;
        }
    }
    best_dop
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_beats_lookup_on_large_outer() {
        // Probing 1M outer rows against a 10k-row build should beat 1M
        // index lookups — the Q1/Q6 effect (§6.2).
        let hash = hash_join(10_000.0, 1_000_000.0, 1_000_000.0);
        let lkp = lookups(1_000_000.0, 1.0);
        assert!(hash < lkp, "hash={hash} lookup={lkp}");
    }

    #[test]
    fn lookup_beats_hash_on_small_outer() {
        // 10 probes against a 1M-row table: lookups win (don't build 1M).
        let hash = hash_join(1_000_000.0, 10.0, 10.0);
        let lkp = lookups(10.0, 1.0);
        assert!(lkp < hash, "hash={hash} lookup={lkp}");
    }

    #[test]
    fn cross_join_is_penalized() {
        let cross = nl_join(1000.0, 1000.0, 1_000_000.0);
        let hash = hash_join(1000.0, 1000.0, 1000.0);
        assert!(cross > 100.0 * hash);
    }

    #[test]
    fn small_queries_stay_serial_big_ones_parallelize() {
        // A 100-unit query: startup cost dwarfs the split work.
        assert_eq!(choose_dop(100.0, 50.0, 4), 1, "tiny query stays serial");
        // A 100k-unit scan emitting few rows: parallelism pays for itself.
        assert_eq!(choose_dop(100_000.0, 100.0, 4), 4, "big query uses full dop");
        // max_dop 1 disables the choice entirely.
        assert_eq!(choose_dop(1e9, 0.0, 1), 1);
    }

    #[test]
    fn transfer_cost_penalizes_wide_outputs() {
        // Same work, but emitting every row through the exchange: the
        // transfer term should push the chosen dop down or to serial.
        let narrow = parallel_fragment(10_000.0, 10.0, 4);
        let wide = parallel_fragment(10_000.0, 1_000_000.0, 4);
        assert!(wide > narrow + 100_000.0, "narrow={narrow} wide={wide}");
        assert_eq!(choose_dop(10_000.0, 1_000_000.0, 4), 1, "transfer cost keeps it serial");
    }
}
