//! Tier-1 observability: golden per-operator q-error bounds.
//!
//! EXPLAIN ANALYZE compares the optimizer's row estimates against actual
//! executed rows and reports the worst-case ratio (q-error) per operator.
//! These tests pin that signal on representative TPC-H templates: the data
//! generator and the estimator are both deterministic, so a ceiling breach
//! is an estimation regression, not noise. (This is exactly the harness
//! that caught the scalar-aggregate and derived-table cardinality bugs —
//! pre-fix, stacked derived tables compounded to q-errors past 1e28.)

use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::mylite::Engine;
use taurus_orca::orcalite::OrcaConfig;
use taurus_orca::workloads::{tpch, Scale};

#[test]
fn golden_q_errors_hold_on_representative_tpch_templates() {
    let engine = Engine::new(tpch::build_catalog(Scale(0.05)));
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    // Observed worst per-operator q-errors at this scale: q1 3.25 (grouped
    // aggregate output), q3 5.14 (join + group-by), q9 10.50 (deep
    // multi-join over derived cardinalities), q15 3.00 (range-merged
    // revenue view), q18 50.00 (the HAVING filter over an IN-subquery's
    // aggregate — static estimation cannot see the HAVING's selectivity;
    // the feedback loop converges it to 1 on the second compile, see
    // `harness feedback`). Ceilings leave ~1.5x headroom; they were
    // tightened after the derived-column NDV propagation fix cut the
    // suite-wide max from 336 to 50.
    for (idx, name, ceiling) in
        [(0, "q1", 5.0), (2, "q3", 8.0), (8, "q9", 15.0), (14, "q15", 5.0), (17, "q18", 60.0)]
    {
        let q = &tpch::queries()[idx];
        assert_eq!(q.name, name, "template order changed; re-pin the golden values");
        let analyzed = engine.explain_analyze(&q.sql, &orca).expect(name);
        let executed = analyzed.nodes.iter().filter(|n| n.loops > 0).count();
        assert!(executed > 0, "{name}: nothing executed");
        let max_q = analyzed.nodes.iter().filter_map(|n| n.q_error).fold(1.0f64, f64::max);
        assert!(
            max_q <= ceiling,
            "{name}: worst per-operator q-error {max_q:.2} exceeds golden ceiling {ceiling}"
        );
    }
}

#[test]
fn explain_analyze_carries_the_search_trace() {
    // One line of optimizer telemetry rides under the banner: strategy,
    // ladder rung, memo size, rule hits, and budget burn for the search
    // that produced this exact plan.
    let engine = Engine::new(tpch::build_catalog(Scale(0.02)));
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let q3 = &tpch::queries()[2];
    let analyzed = engine.explain_analyze(&q3.sql, &orca).expect("analyze");
    assert!(analyzed.text.starts_with("EXPLAIN ANALYZE (ORCA)\n"), "{}", analyzed.text);
    let trace = analyzed.text.lines().nth(1).unwrap_or_default();
    assert!(trace.starts_with("[search: strategy=EXHAUSTIVE2 rung=0 "), "{trace}");
}
