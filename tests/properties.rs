//! Property-based tests on the core invariants, driven by the in-repo
//! deterministic RNG (no proptest; the workspace must test offline).
//!
//! * rewrites (`factor_or`, `push_not`) preserve three-valued semantics on
//!   arbitrary expressions and rows;
//! * the metadata provider's OID cubes are bijective and commutation /
//!   inversion are involutions (§5.2–5.3);
//! * histogram selectivities are probabilities that partition correctly;
//! * `LIKE` matching agrees with a reference backtracking matcher;
//! * the string→i64 prefix encoding is order-preserving (§7);
//! * and the end-to-end invariant: random queries produce identical results
//!   under the MySQL optimizer and the Orca detour.

use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::catalog::encode_str_prefix;
use taurus_orca::catalog::histogram::Histogram;
use taurus_orca::common::expr::{factor_or, like_match, EvalCtx};
use taurus_orca::common::{BinOp, Expr, Layout, Value};
use taurus_orca::orcalite::OrcaConfig;
use taurus_orca::workloads::gen::SmallRng;
use taurus_orca::workloads::{tpch, Scale};

fn rng(test: &str) -> SmallRng {
    let mut seed = 0x005E_ED0F_9806_7E57_u64;
    for b in test.bytes() {
        seed = seed.wrapping_mul(0x0100_0000_01b3).wrapping_add(b as u64);
    }
    SmallRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------- rewrites

/// Random boolean expressions over 4 integer columns of one table, with
/// nesting depth up to 3 (the old proptest strategy's shape).
fn bool_expr(r: &mut SmallRng, depth: usize) -> Expr {
    let ops = [BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Ge];
    if depth == 0 || r.gen_bool(0.4) {
        let col = r.gen_range(0..4usize);
        let v = r.gen_range(0..5i64);
        let op = ops[r.gen_range(0..ops.len())];
        return Expr::binary(op, Expr::col(0, col), Expr::int(v));
    }
    match r.gen_range(0..3i32) {
        0 => Expr::and(bool_expr(r, depth - 1), bool_expr(r, depth - 1)),
        1 => Expr::or(bool_expr(r, depth - 1), bool_expr(r, depth - 1)),
        _ => Expr::not(bool_expr(r, depth - 1)),
    }
}

/// Random rows for that table; column values may be NULL.
fn row(r: &mut SmallRng) -> Vec<Value> {
    (0..4)
        .map(|_| if r.gen_bool(0.25) { Value::Null } else { Value::Int(r.gen_range(0..5i64)) })
        .collect()
}

#[test]
fn factor_or_preserves_three_valued_semantics() {
    let mut r = rng("factor_or");
    for _ in 0..256 {
        let e = bool_expr(&mut r, 3);
        let vals = row(&mut r);
        let layout = Layout::single(1, 0, 4);
        let ctx = EvalCtx::new(&vals, &layout);
        let before = e.clone().eval(ctx).unwrap().truth();
        let after = factor_or(e.clone()).eval(ctx).unwrap().truth();
        assert_eq!(before, after, "factor_or changed semantics of {e:?} on {vals:?}");
    }
}

#[test]
fn push_not_preserves_three_valued_semantics() {
    let mut r = rng("push_not");
    for _ in 0..256 {
        let e = bool_expr(&mut r, 3);
        let vals = row(&mut r);
        let layout = Layout::single(1, 0, 4);
        let ctx = EvalCtx::new(&vals, &layout);
        let before = Expr::not(e.clone()).eval(ctx).unwrap().truth();
        let after = mylite::resolve::push_not(Expr::not(e.clone())).eval(ctx).unwrap().truth();
        assert_eq!(before, after, "push_not changed semantics of NOT {e:?} on {vals:?}");
    }
}

// ---------------------------------------------------------------- OID cubes

#[test]
fn oid_decoders_partition_the_space() {
    use taurus_orca::bridge::oid;
    let mut r = rng("oid_partition");
    for _ in 0..512 {
        let raw = r.gen_range(0..3_000_000i64) as u64;
        let o = taurus_orca::common::Oid(raw);
        // At most one decoder accepts any OID (the §5.6 layout is
        // collision-free), and whatever decodes re-encodes to the same OID.
        let mut hits = 0;
        if let Some(t) = oid::decode_type(o) {
            hits += 1;
            assert_eq!(oid::type_oid(t), o);
        }
        if let Some((l, rr, op)) = oid::decode_arith(o) {
            hits += 1;
            assert_eq!(oid::arith_oid(l, rr, op).unwrap(), o);
        }
        if let Some((l, rr, op)) = oid::decode_cmp(o) {
            hits += 1;
            assert_eq!(oid::cmp_oid(l, rr, op).unwrap(), o);
        }
        if let Some((c, op)) = oid::decode_agg(o) {
            hits += 1;
            assert_eq!(oid::agg_oid(c, op).unwrap(), o);
        }
        if let Some(t) = oid::decode_relation(o) {
            hits += 1;
            assert_eq!(oid::relation_oid(t), o);
        }
        if let Some((t, c)) = oid::decode_column(o) {
            hits += 1;
            assert_eq!(oid::column_oid(t, c), o);
        }
        assert!(hits <= 1, "OID {raw} decoded by {hits} slots");
    }
}

#[test]
fn commutation_and_inversion_are_involutions() {
    use taurus_orca::bridge::oid;
    // The full comparison cube, exhaustively (it is small).
    for raw in 3_000u64..3_864 {
        let o = taurus_orca::common::Oid(raw);
        assert!(oid::decode_cmp(o).is_some());
        let c = oid::commutator_oid(o);
        assert_eq!(oid::commutator_oid(c), o);
        let i = oid::inverse_oid(o);
        assert_eq!(oid::inverse_oid(i), o);
    }
}

// --------------------------------------------------------------- histograms

#[test]
fn histogram_selectivities_partition() {
    let mut r = rng("hist_partition");
    for _ in 0..128 {
        let n = r.gen_range(1..300usize);
        let mut data: Vec<i64> = (0..n).map(|_| r.gen_range(-50..50i64)).collect();
        data.sort_unstable();
        let probe = r.gen_range(-60..60i64);
        let buckets = r.gen_range(1..20usize);
        let values: Vec<Value> = data.iter().map(|&i| Value::Int(i)).collect();
        let h = Histogram::build(&values, buckets).unwrap();
        let probe = Value::Int(probe);
        let lt = h.selectivity(BinOp::Lt, &probe);
        let eq = h.selectivity(BinOp::Eq, &probe);
        let gt = h.selectivity(BinOp::Gt, &probe);
        for s in [lt, eq, gt] {
            assert!((0.0..=1.0).contains(&s), "selectivity {s} out of range");
        }
        // <, =, > partition the non-null rows: exactly for singleton
        // histograms, approximately for equi-height (whose equality mass is
        // a bucket-NDV estimate, not an exact count).
        let slack = if h.is_singleton() { 1e-9 } else { 0.2 };
        assert!(
            (lt + eq + gt - 1.0).abs() <= slack,
            "lt={lt} eq={eq} gt={gt} singleton={}",
            h.is_singleton()
        );
    }
}

#[test]
fn histogram_lt_is_monotone() {
    let mut r = rng("hist_monotone");
    for _ in 0..128 {
        let n = r.gen_range(2..200usize);
        let mut data: Vec<i64> = (0..n).map(|_| r.gen_range(-50..50i64)).collect();
        data.sort_unstable();
        let a = r.gen_range(-60..60i64);
        let b = r.gen_range(-60..60i64);
        let values: Vec<Value> = data.iter().map(|&i| Value::Int(i)).collect();
        let h = Histogram::build(&values, 8).unwrap();
        let (lo, hi) = (a.min(b), a.max(b));
        let s_lo = h.selectivity(BinOp::Lt, &Value::Int(lo));
        let s_hi = h.selectivity(BinOp::Lt, &Value::Int(hi));
        assert!(s_lo <= s_hi + 1e-9, "Lt selectivity must be monotone: {s_lo} > {s_hi}");
    }
}

/// Random printable-ASCII string of length `0..=max`.
fn ascii_string(r: &mut SmallRng, max: usize, alphabet: &[u8]) -> String {
    let len = r.gen_range(0..max + 1);
    (0..len).map(|_| alphabet[r.gen_range(0..alphabet.len())] as char).collect()
}

#[test]
fn string_prefix_encoding_is_monotone() {
    let printable: Vec<u8> = (b' '..=b'~').collect();
    let mut r = rng("prefix_encoding");
    for _ in 0..512 {
        let a = ascii_string(&mut r, 16, &printable);
        let b = ascii_string(&mut r, 16, &printable);
        // The encoding is exactly the order of the zero-padded 8-byte
        // prefixes — monotone in byte order, with §7's caveat that longer
        // strings sharing an 8-byte prefix collapse.
        fn pad8(s: &str) -> [u8; 8] {
            let mut out = [0u8; 8];
            let n = s.len().min(8);
            out[..n].copy_from_slice(&s.as_bytes()[..n]);
            out
        }
        let (ea, eb) = (encode_str_prefix(&a), encode_str_prefix(&b));
        assert_eq!(ea.cmp(&eb), pad8(&a).cmp(&pad8(&b)), "{a:?} vs {b:?}");
        if a.as_bytes() <= b.as_bytes() {
            assert!(ea <= eb, "monotone: {a:?} vs {b:?}");
        }
    }
}

// -------------------------------------------------------------------- LIKE

/// Reference LIKE matcher: exponential backtracking, obviously correct.
fn like_reference(s: &[u8], p: &[u8]) -> bool {
    match (s.first(), p.first()) {
        (_, None) => s.is_empty(),
        (_, Some(b'%')) => {
            like_reference(s, &p[1..]) || (!s.is_empty() && like_reference(&s[1..], p))
        }
        (Some(c), Some(b'_')) => {
            let _ = c;
            like_reference(&s[1..], &p[1..])
        }
        (Some(c), Some(pc)) => c == pc && like_reference(&s[1..], &p[1..]),
        (None, Some(_)) => false,
    }
}

#[test]
fn like_match_agrees_with_reference() {
    let mut r = rng("like_match");
    for _ in 0..512 {
        let s = ascii_string(&mut r, 10, b"abc");
        let p = ascii_string(&mut r, 8, b"abc%_");
        assert_eq!(
            like_match(s.as_bytes(), p.as_bytes()),
            like_reference(s.as_bytes(), p.as_bytes()),
            "s={s:?} p={p:?}"
        );
    }
}

// --------------------------------------------------- end-to-end equivalence

/// Random single-block queries over the TPC-H schema: filters, a join or
/// two, optional grouping. Both optimizers must agree on the result.
#[test]
fn random_queries_agree_between_optimizers() {
    let engine = mylite::Engine::new(tpch::build_catalog(Scale(0.05)));
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let cmps = ["<", "<=", ">", ">=", "=", "<>"];
    let mut cases: Vec<String> = Vec::new();
    for i in 0..24 {
        let cmp = cmps[i % cmps.len()];
        let v = (i * 7) % 50;
        cases.push(format!(
            "SELECT COUNT(*) AS n FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND l_quantity {cmp} {v}"
        ));
        cases.push(format!(
            "SELECT o_orderpriority, COUNT(*) AS n FROM orders, customer \
             WHERE o_custkey = c_custkey AND c_acctbal {cmp} {v} \
             GROUP BY o_orderpriority ORDER BY o_orderpriority"
        ));
        cases.push(format!(
            "SELECT COUNT(*) AS n FROM part, partsupp, supplier \
             WHERE p_partkey = ps_partkey AND ps_suppkey = s_suppkey \
               AND (p_size {cmp} {v} OR s_acctbal < 0)"
        ));
    }
    for sql in cases {
        let a = engine.query(&sql).unwrap_or_else(|e| panic!("mysql failed on {sql}: {e}"));
        let b =
            engine.query_with(&sql, &orca).unwrap_or_else(|e| panic!("orca failed on {sql}: {e}"));
        assert_eq!(a.rows, b.rows, "disagreement on {sql}");
    }
}
