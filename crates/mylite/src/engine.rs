//! The session facade: parse → resolve/prepare → optimize → refine →
//! execute, with a pluggable cost-based-optimizer backend.
//!
//! The backend hook is the integration point of the whole paper: the bridge
//! crate implements [`CostBasedOptimizer`] with the Orca detour (convert →
//! optimize in Orca → convert back to a skeleton), and everything else —
//! parsing, preparation, refinement, execution — is shared, exactly as in
//! Fig 3.
//!
//! # Concurrency model
//!
//! One `Engine` is shared by every session (`Engine` is `Send + Sync`);
//! the server front end hands each connection an `Arc<Engine>` plus a
//! [`SessionOpts`] of per-session knob overrides. The shared state is
//! layered so sessions don't convoy:
//!
//! * **Catalog** — behind a `RwLock`. Every serve takes one read guard up
//!   front and keeps it for the duration: the catalog version it snapshots
//!   is therefore the version of the catalog it *executes against*, which
//!   is what makes plan-cache invalidation sound under races (see
//!   [`crate::plancache`]). DDL (`analyze_shared`, inserts) takes the
//!   write lock and naturally drains in-flight serves first.
//! * **Plan cache** — sharded; cached serves take a shard read lock on the
//!   hot path and execute under the entry's own lock.
//! * **Admission** — an atomic counter fast path; only queued waiters touch
//!   the condvar, and a waiting session's deadline bounds its queue time.
//! * **In-flight registry** — sharded by query id.
//!
//! All locks are poison-recovering ([`crate::sync`]): one panicked query
//! under `catch_unwind` isolation cannot brick later sessions.

use crate::bound::BoundStatement;
use crate::explain::{annotate, explain_plan, explain_plan_analyzed, NodeAnnotation};
use crate::feedback::{count_nodes, fold_plan, worst_q, ObservationStore};
use crate::optimizer::{optimize_statement, optimize_statement_feedback};
use crate::plancache::{CacheKey, CacheOutcome, Lookup, PlanCache, PlanCacheStats};
use crate::refine::refine_statement_orders;
use crate::resolve::resolve_union_branches;
use crate::skeleton::Skeleton;
use crate::sync::{lock, rlock, wlock};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};
use taurus_catalog::feedback::CardOverrides;
use taurus_catalog::stats::AnalyzeOptions;
use taurus_catalog::Catalog;
use taurus_common::error::{Error, Result};
use taurus_common::expr::EvalCtx;
use taurus_common::{Layout, Row, Value};
use taurus_executor::{
    execute, ExecContext, GovernorSpec, ObserverIndex, ParallelOpts, Plan, QueryGovernor,
    DEFAULT_MORSEL_ROWS,
};
use taurus_sql::fingerprint::{parameterize, token_digest};
use taurus_sql::rewrite::rewrite_set_ops;
use taurus_sql::{parse, SelectStmt, Statement};

/// Runtime-governance fault overrides an optimizer backend's fault injector
/// wants applied to the engine's execution of its plans (chaos testing).
/// The engine layers them on top of the session knobs when building each
/// query's [`QueryGovernor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecFaults {
    /// Trip the cancel token at the N-th governor check.
    pub cancel_after: Option<u64>,
    /// Clamp the query's memory budget to at most this many bytes.
    pub memory_clamp: Option<u64>,
}

/// A runtime-governance outcome the engine reports back to the optimizer
/// that planned the statement, so routers can count cancellations and
/// resource-limit failures alongside their fallback taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernedOutcome {
    /// The query was cancelled mid-execution.
    Cancelled,
    /// The query ran past its wall-clock deadline.
    DeadlineExceeded,
    /// The query exceeded its memory budget and the serial retry (if any)
    /// did too — the error surfaced to the caller.
    MemoryExceeded,
    /// The query exceeded its memory budget at full dop but succeeded on
    /// the degraded serial retry; the caller saw a normal answer.
    MemoryDegraded,
}

/// A pluggable cost-based optimizer (the orange box in paper Fig 2).
pub trait CostBasedOptimizer {
    /// Short name for EXPLAIN banners and logs.
    fn name(&self) -> &'static str;
    /// Produce a skeleton plan for a prepared statement.
    fn optimize(&self, catalog: &Catalog, bound: &BoundStatement) -> Result<Skeleton>;
    /// Runtime-governance faults to inject into this optimizer's
    /// executions. The default backend injects none.
    fn exec_faults(&self) -> Option<ExecFaults> {
        None
    }
    /// Observe a runtime-governance outcome for one of this optimizer's
    /// statements. The default backend ignores them.
    fn note_governed(&self, _outcome: GovernedOutcome) {}
    /// Re-optimize a prepared statement with observed cardinalities from a
    /// previous execution injected into the estimation path. Backends that
    /// cannot consume feedback just optimize statically.
    fn optimize_with_feedback(
        &self,
        catalog: &Catalog,
        bound: &BoundStatement,
        _fb: &CardOverrides,
    ) -> Result<Skeleton> {
        self.optimize(catalog, bound)
    }
    /// Observe that the engine re-optimized one of this backend's cached
    /// statements from runtime feedback. The default backend ignores it.
    fn note_reoptimized(&self) {}
}

/// MySQL's native greedy optimizer.
#[derive(Debug, Default, Clone, Copy)]
pub struct MySqlOptimizer;

impl CostBasedOptimizer for MySqlOptimizer {
    fn name(&self) -> &'static str {
        "mysql"
    }

    fn optimize(&self, catalog: &Catalog, bound: &BoundStatement) -> Result<Skeleton> {
        optimize_statement(catalog, bound)
    }

    fn optimize_with_feedback(
        &self,
        catalog: &Catalog,
        bound: &BoundStatement,
        fb: &CardOverrides,
    ) -> Result<Skeleton> {
        optimize_statement_feedback(catalog, bound, fb)
    }
}

/// One fully planned union branch.
#[derive(Debug, Clone)]
pub struct PlannedBranch {
    pub bound: BoundStatement,
    pub skeleton: Skeleton,
    pub plan: Plan,
    /// UNION ALL with respect to the previous branch.
    pub all: bool,
}

/// A fully planned statement (one or more union branches).
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    pub branches: Vec<PlannedBranch>,
    pub columns: Vec<String>,
}

impl PlannedQuery {
    /// The primary branch (non-union statements have exactly one).
    pub fn primary(&self) -> &PlannedBranch {
        &self.branches[0]
    }
}

/// Query results plus the executor's work-unit accounting.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// Machine-independent work measure (see `ExecStats::work_units`).
    pub work_units: u64,
    /// Work on the critical path: parallel fragments count only their
    /// slowest worker, so `work_units / critical_work_units` is the
    /// machine-independent parallel speedup.
    pub critical_work_units: u64,
}

/// What `EXPLAIN ANALYZE` returns: the query's results (so callers can
/// verify instrumentation didn't perturb them), the annotated plan text,
/// and the raw per-operator annotations for programmatic q-error checks
/// (pre-order per branch, branches concatenated).
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    pub output: QueryOutput,
    pub text: String,
    pub nodes: Vec<NodeAnnotation>,
}

/// Per-session overrides layered over the engine-wide knob defaults. A
/// `None` field inherits the engine knob; `Some` pins the session's value
/// (including "explicitly off": `Some(0)` for the deadline/budget fields
/// and a non-positive threshold for `reopt_q_threshold`). The server's
/// session state holds one of these per connection, and per-statement
/// options override it once more.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionOpts {
    /// Degree of parallelism (plan-shaping: part of the plan-cache key).
    pub dop: Option<usize>,
    /// Morsel size for parallel scans (execution-only).
    pub morsel_rows: Option<usize>,
    /// Vectorized columnar batch execution (execution-only: plans are
    /// unaffected, only the executor's inner loops change).
    pub vectorized: Option<bool>,
    /// Minimum driving-table rows before an exchange is placed
    /// (plan-shaping: part of the plan-cache key).
    pub parallel_threshold: Option<usize>,
    /// Drop Sort enforcers whose input already delivers the requested
    /// order (plan-shaping: part of the plan-cache key).
    pub order_opt: Option<bool>,
    /// Wall-clock budget per query in ms; `Some(0)` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Tracked-memory budget per query in bytes; `Some(0)` = unlimited.
    pub memory_budget: Option<u64>,
    /// Worst-q-error threshold for feedback re-optimization; non-positive
    /// or non-finite values disable the loop for this session.
    pub reopt_q_threshold: Option<f64>,
}

/// The fully resolved knob set one statement runs under: session overrides
/// layered over engine defaults, captured once per serve.
#[derive(Debug, Clone, Copy)]
struct Knobs {
    dop: usize,
    morsel_rows: usize,
    vectorized: bool,
    parallel_threshold: usize,
    order_opt: bool,
    deadline_ms: u64,
    memory_budget: u64,
    cancel_after: u64,
    reopt_q_threshold: Option<f64>,
}

/// A read-locked view of the engine's catalog. Dereferences to
/// [`Catalog`]; drop it before calling anything that mutates the catalog
/// (`analyze_shared`, `with_catalog_mut`, INSERT) or issuing statements —
/// holding it across an engine call can deadlock against a queued writer.
pub struct CatalogRef<'a>(RwLockReadGuard<'a, Catalog>);

impl Deref for CatalogRef<'_> {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        &self.0
    }
}

/// Number of independently locked in-flight registry shards (query-id
/// keyed; registration/finish touch one shard each).
const IN_FLIGHT_SHARDS: usize = 8;

/// The engine: a catalog plus the machinery to run SQL against it.
///
/// `Engine` is `Send + Sync`: the catalog sits behind a `RwLock`, the plan
/// cache is sharded with interior locking, the knobs are atomics, and the
/// admission gate and in-flight registry are atomic/sharded — so thousands
/// of sessions can share one engine across threads while the
/// single-threaded API stays unchanged.
pub struct Engine {
    /// The catalog. Serves hold a read guard for their whole duration (the
    /// version snapshot *is* the executed-against version); DDL takes the
    /// write lock and therefore drains in-flight serves first.
    catalog: RwLock<Catalog>,
    /// Sharded fingerprint-keyed plan cache for the `*_cached` entry
    /// points (interior locking; see [`crate::plancache`]).
    plan_cache: PlanCache,
    /// Engine-default degree of parallelism (1 = serial).
    dop: AtomicUsize,
    /// Runtime morsel size for parallel scans (rows per morsel).
    morsel_rows: AtomicUsize,
    /// Engine-default vectorized batch execution (off by default).
    vectorized: AtomicBool,
    /// Minimum driving-table rows before an exchange is worth placing.
    parallel_threshold: AtomicUsize,
    /// Engine-default interesting-order optimization: drop Sort enforcers
    /// whose input already delivers the requested order (on by default).
    order_opt: AtomicBool,
    /// Admission gate, fast path: executing entry points CAS `admitted`
    /// below `admission_limit` before doing any work, so at most `limit`
    /// callers contend for the morsel pool at once.
    admitted: AtomicUsize,
    admission_limit: AtomicUsize,
    /// Queued-waiter count; a releasing permit only touches the condvar
    /// mutex when somebody is actually waiting.
    admission_waiters: AtomicUsize,
    /// Slow path: waiters park here. The mutex guards nothing but the
    /// wait itself (the gate state is the atomics above).
    admission_mu: Mutex<()>,
    admission_cv: Condvar,
    /// Engine-default wall-clock budget per query, in ms (0 = none).
    deadline_ms: AtomicU64,
    /// Engine-default memory budget per query, in bytes (0 = unlimited).
    memory_budget: AtomicU64,
    /// Chaos knob: cancel each query at its N-th governor check (0 = off).
    cancel_after: AtomicU64,
    /// Query-id allocator for [`Engine::cancel`].
    next_query_id: AtomicU64,
    /// Governors of currently executing queries, sharded by query id.
    in_flight: Vec<Mutex<HashMap<u64, Arc<QueryGovernor>>>>,
    /// Peak tracked memory of the most recently finished governed query.
    last_peak: AtomicU64,
    /// Observed per-operator cardinalities of instrumented cached serves,
    /// keyed by statement fingerprint (the feedback loop's memory).
    feedback: ObservationStore,
    /// Worst observed q-error above which the next instrumented cached
    /// serve re-optimizes with feedback (f64 bits; 0.0 = loop disabled).
    reopt_q_threshold: AtomicU64,
}

/// Default q-error threshold for feedback-driven re-optimization.
pub const DEFAULT_REOPT_Q_THRESHOLD: f64 = 10.0;

impl Engine {
    pub fn new(catalog: Catalog) -> Engine {
        Engine {
            catalog: RwLock::new(catalog),
            plan_cache: PlanCache::default(),
            dop: AtomicUsize::new(1),
            morsel_rows: AtomicUsize::new(DEFAULT_MORSEL_ROWS),
            vectorized: AtomicBool::new(false),
            parallel_threshold: AtomicUsize::new(DEFAULT_MORSEL_ROWS),
            order_opt: AtomicBool::new(true),
            admitted: AtomicUsize::new(0),
            admission_limit: AtomicUsize::new(usize::MAX),
            admission_waiters: AtomicUsize::new(0),
            admission_mu: Mutex::new(()),
            admission_cv: Condvar::new(),
            deadline_ms: AtomicU64::new(0),
            memory_budget: AtomicU64::new(0),
            cancel_after: AtomicU64::new(0),
            next_query_id: AtomicU64::new(1),
            in_flight: (0..IN_FLIGHT_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            last_peak: AtomicU64::new(0),
            feedback: ObservationStore::new(),
            reopt_q_threshold: AtomicU64::new(DEFAULT_REOPT_Q_THRESHOLD.to_bits()),
        }
    }

    // ------------------------------------------------------- parallelism

    /// Set the engine-default degree of parallelism. Plans depend on it
    /// (exchange placement), so cached plans are dropped wholesale; a
    /// session-level override needs no clearing — the knobs are part of
    /// the plan-cache key.
    pub fn set_dop(&self, dop: usize) {
        self.dop.store(dop.max(1), Ordering::Relaxed);
        self.plan_cache.clear();
    }

    /// Set the dop from the machine's available parallelism.
    pub fn set_auto_dop(&self) {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.set_dop(n);
    }

    pub fn dop(&self) -> usize {
        self.dop.load(Ordering::Relaxed).max(1)
    }

    /// Runtime morsel size for parallel scans. Purely an execution knob —
    /// plans are unaffected, so the cache survives.
    pub fn set_morsel_rows(&self, rows: usize) {
        self.morsel_rows.store(rows.max(1), Ordering::Relaxed);
    }

    /// Route execution through the vectorized columnar batch engine.
    /// Purely an execution knob — same plans, same output bytes, different
    /// inner loops — so the plan cache survives, exactly as for
    /// [`Engine::set_morsel_rows`].
    pub fn set_vectorized(&self, on: bool) {
        self.vectorized.store(on, Ordering::Relaxed);
    }

    pub fn vectorized(&self) -> bool {
        self.vectorized.load(Ordering::Relaxed)
    }

    /// Minimum driving-table rows before refinement places an exchange.
    /// Affects plans, so cached plans are dropped.
    pub fn set_parallel_threshold(&self, rows: usize) {
        self.parallel_threshold.store(rows, Ordering::Relaxed);
        self.plan_cache.clear();
    }

    /// Enable/disable interesting-order optimization: when on (the
    /// default), refinement drops Sort enforcers whose input already
    /// delivers the requested order. Off keeps every enforcer — the
    /// always-enforce baseline the byte-identity oracles compare against.
    /// Affects plans, so cached plans are dropped.
    pub fn set_order_opt(&self, on: bool) {
        self.order_opt.store(on, Ordering::Relaxed);
        self.plan_cache.clear();
    }

    pub fn order_opt(&self) -> bool {
        self.order_opt.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------- feedback

    /// Worst-q-error threshold above which an instrumented cached serve
    /// ([`Engine::analyze_cached`]) re-optimizes the statement with its
    /// observed cardinalities injected. `None` disables the loop; the
    /// default is [`DEFAULT_REOPT_Q_THRESHOLD`]. Strictly-above semantics:
    /// a run whose worst q-error equals the threshold does not re-optimize.
    pub fn set_reopt_q_threshold(&self, threshold: Option<f64>) {
        let t = threshold.filter(|t| t.is_finite() && *t > 0.0).unwrap_or(0.0);
        self.reopt_q_threshold.store(t.to_bits(), Ordering::Relaxed);
    }

    pub fn reopt_q_threshold(&self) -> Option<f64> {
        let t = f64::from_bits(self.reopt_q_threshold.load(Ordering::Relaxed));
        (t > 0.0).then_some(t)
    }

    /// The engine's observation store (for tests and reports).
    pub fn feedback(&self) -> &ObservationStore {
        &self.feedback
    }

    // ------------------------------------------------------- knobs

    /// Resolve one statement's effective knob set: session overrides where
    /// present, engine defaults otherwise.
    fn knobs(&self, session: &SessionOpts) -> Knobs {
        Knobs {
            dop: session.dop.map(|d| d.max(1)).unwrap_or_else(|| self.dop()),
            morsel_rows: session
                .morsel_rows
                .map(|m| m.max(1))
                .unwrap_or_else(|| self.morsel_rows.load(Ordering::Relaxed)),
            vectorized: session
                .vectorized
                .unwrap_or_else(|| self.vectorized.load(Ordering::Relaxed)),
            parallel_threshold: session
                .parallel_threshold
                .unwrap_or_else(|| self.parallel_threshold.load(Ordering::Relaxed)),
            order_opt: session.order_opt.unwrap_or_else(|| self.order_opt.load(Ordering::Relaxed)),
            deadline_ms: session
                .deadline_ms
                .unwrap_or_else(|| self.deadline_ms.load(Ordering::Relaxed)),
            memory_budget: session
                .memory_budget
                .unwrap_or_else(|| self.memory_budget.load(Ordering::Relaxed)),
            cancel_after: self.cancel_after.load(Ordering::Relaxed),
            reopt_q_threshold: match session.reopt_q_threshold {
                Some(t) if t.is_finite() && t > 0.0 => Some(t),
                Some(_) => None,
                None => self.reopt_q_threshold(),
            },
        }
    }

    // ------------------------------------------------------- governance

    /// Cap concurrent executions. Callers over the limit block until a slot
    /// frees (or their deadline expires); planning-only entry points
    /// (`plan`, `explain`) are not gated.
    pub fn set_admission_limit(&self, limit: usize) {
        self.admission_limit.store(limit.max(1), Ordering::SeqCst);
        // Take the waiter mutex so the notify cannot slip between a
        // waiter's re-check and its park.
        let _g = lock(&self.admission_mu);
        self.admission_cv.notify_all();
    }

    /// Per-query wall-clock budget for executing entry points. `None`
    /// removes the deadline.
    pub fn set_deadline(&self, budget: Option<Duration>) {
        let ms = budget.map(|d| (d.as_millis() as u64).max(1)).unwrap_or(0);
        self.deadline_ms.store(ms, Ordering::Relaxed);
    }

    /// Per-query budget for tracked operator memory (hash builds, sort
    /// buffers, materializations). `None` removes the budget.
    pub fn set_memory_budget(&self, bytes: Option<u64>) {
        self.memory_budget.store(bytes.map(|b| b.max(1)).unwrap_or(0), Ordering::Relaxed);
    }

    /// Chaos knob: cancel every subsequent query at its N-th governor
    /// check (deterministic mid-query cancel points for fuzzing). `None`
    /// disables it.
    pub fn set_cancel_after(&self, checks: Option<u64>) {
        self.cancel_after.store(checks.map(|c| c.max(1)).unwrap_or(0), Ordering::Relaxed);
    }

    fn in_flight_shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<QueryGovernor>>> {
        &self.in_flight[(id as usize) % IN_FLIGHT_SHARDS]
    }

    /// Cancel a running query by id. Returns whether the id was in flight;
    /// the query itself unwinds with `Error::Cancelled` at its next batch
    /// or morsel boundary.
    pub fn cancel(&self, query_id: u64) -> bool {
        match lock(self.in_flight_shard(query_id)).get(&query_id) {
            Some(g) => {
                g.cancel();
                true
            }
            None => false,
        }
    }

    /// Ids of currently executing queries (for `Engine::cancel` callers on
    /// other threads).
    pub fn in_flight_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .in_flight
            .iter()
            .flat_map(|s| lock(s).keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Peak tracked memory (bytes) of the most recently finished governed
    /// query — what the governance harness gates against the budget.
    pub fn last_peak_bytes(&self) -> u64 {
        self.last_peak.load(Ordering::Relaxed)
    }

    /// One CAS attempt at the admission fast path.
    fn try_admit(&self) -> bool {
        self.admitted
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                (c < self.admission_limit.load(Ordering::SeqCst)).then(|| c + 1)
            })
            .is_ok()
    }

    /// Take an admission slot. The uncontended path is a single CAS; a
    /// caller over the limit parks on the condvar — bounded by its
    /// effective deadline, so a queued query returns `DeadlineExceeded`
    /// instead of sitting past its budget (it never started executing, so
    /// nothing needs unwinding).
    fn admit(&self, knobs: &Knobs) -> Result<AdmissionPermit<'_>> {
        if self.try_admit() {
            return Ok(AdmissionPermit { engine: self });
        }
        let deadline = (knobs.deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(knobs.deadline_ms));
        let mut parked = lock(&self.admission_mu);
        self.admission_waiters.fetch_add(1, Ordering::SeqCst);
        let admitted = loop {
            // Re-check under the mutex: a permit released after our fast
            // path failed notifies under this same mutex, so the slot
            // cannot vanish between this check and the park below.
            if self.try_admit() {
                break Ok(());
            }
            match deadline {
                None => {
                    parked = self.admission_cv.wait(parked).unwrap_or_else(|e| e.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break Err(Error::DeadlineExceeded { budget_ms: knobs.deadline_ms });
                    }
                    parked = self
                        .admission_cv
                        .wait_timeout(parked, d - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        };
        self.admission_waiters.fetch_sub(1, Ordering::SeqCst);
        drop(parked);
        admitted.map(|()| AdmissionPermit { engine: self })
    }

    /// Build the governor for one execution from the resolved knobs plus
    /// any chaos overrides the optimizer's fault injector supplies.
    fn new_governor(&self, opt: &dyn CostBasedOptimizer, knobs: &Knobs) -> Arc<QueryGovernor> {
        let faults = opt.exec_faults().unwrap_or_default();
        let mut budget = knobs.memory_budget;
        if let Some(clamp) = faults.memory_clamp {
            budget = if budget == 0 { clamp } else { budget.min(clamp) };
        }
        let cancel = match faults.cancel_after {
            Some(c) => c.max(1),
            None => knobs.cancel_after,
        };
        Arc::new(QueryGovernor::from_spec(GovernorSpec {
            deadline_ms: knobs.deadline_ms,
            memory_budget: budget,
            cancel_after: cancel,
        }))
    }

    fn register(&self, governor: &Arc<QueryGovernor>) -> u64 {
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        lock(self.in_flight_shard(id)).insert(id, governor.clone());
        id
    }

    fn finish(&self, id: u64, governor: &Arc<QueryGovernor>) {
        lock(self.in_flight_shard(id)).remove(&id);
        self.last_peak.store(governor.peak_bytes(), Ordering::Relaxed);
    }

    /// Execute a planned query under a fresh governor, with the memory
    /// degradation rung: a `MemoryExceeded` first attempt is retried once
    /// on a serialized copy of the plan (exchanges forced to dop=1, so the
    /// repartition/broadcast buffers never materialize) under a fresh
    /// governor with the same limits. Governance outcomes are reported to
    /// the optimizer either way.
    fn governed_execute(
        &self,
        cat: &Catalog,
        planned: &PlannedQuery,
        opt: &dyn CostBasedOptimizer,
        knobs: &Knobs,
    ) -> Result<QueryOutput> {
        let governor = self.new_governor(opt, knobs);
        let id = self.register(&governor);
        let first = self.execute_branches(
            cat,
            planned,
            Some(&governor),
            knobs.morsel_rows,
            knobs.vectorized,
        );
        self.finish(id, &governor);
        match first {
            Err(Error::MemoryExceeded { .. }) => {
                // The degradation rung is serial *row* execution: exchanges
                // forced to dop=1 and the batch path disabled, so neither
                // repartition buffers nor batch buffers materialize.
                let serial = degrade_serial(planned);
                let governor = self.new_governor(opt, knobs);
                let id = self.register(&governor);
                let retry =
                    self.execute_branches(cat, &serial, Some(&governor), knobs.morsel_rows, false);
                self.finish(id, &governor);
                match retry {
                    Ok(out) => {
                        opt.note_governed(GovernedOutcome::MemoryDegraded);
                        Ok(out)
                    }
                    Err(e) => {
                        note_governed_error(opt, &e);
                        Err(e)
                    }
                }
            }
            Err(e) => {
                note_governed_error(opt, &e);
                Err(e)
            }
            ok => ok,
        }
    }

    // ------------------------------------------------------- catalog

    /// A read-locked view of the catalog. See [`CatalogRef`] for the
    /// holding discipline.
    pub fn catalog(&self) -> CatalogRef<'_> {
        CatalogRef(rlock(&self.catalog))
    }

    /// Exclusive catalog access through `&mut self` (setup code that owns
    /// the engine; no locking).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.catalog.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Run a closure with exclusive catalog access from a shared engine —
    /// the DDL path for concurrent sessions. Takes the write lock, so it
    /// drains in-flight serves first and every later serve snapshots the
    /// bumped version.
    pub fn with_catalog_mut<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        f(&mut wlock(&self.catalog))
    }

    /// Run ANALYZE on every table with default options.
    pub fn analyze(&mut self) {
        self.catalog_mut().analyze_all(&AnalyzeOptions::default());
    }

    /// [`Engine::analyze`] from a shared reference — ANALYZE issued by one
    /// session of many (bumps the catalog version; cached plans compiled
    /// under the old statistics invalidate on their next lookup).
    pub fn analyze_shared(&self) {
        self.with_catalog_mut(|c| c.analyze_all(&AnalyzeOptions::default()));
    }

    // ------------------------------------------------------- entry points

    /// Execute any statement with the native MySQL optimizer.
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryOutput> {
        self.execute_sql_shared(sql)
    }

    /// Execute any statement with the native MySQL optimizer from a shared
    /// reference (INSERT takes the catalog write lock).
    pub fn execute_sql_shared(&self, sql: &str) -> Result<QueryOutput> {
        match parse(sql)? {
            Statement::Insert { table, rows } => self.execute_insert(&table, rows),
            Statement::Select(stmt) => self.run_select(&stmt, &MySqlOptimizer),
        }
    }

    /// Run a SELECT with the native optimizer.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.query_with(sql, &MySqlOptimizer)
    }

    /// Run a SELECT with a specific optimizer backend.
    pub fn query_with(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<QueryOutput> {
        let stmt = parse_select_text(sql)?;
        self.run_select(&stmt, opt)
    }

    /// Plan a SELECT without executing (what `EXPLAIN` does; used by the
    /// compile-time experiment, Table 1).
    pub fn plan(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<PlannedQuery> {
        let stmt = parse_select_text(sql)?;
        self.plan_select(&stmt, opt)
    }

    /// EXPLAIN output for a SELECT under a given optimizer.
    pub fn explain(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<String> {
        let stmt = parse_select_text(sql)?;
        let knobs = self.knobs(&SessionOpts::default());
        let cat = rlock(&self.catalog);
        let planned = self.plan_select_knobs(&cat, &stmt, opt, None, &knobs)?;
        let mut out = String::new();
        for (i, b) in planned.branches.iter().enumerate() {
            if i > 0 {
                out.push_str(&format!("UNION {}\n", if b.all { "ALL" } else { "DISTINCT" }));
            }
            out.push_str(&explain_plan(&b.plan, &b.bound, &cat, &b.skeleton));
        }
        Ok(out)
    }

    // ------------------------------------------------------- plan cache

    /// Serve a statement through the fingerprint-keyed plan cache without
    /// copying the plan. The serve path is the token digest
    /// ([`token_digest`]): one pass over the source bytes yields the
    /// fingerprint and the literal binds — no parse tree. On a hit, the
    /// cached plan's parameters are re-bound *in place* and `f` runs
    /// against the shared plan (under the entry's own lock — sessions
    /// serving other statements are untouched), so a hit costs one
    /// lex-level scan, one shard-read lookup and a rebind; never a parse
    /// or a plan deep-copy.
    ///
    /// On a miss (or invalidation) the statement is parsed and
    /// parameterized — planning still sees the peeked literal values —
    /// served to `f`, and moved into the cache keyed by the digest
    /// fingerprint. The digest extracts binds in token order while
    /// [`parameterize`] numbers parameters in AST order; the two agree for
    /// this grammar, and the insert verifies it per shape — a statement
    /// whose orders diverge is simply never cached (compiled every time,
    /// correct either way).
    pub fn serve_cached<R>(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
        f: impl FnOnce(&PlannedQuery) -> Result<R>,
    ) -> Result<(R, CacheOutcome)> {
        let knobs = self.knobs(&SessionOpts::default());
        let cat = rlock(&self.catalog);
        self.serve_cached_knobs(&cat, sql, opt, &knobs, |_, planned| f(planned))
    }

    /// The serve path proper, against a catalog snapshot the caller holds.
    /// The read guard spans the whole serve, so `version` is the version
    /// of the catalog `f` executes against: an entry validated against it
    /// cannot be stale for *this* execution no matter how DDL races — the
    /// write lock serializes after us, and the next serve's snapshot sees
    /// the bump and invalidates.
    fn serve_cached_knobs<R>(
        &self,
        cat: &Catalog,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
        knobs: &Knobs,
        f: impl FnOnce(&Catalog, &PlannedQuery) -> Result<R>,
    ) -> Result<(R, CacheOutcome)> {
        let digest = token_digest(sql);
        let version = cat.version();
        let mut outcome = CacheOutcome::Miss;
        if let Some(d) = &digest {
            let key = CacheKey {
                fingerprint: d.fingerprint,
                dop: knobs.dop,
                parallel_threshold: knobs.parallel_threshold,
                order_opt: knobs.order_opt,
            };
            match self.plan_cache.lookup(&key, version) {
                Lookup::Hit(entry) => {
                    // A rebind refusal (slot count or type-class mismatch
                    // with the peeked values) means the cached plan cannot
                    // serve these binds: discard it and recompile below,
                    // exactly as for any other invalidation. Serving the
                    // stale plan — or failing the query — would turn a
                    // cache artifact into a user-visible behaviour change.
                    let mut planned = entry.planned();
                    if rebind_planned(&mut planned, &d.binds).is_ok() {
                        let r = f(cat, &planned)?;
                        return Ok((r, CacheOutcome::Hit));
                    }
                    drop(planned);
                    self.plan_cache.discard(&key);
                    outcome = CacheOutcome::Invalidated;
                }
                Lookup::Invalidated => outcome = CacheOutcome::Invalidated,
                Lookup::Miss => {}
            }
        }
        // Miss, invalidation, or unlexable input (the parser produces the
        // real error for the latter).
        let stmt = parse_select_text(sql)?;
        let p = parameterize(&stmt);
        let planned = self.plan_select_knobs(cat, &p.stmt, opt, None, knobs)?;
        let r = f(cat, &planned)?;
        if let Some(d) = digest {
            if d.binds == p.binds {
                let key = CacheKey {
                    fingerprint: d.fingerprint,
                    dop: knobs.dop,
                    parallel_threshold: knobs.parallel_threshold,
                    order_opt: knobs.order_opt,
                };
                // This compile ran without any cache lock; a concurrent
                // serve may have re-optimized the same statement meanwhile.
                // Never clobber that entry with a static plan — the
                // feedback store's applied snapshot would then suppress a
                // second re-optimization and pin the misestimate.
                if !self.plan_cache.has_reopt_entry(&key, version) {
                    self.plan_cache.insert(&key, version, opt.name(), planned);
                }
            }
        }
        Ok((r, outcome))
    }

    /// Plan through the plan cache, returning an owned copy of the plan.
    /// Returns the outcome for banners/reports.
    pub fn plan_cached(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
    ) -> Result<(PlannedQuery, CacheOutcome)> {
        self.serve_cached(sql, opt, |planned| Ok(planned.clone()))
    }

    /// [`Engine::plan_cached`] under per-session knob overrides.
    pub fn plan_cached_opts(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
        session: &SessionOpts,
    ) -> Result<(PlannedQuery, CacheOutcome)> {
        let knobs = self.knobs(session);
        let cat = rlock(&self.catalog);
        self.serve_cached_knobs(&cat, sql, opt, &knobs, |_, planned| Ok(planned.clone()))
    }

    /// Run a SELECT through the plan cache (executes straight off the
    /// shared cached plan).
    pub fn query_cached(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<QueryOutput> {
        self.query_cached_opts(sql, opt, &SessionOpts::default()).map(|(out, _)| out)
    }

    /// [`Engine::query_cached`] under per-session knob overrides, returning
    /// the cache outcome alongside the results (the server reports it to
    /// clients).
    pub fn query_cached_opts(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
        session: &SessionOpts,
    ) -> Result<(QueryOutput, CacheOutcome)> {
        let knobs = self.knobs(session);
        // The admission slot is taken before any lock: a caller queued at
        // the gate must hold neither the catalog nor the cache hostage.
        let _permit = self.admit(&knobs)?;
        let cat = rlock(&self.catalog);
        self.serve_cached_knobs(&cat, sql, opt, &knobs, |cat, planned| {
            self.governed_execute(cat, planned, opt, &knobs)
        })
    }

    /// EXPLAIN through the plan cache: the banner's first line gains a
    /// `[plan cache: hit|miss|invalidated]` suffix.
    pub fn explain_cached(&self, sql: &str, opt: &dyn CostBasedOptimizer) -> Result<String> {
        self.explain_cached_opts(sql, opt, &SessionOpts::default())
    }

    /// [`Engine::explain_cached`] under per-session knob overrides.
    pub fn explain_cached_opts(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
        session: &SessionOpts,
    ) -> Result<String> {
        let knobs = self.knobs(session);
        let cat = rlock(&self.catalog);
        let (text, outcome) = self.serve_cached_knobs(&cat, sql, opt, &knobs, |cat, planned| {
            let mut out = String::new();
            for (i, b) in planned.branches.iter().enumerate() {
                if i > 0 {
                    out.push_str(&format!("UNION {}\n", if b.all { "ALL" } else { "DISTINCT" }));
                }
                out.push_str(&explain_plan(&b.plan, &b.bound, cat, &b.skeleton));
            }
            Ok(out)
        })?;
        // Suffix the banner line (first line) with the cache state.
        Ok(match text.split_once('\n') {
            Some((banner, rest)) => {
                format!("{banner} [plan cache: {}]\n{rest}", outcome.label())
            }
            None => text,
        })
    }

    /// Plan-cache counters for reports.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Number of currently cached statements.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Drop every cached plan (counters survive).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear();
    }

    /// Plan a parsed SELECT.
    pub fn plan_select(
        &self,
        stmt: &SelectStmt,
        opt: &dyn CostBasedOptimizer,
    ) -> Result<PlannedQuery> {
        let knobs = self.knobs(&SessionOpts::default());
        let cat = rlock(&self.catalog);
        self.plan_select_knobs(&cat, stmt, opt, None, &knobs)
    }

    /// Plan a parsed SELECT against a catalog snapshot, optionally
    /// injecting observed cardinalities (one [`CardOverrides`] per union
    /// branch — branches have separate query-table spaces) into the
    /// optimizer and refinement estimates.
    fn plan_select_knobs(
        &self,
        cat: &Catalog,
        stmt: &SelectStmt,
        opt: &dyn CostBasedOptimizer,
        fb: Option<&[CardOverrides]>,
        knobs: &Knobs,
    ) -> Result<PlannedQuery> {
        // MySQL does not support INTERSECT/EXCEPT; the paper rewrote the
        // affected queries (§6.2). We apply the mechanical rewrite here.
        let stmt = rewrite_set_ops(stmt.clone())?;
        let branches = resolve_union_branches(cat, &stmt)?;
        if branches.is_empty() {
            return Err(Error::internal("statement resolved to no branches"));
        }
        let mut planned = Vec::with_capacity(branches.len());
        let mut columns: Option<Vec<String>> = None;
        let session_dop = knobs.dop;
        for (i, (bound, all)) in branches.into_iter().enumerate() {
            let bfb = fb.and_then(|f| f.get(i)).filter(|o| !o.is_empty());
            let mut skeleton = match bfb {
                Some(o) => opt.optimize_with_feedback(cat, &bound, o)?,
                None => opt.optimize(cat, &bound)?,
            };
            if let Some(o) = bfb {
                skeleton.reopt = Some(format!("{} observed cardinalities injected", o.len()));
            }
            // The optimizer's dop choice wins when present, clamped to the
            // session knob; otherwise the session knob applies directly.
            let dop = skeleton.dop.unwrap_or(session_dop).min(session_dop).max(1);
            let opts = ParallelOpts { dop, min_driver_rows: knobs.parallel_threshold };
            let plan =
                refine_statement_orders(cat, &bound, &skeleton, &opts, bfb, knobs.order_opt)?;
            let cols: Vec<String> = bound.root.select.iter().map(|o| o.name.clone()).collect();
            match &columns {
                None => columns = Some(cols),
                Some(c) => {
                    if c.len() != cols.len() {
                        return Err(Error::semantic("UNION branches have different arity"));
                    }
                }
            }
            planned.push(PlannedBranch { bound, skeleton, plan, all });
        }
        Ok(PlannedQuery { branches: planned, columns: columns.expect("at least one branch") })
    }

    /// Execute a previously planned query (ungoverned: no deadline, budget,
    /// or cancel token — the governed entry points are `query*`).
    pub fn execute_planned(&self, planned: &PlannedQuery) -> Result<QueryOutput> {
        let cat = rlock(&self.catalog);
        self.execute_branches(
            &cat,
            planned,
            None,
            self.morsel_rows.load(Ordering::Relaxed),
            self.vectorized.load(Ordering::Relaxed),
        )
    }

    fn execute_branches(
        &self,
        cat: &Catalog,
        planned: &PlannedQuery,
        governor: Option<&Arc<QueryGovernor>>,
        morsel_rows: usize,
        vectorized: bool,
    ) -> Result<QueryOutput> {
        let mut rows: Vec<Row> = Vec::new();
        let mut work = 0u64;
        let mut critical = 0u64;
        for (i, b) in planned.branches.iter().enumerate() {
            let mut plan = b.plan.clone();
            let slots = plan.assign_cache_slots();
            let mut ctx = ExecContext::new(cat, b.bound.num_tables(), slots);
            ctx.set_morsel_rows(morsel_rows);
            ctx.set_vectorized(vectorized);
            if let Some(g) = governor {
                ctx.set_governor(g.clone());
            }
            let branch_rows = execute(&plan, &ctx)?;
            work += ctx.stats.work_units();
            critical += ctx.stats.critical_path_work();
            if i == 0 {
                rows = branch_rows;
            } else {
                rows.extend(branch_rows);
                if !b.all {
                    let mut seen = std::collections::HashSet::new();
                    rows.retain(|r| seen.insert(r.clone()));
                }
            }
        }
        Ok(QueryOutput {
            columns: planned.columns.clone(),
            rows,
            work_units: work,
            critical_work_units: critical,
        })
    }

    /// EXPLAIN ANALYZE: plan, execute with per-operator observation
    /// enabled, and render the plan tree annotated with actual rows, loop
    /// counts, and q-errors.
    pub fn explain_analyze(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
    ) -> Result<AnalyzedQuery> {
        let stmt = parse_select_text(sql)?;
        let knobs = self.knobs(&SessionOpts::default());
        let _permit = self.admit(&knobs)?;
        let cat = rlock(&self.catalog);
        let planned = self.plan_select_knobs(&cat, &stmt, opt, None, &knobs)?;
        self.analyze_governed(&cat, &planned, opt, &knobs)
    }

    /// Instrumented execution under a fresh governor (the body of
    /// `EXPLAIN ANALYZE` once a plan exists). Governance outcomes are
    /// reported to the optimizer like any governed execution.
    fn analyze_governed(
        &self,
        cat: &Catalog,
        planned: &PlannedQuery,
        opt: &dyn CostBasedOptimizer,
        knobs: &Knobs,
    ) -> Result<AnalyzedQuery> {
        let governor = self.new_governor(opt, knobs);
        let id = self.register(&governor);
        let out = self.analyze_branches(cat, planned, Some(&governor), knobs.morsel_rows);
        self.finish(id, &governor);
        if let Err(e) = &out {
            note_governed_error(opt, e);
        }
        out
    }

    /// EXPLAIN ANALYZE through the plan cache — the entry point of the
    /// feedback-driven re-optimization loop. Every instrumented serve
    /// folds its observed per-operator cardinalities into the engine's
    /// [`ObservationStore`]. On a hit whose recorded worst q-error is
    /// strictly above the session threshold (and whose observations differ
    /// from what the cached plan was compiled with), the entry is evicted
    /// and the statement recompiled with the observations injected into
    /// the optimizer's estimation path; the outcome reports
    /// [`CacheOutcome::Reoptimized`] and the new plan replaces the old
    /// entry.
    ///
    /// Concurrency: hit-path execution happens under the cache entry's own
    /// lock, so a re-optimizing eviction can never race a concurrent serve
    /// of the same statement mid-execution (eviction only detaches the
    /// entry from the cache; the serve holds its own `Arc`). Lock order is
    /// catalog-read → cache shard → entry → feedback; the feedback store
    /// never takes a cache or catalog lock.
    pub fn analyze_cached(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
    ) -> Result<(AnalyzedQuery, CacheOutcome)> {
        self.analyze_cached_opts(sql, opt, &SessionOpts::default())
    }

    /// [`Engine::analyze_cached`] under per-session knob overrides.
    pub fn analyze_cached_opts(
        &self,
        sql: &str,
        opt: &dyn CostBasedOptimizer,
        session: &SessionOpts,
    ) -> Result<(AnalyzedQuery, CacheOutcome)> {
        let knobs = self.knobs(session);
        let _permit = self.admit(&knobs)?;
        let cat = rlock(&self.catalog);
        let digest = token_digest(sql);
        let version = cat.version();
        let mut outcome = CacheOutcome::Miss;
        let mut reopt: Option<Vec<CardOverrides>> = None;
        if let Some(d) = &digest {
            let key = CacheKey {
                fingerprint: d.fingerprint,
                dop: knobs.dop,
                parallel_threshold: knobs.parallel_threshold,
                order_opt: knobs.order_opt,
            };
            match self.plan_cache.lookup(&key, version) {
                Lookup::Hit(entry) => {
                    let reopt_now = knobs
                        .reopt_q_threshold
                        .is_some_and(|t| self.feedback.should_reopt(d.fingerprint, t));
                    if reopt_now {
                        self.plan_cache.discard_reopt(&key);
                        reopt = self.feedback.begin_reopt(d.fingerprint);
                        outcome = CacheOutcome::Reoptimized;
                    } else {
                        let mut planned = entry.planned();
                        if rebind_planned(&mut planned, &d.binds).is_ok() {
                            let analyzed = self.analyze_governed(&cat, &planned, opt, &knobs)?;
                            self.fold_observations(d.fingerprint, &planned, &analyzed);
                            return Ok((analyzed, CacheOutcome::Hit));
                        }
                        drop(planned);
                        self.plan_cache.discard(&key);
                        outcome = CacheOutcome::Invalidated;
                    }
                }
                Lookup::Invalidated => outcome = CacheOutcome::Invalidated,
                Lookup::Miss => {}
            }
        }
        let stmt = parse_select_text(sql)?;
        let p = parameterize(&stmt);
        let planned = self.plan_select_knobs(&cat, &p.stmt, opt, reopt.as_deref(), &knobs)?;
        if reopt.is_some() {
            opt.note_reoptimized();
        }
        let analyzed = self.analyze_governed(&cat, &planned, opt, &knobs)?;
        if let Some(d) = digest {
            self.fold_observations(d.fingerprint, &planned, &analyzed);
            if d.binds == p.binds {
                let key = CacheKey {
                    fingerprint: d.fingerprint,
                    dop: knobs.dop,
                    parallel_threshold: knobs.parallel_threshold,
                    order_opt: knobs.order_opt,
                };
                // A static compile that ran lock-free must not clobber a
                // concurrently re-optimized entry (see
                // `PlanCache::has_reopt_entry`); a re-optimized compile
                // always wins.
                if reopt.is_some() || !self.plan_cache.has_reopt_entry(&key, version) {
                    self.plan_cache.insert(&key, version, opt.name(), planned);
                }
            }
        }
        Ok((analyzed, outcome))
    }

    /// Fold one instrumented execution into the feedback store, slicing the
    /// concatenated annotations back into per-branch runs (each branch's
    /// annotation count equals its plan's pre-order node count — `annotate`
    /// walks the same order, and the executed clone shares the cached
    /// plan's structure).
    fn fold_observations(
        &self,
        fingerprint: u64,
        planned: &PlannedQuery,
        analyzed: &AnalyzedQuery,
    ) {
        let mut folds = Vec::with_capacity(planned.branches.len());
        let mut off = 0usize;
        for b in &planned.branches {
            let n = count_nodes(&b.plan);
            let slice = analyzed.nodes.get(off..off + n).unwrap_or(&[]);
            folds.push(fold_plan(&b.plan, slice));
            off += n;
        }
        self.feedback.record(fingerprint, folds, worst_q(&analyzed.nodes));
    }

    /// Execute a planned query with observation enabled and render the
    /// annotated EXPLAIN ANALYZE tree. Mirrors [`Engine::execute_planned`]
    /// — same execution path, plus an [`ObserverIndex`] installed over each
    /// branch's plan instance — so results are identical to an
    /// uninstrumented run.
    pub fn analyze_planned(&self, planned: &PlannedQuery) -> Result<AnalyzedQuery> {
        let cat = rlock(&self.catalog);
        self.analyze_branches(&cat, planned, None, self.morsel_rows.load(Ordering::Relaxed))
    }

    fn analyze_branches(
        &self,
        cat: &Catalog,
        planned: &PlannedQuery,
        governor: Option<&Arc<QueryGovernor>>,
        morsel_rows: usize,
    ) -> Result<AnalyzedQuery> {
        let mut rows: Vec<Row> = Vec::new();
        let mut work = 0u64;
        let mut critical = 0u64;
        let mut text = String::new();
        let mut nodes: Vec<NodeAnnotation> = Vec::new();
        for (i, b) in planned.branches.iter().enumerate() {
            let mut plan = b.plan.clone();
            let slots = plan.assign_cache_slots();
            // The index keys nodes by address, so it must be built over the
            // exact tree we execute (`plan` is not moved afterwards).
            let index = Arc::new(ObserverIndex::new(&plan));
            let mut ctx = ExecContext::new(cat, b.bound.num_tables(), slots);
            ctx.set_morsel_rows(morsel_rows);
            ctx.set_observer(Arc::clone(&index));
            if let Some(g) = governor {
                ctx.set_governor(g.clone());
            }
            let branch_rows = execute(&plan, &ctx)?;
            work += ctx.stats.work_units();
            critical += ctx.stats.critical_path_work();
            let observed = ctx.stats.nodes.borrow();
            let ann = annotate(&plan, &index, &observed);
            if i > 0 {
                text.push_str(&format!("UNION {}\n", if b.all { "ALL" } else { "DISTINCT" }));
            }
            text.push_str(&explain_plan_analyzed(&plan, &b.bound, cat, &b.skeleton, &ann));
            nodes.extend(ann);
            if i == 0 {
                rows = branch_rows;
            } else {
                rows.extend(branch_rows);
                if !b.all {
                    let mut seen = std::collections::HashSet::new();
                    rows.retain(|r| seen.insert(r.clone()));
                }
            }
        }
        Ok(AnalyzedQuery {
            output: QueryOutput {
                columns: planned.columns.clone(),
                rows,
                work_units: work,
                critical_work_units: critical,
            },
            text,
            nodes,
        })
    }

    fn run_select(&self, stmt: &SelectStmt, opt: &dyn CostBasedOptimizer) -> Result<QueryOutput> {
        let knobs = self.knobs(&SessionOpts::default());
        let _permit = self.admit(&knobs)?;
        let cat = rlock(&self.catalog);
        let planned = self.plan_select_knobs(&cat, stmt, opt, None, &knobs)?;
        self.governed_execute(&cat, &planned, opt, &knobs)
    }

    fn execute_insert(
        &self,
        table: &str,
        rows: Vec<Vec<taurus_sql::AstExpr>>,
    ) -> Result<QueryOutput> {
        let layout = Layout::empty(0);
        let mut materialized: Vec<Row> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut out = Vec::with_capacity(row.len());
            for e in row {
                // INSERT values are constant expressions.
                let bound = ast_const_to_value(&e, &layout)?;
                out.push(bound);
            }
            materialized.push(out);
        }
        let n = materialized.len();
        // Values materialized, now the DDL critical section: the write
        // lock drains in-flight serves, and the index rebuild bumps the
        // catalog version so stale cached plans invalidate.
        self.with_catalog_mut(|cat| -> Result<()> {
            let id = cat.table_by_name(table)?.id;
            cat.insert(id, materialized)?;
            cat.build_indexes(id)
        })?;
        Ok(QueryOutput {
            columns: vec!["rows_inserted".into()],
            rows: vec![vec![Value::Int(n as i64)]],
            work_units: n as u64,
            critical_work_units: n as u64,
        })
    }
}

/// RAII admission slot: releasing it wakes one queued caller.
struct AdmissionPermit<'a> {
    engine: &'a Engine,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.engine.admitted.fetch_sub(1, Ordering::SeqCst);
        if self.engine.admission_waiters.load(Ordering::SeqCst) > 0 {
            // Lock the waiter mutex so the notify cannot land between a
            // waiter's failed re-check and its park (the classic lost
            // wake-up); see `Engine::admit`.
            let _parked = lock(&self.engine.admission_mu);
            self.engine.admission_cv.notify_one();
        }
    }
}

/// The memory degradation rung: a copy of the plan with every exchange
/// forced to dop=1, so it executes serially (no repartition phase buffers,
/// no worker fan-out). Rewriting the *executed* plan — rather than
/// re-refining from the bound statement — keeps any in-place parameter
/// rebinds a cached serve applied.
fn degrade_serial(planned: &PlannedQuery) -> PlannedQuery {
    fn force_serial(plan: &mut Plan) {
        if let Plan::Exchange { dop, .. } = plan {
            *dop = 1;
        }
        for child in plan.children_mut() {
            force_serial(child);
        }
    }
    let mut serial = planned.clone();
    for b in &mut serial.branches {
        force_serial(&mut b.plan);
    }
    serial
}

/// Report a governance failure to the optimizer that planned the statement.
/// Non-governance errors are the statement's own business and stay unnoted.
fn note_governed_error(opt: &dyn CostBasedOptimizer, e: &Error) {
    let outcome = match e {
        Error::Cancelled => GovernedOutcome::Cancelled,
        Error::DeadlineExceeded { .. } => GovernedOutcome::DeadlineExceeded,
        Error::MemoryExceeded { .. } => GovernedOutcome::MemoryExceeded,
        _ => return,
    };
    opt.note_governed(outcome);
}

/// Re-bind a cached plan's parameters to a new statement's literal values.
/// Only the executable plans need it — `bound`/`skeleton` are kept for
/// EXPLAIN, where the `$n` markers render instead of stale values.
fn rebind_planned(planned: &mut PlannedQuery, binds: &[Value]) -> Result<()> {
    let mut err: Option<Error> = None;
    for b in &mut planned.branches {
        b.plan.for_each_expr_mut(&mut |e| {
            if err.is_none() {
                if let Err(x) = e.rebind_params(binds) {
                    err = Some(x);
                }
            }
        });
    }
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn parse_select_text(sql: &str) -> Result<SelectStmt> {
    match parse(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(Error::semantic(format!("expected SELECT, got {other:?}"))),
    }
}

/// Evaluate a constant INSERT expression.
fn ast_const_to_value(e: &taurus_sql::AstExpr, layout: &Layout) -> Result<Value> {
    use taurus_sql::AstExpr as A;
    let expr = match e {
        A::Lit(v) => taurus_common::Expr::Literal(v.clone()),
        A::Neg(inner) => return ast_const_to_value(inner, layout)?.neg(),
        other => {
            return Err(Error::semantic(format!("INSERT values must be literals, got {other:?}")))
        }
    };
    expr.eval(EvalCtx::new(&[], layout))
}
#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{Column, DataType, Schema};

    fn engine() -> Engine {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "emp",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("dept", DataType::Int),
                    Column::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        cat.insert(
            t,
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(2), Value::Int(10), Value::Int(200)],
                vec![Value::Int(3), Value::Int(20), Value::Int(300)],
                vec![Value::Int(4), Value::Null, Value::Int(50)],
            ],
        )
        .unwrap();
        cat.create_index(t, "emp_pk", vec![0], true).unwrap();
        let d = cat
            .create_table(
                "dept",
                Schema::new(vec![
                    Column::new("did", DataType::Int),
                    Column::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        cat.insert(
            d,
            vec![vec![Value::Int(10), Value::str("eng")], vec![Value::Int(20), Value::str("ops")]],
        )
        .unwrap();
        cat.create_index(d, "dept_pk", vec![0], true).unwrap();
        let mut e = Engine::new(cat);
        e.analyze();
        e
    }

    fn ints(out: &QueryOutput, col: usize) -> Vec<i64> {
        out.rows.iter().map(|r| r[col].as_i64().unwrap()).collect()
    }

    #[test]
    fn select_filter_order_limit() {
        let e = engine();
        let out = e
            .query("SELECT id, salary FROM emp WHERE salary > 60 ORDER BY salary DESC LIMIT 2")
            .unwrap();
        assert_eq!(out.columns, vec!["id", "salary"]);
        assert_eq!(ints(&out, 1), vec![300, 200]);
        assert!(out.work_units > 0);
    }

    #[test]
    fn join_query() {
        let e = engine();
        let out = e.query("SELECT id, dname FROM emp, dept WHERE dept = did ORDER BY id").unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0][1], Value::str("eng"));
    }

    #[test]
    fn group_by_having() {
        let e = engine();
        let out = e
            .query(
                "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp \
                 GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(ints(&out, 1), vec![2]);
        assert_eq!(ints(&out, 2), vec![300]);
    }

    #[test]
    fn scalar_aggregate() {
        let e = engine();
        let out = e.query("SELECT COUNT(*), AVG(salary) FROM emp").unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(4));
    }

    #[test]
    fn exists_semi_join() {
        let e = engine();
        let out = e
            .query(
                "SELECT dname FROM dept WHERE EXISTS \
                 (SELECT * FROM emp WHERE dept = did AND salary > 250) ORDER BY dname",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::str("ops"));
    }

    #[test]
    fn not_in_anti_join_null_semantics() {
        let e = engine();
        // dept values include NULL -> NOT IN filters everything when the
        // subquery contains no NULLs but the probe is NULL.
        let out = e
            .query("SELECT id FROM emp WHERE dept NOT IN (SELECT did FROM dept) ORDER BY id")
            .unwrap();
        // emp 4's NULL dept: membership UNKNOWN -> excluded.
        assert_eq!(out.rows.len(), 0);
    }

    #[test]
    fn scalar_subquery_correlated() {
        let e = engine();
        // Employees earning above their department average.
        let out = e
            .query(
                "SELECT id FROM emp e1 WHERE salary > \
                 (SELECT AVG(salary) FROM emp e2 WHERE e2.dept = e1.dept) ORDER BY id",
            )
            .unwrap();
        assert_eq!(ints(&out, 0), vec![2]);
    }

    #[test]
    fn left_join_preserved_and_where_filter() {
        let e = engine();
        let out =
            e.query("SELECT id, dname FROM emp LEFT JOIN dept ON dept = did ORDER BY id").unwrap();
        assert_eq!(out.rows.len(), 4);
        assert!(out.rows[3][1].is_null());
    }

    #[test]
    fn distinct_and_union() {
        let e = engine();
        let out = e.query("SELECT DISTINCT dept FROM emp ORDER BY dept").unwrap();
        assert_eq!(out.rows.len(), 3); // NULL, 10, 20
        let out = e
            .query("SELECT id FROM emp WHERE id < 2 UNION ALL SELECT id FROM emp WHERE id < 3")
            .unwrap();
        assert_eq!(out.rows.len(), 3);
        let out = e
            .query("SELECT id FROM emp WHERE id < 2 UNION SELECT id FROM emp WHERE id < 3")
            .unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn intersect_auto_rewrites() {
        let e = engine();
        let out = e
            .query("SELECT dept FROM emp WHERE salary > 150 INTERSECT SELECT dept FROM emp")
            .unwrap();
        // depts with salary > 150: {10, 20}; intersect with all: {10, 20}.
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn insert_and_query() {
        let mut e = engine();
        let out = e.execute_sql("INSERT INTO dept VALUES (30, 'hr')").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(1));
        let q = e.query("SELECT dname FROM dept WHERE did = 30").unwrap();
        assert_eq!(q.rows[0][0], Value::str("hr"));
    }

    #[test]
    fn explain_shows_banner_and_tree() {
        let e = engine();
        let text =
            e.explain("SELECT id, dname FROM emp, dept WHERE dept = did", &MySqlOptimizer).unwrap();
        assert!(text.starts_with("EXPLAIN\n"), "{text}");
        assert!(text.contains("join"), "{text}");
        assert!(text.contains("emp"), "{text}");
    }

    #[test]
    fn case_expression_query() {
        let e = engine();
        let out = e
            .query(
                "SELECT id, CASE WHEN salary >= 200 THEN 'high' ELSE 'low' END AS band \
                 FROM emp ORDER BY id",
            )
            .unwrap();
        assert_eq!(out.rows[0][1], Value::str("low"));
        assert_eq!(out.rows[1][1], Value::str("high"));
    }

    #[test]
    fn order_by_hidden_column() {
        let e = engine();
        let out = e.query("SELECT id FROM emp ORDER BY salary DESC").unwrap();
        assert_eq!(ints(&out, 0), vec![3, 2, 1, 4]);
        assert_eq!(out.rows[0].len(), 1, "hidden sort column trimmed");
    }

    #[test]
    fn derived_table_query() {
        let e = engine();
        let out = e
            .query(
                "SELECT d, total FROM (SELECT dept AS d, SUM(salary) AS total FROM emp \
                 WHERE dept IS NOT NULL GROUP BY dept) t WHERE total > 250 ORDER BY d",
            )
            .unwrap();
        assert_eq!(ints(&out, 0), vec![10, 20]);
    }

    #[test]
    fn index_scan_supplies_order_and_skips_sort() {
        // §2.2/§7 item 4: ORDER BY on an indexed column uses the ordered
        // index scan and elides the sort.
        let e = engine();
        let text =
            e.explain("SELECT id, salary FROM emp ORDER BY id LIMIT 3", &MySqlOptimizer).unwrap();
        assert!(text.contains("Index scan on emp"), "{text}");
        assert!(!text.contains("Sort:"), "{text}");
        let out = e.query("SELECT id, salary FROM emp ORDER BY id LIMIT 3").unwrap();
        assert_eq!(ints(&out, 0), vec![1, 2, 3]);
        // An unindexed ORDER BY column still sorts.
        let text = e.explain("SELECT id FROM emp ORDER BY salary", &MySqlOptimizer).unwrap();
        assert!(text.contains("Sort:"), "{text}");
        // Descending order cannot come from the index either.
        let text = e.explain("SELECT id FROM emp ORDER BY id DESC", &MySqlOptimizer).unwrap();
        assert!(text.contains("Sort:"), "{text}");
    }

    #[test]
    fn aggregate_in_order_by() {
        let e = engine();
        let out = e
            .query(
                "SELECT dept FROM emp WHERE dept IS NOT NULL GROUP BY dept \
                 ORDER BY SUM(salary) DESC",
            )
            .unwrap();
        assert_eq!(ints(&out, 0), vec![10, 20]);
    }

    #[test]
    fn plan_cache_hit_rebinds_new_literals() {
        let e = engine();
        let sql_a = "SELECT id FROM emp WHERE salary > 60 ORDER BY id";
        let sql_b = "SELECT id FROM emp WHERE salary > 250 ORDER BY id";
        let (_, out) = e.plan_cached(sql_a, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Miss);
        let a = e.query_cached(sql_a, &MySqlOptimizer).unwrap();
        assert_eq!(ints(&a, 0), vec![1, 2, 3]);
        // Same fingerprint, different literal: served from cache, re-bound.
        let (_, out) = e.plan_cached(sql_b, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Hit);
        let b = e.query_cached(sql_b, &MySqlOptimizer).unwrap();
        assert_eq!(ints(&b, 0), vec![3]);
        assert_eq!(e.plan_cache_len(), 1, "one entry serves both literals");
        // The cached results match a cold compile of the same statements.
        assert_eq!(b.rows, e.query(sql_b).unwrap().rows);
        let s = e.plan_cache_stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (3, 1, 0));
    }

    #[test]
    fn plan_cache_rebinds_index_range_bounds() {
        // The pk index range is driven by the literal: rebinding must reach
        // the IndexRange lo/hi, not just Filter predicates.
        let e = engine();
        let a = e.query_cached("SELECT salary FROM emp WHERE id = 1", &MySqlOptimizer).unwrap();
        assert_eq!(ints(&a, 0), vec![100]);
        let b = e.query_cached("SELECT salary FROM emp WHERE id = 3", &MySqlOptimizer).unwrap();
        assert_eq!(ints(&b, 0), vec![300]);
        assert_eq!(e.plan_cache_stats().hits, 1);
    }

    #[test]
    fn rebind_type_mismatch_discards_and_recompiles() {
        // Differently-typed literals hash to different fingerprints, so a
        // cached plan should never legitimately see binds of another type
        // class. If one ever does (here: an entry planted under the wrong
        // shape's fingerprint), the rebind must refuse and the serve path
        // must recompile — not serve the stale plan, not fail the query.
        let e = engine();
        let sql_int = "SELECT salary FROM emp WHERE id = 2";
        let sql_str = "SELECT salary FROM emp WHERE id = 'two'";
        let (planned, _) = e.plan_cached(sql_int, &MySqlOptimizer).unwrap();
        let poisoned_fp = token_digest(sql_str).unwrap().fingerprint;
        let poisoned_key = CacheKey {
            fingerprint: poisoned_fp,
            dop: e.dop(),
            parallel_threshold: e.parallel_threshold.load(Ordering::Relaxed),
            order_opt: true,
        };
        e.plan_cache.insert(&poisoned_key, e.catalog().version(), "mysql", planned);
        let before = e.plan_cache_stats();
        // The Str-literal query hits the poisoned Int-peeked entry; the
        // type-class check rejects the rebind and a fresh compile serves.
        let out = e.query_cached(sql_str, &MySqlOptimizer).unwrap();
        assert_eq!(out.rows.len(), 0, "recompiled plan answers the actual query");
        let after = e.plan_cache_stats();
        assert_eq!(after.invalidations, before.invalidations + 1, "hit reclassified");
        assert_eq!(after.hits, before.hits, "a refused rebind is not a serve");
        // The poisoned entry is gone: the shape recompiled and re-cached.
        let (_, outcome) = e.plan_cached(sql_str, &MySqlOptimizer).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "fresh entry serves the shape now");
    }

    #[test]
    fn ddl_invalidates_cached_plans() {
        let mut e = engine();
        let sql = "SELECT id FROM emp WHERE salary > 60";
        e.query_cached(sql, &MySqlOptimizer).unwrap();
        let (_, out) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Hit);
        // ANALYZE publishes new statistics -> version bump -> stale entry.
        e.analyze();
        let (_, out) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Invalidated);
        let (_, out) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(out, CacheOutcome::Hit, "re-inserted under the new version");
        let s = e.plan_cache_stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (2, 1, 1));
    }

    #[test]
    fn explain_cached_banner_shows_outcome() {
        let e = engine();
        let sql = "SELECT id, dname FROM emp, dept WHERE dept = did";
        let text = e.explain_cached(sql, &MySqlOptimizer).unwrap();
        assert!(text.starts_with("EXPLAIN [plan cache: miss]\n"), "{text}");
        let text = e.explain_cached(sql, &MySqlOptimizer).unwrap();
        assert!(text.starts_with("EXPLAIN [plan cache: hit]\n"), "{text}");
        assert!(text.contains("join"), "{text}");
    }

    // The whole point of the Mutex/atomic migration: one engine, many
    // session threads.
    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    };

    /// A wider emp table so the parallel threshold can be crossed.
    fn big_engine(rows: i64) -> Engine {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "emp",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("dept", DataType::Int),
                    Column::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        cat.insert(
            t,
            (0..rows)
                .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i * 13 % 1000)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mut e = Engine::new(cat);
        e.analyze();
        e
    }

    #[test]
    fn parallel_query_matches_serial_and_shortens_critical_path() {
        let e = big_engine(5000);
        let sql = "SELECT dept, COUNT(*) AS n, SUM(salary) AS s FROM emp \
                   WHERE salary < 900 GROUP BY dept ORDER BY dept";
        let serial = e.query(sql).unwrap();
        e.set_dop(4);
        e.set_morsel_rows(512);
        let parallel = e.query(sql).unwrap();
        assert_eq!(serial.rows, parallel.rows, "parallel results must be identical");
        assert!(
            parallel.critical_work_units < serial.work_units,
            "critical path {} should shrink below serial work {}",
            parallel.critical_work_units,
            serial.work_units
        );
        assert_eq!(serial.critical_work_units, serial.work_units, "serial has no parallelism");
    }

    #[test]
    fn explain_shows_exchange_and_dop_only_when_parallel() {
        let e = big_engine(3000);
        let sql = "SELECT id FROM emp WHERE salary > 500";
        let text = e.explain(sql, &MySqlOptimizer).unwrap();
        assert!(!text.contains("dop="), "serial EXPLAIN unchanged: {text}");
        e.set_dop(4);
        let text = e.explain(sql, &MySqlOptimizer).unwrap();
        assert!(text.contains("Exchange (gather, dop=4)"), "{text}");
        assert!(text.contains("dop=4)"), "{text}");
    }

    #[test]
    fn small_tables_stay_serial_under_dop() {
        let e = engine();
        e.set_dop(8);
        let text = e.explain("SELECT id FROM emp", &MySqlOptimizer).unwrap();
        assert!(!text.contains("Exchange"), "4-row table below threshold: {text}");
        let out = e.query("SELECT id FROM emp ORDER BY id").unwrap();
        assert_eq!(ints(&out, 0), vec![1, 2, 3, 4]);
    }

    #[test]
    fn set_dop_invalidates_cached_plans() {
        let e = big_engine(3000);
        let sql = "SELECT id FROM emp WHERE salary > 500";
        e.query_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(e.plan_cache_len(), 1);
        e.set_dop(4);
        assert_eq!(e.plan_cache_len(), 0, "dop change drops serial plans");
        let (planned, _) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        let has_exchange = format!("{:?}", planned.primary().plan).contains("Exchange");
        assert!(has_exchange, "recompiled plan is parallel");
    }

    #[test]
    fn concurrent_sessions_share_engine_and_plan_cache() {
        let e = std::sync::Arc::new(big_engine(3000));
        e.set_dop(2);
        // Prime the cache so every session thread hits the shared entry.
        let expected = e
            .query_cached(
                "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept",
                &MySqlOptimizer,
            )
            .unwrap()
            .rows;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = e.clone();
                let expected = expected.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let out = e
                            .query_cached(
                                "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept",
                                &MySqlOptimizer,
                            )
                            .unwrap();
                        assert_eq!(out.rows, expected);
                    }
                });
            }
        });
        let s = e.plan_cache_stats();
        assert_eq!(s.hits, 20, "every threaded run hits the primed entry: {s:?}");
        assert_eq!(e.plan_cache_len(), 1);
    }

    #[test]
    fn structurally_different_statements_do_not_collide() {
        let e = engine();
        e.query_cached("SELECT id FROM emp WHERE salary > 60", &MySqlOptimizer).unwrap();
        e.query_cached("SELECT id FROM emp WHERE salary > 60 AND dept = 10", &MySqlOptimizer)
            .unwrap();
        e.query_cached("SELECT dept FROM emp WHERE salary > 60", &MySqlOptimizer).unwrap();
        assert_eq!(e.plan_cache_len(), 3);
        assert_eq!(e.plan_cache_stats().hits, 0);
    }

    #[test]
    fn explain_analyze_annotates_every_operator() {
        let e = engine();
        let sql = "SELECT id, salary FROM emp WHERE salary > 60 ORDER BY salary DESC LIMIT 2";
        let plain = e.query(sql).unwrap();
        let analyzed = e.explain_analyze(sql, &MySqlOptimizer).unwrap();
        assert_eq!(analyzed.output.rows, plain.rows, "observation must not change results");
        assert!(analyzed.text.starts_with("EXPLAIN ANALYZE\n"), "{}", analyzed.text);
        // Every operator line carries actuals (or a never-executed marker).
        for line in analyzed.text.lines().skip(1) {
            assert!(
                line.contains("actual rows=") || line.contains("(never executed)"),
                "unannotated line: {line}"
            );
        }
        assert!(analyzed.text.contains("q-error="), "{}", analyzed.text);
        // Limit 2 over 3 qualifying rows: the root actually returns 2.
        assert_eq!(analyzed.nodes[0].actual_rows, 2);
        assert!(!analyzed.nodes.is_empty());
        for n in &analyzed.nodes {
            if n.loops > 0 {
                assert!(n.q_error.unwrap() >= 1.0);
            }
        }
    }

    #[test]
    fn explain_analyze_normalizes_lookup_rows_per_probe() {
        let e = engine();
        // emp ⋈ dept via index lookup: the lookup runs once per outer row.
        let sql = "SELECT id, dname FROM emp, dept WHERE dept = did ORDER BY id";
        let analyzed = e.explain_analyze(sql, &MySqlOptimizer).unwrap();
        assert_eq!(analyzed.output.rows.len(), 3);
        if let Some(line) = analyzed.text.lines().find(|l| l.contains("Index lookup on dept")) {
            // 4 probes (one NULL misses): loops=4 and the per-probe actual
            // is under 1, so the est=1 lookup stays well-calibrated.
            assert!(line.contains("loops=4"), "{line}");
        }
        let lookup_q = analyzed
            .nodes
            .iter()
            .filter(|n| n.loops > 1)
            .map(|n| n.q_error.unwrap())
            .fold(1.0f64, f64::max);
        assert!(lookup_q < 5.0, "per-probe normalization keeps q-error small: {lookup_q}");
    }

    #[test]
    fn explain_analyze_parallel_matches_serial_results() {
        let e = big_engine(5000);
        let sql = "SELECT dept, COUNT(*) AS n, SUM(salary) AS s FROM emp \
                   WHERE salary < 900 GROUP BY dept ORDER BY dept";
        let serial = e.query(sql).unwrap();
        e.set_dop(4);
        e.set_morsel_rows(512);
        let analyzed = e.explain_analyze(sql, &MySqlOptimizer).unwrap();
        assert_eq!(analyzed.output.rows, serial.rows, "analyze at dop=4 must not perturb results");
        // The aggregate shape parallelizes through a repartition exchange;
        // its actuals must be attributed exactly once despite dop workers.
        let exchange = analyzed
            .text
            .lines()
            .find(|l| l.contains("Exchange (") && l.contains("dop=4"))
            .expect("exchange line");
        assert!(exchange.contains("actual rows="), "{exchange}");
    }

    #[test]
    fn cancel_after_unwinds_cleanly_and_engine_stays_serviceable() {
        let e = engine();
        let sql = "SELECT id, salary FROM emp WHERE salary > 60 ORDER BY salary DESC";
        let expected = e.query(sql).unwrap().rows;
        // Trip the cancel token at the very first governor check.
        e.set_cancel_after(Some(1));
        assert_eq!(e.query(sql).unwrap_err(), Error::Cancelled);
        // The same engine answers the same query once the knob is cleared —
        // no poisoned cache, no stuck state.
        e.set_cancel_after(None);
        assert_eq!(e.query(sql).unwrap().rows, expected);
        assert!(e.in_flight_ids().is_empty(), "no governor left registered");
    }

    #[test]
    fn cancelled_cached_serve_keeps_the_entry_for_the_next_caller() {
        let e = engine();
        let sql = "SELECT id FROM emp WHERE salary > 60 ORDER BY id";
        e.query_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(e.plan_cache_len(), 1);
        e.set_cancel_after(Some(1));
        assert_eq!(e.query_cached(sql, &MySqlOptimizer).unwrap_err(), Error::Cancelled);
        e.set_cancel_after(None);
        // The failed serve neither evicted nor corrupted the entry.
        assert_eq!(e.plan_cache_len(), 1);
        let out = e.query_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(ints(&out, 0), vec![1, 2, 3]);
    }

    #[test]
    fn deadline_converts_to_typed_error() {
        // The query must both outlive its 1ms budget and pass governor
        // checks while doing so: a correlated subquery re-opens its subtree
        // per outer row, so checks are sprinkled across the whole run.
        let e = big_engine(2000);
        e.set_deadline(Some(Duration::from_millis(1)));
        let slow = "SELECT COUNT(*) FROM emp a WHERE salary > \
                    (SELECT AVG(salary) FROM emp b WHERE b.dept = a.dept)";
        match e.query(slow) {
            Err(Error::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 1),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        e.set_deadline(None);
        assert_eq!(e.query("SELECT COUNT(*) FROM emp").unwrap().rows[0][0], Value::Int(2000));
    }

    #[test]
    fn memory_budget_bounds_peak_and_surfaces_typed_error() {
        let e = engine();
        let sql = "SELECT dept, SUM(salary) FROM emp GROUP BY dept ORDER BY dept";
        e.query(sql).unwrap();
        let unbounded_peak = e.last_peak_bytes();
        assert!(unbounded_peak > 0, "hash aggregate + sort charge memory");
        // A 1-byte budget fails the first charge (serial retry included).
        e.set_memory_budget(Some(1));
        match e.query(sql) {
            Err(Error::MemoryExceeded { used, budget }) => {
                assert_eq!(budget, 1);
                assert!(used > 1);
            }
            other => panic!("expected MemoryExceeded, got {other:?}"),
        }
        assert!(e.last_peak_bytes() <= 1, "peak never exceeds the budget");
        // A generous budget admits the query and tracks the same peak.
        e.set_memory_budget(Some(unbounded_peak * 2));
        assert_eq!(e.query(sql).unwrap().rows.len(), 3);
        assert!(e.last_peak_bytes() <= unbounded_peak * 2);
        e.set_memory_budget(None);
    }

    #[test]
    fn cancel_by_id_stops_a_running_query() {
        let e = std::sync::Arc::new(big_engine(30_000));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            // A canceller thread that spins until it sees the query in
            // flight, then kills it by id.
            let canceller = {
                let e = e.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for id in e.in_flight_ids() {
                            if e.cancel(id) {
                                return;
                            }
                        }
                        std::thread::yield_now();
                    }
                })
            };
            // A correlated self-join: quadratic enough that the canceller
            // always finds it in flight.
            let r =
                e.query("SELECT a.id FROM emp a, emp b WHERE a.salary = b.salary AND a.id < b.id");
            stop.store(true, Ordering::Relaxed);
            canceller.join().unwrap();
            if let Err(e) = &r {
                assert_eq!(*e, Error::Cancelled);
            }
        });
        // Either way the engine survived; a fresh query still answers.
        assert_eq!(e.query("SELECT COUNT(*) FROM emp").unwrap().rows[0][0], Value::Int(30_000));
        assert!(e.in_flight_ids().is_empty());
    }

    #[test]
    fn admission_gate_bounds_concurrent_executions() {
        let e = std::sync::Arc::new(big_engine(5000));
        e.set_admission_limit(2);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let e = e.clone();
                s.spawn(move || {
                    for _ in 0..3 {
                        let out = e
                            .query("SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept")
                            .unwrap();
                        assert_eq!(out.rows.len(), 7);
                        // The registry only ever holds admitted queries, so
                        // a sample mid-storm can never exceed the limit.
                        assert!(e.in_flight_ids().len() <= 2, "admission limit violated");
                    }
                });
            }
        });
        // Nothing deadlocked, every caller answered, and the gate drained.
        assert!(e.in_flight_ids().is_empty());
        e.set_admission_limit(usize::MAX);
    }

    #[test]
    fn memory_degradation_rung_retries_parallel_plans_serially() {
        struct CountingOpt(std::sync::atomic::AtomicUsize);
        impl CostBasedOptimizer for CountingOpt {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn optimize(&self, catalog: &Catalog, bound: &BoundStatement) -> Result<Skeleton> {
                optimize_statement(catalog, bound)
            }
            fn note_governed(&self, outcome: GovernedOutcome) {
                if outcome == GovernedOutcome::MemoryDegraded {
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let e = big_engine(5000);
        e.set_dop(4);
        e.set_morsel_rows(256);
        // A grouped aggregate: at dop=4 the repartition exchange buffers
        // every partition while phase 2 runs, charging memory the serial
        // plan never holds at once.
        let sql = "SELECT dept, COUNT(*) AS n, SUM(salary) AS s FROM emp \
                   WHERE salary < 900 GROUP BY dept ORDER BY dept";
        let opt = CountingOpt(std::sync::atomic::AtomicUsize::new(0));
        let expected = e.query_with(sql, &opt).unwrap().rows;
        let parallel_peak = e.last_peak_bytes();
        e.set_dop(1);
        e.query_with(sql, &opt).unwrap();
        let serial_peak = e.last_peak_bytes();
        e.set_dop(4);
        assert!(
            serial_peak < parallel_peak,
            "premise: the parallel sort-merge buffers charge more \
             (serial {serial_peak} vs parallel {parallel_peak})"
        );
        // A budget between the two peaks: the dop=4 attempt must exceed it
        // and the serial retry must fit — the caller sees a normal answer.
        e.set_memory_budget(Some((serial_peak + parallel_peak) / 2));
        let out = e.query_with(sql, &opt).unwrap();
        assert_eq!(out.rows, expected, "degraded retry answers identically");
        assert_eq!(opt.0.load(Ordering::Relaxed), 1, "one degraded outcome noted");
        e.set_memory_budget(None);
    }

    #[test]
    fn explain_analyze_union_annotates_all_branches() {
        let e = engine();
        let analyzed = e
            .explain_analyze(
                "SELECT id FROM emp WHERE salary > 250 UNION SELECT did FROM dept",
                &MySqlOptimizer,
            )
            .unwrap();
        assert_eq!(analyzed.output.rows.len(), 3, "{:?}", analyzed.output.rows);
        assert!(analyzed.text.contains("UNION DISTINCT\n"), "{}", analyzed.text);
        let banners = analyzed.text.lines().filter(|l| l.starts_with("EXPLAIN ANALYZE")).count();
        assert_eq!(banners, 2, "one banner per branch: {}", analyzed.text);
    }

    #[test]
    fn queued_admission_respects_the_deadline() {
        let e = engine();
        e.set_admission_limit(1);
        // Occupy the only slot directly, then watch a deadline-bounded
        // caller time out in the queue instead of parking forever.
        let slot = e.admit(&e.knobs(&SessionOpts::default())).unwrap();
        let session = SessionOpts { deadline_ms: Some(30), ..SessionOpts::default() };
        let t0 = Instant::now();
        match e.query_cached_opts("SELECT id FROM emp", &MySqlOptimizer, &session) {
            Err(Error::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 30),
            other => panic!("expected DeadlineExceeded from the admission queue, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(30), "waited out the budget");
        drop(slot);
        // With the slot free the same session admits and answers.
        let (out, _) =
            e.query_cached_opts("SELECT id FROM emp", &MySqlOptimizer, &session).unwrap();
        assert_eq!(out.rows.len(), 4);
        e.set_admission_limit(usize::MAX);
    }

    #[test]
    fn per_session_knobs_layer_over_engine_defaults() {
        let e = big_engine(3000);
        let sql = "SELECT id FROM emp WHERE salary > 500";
        // Engine default dop=1: the session override plans a parallel copy
        // without touching the engine knob or other sessions' entries.
        let (serial, _) = e.plan_cached(sql, &MySqlOptimizer).unwrap();
        assert!(!format!("{:?}", serial.primary().plan).contains("Exchange"));
        let session = SessionOpts { dop: Some(4), ..SessionOpts::default() };
        let (parallel, out) = e.plan_cached_opts(sql, &MySqlOptimizer, &session).unwrap();
        assert_eq!(out, CacheOutcome::Miss, "session knobs are part of the cache key");
        assert!(format!("{:?}", parallel.primary().plan).contains("Exchange"));
        assert_eq!(e.plan_cache_len(), 2, "both knob variants coexist");
        // Each variant hits its own entry on the next serve.
        assert_eq!(e.plan_cached(sql, &MySqlOptimizer).unwrap().1, CacheOutcome::Hit);
        assert_eq!(
            e.plan_cached_opts(sql, &MySqlOptimizer, &session).unwrap().1,
            CacheOutcome::Hit
        );
        // And results agree regardless of the session's dop.
        let ordered = "SELECT id FROM emp WHERE salary > 500 ORDER BY id";
        let (a, _) = e.query_cached_opts(ordered, &MySqlOptimizer, &session).unwrap();
        assert_eq!(a.rows, e.query_cached(ordered, &MySqlOptimizer).unwrap().rows);
    }

    #[test]
    fn session_zero_deadline_disables_the_engine_default() {
        let e = big_engine(2000);
        e.set_deadline(Some(Duration::from_millis(1)));
        let slow = "SELECT COUNT(*) FROM emp a WHERE salary > \
                    (SELECT AVG(salary) FROM emp b WHERE b.dept = a.dept)";
        assert!(matches!(e.query(slow), Err(Error::DeadlineExceeded { .. })));
        // Some(0) means "explicitly no deadline", overriding the default.
        let session = SessionOpts { deadline_ms: Some(0), ..SessionOpts::default() };
        let (out, _) = e.query_cached_opts(slow, &MySqlOptimizer, &session).unwrap();
        assert_eq!(out.rows.len(), 1);
        e.set_deadline(None);
    }
}
