//! Plan-cache regression tests for typed bind parameters: literal type
//! classes are part of a statement's fingerprint, so differently-typed
//! literals must compile (and cache) separately — never share a plan whose
//! peeked constants have another type — and each shape must keep answering
//! correctly after the other has been cached.
//!
//! Plus the eviction/concurrency audit from the feedback loop: a
//! re-optimizing eviction racing in-flight serves of the same statement
//! must neither corrupt a serve nor let a straggling static compile
//! clobber (and thereby pin) the re-optimized entry.

use mylite::feedback::worst_q;
use mylite::{Engine, MySqlOptimizer};
use taurus_catalog::Catalog;
use taurus_common::{Column, DataType, Schema, Value};

fn engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "m",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::nullable("score", DataType::Double),
                Column::nullable("tag", DataType::Str),
            ]),
        )
        .unwrap();
    cat.insert(
        t,
        vec![
            vec![Value::Int(1), Value::Double(1.5), Value::str("a")],
            vec![Value::Int(2), Value::Double(2.0), Value::str("b")],
            vec![Value::Int(3), Value::Null, Value::Null],
            vec![Value::Int(4), Value::Double(4.5), Value::str("a")],
        ],
    )
    .unwrap();
    cat.create_index(t, "m_pk", vec![0], true).unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

fn ids(e: &Engine, sql: &str) -> Vec<i64> {
    e.query_cached(sql, &MySqlOptimizer)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect()
}

#[test]
fn int_and_double_literals_compile_separately() {
    let e = engine();
    // Same text shape up to the literal, different literal type class:
    // these must be two cache entries, not one rebound entry.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 2 ORDER BY id"), vec![4]);
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 1.9 ORDER BY id"), vec![2, 4]);
    assert_eq!(e.plan_cache_len(), 2, "Int and Double shapes are distinct");
    let s = e.plan_cache_stats();
    assert_eq!((s.hits, s.misses), (0, 2));
    // Re-serving each shape hits its own entry and still rebinds correctly.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 4 ORDER BY id"), vec![4]);
    assert_eq!(ids(&e, "SELECT id FROM m WHERE score > 0.5 ORDER BY id"), vec![1, 2, 4]);
    assert_eq!(e.plan_cache_len(), 2);
    assert_eq!(e.plan_cache_stats().hits, 2);
}

#[test]
fn string_literal_shape_is_distinct_from_numeric() {
    let e = engine();
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 'a' ORDER BY id"), vec![1, 4]);
    // An Int literal in the same position: different fingerprint, fresh
    // compile; the comparison is UNKNOWN for every row (Str vs Int).
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 7 ORDER BY id"), Vec::<i64>::new());
    assert_eq!(e.plan_cache_len(), 2, "Str and Int shapes are distinct");
    // And the string shape still serves correct answers afterwards.
    assert_eq!(ids(&e, "SELECT id FROM m WHERE tag = 'b' ORDER BY id"), vec![2]);
    assert_eq!(e.plan_cache_stats().hits, 1);
}

#[test]
fn rebound_results_match_cold_compiles() {
    // The fresh-vs-rebound oracle, distilled: for every literal variant,
    // the cache-served result must equal a from-scratch compile.
    let e = engine();
    let variants = [
        "SELECT id, score FROM m WHERE score > 1.0 ORDER BY id",
        "SELECT id, score FROM m WHERE score > 1.6 ORDER BY id",
        "SELECT id, score FROM m WHERE score > 4.4 ORDER BY id",
    ];
    for sql in variants {
        let warm = e.query_cached(sql, &MySqlOptimizer).unwrap();
        let cold = e.query(sql).unwrap();
        assert_eq!(warm.rows, cold.rows, "rebound plan diverged for: {sql}");
    }
    let s = e.plan_cache_stats();
    assert_eq!((s.hits, s.misses), (2, 1), "one shape, two rebound serves");
}

// ---------------------------------------------- reopt eviction vs serves

/// Four perfectly-correlated columns: the static estimate for the
/// four-way conjunction is low by 7³, so the first observed execution
/// pushes the statement far over the default re-optimization threshold.
fn correlated_engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "f",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
                Column::new("c", DataType::Int),
                Column::new("d", DataType::Int),
            ]),
        )
        .unwrap();
    cat.insert(
        t,
        (0..3430i64).map(|i| {
            let v = Value::Int(i % 7);
            vec![v.clone(), v.clone(), v.clone(), v]
        }),
    )
    .unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

/// The audited race: the miss path compiles *after* releasing the cache
/// lock, so a static compile that started before a concurrent serve
/// re-optimized the statement can try to insert afterwards. If it were
/// allowed to overwrite, the misestimated plan would come back — and stay,
/// because the feedback store's applied-observations snapshot suppresses a
/// second re-optimization on the same observations. Hammer both serve
/// paths from several threads and then require that the surviving cache
/// entry is the re-optimized one.
#[test]
fn reopt_eviction_racing_concurrent_serves_keeps_the_reoptimized_plan() {
    let e = correlated_engine();
    let sql = "SELECT COUNT(*) FROM f WHERE a = 3 AND b = 3 AND c = 3 AND d = 3";
    let want = vec![vec![Value::Int(490)]];

    std::thread::scope(|s| {
        for t in 0..4usize {
            let (e, want) = (&e, &want);
            s.spawn(move || {
                for i in 0..12usize {
                    // Alternate the instrumented path (folds observations,
                    // can re-optimize) with the plain cached path (static
                    // compiles on a miss — the clobber candidate).
                    if (t + i) % 2 == 0 {
                        let out = e.query_cached(sql, &MySqlOptimizer).unwrap();
                        assert_eq!(&out.rows, want, "cached serve corrupted mid-race");
                    } else {
                        let (a, _) = e.analyze_cached(sql, &MySqlOptimizer).unwrap();
                        assert_eq!(&a.output.rows, want, "instrumented serve corrupted mid-race");
                    }
                }
            });
        }
    });

    assert!(
        e.plan_cache_stats().reoptimizations >= 1,
        "the hammer never crossed the re-optimization threshold"
    );
    // The dust settles onto a converged hit within a serve or two (a last
    // straggler fold may legitimately trigger one more re-optimization).
    let mut settled = None;
    for _ in 0..3 {
        let (a, o) = e.analyze_cached(sql, &MySqlOptimizer).unwrap();
        assert_eq!(&a.output.rows, &want);
        if o.label() == "hit" {
            settled = Some(a);
            break;
        }
    }
    let a = settled.expect("cache never settled to a hit after the hammer");
    let q = worst_q(&a.nodes);
    assert!(q <= 2.0, "a static compile clobbered the re-optimized entry (worst q {q:.1})");
    assert_eq!(e.plan_cache_len(), 1);
}
