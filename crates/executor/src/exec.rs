//! Plan execution.
//!
//! Execution is recursive and materializing: each operator returns its full
//! result. Correlation is handled through *bindings* — a nested-loop join
//! re-opens its right subtree once per left row with the left row appended
//! to the binding, so correlated index lookups, correlated derived tables,
//! and re-materialization ("invalidation") all fall out of one mechanism.
//!
//! Work-unit counters in [`ExecStats`] make benchmark comparisons
//! machine-independent: the paper's run-time ratios are driven by rows
//! flowing through operators and index lookups performed, both of which are
//! counted here exactly.

use crate::agg::Accumulator;
use crate::governor::{rows_bytes, QueryGovernor};
use crate::observe::{NodeObservation, ObserverIndex};
use crate::parallel::exchange::{self, BuildTable};
use crate::parallel::morsel::{MorselSpec, DEFAULT_MORSEL_ROWS};
use crate::plan::{AggStrategy, ExchangeKind, JoinKind, Plan, RowSpace};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use taurus_catalog::Catalog;
use taurus_common::error::{Error, Result};
use taurus_common::expr::EvalCtx;
use taurus_common::{Expr, Layout, Row, Value};

/// Lock a mutex, recovering from poisoning: a panicking worker is already
/// surfaced as an execution error, and every value guarded here (caches of
/// fully-computed results) is only ever written whole.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One `rebind = false` materialization slot: computed once (under the
/// slot's lock) and then shared by reference across workers.
type MatSlot = Mutex<Option<Arc<Vec<Row>>>>;

/// Work-unit counters accumulated over one query execution.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Rows emitted by all operators combined (the dominant work measure).
    pub rows_emitted: Cell<u64>,
    /// Rows read from base-table heaps and indexes.
    pub rows_scanned: Cell<u64>,
    /// Point lookups performed against indexes.
    pub index_lookups: Cell<u64>,
    /// Probe-side rows hashed against a build table.
    pub hash_probes: Cell<u64>,
    /// Rows inserted into hash-join build tables.
    pub build_rows: Cell<u64>,
    /// Times a Materialize node (re)ran its input.
    pub materializations: Cell<u64>,
    /// Work units performed inside parallel workers, summed over all
    /// workers of all exchanges (a subset of [`ExecStats::work_units`]).
    pub parallel_work: Cell<u64>,
    /// Sum over exchanges of the *slowest* worker's work — the portion of
    /// `parallel_work` that is on the critical path.
    pub parallel_critical: Cell<u64>,
    /// Per-operator observations (indexed by [`ObserverIndex`] node id).
    /// Empty unless an observer is installed on the context.
    pub nodes: RefCell<Vec<NodeObservation>>,
}

impl ExecStats {
    /// Single scalar "work" figure used by the benches: every counted unit
    /// is roughly one row's worth of processing.
    pub fn work_units(&self) -> u64 {
        self.rows_emitted.get()
            + self.rows_scanned.get()
            + self.index_lookups.get()
            + self.hash_probes.get()
            + self.build_rows.get()
    }

    /// Machine-independent critical-path work: total work minus the part
    /// that ran in parallel workers, plus the slowest worker per exchange.
    /// Equals [`ExecStats::work_units`] for a serial execution; the
    /// `parallel` harness report gates on `serial_work / critical_path`.
    pub fn critical_path_work(&self) -> u64 {
        self.work_units()
            .saturating_sub(self.parallel_work.get())
            .saturating_add(self.parallel_critical.get())
    }

    /// Fold a worker's counters into this (parent) stats block.
    pub(crate) fn merge(&self, other: &ExecStats) {
        Self::bump(&self.rows_emitted, other.rows_emitted.get());
        Self::bump(&self.rows_scanned, other.rows_scanned.get());
        Self::bump(&self.index_lookups, other.index_lookups.get());
        Self::bump(&self.hash_probes, other.hash_probes.get());
        Self::bump(&self.build_rows, other.build_rows.get());
        Self::bump(&self.materializations, other.materializations.get());
        Self::bump(&self.parallel_work, other.parallel_work.get());
        Self::bump(&self.parallel_critical, other.parallel_critical.get());
        let theirs = other.nodes.borrow();
        if !theirs.is_empty() {
            let mut ours = self.nodes.borrow_mut();
            if ours.len() < theirs.len() {
                ours.resize(theirs.len(), NodeObservation::default());
            }
            for (o, t) in ours.iter_mut().zip(theirs.iter()) {
                o.rows += t.rows;
                o.loops += t.loops;
            }
        }
    }

    pub(crate) fn bump(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get() + by);
    }
}

/// Per-execution context: the catalog, the query's table count, counters,
/// and the materialization cache. Counters stay `Cell`-based (no atomics in
/// the hot path): each parallel worker gets its *own* context via
/// [`SharedExec::worker`] and the pool merges counters after joining; only
/// the materialization and broadcast caches are shared across workers.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub num_tables: usize,
    pub stats: ExecStats,
    /// `rebind = false` materialization slots, shared across workers — the
    /// first worker to reach a slot computes it under the slot's lock.
    cache: Arc<Vec<MatSlot>>,
    /// Shared hash-join build tables, keyed by `Broadcast` exchange slot.
    broadcast: Arc<Mutex<HashMap<usize, Arc<BuildTable>>>>,
    /// Target rows per morsel for parallel fragments (a runtime knob; the
    /// stress tests sweep it to shake out scheduling-order bugs).
    morsel_rows: usize,
    /// Set inside pool workers: forbids nested worker pools.
    in_worker: bool,
    /// The morsel restriction installed by the worker loop: the driving
    /// scan with this qt only visits positions `[lo, hi)` of its iteration
    /// order.
    morsel: Cell<Option<MorselSpec>>,
    /// Per-node observation index for `EXPLAIN ANALYZE`; `None` (the
    /// default) keeps execution uninstrumented.
    observer: Option<Arc<ObserverIndex>>,
    /// The query's resource governor (cancel token, deadline, memory
    /// accounting), shared across all workers of the query. `None` (the
    /// default) keeps execution ungoverned.
    governor: Option<Arc<QueryGovernor>>,
    /// Route supported operator subtrees through the columnar batch engine
    /// (`crate::batch`). Off by default; byte-identity with the row path is
    /// the contract either way.
    vectorized: bool,
}

impl<'a> ExecContext<'a> {
    /// `num_cache_slots` comes from [`Plan::assign_cache_slots`].
    pub fn new(catalog: &'a Catalog, num_tables: usize, num_cache_slots: usize) -> Self {
        ExecContext {
            catalog,
            num_tables,
            stats: ExecStats::default(),
            cache: Arc::new((0..num_cache_slots).map(|_| Mutex::new(None)).collect()),
            broadcast: Arc::new(Mutex::new(HashMap::new())),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            in_worker: false,
            morsel: Cell::new(None),
            observer: None,
            governor: None,
            vectorized: false,
        }
    }

    /// Override the morsel granularity (rows per morsel, clamped to ≥ 1).
    pub fn set_morsel_rows(&mut self, rows: usize) {
        self.morsel_rows = rows.max(1);
    }

    /// Enable (or disable) the vectorized batch execution path.
    pub fn set_vectorized(&mut self, on: bool) {
        self.vectorized = on;
    }

    /// Whether an `EXPLAIN ANALYZE` observer is installed — per-node
    /// observation needs the row path's one-recursion-per-node shape.
    pub(crate) fn observing(&self) -> bool {
        self.observer.is_some()
    }

    /// Install a per-node observer. Every operator of the indexed plan then
    /// records its actual rows and loop count into `stats.nodes`.
    pub fn set_observer(&mut self, observer: Arc<ObserverIndex>) {
        self.observer = Some(observer);
    }

    /// Install the query's resource governor. Operators then check it at
    /// every opening (and the worker pool before every morsel claim) and
    /// charge their buffer footprints against its memory budget.
    pub fn set_governor(&mut self, governor: Arc<QueryGovernor>) {
        self.governor = Some(governor);
    }

    /// Cancel/deadline check at a batch or morsel boundary. No-op when the
    /// execution is ungoverned.
    pub(crate) fn check_governor(&self) -> Result<()> {
        match &self.governor {
            Some(g) => g.check(),
            None => Ok(()),
        }
    }

    /// Charge operator buffer bytes against the memory budget (no-op when
    /// ungoverned). Callers must [`ExecContext::uncharge_mem`] the same
    /// amount when the buffer is released — except on error unwinds, where
    /// the governor is discarded with the failed query.
    pub(crate) fn charge_mem(&self, bytes: u64) -> Result<()> {
        match &self.governor {
            Some(g) => g.charge(bytes),
            None => Ok(()),
        }
    }

    /// Release a previous [`ExecContext::charge_mem`].
    pub(crate) fn uncharge_mem(&self, bytes: u64) {
        if let Some(g) = &self.governor {
            g.uncharge(bytes);
        }
    }

    /// Credit one completed opening of `plan` with `rows` output rows.
    pub(crate) fn record(&self, plan: &Plan, rows: u64) {
        let Some(obs) = &self.observer else { return };
        if let Some(id) = obs.id_of(plan) {
            let mut nodes = self.stats.nodes.borrow_mut();
            if nodes.len() < obs.len() {
                nodes.resize(obs.len(), NodeObservation::default());
            }
            nodes[id].rows += rows;
            nodes[id].loops += 1;
        }
    }

    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    pub(crate) fn in_worker(&self) -> bool {
        self.in_worker
    }

    /// The `Sync` slice of this context that worker threads clone their own
    /// contexts from: shared caches by `Arc`, fresh counters per worker.
    pub(crate) fn shared(&self) -> SharedExec<'a> {
        SharedExec {
            catalog: self.catalog,
            num_tables: self.num_tables,
            cache: self.cache.clone(),
            broadcast: self.broadcast.clone(),
            morsel_rows: self.morsel_rows,
            observer: self.observer.clone(),
            governor: self.governor.clone(),
            vectorized: self.vectorized,
        }
    }

    /// Restrict the driving scan `qt` to the given morsel (workers only).
    pub(crate) fn set_morsel(&self, spec: Option<MorselSpec>) {
        self.morsel.set(spec);
    }

    pub(crate) fn morsel_range(&self, qt: usize) -> Option<(usize, usize)> {
        match self.morsel.get() {
            Some(m) if m.qt == qt => Some((m.lo, m.hi)),
            _ => None,
        }
    }

    /// Fetch the shared build table for a broadcast slot, computing it under
    /// the cache lock if this is the first worker to need it.
    pub(crate) fn shared_build(
        &self,
        slot: usize,
        build: impl FnOnce() -> Result<BuildTable>,
    ) -> Result<Arc<BuildTable>> {
        let mut map = lock(&self.broadcast);
        if let Some(b) = map.get(&slot) {
            return Ok(b.clone());
        }
        let b = Arc::new(build()?);
        map.insert(slot, b.clone());
        Ok(b)
    }
}

/// The thread-shareable parts of an [`ExecContext`]. Worker threads derive
/// their own contexts from this; plans are `Send` because every shared data
/// structure on the path (tables, indexes, histogram statistics, cached
/// materializations) is owned or behind `Arc`.
#[derive(Clone)]
pub(crate) struct SharedExec<'a> {
    catalog: &'a Catalog,
    num_tables: usize,
    cache: Arc<Vec<MatSlot>>,
    broadcast: Arc<Mutex<HashMap<usize, Arc<BuildTable>>>>,
    morsel_rows: usize,
    observer: Option<Arc<ObserverIndex>>,
    governor: Option<Arc<QueryGovernor>>,
    vectorized: bool,
}

impl<'a> SharedExec<'a> {
    /// A worker's private context sharing the parent's caches.
    pub(crate) fn worker(&self) -> ExecContext<'a> {
        ExecContext {
            catalog: self.catalog,
            num_tables: self.num_tables,
            stats: ExecStats::default(),
            cache: self.cache.clone(),
            broadcast: self.broadcast.clone(),
            morsel_rows: self.morsel_rows,
            in_worker: true,
            morsel: Cell::new(None),
            observer: self.observer.clone(),
            governor: self.governor.clone(),
            vectorized: self.vectorized,
        }
    }
}

/// An outer binding: the rows of already-bound tables, for correlation.
#[derive(Clone, Copy)]
pub(crate) struct Binding<'a> {
    pub(crate) row: &'a [Value],
    pub(crate) layout: &'a Layout,
}

/// Execute a plan to completion with no outer binding.
pub fn execute(plan: &Plan, ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    let empty_layout = Layout::empty(ctx.num_tables);
    let empty_row: Vec<Value> = Vec::new();
    exec(plan, ctx, Binding { row: &empty_row, layout: &empty_layout })
}

/// Evaluation environment combining the binding with an operator's own rows.
pub(crate) struct Env {
    layout: Layout,
    prefix: Vec<Value>,
    /// Scratch buffer reused across rows.
    buf: RefCell<Vec<Value>>,
}

impl Env {
    pub(crate) fn new(binding: Binding<'_>, input_space: &RowSpace, num_tables: usize) -> Env {
        match input_space {
            RowSpace::Tables(l) => {
                if binding.layout.width() == 0 {
                    Env { layout: l.clone(), prefix: Vec::new(), buf: RefCell::new(Vec::new()) }
                } else {
                    Env {
                        layout: binding.layout.join(l),
                        prefix: binding.row.to_vec(),
                        buf: RefCell::new(Vec::new()),
                    }
                }
            }
            // Slot-space rows are addressed by Expr::Slot; the binding never
            // reaches above a projection/aggregation boundary.
            RowSpace::Slots(_) => Env {
                layout: Layout::empty(num_tables),
                prefix: Vec::new(),
                buf: RefCell::new(Vec::new()),
            },
        }
    }

    pub(crate) fn eval(&self, e: &Expr, row: &[Value]) -> Result<Value> {
        if self.prefix.is_empty() {
            e.eval(EvalCtx::new(row, &self.layout))
        } else {
            let mut buf = self.buf.borrow_mut();
            buf.clear();
            buf.extend_from_slice(&self.prefix);
            buf.extend_from_slice(row);
            e.eval(EvalCtx::new(&buf, &self.layout))
        }
    }

    pub(crate) fn passes(&self, filters: &[Expr], row: &[Value]) -> Result<bool> {
        for f in filters {
            if !self.eval(f, row)?.is_true() {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Execute one node and record its observation (when an observer is
/// installed). All recursion goes through here, so every node of the tree —
/// including exchanges, which bypass the work-unit accounting below — gets
/// its actual rows and loop count credited.
pub(crate) fn exec(plan: &Plan, ctx: &ExecContext<'_>, binding: Binding<'_>) -> Result<Vec<Row>> {
    // The batch-boundary governance check: every operator opening (and every
    // correlated re-opening) passes through here, so a cancelled or
    // out-of-time query unwinds within one operator batch.
    ctx.check_governor()?;
    // Vectorized route: hand the largest supported subtree to the columnar
    // batch engine. Correlated re-openings (non-empty binding) and observed
    // (`EXPLAIN ANALYZE`) executions stay on the row path; unsupported roots
    // fall through and their children get another chance via this same
    // recursion.
    if ctx.vectorized && !ctx.observing() && binding.row.is_empty() {
        if let Some(rows) = crate::batch::try_exec_rows(plan, ctx, binding)? {
            return Ok(rows);
        }
    }
    let out = exec_node(plan, ctx, binding)?;
    ctx.record(plan, out.len() as u64);
    Ok(out)
}

fn exec_node(plan: &Plan, ctx: &ExecContext<'_>, binding: Binding<'_>) -> Result<Vec<Row>> {
    let out = match plan {
        Plan::TableScan { table, qt, filter, .. } => {
            let t = ctx.catalog.table(*table)?;
            let env = Env::new(binding, &plan.space(ctx.num_tables), ctx.num_tables);
            let mut out = Vec::new();
            // Inside a parallel worker the driving scan only visits its
            // morsel's slice of the heap order.
            let (skip, take) = scan_window(ctx.morsel_range(*qt));
            for (_, row) in t.data.scan().skip(skip).take(take) {
                ExecStats::bump(&ctx.stats.rows_scanned, 1);
                if env.passes(filter, row)? {
                    out.push(row.clone());
                }
            }
            out
        }
        Plan::IndexScan { table, qt, index, filter, .. } => {
            let t = ctx.catalog.table(*table)?;
            let ix = t.indexes.get(*index).ok_or_else(|| Error::internal("bad index id"))?;
            let env = Env::new(binding, &plan.space(ctx.num_tables), ctx.num_tables);
            let mut out = Vec::new();
            // Morsels over an index scan slice its *key order* positions.
            let (skip, take) = scan_window(ctx.morsel_range(*qt));
            for rid in ix.scan_ordered().skip(skip).take(take) {
                ExecStats::bump(&ctx.stats.rows_scanned, 1);
                let row = t.data.row(rid);
                if env.passes(filter, row)? {
                    out.push(row.clone());
                }
            }
            out
        }
        Plan::IndexRange { table, index, lo, hi, filter, .. } => {
            let t = ctx.catalog.table(*table)?;
            let ix = t.indexes.get(*index).ok_or_else(|| Error::internal("bad index id"))?;
            // Bounds evaluate against the binding only (usually constants).
            let bind_env = Env {
                layout: binding.layout.clone(),
                prefix: Vec::new(),
                buf: RefCell::new(Vec::new()),
            };
            let lo_v = lo
                .as_ref()
                .map(|(e, inc)| Ok::<_, Error>((bind_env.eval(e, binding.row)?, *inc)))
                .transpose()?;
            let hi_v = hi
                .as_ref()
                .map(|(e, inc)| Ok::<_, Error>((bind_env.eval(e, binding.row)?, *inc)))
                .transpose()?;
            let mut out = Vec::new();
            // A NULL bound makes the consumed comparison UNKNOWN for every
            // row: the range matches nothing. (NULL sorts first in the
            // index's total order, so [NULL, ∞) would otherwise cover the
            // whole table.)
            let null_bound = lo_v.as_ref().is_some_and(|(v, _)| v.is_null())
                || hi_v.as_ref().is_some_and(|(v, _)| v.is_null());
            if !null_bound {
                let env = Env::new(binding, &plan.space(ctx.num_tables), ctx.num_tables);
                // An unbounded-below range must still start *after* the
                // index's NULL prefix: the range comes from a comparison
                // predicate, which is UNKNOWN for a NULL key, yet NULL
                // sorts first in the key order — `k <= hi` with no lower
                // bound would otherwise sweep every NULL row in. An
                // exclusive NULL bound is exactly "skip the NULL prefix".
                let lo_arg = match lo_v.as_ref() {
                    Some((v, i)) => Some((v, *i)),
                    None => Some((&Value::Null, false)),
                };
                for rid in ix.range(lo_arg, hi_v.as_ref().map(|(v, i)| (v, *i))) {
                    ExecStats::bump(&ctx.stats.rows_scanned, 1);
                    let row = t.data.row(rid);
                    if env.passes(filter, row)? {
                        out.push(row.clone());
                    }
                }
            }
            out
        }
        Plan::IndexLookup { table, index, keys, filter, .. } => {
            let t = ctx.catalog.table(*table)?;
            let ix = t.indexes.get(*index).ok_or_else(|| Error::internal("bad index id"))?;
            let bind_env = Env {
                layout: binding.layout.clone(),
                prefix: Vec::new(),
                buf: RefCell::new(Vec::new()),
            };
            let mut key_vals = Vec::with_capacity(keys.len());
            let mut any_null = false;
            for k in keys {
                let v = bind_env.eval(k, binding.row)?;
                any_null |= v.is_null();
                key_vals.push(v);
            }
            ExecStats::bump(&ctx.stats.index_lookups, 1);
            let mut out = Vec::new();
            // A NULL key never matches anything under `=` semantics.
            if !any_null {
                let env = Env::new(binding, &plan.space(ctx.num_tables), ctx.num_tables);
                for rid in ix.lookup(&key_vals) {
                    ExecStats::bump(&ctx.stats.rows_scanned, 1);
                    let row = t.data.row(rid);
                    if env.passes(filter, row)? {
                        out.push(row.clone());
                    }
                }
            }
            out
        }
        Plan::NestedLoop { kind, left, right, on, null_aware, .. } => {
            exec_nested_loop(*kind, left, right, on, *null_aware, ctx, binding)?
        }
        Plan::HashJoin { kind, build_left, left, right, keys, residual, null_aware, .. } => {
            exec_hash_join(
                *kind,
                *build_left,
                left,
                right,
                keys,
                residual,
                *null_aware,
                ctx,
                binding,
            )?
        }
        Plan::Filter { input, predicate, .. } => {
            let rows = exec(input, ctx, binding)?;
            let env = Env::new(binding, &input.space(ctx.num_tables), ctx.num_tables);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if env.passes(predicate, &row)? {
                    out.push(row);
                }
            }
            out
        }
        Plan::Derived { input, .. } => exec(input, ctx, binding)?,
        Plan::Materialize { input, rebind, cache_slot, .. } => {
            if *rebind {
                // Correlated: re-materialize under the current binding
                // (MySQL's "invalidate on row from ...").
                ExecStats::bump(&ctx.stats.materializations, 1);
                exec(input, ctx, binding)?
            } else {
                // Compute-under-lock: concurrent workers wanting the same
                // slot wait for the first one instead of duplicating work.
                // Slot locks nest strictly outer-before-inner (tree order),
                // identically in every worker, so no cycles are possible.
                let slot = ctx
                    .cache
                    .get(*cache_slot)
                    .ok_or_else(|| Error::internal("materialize cache slot out of range"))?;
                let mut slot = lock(slot);
                match &*slot {
                    Some(rows) => rows.as_ref().clone(),
                    None => {
                        ExecStats::bump(&ctx.stats.materializations, 1);
                        let rows = Arc::new(exec(input, ctx, binding)?);
                        // The slot outlives this operator (it is shared by
                        // every worker), so its charge is never released.
                        ctx.charge_mem(rows_bytes(&rows))?;
                        *slot = Some(rows.clone());
                        rows.as_ref().clone()
                    }
                }
            }
        }
        Plan::Project { input, exprs, .. } => {
            let rows = exec(input, ctx, binding)?;
            let env = Env::new(binding, &input.space(ctx.num_tables), ctx.num_tables);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut prow = Vec::with_capacity(exprs.len());
                for e in exprs {
                    prow.push(env.eval(e, &row)?);
                }
                out.push(prow);
            }
            out
        }
        Plan::Aggregate { input, group_by, aggs, strategy, .. } => {
            // A Repartition exchange below a grouped aggregate switches to
            // two-phase partitioned aggregation (each worker owns a
            // disjoint set of groups); any other input aggregates serially.
            if let Plan::Exchange {
                kind: ExchangeKind::Repartition { keys },
                input: pinput,
                dop,
                ..
            } = input.as_ref()
            {
                exchange::exec_partitioned_agg(
                    pinput, keys, *dop, group_by, aggs, input, ctx, binding,
                )?
            } else {
                let rows = exec(input, ctx, binding)?;
                let env = Env::new(binding, &input.space(ctx.num_tables), ctx.num_tables);
                // Hash aggregation holds group state proportional to its
                // input; stream aggregation is O(1) and charges nothing.
                let agg_bytes = if *strategy == AggStrategy::Hash { rows_bytes(&rows) } else { 0 };
                ctx.charge_mem(agg_bytes)?;
                let out = exec_aggregate(&rows, group_by, aggs, *strategy, &env)?;
                ctx.uncharge_mem(agg_bytes);
                out
            }
        }
        Plan::Sort { input, keys, .. } => {
            let rows = exec(input, ctx, binding)?;
            let env = Env::new(binding, &input.space(ctx.num_tables), ctx.num_tables);
            // The keyed sort buffer roughly doubles the input's footprint
            // while the sort runs; released once the rows are re-emitted.
            let sort_bytes = rows_bytes(&rows);
            ctx.charge_mem(sort_bytes)?;
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            for row in rows {
                let mut kv = Vec::with_capacity(keys.len());
                for k in keys {
                    kv.push(env.eval(&k.expr, &row)?);
                }
                keyed.push((kv, row));
            }
            keyed.sort_by(|(a, _), (b, _)| crate::ordering::cmp_key_tuples(a, b, keys));
            let out: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
            ctx.uncharge_mem(sort_bytes);
            out
        }
        Plan::Limit { input, n, .. } => {
            let mut rows = exec(input, ctx, binding)?;
            rows.truncate(*n as usize);
            rows
        }
        Plan::Union { inputs, distinct, .. } => {
            let mut out = Vec::new();
            for p in inputs {
                out.extend(exec(p, ctx, binding)?);
            }
            if *distinct {
                let mut seen = std::collections::HashSet::new();
                out.retain(|r| seen.insert(r.clone()));
            }
            out
        }
        // Exchanges move buffers between workers; they never process rows
        // themselves (the fragment's operators already counted every row).
        // Returning early — skipping the emit bump below — keeps a parallel
        // plan's total work_units identical to the serial plan's, so the
        // harness speedup is pure critical-path math. The per-row transfer
        // overhead an exchange does impose is modeled in the cost model
        // (`TRANSFER_ROW`), not in runtime work counters.
        Plan::Exchange { kind, input, dop, .. } => {
            return match kind {
                ExchangeKind::Gather | ExchangeKind::GatherMerge => {
                    exchange::exec_gather(kind, input, *dop, ctx, binding)
                }
                // Repartition is consumed by the Aggregate arm above;
                // Broadcast by the hash-join build path. Reached directly
                // (e.g. by a plan built by hand) both are order-preserving
                // pass-throughs.
                ExchangeKind::Repartition { .. } | ExchangeKind::Broadcast { .. } => {
                    exec(input, ctx, binding)
                }
            };
        }
    };
    ExecStats::bump(&ctx.stats.rows_emitted, out.len() as u64);
    Ok(out)
}

/// `(skip, take)` for a scan iterator under an optional morsel restriction.
fn scan_window(range: Option<(usize, usize)>) -> (usize, usize) {
    match range {
        Some((lo, hi)) => (lo, hi.saturating_sub(lo)),
        None => (0, usize::MAX),
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_nested_loop(
    kind: JoinKind,
    left: &Plan,
    right: &Plan,
    on: &[Expr],
    null_aware: bool,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
) -> Result<Vec<Row>> {
    let left_rows = exec(left, ctx, binding)?;
    let left_space = left.space(ctx.num_tables);
    let left_layout = match &left_space {
        RowSpace::Tables(l) => l.clone(),
        RowSpace::Slots(_) => return Err(Error::internal("NLJ left side must be in table space")),
    };
    let right_width = right.space(ctx.num_tables).width();
    // Environment for the ON condition: binding + left + right.
    let on_env_space = whole_join_space(ctx.num_tables, left, right)?;
    let on_env = Env::new(binding, &on_env_space, ctx.num_tables);

    let inner_layout = binding.layout.join(&left_layout);
    let mut out = Vec::new();
    for lrow in &left_rows {
        // Extend the binding with the left row for the right subtree.
        let mut bound_row = Vec::with_capacity(binding.row.len() + lrow.len());
        bound_row.extend_from_slice(binding.row);
        bound_row.extend_from_slice(lrow);
        let inner_binding = Binding { row: &bound_row, layout: &inner_layout };
        let right_rows = exec(right, ctx, inner_binding)?;

        let mut matched = false;
        let mut saw_unknown = false;
        for rrow in &right_rows {
            let mut joined = Vec::with_capacity(lrow.len() + rrow.len());
            joined.extend_from_slice(lrow);
            joined.extend_from_slice(rrow);
            // Three-valued conjunction: FALSE short-circuits, any UNKNOWN
            // without a FALSE leaves the row's membership unknown — which
            // matters for NULL-aware anti joins (NOT IN).
            let mut verdict = Some(true);
            for c in on {
                match on_env.eval(c, &joined)?.truth() {
                    Some(true) => {}
                    Some(false) => {
                        verdict = Some(false);
                        break;
                    }
                    None => verdict = None,
                }
            }
            match verdict {
                Some(true) => {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => out.push(joined),
                        JoinKind::Semi => {
                            out.push(lrow.clone());
                            break;
                        }
                        JoinKind::AntiSemi => break,
                    }
                }
                None => saw_unknown = true,
                Some(false) => {}
            }
        }
        if !matched {
            match kind {
                JoinKind::LeftOuter => {
                    let mut joined = Vec::with_capacity(lrow.len() + right_width);
                    joined.extend_from_slice(lrow);
                    joined.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(joined);
                }
                JoinKind::AntiSemi if !(null_aware && saw_unknown) => {
                    out.push(lrow.clone());
                }
                _ => {}
            }
        }
    }
    Ok(out)
}

/// Row space the ON/residual conditions see: left ++ right (even for
/// semi/anti joins whose *output* is left-only).
pub(crate) fn whole_join_space(num_tables: usize, left: &Plan, right: &Plan) -> Result<RowSpace> {
    match (left.space(num_tables), right.space(num_tables)) {
        (RowSpace::Tables(l), RowSpace::Tables(r)) => Ok(RowSpace::Tables(l.join(&r))),
        _ => Err(Error::internal("join children must be in table space")),
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_hash_join(
    kind: JoinKind,
    build_left: bool,
    left: &Plan,
    right: &Plan,
    keys: &[(Expr, Expr)],
    residual: &[Expr],
    null_aware: bool,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
) -> Result<Vec<Row>> {
    if keys.is_empty() {
        return Err(Error::internal("hash join requires at least one equi-key"));
    }
    if build_left && kind != JoinKind::Inner {
        return Err(Error::internal(
            "build-on-left is MySQL's inner-hash-join convention only (§7 item 2)",
        ));
    }
    // Decide sides. Build rows are hashed; probe rows stream past.
    let build_is_left = build_left;
    let (build_plan, probe_plan): (&Plan, &Plan) =
        if build_is_left { (left, right) } else { (right, left) };
    let build_env = Env::new(binding, &build_plan.space(ctx.num_tables), ctx.num_tables);
    let probe_env = Env::new(binding, &probe_plan.space(ctx.num_tables), ctx.num_tables);
    let join_space = whole_join_space(ctx.num_tables, left, right)?;
    let join_env = Env::new(binding, &join_space, ctx.num_tables);
    let build_keys: Vec<&Expr> = if build_is_left {
        keys.iter().map(|(l, _)| l).collect()
    } else {
        keys.iter().map(|(_, r)| r).collect()
    };
    let probe_keys: Vec<&Expr> = if build_is_left {
        keys.iter().map(|(_, r)| r).collect()
    } else {
        keys.iter().map(|(l, _)| l).collect()
    };

    // A Broadcast exchange on the build side shares one build table across
    // all parallel workers (built once, under the broadcast cache's lock);
    // otherwise each execution builds privately, exactly as before. A shared
    // build's memory charge stays until the query ends; a private build's is
    // released once its probe phase finishes.
    let build_is_shared =
        matches!(build_plan, Plan::Exchange { kind: ExchangeKind::Broadcast { .. }, .. });
    let built: Arc<BuildTable> = match build_plan {
        Plan::Exchange { kind: ExchangeKind::Broadcast { slot }, input, .. } => {
            ctx.shared_build(*slot, || {
                let rows = exec(input, ctx, binding)?;
                // The broadcast node itself is never routed through `exec`,
                // so credit it here — only on the one actual build, not on
                // cache-served accesses.
                ctx.record(build_plan, rows.len() as u64);
                build_table(rows, &build_keys, &build_env, ctx)
            })?
        }
        _ => {
            let rows = exec(build_plan, ctx, binding)?;
            Arc::new(build_table(rows, &build_keys, &build_env, ctx)?)
        }
    };
    let probe_rows = exec(probe_plan, ctx, binding)?;
    let (table, build_rows, build_has_null_key) = (&built.index, &built.rows, built.has_null_key);

    let joined = |lrow: &Row, rrow: &Row| -> Row {
        let mut j = Vec::with_capacity(lrow.len() + rrow.len());
        j.extend_from_slice(lrow);
        j.extend_from_slice(rrow);
        j
    };

    let right_width = right.space(ctx.num_tables).width();
    let mut out = Vec::new();
    for prow in &probe_rows {
        ExecStats::bump(&ctx.stats.hash_probes, 1);
        let mut kv = Vec::with_capacity(probe_keys.len());
        let mut any_null = false;
        for k in &probe_keys {
            let v = probe_env.eval(k, prow)?;
            any_null |= v.is_null();
            kv.push(v);
        }
        let matches: &[usize] =
            if any_null { &[] } else { table.get(&kv).map(|v| v.as_slice()).unwrap_or(&[]) };

        let mut matched = false;
        for &bi in matches {
            let brow = build_rows
                .get(bi)
                .ok_or_else(|| Error::internal("hash-join build index out of range"))?;
            let j = if build_is_left { joined(brow, prow) } else { joined(prow, brow) };
            if join_env.passes(residual, &j)? {
                matched = true;
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter => out.push(j),
                    JoinKind::Semi => {
                        out.push(prow.clone());
                        break;
                    }
                    JoinKind::AntiSemi => break,
                }
            }
        }
        if !matched {
            match kind {
                JoinKind::LeftOuter => {
                    // Probe is the left side for outer joins (asserted above).
                    let mut j = Vec::with_capacity(prow.len() + right_width);
                    j.extend_from_slice(prow);
                    j.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(j);
                }
                JoinKind::AntiSemi => {
                    // NULL-aware anti join (NOT IN): a NULL probe key, or any
                    // NULL key on the build side, makes membership UNKNOWN —
                    // the row is filtered out, not emitted. Over an EMPTY
                    // build side, though, `x NOT IN (∅)` is TRUE even for
                    // NULL x: there is nothing to be unknown against.
                    if null_aware && !build_rows.is_empty() && (any_null || build_has_null_key) {
                        continue;
                    }
                    out.push(prow.clone());
                }
                _ => {}
            }
        }
    }
    if !build_is_shared {
        ctx.uncharge_mem(rows_bytes(&built.rows));
    }
    Ok(out)
}

/// Hash the build side of a join: index row positions by key values.
/// Rows with any NULL key component are excluded from the index (they can
/// never match under `=`) but remembered for NULL-aware anti joins.
/// Charges the buffered rows against the query's memory budget; the caller
/// owns the uncharge (or leaves it charged, for shared broadcast builds).
pub(crate) fn build_table(
    rows: Vec<Row>,
    keys: &[&Expr],
    env: &Env,
    ctx: &ExecContext<'_>,
) -> Result<BuildTable> {
    ctx.charge_mem(rows_bytes(&rows))?;
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rows.len());
    let mut has_null_key = false;
    for (i, row) in rows.iter().enumerate() {
        ExecStats::bump(&ctx.stats.build_rows, 1);
        let mut kv = Vec::with_capacity(keys.len());
        let mut any_null = false;
        for k in keys {
            let v = env.eval(k, row)?;
            any_null |= v.is_null();
            kv.push(v);
        }
        if any_null {
            has_null_key = true;
            continue;
        }
        index.entry(kv).or_default().push(i);
    }
    Ok(BuildTable { rows, index, has_null_key })
}

pub(crate) fn exec_aggregate(
    rows: &[Row],
    group_by: &[Expr],
    aggs: &[crate::plan::AggSpec],
    strategy: AggStrategy,
    env: &Env,
) -> Result<Vec<Row>> {
    let feed = |accs: &mut [Accumulator], row: &Row| -> Result<()> {
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            let v = match &spec.arg {
                Some(e) => env.eval(e, row)?,
                None => Value::Int(1), // COUNT(*) placeholder
            };
            acc.update(&v)?;
        }
        Ok(())
    };
    let new_accs = || -> Vec<Accumulator> {
        aggs.iter().map(|s| Accumulator::new(s.func, s.distinct)).collect()
    };
    let emit = |key: Vec<Value>, accs: &[Accumulator]| -> Row {
        let mut row = key;
        row.extend(accs.iter().map(|a| a.finish()));
        row
    };

    // Scalar aggregation (no GROUP BY): always exactly one output row.
    if group_by.is_empty() {
        let mut accs = new_accs();
        for row in rows {
            feed(&mut accs, row)?;
        }
        return Ok(vec![emit(Vec::new(), &accs)]);
    }

    match strategy {
        AggStrategy::Hash => {
            let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for row in rows {
                let mut key = Vec::with_capacity(group_by.len());
                for g in group_by {
                    key.push(env.eval(g, row)?);
                }
                let accs = match groups.get_mut(&key) {
                    Some(a) => a,
                    None => {
                        order.push(key.clone());
                        groups.entry(key.clone()).or_insert_with(new_accs)
                    }
                };
                feed(accs, row)?;
            }
            let mut out = Vec::with_capacity(order.len());
            for key in order {
                let accs = groups
                    .get(&key)
                    .ok_or_else(|| Error::internal("hash-aggregate group vanished"))?;
                out.push(emit(key, accs));
            }
            Ok(out)
        }
        AggStrategy::Stream => {
            // Input must arrive grouped (sorted) on the keys.
            let mut out = Vec::new();
            let mut current: Option<(Vec<Value>, Vec<Accumulator>)> = None;
            for row in rows {
                let mut key = Vec::with_capacity(group_by.len());
                for g in group_by {
                    key.push(env.eval(g, row)?);
                }
                match &mut current {
                    Some((ck, accs)) if *ck == key => feed(accs, row)?,
                    _ => {
                        if let Some((ck, accs)) = current.take() {
                            out.push(emit(ck, &accs));
                        }
                        let mut accs = new_accs();
                        feed(&mut accs, row)?;
                        current = Some((key, accs));
                    }
                }
            }
            if let Some((ck, accs)) = current.take() {
                out.push(emit(ck, &accs));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggSpec, Est, SortKey};
    use taurus_catalog::Catalog;
    use taurus_common::{AggFunc, BinOp, Column, DataType, Schema, TableId};

    /// Two tables: emp(id, dept_id, salary) and dept(id, name).
    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        let emp = cat
            .create_table(
                "emp",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("dept_id", DataType::Int),
                    Column::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        cat.insert(
            emp,
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(2), Value::Int(10), Value::Int(200)],
                vec![Value::Int(3), Value::Int(20), Value::Int(300)],
                vec![Value::Int(4), Value::Null, Value::Int(400)],
            ],
        )
        .unwrap();
        cat.create_index(emp, "emp_dept", vec![1], false).unwrap();
        let dept = cat
            .create_table(
                "dept",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("name", DataType::Str),
                ]),
            )
            .unwrap();
        cat.insert(
            dept,
            vec![
                vec![Value::Int(10), Value::str("eng")],
                vec![Value::Int(20), Value::str("ops")],
                vec![Value::Int(30), Value::str("hr")],
            ],
        )
        .unwrap();
        cat.create_index(dept, "dept_pk", vec![0], true).unwrap();
        cat
    }

    // Query-table convention in these tests: qt 0 = emp, qt 1 = dept.
    const EMP: TableId = TableId(0);
    const DEPT: TableId = TableId(1);

    fn emp_scan(filter: Vec<Expr>) -> Plan {
        Plan::TableScan { table: EMP, qt: 0, width: 3, filter, est: Est::default() }
    }

    fn dept_scan() -> Plan {
        Plan::TableScan { table: DEPT, qt: 1, width: 2, filter: vec![], est: Est::default() }
    }

    fn run(plan: &Plan, cat: &Catalog) -> (Vec<Row>, u64) {
        let mut p = plan.clone();
        let slots = p.assign_cache_slots();
        let ctx = ExecContext::new(cat, 2, slots);
        let rows = execute(&p, &ctx).unwrap();
        (rows, ctx.stats.work_units())
    }

    #[test]
    fn table_scan_with_filter() {
        let cat = setup();
        let plan = emp_scan(vec![Expr::binary(BinOp::Gt, Expr::col(0, 2), Expr::int(150))]);
        let (rows, _) = run(&plan, &cat);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn nested_loop_with_index_lookup_inner() {
        let cat = setup();
        // emp NLJ dept via dept_pk lookup on emp.dept_id.
        let plan = Plan::NestedLoop {
            kind: JoinKind::Inner,
            left: Box::new(emp_scan(vec![])),
            right: Box::new(Plan::IndexLookup {
                table: DEPT,
                qt: 1,
                width: 2,
                index: 0,
                keys: vec![Expr::col(0, 1)], // emp.dept_id from the binding
                filter: vec![],
                est: Est::default(),
            }),
            on: vec![],
            null_aware: false,
            est: Est::default(),
        };
        let (rows, _) = run(&plan, &cat);
        // Employee 4 has NULL dept_id -> no match -> dropped by inner join.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 5);
        assert_eq!(rows[0][4], Value::str("eng"));
    }

    #[test]
    fn left_outer_nested_loop_pads_nulls() {
        let cat = setup();
        let plan = Plan::NestedLoop {
            kind: JoinKind::LeftOuter,
            left: Box::new(emp_scan(vec![])),
            right: Box::new(dept_scan()),
            on: vec![Expr::eq(Expr::col(0, 1), Expr::col(1, 0))],
            null_aware: false,
            est: Est::default(),
        };
        let (rows, _) = run(&plan, &cat);
        assert_eq!(rows.len(), 4);
        let null_dept: Vec<_> = rows.iter().filter(|r| r[3].is_null()).collect();
        assert_eq!(null_dept.len(), 1);
        assert_eq!(null_dept[0][0], Value::Int(4));
    }

    #[test]
    fn hash_join_inner_and_build_side_flip() {
        let cat = setup();
        for build_left in [false, true] {
            let plan = Plan::HashJoin {
                kind: JoinKind::Inner,
                build_left,
                left: Box::new(emp_scan(vec![])),
                right: Box::new(dept_scan()),
                keys: vec![(Expr::col(0, 1), Expr::col(1, 0))],
                residual: vec![],
                null_aware: false,
                est: Est::default(),
            };
            let (mut rows, _) = run(&plan, &cat);
            rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
            assert_eq!(rows.len(), 3, "build_left={build_left}");
            // Output column order is left++right regardless of build side.
            assert_eq!(rows[0][0], Value::Int(1));
            assert_eq!(rows[0][4], Value::str("eng"));
        }
    }

    #[test]
    fn hash_join_semi_and_anti() {
        let cat = setup();
        let semi = Plan::HashJoin {
            kind: JoinKind::Semi,
            build_left: false,
            left: Box::new(emp_scan(vec![])),
            right: Box::new(dept_scan()),
            keys: vec![(Expr::col(0, 1), Expr::col(1, 0))],
            residual: vec![],
            null_aware: false,
            est: Est::default(),
        };
        let (rows, _) = run(&semi, &cat);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 3, "semi join output is left-only");

        let anti = Plan::HashJoin {
            kind: JoinKind::AntiSemi,
            build_left: false,
            left: Box::new(emp_scan(vec![])),
            right: Box::new(dept_scan()),
            keys: vec![(Expr::col(0, 1), Expr::col(1, 0))],
            residual: vec![],
            null_aware: false,
            est: Est::default(),
        };
        let (rows, _) = run(&anti, &cat);
        // Only emp 4 (NULL dept, never matches) survives EXISTS-style anti.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(4));
    }

    #[test]
    fn null_aware_anti_join_not_in_semantics() {
        let cat = setup();
        // emp.dept_id NOT IN (SELECT id FROM dept): emp 4's NULL key makes
        // membership UNKNOWN -> filtered out.
        let anti = Plan::HashJoin {
            kind: JoinKind::AntiSemi,
            build_left: false,
            left: Box::new(emp_scan(vec![])),
            right: Box::new(dept_scan()),
            keys: vec![(Expr::col(0, 1), Expr::col(1, 0))],
            residual: vec![],
            null_aware: true,
            est: Est::default(),
        };
        let (rows, _) = run(&anti, &cat);
        assert_eq!(rows.len(), 0);
    }

    #[test]
    fn aggregation_hash_and_stream_agree() {
        let cat = setup();
        let agg_of = |strategy: AggStrategy, input: Plan| Plan::Aggregate {
            input: Box::new(input),
            group_by: vec![Expr::col(0, 1)],
            aggs: vec![
                AggSpec { func: AggFunc::CountStar, arg: None, distinct: false },
                AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(0, 2)), distinct: false },
            ],
            strategy,
            est: Est::default(),
        };
        let (mut hash_rows, _) = run(&agg_of(AggStrategy::Hash, emp_scan(vec![])), &cat);
        // Stream agg needs sorted input.
        let sorted = Plan::Sort {
            input: Box::new(emp_scan(vec![])),
            keys: vec![SortKey { expr: Expr::col(0, 1), desc: false }],
            est: Est::default(),
        };
        let (mut stream_rows, _) = run(&agg_of(AggStrategy::Stream, sorted), &cat);
        hash_rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        stream_rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(hash_rows, stream_rows);
        assert_eq!(hash_rows.len(), 3); // dept 10, 20, NULL
                                        // Group 10: count 2, sum 300.
        let g10 = hash_rows.iter().find(|r| r[0] == Value::Int(10)).unwrap();
        assert_eq!(g10[1], Value::Int(2));
        assert_eq!(g10[2], Value::Int(300));
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let cat = setup();
        let plan = Plan::Aggregate {
            input: Box::new(emp_scan(vec![Expr::lit(Value::Bool(false))])),
            group_by: vec![],
            aggs: vec![
                AggSpec { func: AggFunc::CountStar, arg: None, distinct: false },
                AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(0, 2)), distinct: false },
            ],
            strategy: AggStrategy::Hash,
            est: Est::default(),
        };
        let (rows, _) = run(&plan, &cat);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0));
        assert!(rows[0][1].is_null());
    }

    #[test]
    fn sort_limit_projection() {
        let cat = setup();
        let plan = Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(Plan::Project {
                    input: Box::new(emp_scan(vec![])),
                    exprs: vec![Expr::col(0, 0), Expr::col(0, 2)],
                    est: Est::default(),
                }),
                keys: vec![SortKey { expr: Expr::Slot(1), desc: true }],
                est: Est::default(),
            }),
            n: 2,
            est: Est::default(),
        };
        let (rows, _) = run(&plan, &cat);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::Int(400));
        assert_eq!(rows[1][1], Value::Int(300));
    }

    #[test]
    fn materialize_cache_vs_rebind() {
        let cat = setup();
        // Uncorrelated inner side materialized once despite 4 outer rows.
        let cached = Plan::NestedLoop {
            kind: JoinKind::Inner,
            left: Box::new(emp_scan(vec![])),
            right: Box::new(Plan::Materialize {
                input: Box::new(dept_scan()),
                rebind: false,
                cache_slot: 0,
                est: Est::default(),
            }),
            on: vec![Expr::eq(Expr::col(0, 1), Expr::col(1, 0))],
            null_aware: false,
            est: Est::default(),
        };
        let mut p = cached.clone();
        let slots = p.assign_cache_slots();
        let ctx = ExecContext::new(&cat, 2, slots);
        execute(&p, &ctx).unwrap();
        assert_eq!(ctx.stats.materializations.get(), 1);

        // rebind=true re-materializes per outer row (the Q17 invalidation).
        let rebound = Plan::NestedLoop {
            kind: JoinKind::Inner,
            left: Box::new(emp_scan(vec![])),
            right: Box::new(Plan::Materialize {
                input: Box::new(dept_scan()),
                rebind: true,
                cache_slot: 0,
                est: Est::default(),
            }),
            on: vec![Expr::eq(Expr::col(0, 1), Expr::col(1, 0))],
            null_aware: false,
            est: Est::default(),
        };
        let mut p = rebound.clone();
        let slots = p.assign_cache_slots();
        let ctx = ExecContext::new(&cat, 2, slots);
        execute(&p, &ctx).unwrap();
        assert_eq!(ctx.stats.materializations.get(), 4);
    }

    #[test]
    fn index_range_scan() {
        let cat = setup();
        let plan = Plan::IndexRange {
            table: EMP,
            qt: 0,
            width: 3,
            index: 0, // emp_dept on dept_id
            lo: Some((Expr::int(10), true)),
            hi: Some((Expr::int(10), true)),
            filter: vec![],
            est: Est::default(),
        };
        let (rows, _) = run(&plan, &cat);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn union_all_and_distinct() {
        let cat = setup();
        let proj = |p: Plan| Plan::Project {
            input: Box::new(p),
            exprs: vec![Expr::col(0, 1)],
            est: Est::default(),
        };
        let u = Plan::Union {
            inputs: vec![proj(emp_scan(vec![])), proj(emp_scan(vec![]))],
            distinct: false,
            est: Est::default(),
        };
        let (rows, _) = run(&u, &cat);
        assert_eq!(rows.len(), 8);
        let u = Plan::Union {
            inputs: vec![proj(emp_scan(vec![])), proj(emp_scan(vec![]))],
            distinct: true,
            est: Est::default(),
        };
        let (rows, _) = run(&u, &cat);
        assert_eq!(rows.len(), 3); // 10, 20, NULL
    }

    #[test]
    fn work_units_track_effort() {
        let cat = setup();
        let (_, scan_work) = run(&emp_scan(vec![]), &cat);
        let join = Plan::NestedLoop {
            kind: JoinKind::Inner,
            left: Box::new(emp_scan(vec![])),
            right: Box::new(dept_scan()),
            on: vec![Expr::eq(Expr::col(0, 1), Expr::col(1, 0))],
            null_aware: false,
            est: Est::default(),
        };
        let (_, join_work) = run(&join, &cat);
        assert!(join_work > scan_work * 3, "NLJ should cost much more than a scan");
    }
}
