//! Full-suite smoke check: every query, both optimizers, result agreement.

use mylite::Engine;
use taurus_bridge::OrcaOptimizer;
use taurus_workloads::{tpcds, tpch, Scale};

fn canon(rows: Vec<Vec<taurus_common::Value>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|r| {
            r.into_iter()
                .map(|v| match v {
                    taurus_common::Value::Double(d) => format!("D{:.4}", d),
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

fn main() {
    let t0 = std::time::Instant::now();
    let tpch_engine = Engine::new(tpch::build_catalog(Scale(0.1)));
    let tpcds_engine = Engine::new(tpcds::build_catalog(Scale(0.1)));
    println!("load: {:?}", t0.elapsed());
    let orca_h = OrcaOptimizer::new(orcalite::OrcaConfig::default(), 3);
    let orca_ds = OrcaOptimizer::new(orcalite::OrcaConfig::default(), 2);

    let mut failures = 0;
    for (engine, orca, queries, tag) in [
        (&tpch_engine, &orca_h, tpch::queries(), "tpch"),
        (&tpcds_engine, &orca_ds, tpcds::queries(), "tpcds"),
    ] {
        for q in queries {
            let t = std::time::Instant::now();
            let mine = match engine.query(&q.sql) {
                Ok(o) => o,
                Err(e) => {
                    println!("{tag}/{}: MYSQL ERROR {e}", q.name);
                    failures += 1;
                    continue;
                }
            };
            let t_my = t.elapsed();
            let t = std::time::Instant::now();
            let theirs = match engine.query_with(&q.sql, orca) {
                Ok(o) => o,
                Err(e) => {
                    println!("{tag}/{}: ORCA ERROR {e}", q.name);
                    failures += 1;
                    continue;
                }
            };
            let t_orca = t.elapsed();
            let (wm, wo) = (mine.work_units, theirs.work_units);
            if canon(mine.rows) != canon(theirs.rows) {
                println!("{tag}/{}: RESULT MISMATCH", q.name);
                failures += 1;
            } else {
                println!(
                    "{tag}/{}: ok  mysql {:>8.1?} ({wm:>9}wu)  orca {:>8.1?} ({wo:>9}wu)  ratio {:.2}",
                    q.name, t_my, t_orca, wm as f64 / wo.max(1) as f64
                );
            }
        }
    }
    println!("total {:?}, failures {failures}", t0.elapsed());
    std::process::exit(if failures > 0 { 1 } else { 0 });
}
