//! `mylite` — the MySQL 8.0 stand-in.
//!
//! Implements the MySQL query-processing pipeline of paper Fig 2:
//!
//! * [`resolve`] — the Resolver + Prepare phases: name resolution against
//!   the catalog, and the standard rewrite transformations (subqueries to
//!   semi/anti joins, scalar subqueries to derived tables, CTE expansion
//!   into per-reference copies, constant folding, outer-join
//!   simplification).
//! * [`bound`] — the prepared representation (the stand-in for MySQL's
//!   rewritten AST with its `TABLE_LIST`s).
//! * [`optimizer`] — MySQL's cost-based optimization, with its documented
//!   limitations faithfully reproduced: greedy join-order search, left-deep
//!   trees only, nested-loop preference with non-cost-based hash-join
//!   selection (paper §1 items 1–5).
//! * [`skeleton`] — the *skeleton plan*: join order, join methods, and
//!   access methods only (paper §2.2/§4.2). The Orca bridge produces these
//!   too; it is the integration's intermediary format.
//! * [`refine`] — plan refinement: predicate placement, aggregation, row
//!   ordering and limit enforcement; converts a skeleton into an executable
//!   [`taurus_executor::Plan`] (paper §4.3).
//! * [`explain`] — MySQL-flavoured `EXPLAIN` tree output (Listing 7 style).
//! * [`engine`] — the session facade tying parsing, optimization, and
//!   execution together, with a pluggable cost-based-optimizer backend (the
//!   hook the bridge plugs Orca into).

pub mod bound;
pub mod engine;
pub mod explain;
pub mod feedback;
pub mod optimizer;
pub mod orders;
pub mod plancache;
pub mod refine;
pub mod resolve;
pub mod skeleton;
mod sync;

pub use bound::{BoundQuery, BoundStatement, JoinEntry, OutputCol, TableMeta, TableSource};
pub use engine::{
    AnalyzedQuery, CatalogRef, CostBasedOptimizer, Engine, ExecFaults, GovernedOutcome,
    MySqlOptimizer, PlannedQuery, QueryOutput, SessionOpts,
};
pub use explain::NodeAnnotation;
pub use feedback::{FeedbackState, ObservationStore};
pub use plancache::{CacheEntry, CacheKey, CacheOutcome, Lookup, PlanCache, PlanCacheStats};
pub use skeleton::{AccessChoice, JoinMethod, SearchTrace, SkelLeaf, SkelNode, Skeleton};
