//! Shared foundations for the taurus-orca reproduction of
//! *Integrating the Orca Optimizer into MySQL* (EDBT 2022).
//!
//! This crate defines the data model used by every other crate in the
//! workspace:
//!
//! * [`types`] — the 31 MySQL column types and the 12 (+2 aggregation-only)
//!   *type categories* the paper's metadata provider groups them into (§5.1).
//! * [`value`] — runtime values with MySQL-style three-valued logic.
//! * [`datetime`] — proleptic-Gregorian civil date arithmetic used for
//!   `DATE` values and `INTERVAL` addition.
//! * [`expr`] — bound scalar expressions (post name-resolution) shared by the
//!   MySQL-like engine, the Orca-like optimizer, and the executor.
//! * [`row`] — rows, schemas and the layout machinery that lets one
//!   expression tree be evaluated against any join-order's concatenated rows.
//! * [`error`] — the workspace-wide error type.

pub mod datetime;
pub mod error;
pub mod expr;
pub mod ids;
pub mod row;
pub mod types;
pub mod value;

pub use error::{Error, Result};
pub use expr::{AggFunc, BinOp, ColRef, Expr, ScalarFunc, UnOp};
pub use ids::{ColumnId, IndexId, Oid, TableId};
pub use row::{Column, Layout, Row, Schema};
pub use types::{DataType, MySqlType, TypeCategory};
pub use value::Value;
