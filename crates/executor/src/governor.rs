//! The per-query resource governor: cooperative cancellation, wall-clock
//! deadlines, and memory accounting.
//!
//! One [`QueryGovernor`] is shared (via `Arc`) by every [`ExecContext`] of a
//! query — the session context and each parallel worker's private context
//! alike. It is consulted at two kinds of boundaries:
//!
//! - **batch boundaries**: [`QueryGovernor::check`] runs at the top of every
//!   operator opening (`exec`), so a cancel or an expired deadline unwinds
//!   the whole tree within one operator batch;
//! - **morsel boundaries**: the worker pool checks before claiming each
//!   morsel, so a wedged parallel fragment drains instead of spinning.
//!
//! Memory accounting is charge/uncharge on the memory-hungry operators
//! (hash-join builds, hash aggregation, sort buffers, materializations).
//! Charges that would cross the budget are *rejected before they are
//! recorded*, so the tracked peak never exceeds the configured budget — the
//! invariant the governance chaos gate asserts. Sizes are deterministic
//! estimates ([`rows_bytes`]), not allocator truth: the point is a
//! reproducible bound on operator state, not a malloc audit.
//!
//! The countdown installed by [`QueryGovernor::with_cancel_after`] is the
//! chaos hook: it flips the cancel token after exactly N governor checks,
//! which gives the fuzzer and the governance harness *deterministic*
//! randomized cancel points without any timing races.
//!
//! [`ExecContext`]: crate::exec::ExecContext

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use taurus_common::error::{Error, Result};
use taurus_common::Row;

/// Sentinel for "no countdown installed" / "no memory budget".
const OFF: u64 = u64::MAX;

/// A resolved set of governance knobs for one query: what a session's
/// overrides layered over the engine defaults work out to. Zero means
/// "off" for every field, matching the engine's atomic-knob encoding, so
/// the spec can be assembled straight from knob loads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorSpec {
    /// Wall-clock budget in ms (0 = no deadline).
    pub deadline_ms: u64,
    /// Tracked-memory budget in bytes (0 = unlimited).
    pub memory_budget: u64,
    /// Cancel at the N-th governor check (0 = off; chaos testing).
    pub cancel_after: u64,
}

/// Shared, thread-safe governance state for one query execution.
#[derive(Debug)]
pub struct QueryGovernor {
    /// The cooperative cancel token. Flipped by [`QueryGovernor::cancel`]
    /// (any thread) or by the cancel-after countdown.
    cancelled: AtomicBool,
    /// Absolute wall-clock deadline, if a budget was set.
    deadline: Option<Instant>,
    /// The original deadline budget, for the typed error's message.
    budget_ms: u64,
    /// Bytes currently charged by live operator state.
    mem_used: AtomicU64,
    /// High-water mark of `mem_used` (only updated by in-budget charges).
    mem_peak: AtomicU64,
    /// Byte budget; `OFF` = unlimited.
    mem_budget: u64,
    /// Chaos hook: flip the cancel token after this many checks.
    /// `OFF` = disabled.
    cancel_after: AtomicU64,
    /// Total governor checks performed (telemetry; also the clock the
    /// cancel-after countdown runs on).
    checks: AtomicU64,
}

impl Default for QueryGovernor {
    fn default() -> Self {
        QueryGovernor::new()
    }
}

impl QueryGovernor {
    /// An unlimited governor: cancellable, but no deadline and no budget.
    pub fn new() -> QueryGovernor {
        QueryGovernor {
            cancelled: AtomicBool::new(false),
            deadline: None,
            budget_ms: 0,
            mem_used: AtomicU64::new(0),
            mem_peak: AtomicU64::new(0),
            mem_budget: OFF,
            cancel_after: AtomicU64::new(OFF),
            checks: AtomicU64::new(0),
        }
    }

    /// Give the query a wall-clock budget, measured from now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self.budget_ms = budget.as_millis() as u64;
        self
    }

    /// Cap the query's tracked operator memory at `bytes`.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = bytes;
        self
    }

    /// Chaos hook: cancel the query after exactly `checks` governor checks.
    pub fn with_cancel_after(self, checks: u64) -> Self {
        self.cancel_after.store(checks.min(OFF - 1), Ordering::Relaxed);
        self
    }

    /// Build a governor from a resolved knob set. The engine layers
    /// per-session overrides over its own defaults into a [`GovernorSpec`]
    /// and builds one governor per execution from it.
    pub fn from_spec(spec: GovernorSpec) -> QueryGovernor {
        let mut g = QueryGovernor::new();
        if spec.deadline_ms > 0 {
            g = g.with_deadline(Duration::from_millis(spec.deadline_ms));
        }
        if spec.memory_budget > 0 {
            g = g.with_memory_budget(spec.memory_budget);
        }
        if spec.cancel_after > 0 {
            g = g.with_cancel_after(spec.cancel_after);
        }
        g
    }

    /// Flip the cancel token. The running query observes it at its next
    /// batch or morsel boundary and unwinds with [`Error::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The boundary check: cancel token first, then the deadline. Called at
    /// every operator opening and before every morsel claim.
    pub fn check(&self) -> Result<()> {
        self.checks.fetch_add(1, Ordering::Relaxed);
        // Run the chaos countdown on the check clock. A few extra
        // decrements may land while the query unwinds; the u64 headroom
        // makes wrap-around unreachable in practice.
        if self.cancel_after.load(Ordering::Relaxed) != OFF
            && self.cancel_after.fetch_sub(1, Ordering::Relaxed) <= 1
        {
            self.cancelled.store(true, Ordering::Relaxed);
        }
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(Error::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Error::DeadlineExceeded { budget_ms: self.budget_ms });
            }
        }
        Ok(())
    }

    /// Charge `bytes` of operator state against the budget. A charge that
    /// would cross the budget is rolled back before the peak is updated and
    /// fails with [`Error::MemoryExceeded`] — the tracked peak therefore
    /// never exceeds the budget.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        let now = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if self.mem_budget != OFF && now > self.mem_budget {
            self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(Error::MemoryExceeded { used: now, budget: self.mem_budget });
        }
        self.mem_peak.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    /// Release a previous charge when the operator's buffers are dropped.
    /// (Error unwinds skip uncharges by design: the governor dies with the
    /// query, so a failed query's residue is never observable.)
    pub fn uncharge(&self, bytes: u64) {
        // Saturating: a stray double-uncharge must not wrap the counter.
        let mut cur = self.mem_used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.mem_used.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Bytes currently charged.
    pub fn used_bytes(&self) -> u64 {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// High-water mark of tracked memory over the query's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.mem_peak.load(Ordering::Relaxed)
    }

    /// The configured byte budget, if any.
    pub fn memory_budget(&self) -> Option<u64> {
        (self.mem_budget != OFF).then_some(self.mem_budget)
    }

    /// Total governor checks performed so far (the cancel-after clock).
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }
}

/// Deterministic size estimate for a materialized row buffer: a fixed
/// per-value footprint plus per-row `Vec` overhead. Identical inputs always
/// charge identical byte counts, which keeps budget behaviour reproducible
/// (the same property the optimizer's search budget has).
pub fn rows_bytes(rows: &[Row]) -> u64 {
    const ROW_OVERHEAD: u64 = 24; // Vec header
    let value = std::mem::size_of::<taurus_common::Value>() as u64;
    rows.iter().map(|r| ROW_OVERHEAD + value * r.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_trips_the_next_check() {
        let g = QueryGovernor::new();
        assert!(g.check().is_ok());
        g.cancel();
        assert_eq!(g.check(), Err(Error::Cancelled));
        assert!(g.is_cancelled());
    }

    #[test]
    fn deadline_converts_to_typed_error() {
        let g = QueryGovernor::new().with_deadline(Duration::ZERO);
        assert_eq!(g.check(), Err(Error::DeadlineExceeded { budget_ms: 0 }));
        let g = QueryGovernor::new().with_deadline(Duration::from_secs(3600));
        assert!(g.check().is_ok(), "a generous deadline passes");
    }

    #[test]
    fn memory_budget_rejects_the_crossing_charge_and_caps_the_peak() {
        let g = QueryGovernor::new().with_memory_budget(100);
        g.charge(60).unwrap();
        assert_eq!(g.used_bytes(), 60);
        // The crossing charge fails and is rolled back entirely.
        assert_eq!(g.charge(50), Err(Error::MemoryExceeded { used: 110, budget: 100 }));
        assert_eq!(g.used_bytes(), 60, "rejected charge leaves no residue");
        assert!(g.peak_bytes() <= 100, "peak never exceeds the budget");
        g.charge(40).unwrap();
        assert_eq!(g.peak_bytes(), 100);
        g.uncharge(100);
        assert_eq!(g.used_bytes(), 0);
        g.uncharge(10);
        assert_eq!(g.used_bytes(), 0, "uncharge saturates at zero");
    }

    #[test]
    fn cancel_after_countdown_is_deterministic() {
        let g = QueryGovernor::new().with_cancel_after(3);
        assert!(g.check().is_ok());
        assert!(g.check().is_ok());
        assert_eq!(g.check(), Err(Error::Cancelled), "third check trips");
        assert_eq!(g.check(), Err(Error::Cancelled), "and it stays cancelled");
        // Degenerate: cancel before any work.
        let g = QueryGovernor::new().with_cancel_after(0);
        assert_eq!(g.check(), Err(Error::Cancelled));
    }

    #[test]
    fn rows_bytes_is_deterministic_and_monotone() {
        use taurus_common::Value;
        let small = vec![vec![Value::Int(1)]];
        let big = vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(3)]];
        assert_eq!(rows_bytes(&small), rows_bytes(&small));
        assert!(rows_bytes(&big) > rows_bytes(&small));
        assert_eq!(rows_bytes(&[]), 0);
    }
}
