//! Exchange operator execution: gather, order-preserving merge, and
//! two-phase partitioned aggregation.
//!
//! Determinism argument (also in DESIGN.md §10): the unit of work is a
//! morsel — a contiguous slice of the driving scan's iteration order — and
//! every merge point orders its inputs by morsel index, never by completion
//! time. Whatever the pool's scheduling, dop, or morsel size, the bytes out
//! of an exchange equal the bytes of the serial execution.

use crate::exec::{exec, exec_aggregate, Binding, Env, ExecContext};
use crate::governor;
use crate::parallel::bridge::find_driving_scan;
use crate::parallel::{morsel, morsel::MorselSpec, pool};
use crate::plan::{AggSpec, AggStrategy, ExchangeKind, Plan, SortKey};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use taurus_common::error::Result;
use taurus_common::{Expr, Row, Value};

/// A hash-join build table. Shared across workers when the build side sits
/// under a `Broadcast` exchange; private per execution otherwise.
pub(crate) struct BuildTable {
    /// Build-side rows in their execution order.
    pub rows: Vec<Row>,
    /// Row positions indexed by evaluated key values (NULL keys excluded).
    pub index: HashMap<Vec<Value>, Vec<usize>>,
    /// Whether any build row had a NULL key component (NULL-aware anti
    /// joins turn membership UNKNOWN on it).
    pub has_null_key: bool,
}

/// Plan the morsels for a parallel fragment, or `None` when the exchange
/// must run serially: dop too low, already inside a worker (no nested
/// pools), a correlated opening (non-empty binding — the fragment would
/// need re-execution per outer row), no morselizable driving scan, or too
/// few morsels to be worth a pool.
fn plan_morsels(
    input: &Plan,
    dop: usize,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
) -> Option<Vec<MorselSpec>> {
    if dop < 2 || ctx.in_worker() || !binding.row.is_empty() {
        return None;
    }
    let (qt, table) = find_driving_scan(input)?;
    let total = ctx.catalog.table(table).ok()?.num_rows();
    let morsels = morsel::split(qt, total, ctx.morsel_rows());
    if morsels.len() < 2 {
        None
    } else {
        Some(morsels)
    }
}

/// Execute a `Gather` or `GatherMerge` exchange: run the fragment once per
/// morsel on the pool and merge the per-morsel buffers deterministically.
pub(crate) fn exec_gather(
    kind: &ExchangeKind,
    input: &Plan,
    dop: usize,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
) -> Result<Vec<Row>> {
    let Some(morsels) = plan_morsels(input, dop, ctx, binding) else {
        return exec(input, ctx, binding);
    };
    let buffers: Vec<Vec<Row>> = pool::run_units(ctx, dop, morsels.len(), |wctx, i| {
        wctx.set_morsel(Some(morsels[i]));
        let rows = exec(input, wctx, binding);
        wctx.set_morsel(None);
        rows
    })?;
    // A fragment topped by `Sort` produced per-morsel sorted runs: merge
    // them on the sort keys even under a plain `Gather` (e.g. a hand-built
    // plan), so concatenation can never interleave a sorted order.
    if matches!(kind, ExchangeKind::GatherMerge) || matches!(input, Plan::Sort { .. }) {
        merge_sorted_runs(input, buffers, ctx, binding)
    } else {
        Ok(buffers.into_iter().flatten().collect())
    }
}

/// K-way merge of per-morsel sorted runs on the `Sort` node's keys, ties
/// broken by run (= morsel) index — which reproduces the serial stable sort
/// exactly, because rows within a run are already in scan order.
fn merge_sorted_runs(
    input: &Plan,
    runs: Vec<Vec<Row>>,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
) -> Result<Vec<Row>> {
    let keys: &[SortKey] = match input {
        Plan::Sort { keys, .. } => keys,
        // GatherMerge is only placed above a Sort; anything else degrades to
        // a plain order-preserving gather.
        _ => return Ok(runs.into_iter().flatten().collect()),
    };
    let env = Env::new(binding, &input.space(ctx.num_tables), ctx.num_tables);
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut keyed: Vec<Vec<(Vec<Value>, Row)>> = Vec::with_capacity(runs.len());
    for run in runs {
        let mut kr = Vec::with_capacity(run.len());
        for row in run {
            let mut kv = Vec::with_capacity(keys.len());
            for k in keys {
                kv.push(env.eval(&k.expr, &row)?);
            }
            kr.push((kv, row));
        }
        keyed.push(kr);
    }
    let mut pos = vec![0usize; keyed.len()];
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (r, run) in keyed.iter().enumerate() {
            if pos[r] >= run.len() {
                continue;
            }
            best = match best {
                None => Some(r),
                // Strict `Less` keeps the lowest run index on ties.
                Some(b) => {
                    if cmp_keys(&run[pos[r]].0, &keyed[b][pos[b]].0, keys) == Ordering::Less {
                        Some(r)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        out.push(std::mem::take(&mut keyed[b][pos[b]].1));
        pos[b] += 1;
    }
    Ok(out)
}

fn cmp_keys(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    crate::ordering::cmp_key_tuples(a, b, keys)
}

/// Two-phase partitioned aggregation under a `Repartition` exchange.
///
/// Phase 1 (parallel over morsels): execute the fragment per morsel and
/// hash-partition its rows on the group-by keys into `dop` buckets. The
/// regroup concatenates each partition's sub-buckets in morsel order, so a
/// partition sees its rows in the *original scan order* — every group lives
/// wholly inside one partition, and its accumulators are fed in exactly the
/// order the serial plan feeds them (which matters for `Accumulator`
/// semantics like first-seen DISTINCT ordering).
///
/// Phase 2 (parallel over partitions): hash-aggregate each partition and
/// sort its groups by key. The final concatenation is re-sorted globally —
/// identical output to the serial `Sort`(group keys) + stream-aggregate
/// plan this exchange replaces.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_partitioned_agg(
    input: &Plan,
    keys: &[Expr],
    dop: usize,
    group_by: &[Expr],
    aggs: &[AggSpec],
    xnode: &Plan,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
) -> Result<Vec<Row>> {
    let space = input.space(ctx.num_tables);
    let Some(morsels) = plan_morsels(input, dop, ctx, binding) else {
        // Serial fallback: aggregate in one go, but keep the key-sorted
        // output contract of the partitioned path.
        let rows = exec(input, ctx, binding)?;
        // The Repartition node is consumed by the Aggregate arm rather than
        // routed through `exec`; credit it with its pre-aggregation row flow.
        ctx.record(xnode, rows.len() as u64);
        let env = Env::new(binding, &space, ctx.num_tables);
        let agg_bytes = governor::rows_bytes(&rows);
        ctx.charge_mem(agg_bytes)?;
        let mut out = exec_aggregate(&rows, group_by, aggs, AggStrategy::Hash, &env)?;
        ctx.uncharge_mem(agg_bytes);
        sort_by_leading_keys(&mut out, group_by.len());
        return Ok(out);
    };

    let nparts = dop;
    // Phase 1: scan morsels, hash-partition rows on the keys.
    let buckets: Vec<Vec<Vec<Row>>> = pool::run_units(ctx, dop, morsels.len(), |wctx, i| {
        wctx.set_morsel(Some(morsels[i]));
        let rows = exec(input, wctx, binding);
        wctx.set_morsel(None);
        let rows = rows?;
        let env = Env::new(binding, &space, wctx.num_tables);
        let mut parts: Vec<Vec<Row>> = (0..nparts).map(|_| Vec::new()).collect();
        for row in rows {
            let mut kv = Vec::with_capacity(keys.len());
            for k in keys {
                kv.push(env.eval(k, &row)?);
            }
            parts[partition_of(&kv, nparts)].push(row);
        }
        Ok(parts)
    })?;

    // Regroup in morsel order: partition p = morsel 0's bucket p, then
    // morsel 1's, ... — original scan order within each partition.
    let mut partitions: Vec<Vec<Row>> = (0..nparts).map(|_| Vec::new()).collect();
    for per_morsel in buckets {
        for (p, rows) in per_morsel.into_iter().enumerate() {
            partitions[p].extend(rows);
        }
    }
    ctx.record(xnode, partitions.iter().map(|p| p.len() as u64).sum());
    // The repartition exchange holds every partition buffered while phase 2
    // aggregates them — memory the serial plan never needs at once, charged
    // for the duration of phase 2. (This is what the engine's memory
    // degradation rung reclaims by retrying at dop=1.)
    let exchange_bytes: u64 = partitions.iter().map(|p| governor::rows_bytes(p)).sum();
    ctx.charge_mem(exchange_bytes)?;

    // Phase 2: aggregate each partition; each worker owns whole groups.
    let outs: Vec<Vec<Row>> = pool::run_units(ctx, dop, nparts, |wctx, p| {
        let env = Env::new(binding, &space, wctx.num_tables);
        let agg_bytes = governor::rows_bytes(&partitions[p]);
        wctx.charge_mem(agg_bytes)?;
        let mut out = exec_aggregate(&partitions[p], group_by, aggs, AggStrategy::Hash, &env)?;
        wctx.uncharge_mem(agg_bytes);
        sort_by_leading_keys(&mut out, group_by.len());
        Ok(out)
    })?;

    let mut out: Vec<Row> = outs.into_iter().flatten().collect();
    ctx.uncharge_mem(exchange_bytes);
    sort_by_leading_keys(&mut out, group_by.len());
    Ok(out)
}

/// Sort aggregate output rows by their leading `k` columns (the group
/// values) ascending — the order the serial sort + stream-aggregate plan
/// produces. Group keys are unique, so the order is total.
fn sort_by_leading_keys(rows: &mut [Row], k: usize) {
    rows.sort_by(|a, b| crate::ordering::cmp_leading_cols(a, b, k));
}

/// Deterministic partition assignment. `DefaultHasher::new()` uses fixed
/// keys, so the assignment is stable across runs; it only affects *which
/// worker* owns a group, never the output order.
fn partition_of(key: &[Value], nparts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % nparts.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_assignment_is_deterministic_and_in_range() {
        let keys = [vec![Value::Int(7)], vec![Value::str("x")], vec![Value::Null]];
        for k in &keys {
            let p = partition_of(k, 4);
            assert!(p < 4);
            assert_eq!(p, partition_of(k, 4), "same key, same partition");
        }
    }

    #[test]
    fn leading_key_sort_orders_groups() {
        let mut rows = vec![
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Null, Value::Int(0)],
            vec![Value::Int(1), Value::Int(10)],
        ];
        sort_by_leading_keys(&mut rows, 1);
        // NULLs sort first under the engine's total order.
        assert!(rows[0][0].is_null());
        assert_eq!(rows[1][0], Value::Int(1));
        assert_eq!(rows[2][0], Value::Int(2));
    }
}
