//! Statement fingerprinting for the compile-once, serve-many plan cache.
//!
//! A fingerprint is a 64-bit hash of a statement's *shape*: the parsed AST
//! with every value-like literal (int, double, string, date) replaced by a
//! numbered bind parameter. Two texts of the same statement that differ
//! only in those literal values — the repeated-statement pattern of an OLTP
//! workload ("heavy traffic from millions of users", ROADMAP) — hash
//! identically, while any structural difference (an extra predicate, a
//! different column order, a renamed table alias) changes the hash.
//!
//! Parameterization is *bind peeking*: each [`AstExpr::Param`] keeps the
//! literal value it replaced, so the first compilation plans with real
//! constants (histograms, index-range bounds) exactly as if the literals
//! were still inline. Later executions of the same shape re-bind the cached
//! plan's parameters to their new values without re-optimizing.
//!
//! `TRUE`/`FALSE`/`NULL` literals stay structural: they steer
//! simplification (`WHERE FALSE` prunes) and almost never vary per
//! execution, so folding them into the hash keeps shapes honest.

use crate::ast::*;
use crate::lexer::keyword;
use taurus_common::Value;

/// A statement with its literals parameterized out.
#[derive(Debug, Clone)]
pub struct ParameterizedStatement {
    /// The statement with [`AstExpr::Param`] nodes in place of value
    /// literals (each carrying its peeked value).
    pub stmt: SelectStmt,
    /// FNV-1a hash of the masked statement shape.
    pub fingerprint: u64,
    /// The extracted literal values, indexed by parameter number.
    pub binds: Vec<Value>,
}

/// Parameterize a parsed statement and fingerprint its shape.
pub fn parameterize(stmt: &SelectStmt) -> ParameterizedStatement {
    let mut binds: Vec<Value> = Vec::new();
    let stmt_p = map_stmt(stmt, &mut |e| match e {
        AstExpr::Lit(v) if is_bindable(v) => {
            let index = binds.len();
            binds.push(v.clone());
            Some(AstExpr::Param { index, value: v.clone() })
        }
        _ => None,
    });
    // Hash the shape directly off the original AST: bindable literals
    // contribute only their type tag, so `x = 5` and `x = 6` collide while
    // `x = 5` and `x = 'a'` do not. A streaming walk — no masked clone, no
    // intermediate string — keeps this on the per-execution hot path cheap.
    let mut h = Shape::new();
    h.stmt(stmt);
    ParameterizedStatement { stmt: stmt_p, fingerprint: h.0, binds }
}

/// A statement fingerprint computed straight off the token stream — no
/// AST. This is the plan cache's serve path: one pass over the source
/// bytes hashes the normalized token shape (keywords canonicalized,
/// value literals masked to type tags) and extracts the literal values
/// in textual order, which for this grammar is exactly the pre-order
/// walk [`parameterize`] uses to number its parameters. The engine
/// verifies that agreement once per shape at insert time and refuses to
/// cache a statement whose orders diverge, so a digest hit can re-bind a
/// cached plan without ever building a parse tree.
#[derive(Debug, Clone)]
pub struct TokenDigest {
    /// FNV-1a hash of the normalized token stream.
    pub fingerprint: u64,
    /// Literal values in token order.
    pub binds: Vec<Value>,
}

/// Digest a statement's token stream, or `None` if it doesn't lex (the
/// caller falls through to the parser for a real error message).
///
/// Context rules mirror the parser's literal handling: a string after
/// `DATE` binds as a date, numbers/strings after `LIMIT` or `INTERVAL`
/// stay structural (the parser stores them inline, never as binds), and
/// `TRUE`/`FALSE`/`NULL` are keywords, hence structural.
pub fn token_digest(input: &str) -> Option<TokenDigest> {
    let bytes = input.as_bytes();
    let mut h = Shape::new();
    let mut binds: Vec<Value> = Vec::new();
    let mut i = 0usize;
    // Keyword of the immediately preceding token ("" otherwise).
    let mut prev_kw: &str = "";
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments: `--` to end of line.
        if c == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Words: keywords hash canonicalized (case-insensitive), plain
        // identifiers hash as written (the parser keeps their case).
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &input[start..i];
            match keyword(word) {
                Some(kw) => {
                    h.byte(b'K');
                    h.text(kw);
                    prev_kw = kw;
                }
                None => {
                    h.byte(b'I');
                    h.text(word);
                    prev_kw = "";
                }
            }
            continue;
        }
        // Backtick-quoted identifiers.
        if c == b'`' {
            i += 1;
            let s = i;
            while i < bytes.len() && bytes[i] != b'`' {
                i += 1;
            }
            if i >= bytes.len() {
                return None;
            }
            h.byte(b'I');
            h.text(&input[s..i]);
            i += 1;
            prev_kw = "";
            continue;
        }
        // Numbers (same shape recognition as the lexer).
        if c.is_ascii_digit() || (c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            let mut is_float = false;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'.' {
                is_float = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                is_float = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &input[start..i];
            if prev_kw == "LIMIT" || prev_kw == "INTERVAL" {
                h.byte(b'N');
                h.text(text);
            } else if is_float {
                binds.push(Value::Double(text.parse().ok()?));
                h.param(1);
            } else {
                match text.parse::<i64>() {
                    Ok(n) => {
                        binds.push(Value::Int(n));
                        h.param(0);
                    }
                    Err(_) => {
                        binds.push(Value::Double(text.parse().ok()?));
                        h.param(1);
                    }
                }
            }
            prev_kw = "";
            continue;
        }
        // String literals with '' escaping.
        if c == b'\'' {
            i += 1;
            let s = i;
            let mut escaped = false;
            loop {
                if i >= bytes.len() {
                    return None;
                }
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        escaped = true;
                        i += 2;
                        continue;
                    }
                    break;
                }
                i += 1;
            }
            let raw = &input[s..i];
            i += 1; // closing quote
            match prev_kw {
                // INTERVAL '3' MONTH: the quantity is structural.
                "INTERVAL" => {
                    h.byte(b'V');
                    h.text(raw);
                }
                "DATE" => {
                    let content = if escaped { raw.replace("''", "'") } else { raw.to_string() };
                    binds.push(Value::date(&content).ok()?);
                    h.param(3);
                }
                _ => {
                    let content = if escaped { raw.replace("''", "'") } else { raw.to_string() };
                    binds.push(Value::str(&content));
                    h.param(2);
                }
            }
            prev_kw = "";
            continue;
        }
        // Operators (canonicalizing `!=` to `<>`, like the lexer).
        let two = if i + 1 < bytes.len() { &input[i..i + 2] } else { "" };
        if let Some(sym) = match two {
            "<=" => Some("<="),
            ">=" => Some(">="),
            "<>" | "!=" => Some("<>"),
            _ => None,
        } {
            h.byte(b'S');
            h.text(sym);
            i += 2;
            prev_kw = "";
            continue;
        }
        if !matches!(
            c,
            b'(' | b')'
                | b','
                | b'.'
                | b'+'
                | b'-'
                | b'*'
                | b'/'
                | b'%'
                | b'='
                | b'<'
                | b'>'
                | b';'
        ) {
            return None;
        }
        h.byte(b'S');
        h.byte(c);
        i += 1;
        prev_kw = "";
    }
    Some(TokenDigest { fingerprint: h.0, binds })
}

/// FNV-1a 64-bit: deterministic, dependency-free, good avalanche for short
/// keys — the standard in-process choice when SipHash's random keying would
/// make fingerprints unstable across sessions.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which literal values become bind parameters. Booleans and NULL remain
/// structural (see module docs).
fn is_bindable(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::Double(_) | Value::Str(_) | Value::Date(_))
}

// ---------------------------------------------------------------------
// Streaming structural hash. Every AST node feeds a distinct tag byte plus
// its scalar fields into an incremental FNV-1a state; variable-length parts
// (strings, vecs) are length-prefixed so adjacent fields can't alias.
// Bindable literals and already-minted params hash as `PARAM + type tag`
// only — their payload is invisible to the fingerprint.
// ---------------------------------------------------------------------

struct Shape(u64);

impl Shape {
    fn new() -> Shape {
        Shape(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn num(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn text(&mut self, s: &str) {
        self.num(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn opt_text(&mut self, s: &Option<String>) {
        match s {
            None => self.byte(0),
            Some(s) => {
                self.byte(1);
                self.text(s);
            }
        }
    }

    /// A bind-parameter position: `P` plus the value's type tag.
    fn param(&mut self, type_tag: u8) {
        self.byte(b'P');
        self.byte(type_tag);
    }

    /// A bindable literal (or a param's peeked value): type tag only.
    fn value_type(&mut self, v: &Value) {
        self.param(match v {
            Value::Int(_) => 0,
            Value::Double(_) => 1,
            Value::Str(_) => 2,
            Value::Date(_) => 3,
            Value::Null => 4,
            Value::Bool(_) => 5,
        });
    }

    /// A structural literal (TRUE/FALSE/NULL): type tag plus payload.
    fn value_full(&mut self, v: &Value) {
        self.byte(b'L');
        match v {
            Value::Null => self.byte(0),
            Value::Bool(b) => {
                self.byte(1);
                self.byte(*b as u8);
            }
            Value::Int(i) => {
                self.byte(2);
                self.num(*i as u64);
            }
            Value::Double(d) => {
                self.byte(3);
                self.num(d.to_bits());
            }
            Value::Str(s) => {
                self.byte(4);
                self.text(s);
            }
            Value::Date(d) => {
                self.byte(5);
                self.num(*d as u64);
            }
        }
    }

    fn stmt(&mut self, s: &SelectStmt) {
        self.num(s.ctes.len() as u64);
        for c in &s.ctes {
            self.text(&c.name);
            self.num(c.columns.len() as u64);
            for col in &c.columns {
                self.text(col);
            }
            self.byte(c.recursive as u8);
            self.stmt(&c.query);
        }
        self.query_expr(&s.body);
    }

    fn query_expr(&mut self, qe: &QueryExpr) {
        match qe {
            QueryExpr::Block(b) => {
                self.byte(0);
                self.block(b);
            }
            QueryExpr::SetOp { op, all, left, right } => {
                self.byte(1);
                self.byte(*op as u8);
                self.byte(*all as u8);
                self.query_expr(left);
                self.query_expr(right);
            }
        }
    }

    fn block(&mut self, b: &QueryBlock) {
        self.byte(b.distinct as u8);
        self.num(b.select.len() as u64);
        for s in &b.select {
            match s {
                SelectItem::Wildcard => self.byte(0),
                SelectItem::Expr { expr, alias } => {
                    self.byte(1);
                    self.expr(expr);
                    self.opt_text(alias);
                }
            }
        }
        self.num(b.from.len() as u64);
        for t in &b.from {
            self.table_ref(t);
        }
        self.opt_expr(&b.where_clause);
        self.num(b.group_by.len() as u64);
        for e in &b.group_by {
            self.expr(e);
        }
        self.opt_expr(&b.having);
        self.num(b.order_by.len() as u64);
        for o in &b.order_by {
            self.expr(&o.expr);
            self.byte(o.desc as u8);
        }
        match b.limit {
            None => self.byte(0),
            Some(n) => {
                self.byte(1);
                self.num(n);
            }
        }
    }

    fn table_ref(&mut self, t: &TableRef) {
        match t {
            TableRef::Base { name, alias } => {
                self.byte(0);
                self.text(name);
                self.opt_text(alias);
            }
            TableRef::Derived { query, alias } => {
                self.byte(1);
                self.stmt(query);
                self.text(alias);
            }
            TableRef::Join { left, right, kind, on } => {
                self.byte(2);
                self.table_ref(left);
                self.table_ref(right);
                self.byte(*kind as u8);
                self.opt_expr_ref(on.as_ref());
            }
        }
    }

    fn opt_expr(&mut self, e: &Option<AstExpr>) {
        self.opt_expr_ref(e.as_ref());
    }

    fn opt_expr_ref(&mut self, e: Option<&AstExpr>) {
        match e {
            None => self.byte(0),
            Some(e) => {
                self.byte(1);
                self.expr(e);
            }
        }
    }

    fn expr(&mut self, e: &AstExpr) {
        match e {
            AstExpr::Name(segs) => {
                self.byte(0);
                self.num(segs.len() as u64);
                for s in segs {
                    self.text(s);
                }
            }
            AstExpr::Lit(v) if is_bindable(v) => self.value_type(v),
            AstExpr::Lit(v) => self.value_full(v),
            AstExpr::Param { value, .. } => self.value_type(value),
            AstExpr::Interval { n, unit } => {
                self.byte(1);
                self.num(*n as u64);
                self.byte(*unit as u8);
            }
            AstExpr::Binary { op, left, right } => {
                self.byte(2);
                self.byte(*op as u8);
                self.expr(left);
                self.expr(right);
            }
            AstExpr::Not(x) => {
                self.byte(3);
                self.expr(x);
            }
            AstExpr::Neg(x) => {
                self.byte(4);
                self.expr(x);
            }
            AstExpr::IsNull { expr, negated } => {
                self.byte(5);
                self.expr(expr);
                self.byte(*negated as u8);
            }
            AstExpr::Func { name, args, distinct, star } => {
                self.byte(6);
                self.text(name);
                self.num(args.len() as u64);
                for a in args {
                    self.expr(a);
                }
                self.byte(*distinct as u8);
                self.byte(*star as u8);
            }
            AstExpr::Case { operand, branches, else_expr } => {
                self.byte(7);
                self.opt_expr_ref(operand.as_deref());
                self.num(branches.len() as u64);
                for (w, t) in branches {
                    self.expr(w);
                    self.expr(t);
                }
                self.opt_expr_ref(else_expr.as_deref());
            }
            AstExpr::InList { expr, list, negated } => {
                self.byte(8);
                self.expr(expr);
                self.num(list.len() as u64);
                for i in list {
                    self.expr(i);
                }
                self.byte(*negated as u8);
            }
            AstExpr::InSubquery { expr, query, negated } => {
                self.byte(9);
                self.expr(expr);
                self.stmt(query);
                self.byte(*negated as u8);
            }
            AstExpr::Exists { query, negated } => {
                self.byte(10);
                self.stmt(query);
                self.byte(*negated as u8);
            }
            AstExpr::ScalarSubquery(q) => {
                self.byte(11);
                self.stmt(q);
            }
            AstExpr::Like { expr, pattern, negated } => {
                self.byte(12);
                self.expr(expr);
                self.expr(pattern);
                self.byte(*negated as u8);
            }
            AstExpr::Between { expr, low, high, negated } => {
                self.byte(13);
                self.expr(expr);
                self.expr(low);
                self.expr(high);
                self.byte(*negated as u8);
            }
            AstExpr::Cast { expr, type_name } => {
                self.byte(14);
                self.expr(expr);
                self.text(type_name);
            }
            AstExpr::Extract { field, expr } => {
                self.byte(15);
                self.text(field);
                self.expr(expr);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Generic AST rebuild with a pre-order expression hook. The hook returns
// `Some(replacement)` to substitute a node (children not visited) or `None`
// to recurse. One walk serves both parameterization and masking.
// ---------------------------------------------------------------------

fn map_stmt(stmt: &SelectStmt, f: &mut impl FnMut(&AstExpr) -> Option<AstExpr>) -> SelectStmt {
    SelectStmt {
        ctes: stmt
            .ctes
            .iter()
            .map(|c| Cte {
                name: c.name.clone(),
                columns: c.columns.clone(),
                query: Box::new(map_stmt(&c.query, f)),
                recursive: c.recursive,
            })
            .collect(),
        body: map_query_expr(&stmt.body, f),
    }
}

fn map_query_expr(qe: &QueryExpr, f: &mut impl FnMut(&AstExpr) -> Option<AstExpr>) -> QueryExpr {
    match qe {
        QueryExpr::Block(b) => QueryExpr::Block(Box::new(map_block(b, f))),
        QueryExpr::SetOp { op, all, left, right } => QueryExpr::SetOp {
            op: *op,
            all: *all,
            left: Box::new(map_query_expr(left, f)),
            right: Box::new(map_query_expr(right, f)),
        },
    }
}

fn map_block(b: &QueryBlock, f: &mut impl FnMut(&AstExpr) -> Option<AstExpr>) -> QueryBlock {
    QueryBlock {
        distinct: b.distinct,
        select: b
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Wildcard => SelectItem::Wildcard,
                SelectItem::Expr { expr, alias } => {
                    SelectItem::Expr { expr: map_expr(expr, f), alias: alias.clone() }
                }
            })
            .collect(),
        from: b.from.iter().map(|t| map_table_ref(t, f)).collect(),
        where_clause: b.where_clause.as_ref().map(|e| map_expr(e, f)),
        group_by: b.group_by.iter().map(|e| map_expr(e, f)).collect(),
        having: b.having.as_ref().map(|e| map_expr(e, f)),
        order_by: b
            .order_by
            .iter()
            .map(|o| OrderItem { expr: map_expr(&o.expr, f), desc: o.desc })
            .collect(),
        limit: b.limit,
    }
}

fn map_table_ref(t: &TableRef, f: &mut impl FnMut(&AstExpr) -> Option<AstExpr>) -> TableRef {
    match t {
        TableRef::Base { name, alias } => {
            TableRef::Base { name: name.clone(), alias: alias.clone() }
        }
        TableRef::Derived { query, alias } => {
            TableRef::Derived { query: Box::new(map_stmt(query, f)), alias: alias.clone() }
        }
        TableRef::Join { left, right, kind, on } => TableRef::Join {
            left: Box::new(map_table_ref(left, f)),
            right: Box::new(map_table_ref(right, f)),
            kind: *kind,
            on: on.as_ref().map(|e| map_expr(e, f)),
        },
    }
}

fn map_expr(e: &AstExpr, f: &mut impl FnMut(&AstExpr) -> Option<AstExpr>) -> AstExpr {
    if let Some(replacement) = f(e) {
        return replacement;
    }
    match e {
        AstExpr::Name(_) | AstExpr::Lit(_) | AstExpr::Param { .. } | AstExpr::Interval { .. } => {
            e.clone()
        }
        AstExpr::Binary { op, left, right } => AstExpr::Binary {
            op: *op,
            left: Box::new(map_expr(left, f)),
            right: Box::new(map_expr(right, f)),
        },
        AstExpr::Not(x) => AstExpr::Not(Box::new(map_expr(x, f))),
        AstExpr::Neg(x) => AstExpr::Neg(Box::new(map_expr(x, f))),
        AstExpr::IsNull { expr, negated } => {
            AstExpr::IsNull { expr: Box::new(map_expr(expr, f)), negated: *negated }
        }
        AstExpr::Func { name, args, distinct, star } => AstExpr::Func {
            name: name.clone(),
            args: args.iter().map(|a| map_expr(a, f)).collect(),
            distinct: *distinct,
            star: *star,
        },
        AstExpr::Case { operand, branches, else_expr } => AstExpr::Case {
            operand: operand.as_ref().map(|o| Box::new(map_expr(o, f))),
            branches: branches.iter().map(|(w, t)| (map_expr(w, f), map_expr(t, f))).collect(),
            else_expr: else_expr.as_ref().map(|x| Box::new(map_expr(x, f))),
        },
        AstExpr::InList { expr, list, negated } => AstExpr::InList {
            expr: Box::new(map_expr(expr, f)),
            list: list.iter().map(|i| map_expr(i, f)).collect(),
            negated: *negated,
        },
        AstExpr::InSubquery { expr, query, negated } => AstExpr::InSubquery {
            expr: Box::new(map_expr(expr, f)),
            query: Box::new(map_stmt(query, f)),
            negated: *negated,
        },
        AstExpr::Exists { query, negated } => {
            AstExpr::Exists { query: Box::new(map_stmt(query, f)), negated: *negated }
        }
        AstExpr::ScalarSubquery(q) => AstExpr::ScalarSubquery(Box::new(map_stmt(q, f))),
        AstExpr::Like { expr, pattern, negated } => AstExpr::Like {
            expr: Box::new(map_expr(expr, f)),
            pattern: Box::new(map_expr(pattern, f)),
            negated: *negated,
        },
        AstExpr::Between { expr, low, high, negated } => AstExpr::Between {
            expr: Box::new(map_expr(expr, f)),
            low: Box::new(map_expr(low, f)),
            high: Box::new(map_expr(high, f)),
            negated: *negated,
        },
        AstExpr::Cast { expr, type_name } => {
            AstExpr::Cast { expr: Box::new(map_expr(expr, f)), type_name: type_name.clone() }
        }
        AstExpr::Extract { field, expr } => {
            AstExpr::Extract { field: field.clone(), expr: Box::new(map_expr(expr, f)) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn fp(sql: &str) -> ParameterizedStatement {
        parameterize(&parse_select(sql).unwrap())
    }

    #[test]
    fn literals_are_extracted_in_order() {
        let p = fp("SELECT a FROM t WHERE b = 5 AND c BETWEEN 10 AND 20 AND d LIKE 'x%'");
        assert_eq!(p.binds, vec![Value::Int(5), Value::Int(10), Value::Int(20), Value::str("x%")]);
    }

    #[test]
    fn same_shape_different_literals_same_fingerprint() {
        let a = fp("SELECT a FROM t WHERE b = 5 AND c < 100");
        let b = fp("SELECT a FROM t WHERE b = 99 AND c < 7");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.binds, b.binds);
    }

    #[test]
    fn literal_type_changes_fingerprint() {
        let a = fp("SELECT a FROM t WHERE b = 5");
        let b = fp("SELECT a FROM t WHERE b = 'five'");
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn structural_changes_change_fingerprint() {
        let base = fp("SELECT a, b FROM t WHERE a = 1");
        // Different column order.
        assert_ne!(base.fingerprint, fp("SELECT b, a FROM t WHERE a = 1").fingerprint);
        // Added predicate.
        assert_ne!(base.fingerprint, fp("SELECT a, b FROM t WHERE a = 1 AND b = 2").fingerprint);
        // Table alias.
        assert_ne!(base.fingerprint, fp("SELECT a, b FROM t x WHERE a = 1").fingerprint);
        // Bool literals stay structural.
        assert_ne!(
            fp("SELECT a FROM t WHERE TRUE").fingerprint,
            fp("SELECT a FROM t WHERE FALSE").fingerprint
        );
    }

    #[test]
    fn subquery_literals_participate() {
        let a = fp("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a AND u.y = 3)");
        let b = fp("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a AND u.y = 9)");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.binds.len(), 2); // SELECT 1 and the comparison literal
        let c = fp("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)");
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn token_digest_binds_agree_with_parameterize() {
        // The digest's textual bind order must equal the AST walk's
        // parameter order — the contract that makes digest-keyed rebinding
        // sound. (The engine also re-verifies this per shape at insert.)
        for sql in [
            "SELECT a FROM t WHERE b = 5 AND c BETWEEN 10 AND 20 AND d LIKE 'x%'",
            "SELECT SUM(x) FROM t WHERE d >= DATE '1995-03-01' + INTERVAL '3' MONTH LIMIT 5",
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a AND u.y = 3)",
            "SELECT a FROM t WHERE b IN (1, 2.5, 'it''s') AND c = -7",
            "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t WHERE a IS NOT NULL",
        ] {
            let d = token_digest(sql).expect(sql);
            let p = fp(sql);
            assert_eq!(d.binds, p.binds, "bind disagreement for: {sql}");
        }
    }

    #[test]
    fn token_digest_same_shape_same_fingerprint() {
        let a = token_digest("SELECT a FROM t WHERE b = 5 AND d = DATE '1994-01-01'").unwrap();
        let b = token_digest("SELECT a FROM t WHERE b = 99 AND d = DATE '1997-06-30'").unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.binds, b.binds);
        // Keyword case is canonicalized.
        let c = token_digest("select a from t where b = 5 and d = date '1994-01-01'").unwrap();
        assert_eq!(a.fingerprint, c.fingerprint);
        // Literal type changes and structural changes alter the hash.
        let ty = token_digest("SELECT a FROM t WHERE b = 'x' AND d = DATE '1994-01-01'").unwrap();
        assert_ne!(a.fingerprint, ty.fingerprint);
        let cols =
            token_digest("SELECT a, b FROM t WHERE b = 5 AND d = DATE '1994-01-01'").unwrap();
        assert_ne!(a.fingerprint, cols.fingerprint);
    }

    #[test]
    fn token_digest_limit_and_interval_stay_structural() {
        let a = token_digest("SELECT a FROM t ORDER BY a LIMIT 5").unwrap();
        let b = token_digest("SELECT a FROM t ORDER BY a LIMIT 10").unwrap();
        assert_ne!(a.fingerprint, b.fingerprint, "LIMIT is not a bind position");
        assert!(a.binds.is_empty());
        let c = token_digest("SELECT d + INTERVAL '3' MONTH FROM t").unwrap();
        let d = token_digest("SELECT d + INTERVAL '4' MONTH FROM t").unwrap();
        assert_ne!(c.fingerprint, d.fingerprint, "INTERVAL quantity is structural");
        assert!(c.binds.is_empty());
    }

    #[test]
    fn token_digest_rejects_unlexable_input() {
        assert!(token_digest("SELECT 'unterminated").is_none());
        assert!(token_digest("a ? b").is_none());
    }

    #[test]
    fn fnv1a_is_stable() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
