//! Observed-cardinality overrides for feedback-driven re-optimization.
//!
//! After an instrumented execution, the engine folds per-operator actual
//! row counts into a [`CardOverrides`] table keyed by *query-table sets*
//! (the same join-set identity both optimizers reason in). On
//! re-optimization the table is threaded through the metadata/estimation
//! path of whichever optimizer plans the statement, so the search costs
//! groups with observed rows instead of estimates — the missing half of
//! the q-error loop ("Online Sketch-based Query Optimization"'s refine-
//! from-execution idea, scoped to cached statements).
//!
//! Keys are [`BTreeSet<usize>`] of query-table indexes:
//!
//! * a **rel** entry for set `S` records the observed output rows of
//!   joining exactly the members of `S` with *every* predicate local to
//!   `S` applied (singleton sets are post-filter leaf cardinalities);
//! * an **agg** entry for set `S` records the observed output rows of the
//!   grouped aggregate over the block whose join tree covers `S` — the
//!   number the static "one-in-ten group" guess gets catastrophically
//!   wrong for data-dependent group counts.
//!
//! Query-table numbering is global across the nested blocks of one union
//! branch (derived subplans share the statement's qt space), and a derived
//! table is identified by its *own* qt — its inner block's members never
//! appear in an outer block's keys — so entries from different nesting
//! depths cannot collide. Union branches have separate qt spaces; callers
//! keep one `CardOverrides` per branch.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Observed cardinalities for one statement branch, keyed by qt-set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CardOverrides {
    rel: BTreeMap<BTreeSet<usize>, f64>,
    agg: BTreeMap<BTreeSet<usize>, f64>,
}

impl CardOverrides {
    pub fn new() -> CardOverrides {
        CardOverrides::default()
    }

    /// Record the observed rows of joining exactly `set` (all local
    /// predicates applied). Ancestors win: an existing entry (recorded
    /// higher in the plan, e.g. a post-join filter) is kept.
    pub fn record_rel(&mut self, set: BTreeSet<usize>, rows: f64) {
        if !set.is_empty() && rows.is_finite() {
            self.rel.entry(set).or_insert(rows.max(0.0));
        }
    }

    /// Record the observed output rows of the grouped aggregate over `set`.
    pub fn record_agg(&mut self, set: BTreeSet<usize>, rows: f64) {
        if !set.is_empty() && rows.is_finite() {
            self.agg.entry(set).or_insert(rows.max(0.0));
        }
    }

    /// Observed join cardinality of exactly `set`, if recorded.
    pub fn rel(&self, set: &BTreeSet<usize>) -> Option<f64> {
        self.rel.get(set).copied()
    }

    /// Observed post-filter cardinality of a single table.
    pub fn rel_singleton(&self, qt: usize) -> Option<f64> {
        self.rel.get(&BTreeSet::from([qt])).copied()
    }

    /// Observed grouped-aggregate output rows over `set`, if recorded.
    pub fn agg(&self, set: &BTreeSet<usize>) -> Option<f64> {
        self.agg.get(set).copied()
    }

    pub fn is_empty(&self) -> bool {
        self.rel.is_empty() && self.agg.is_empty()
    }

    /// Number of recorded entries (rel + agg), for reports.
    pub fn len(&self) -> usize {
        self.rel.len() + self.agg.len()
    }

    /// Merge newer observations in: the other table's entries replace
    /// same-key entries here (fresher execution wins) and add new keys.
    pub fn merge_from(&mut self, newer: &CardOverrides) {
        for (k, v) in &newer.rel {
            self.rel.insert(k.clone(), *v);
        }
        for (k, v) in &newer.agg {
            self.agg.insert(k.clone(), *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(qts: &[usize]) -> BTreeSet<usize> {
        qts.iter().copied().collect()
    }

    #[test]
    fn ancestors_win_within_one_fold() {
        let mut o = CardOverrides::new();
        // Pre-order fold: the post-filter ancestor records first.
        o.record_rel(set(&[0]), 3.0);
        o.record_rel(set(&[0]), 8.0);
        assert_eq!(o.rel_singleton(0), Some(3.0));
    }

    #[test]
    fn merge_prefers_newer_values_and_unions_keys() {
        let mut old = CardOverrides::new();
        old.record_rel(set(&[0]), 10.0);
        old.record_agg(set(&[0, 1]), 5.0);
        let mut newer = CardOverrides::new();
        newer.record_rel(set(&[0]), 12.0);
        newer.record_rel(set(&[0, 1]), 40.0);
        old.merge_from(&newer);
        assert_eq!(old.rel_singleton(0), Some(12.0));
        assert_eq!(old.rel(&set(&[0, 1])), Some(40.0));
        assert_eq!(old.agg(&set(&[0, 1])), Some(5.0));
        assert_eq!(old.len(), 3);
    }

    #[test]
    fn empty_sets_and_non_finite_rows_are_ignored() {
        let mut o = CardOverrides::new();
        o.record_rel(BTreeSet::new(), 5.0);
        o.record_rel(set(&[1]), f64::NAN);
        o.record_agg(set(&[1]), f64::INFINITY);
        assert!(o.is_empty());
    }
}
