//! Morsel-driven parallel execution.
//!
//! The subsystem executes an *unchanged* operator pipeline concurrently by
//! splitting its driving scan into [`morsel::MorselSpec`] ranges and running
//! each morsel through a private copy of the pipeline on a worker-pool
//! thread ([`pool`]). Three exchange operators mark the boundary between the
//! serial section of a plan and a morsel-parallel fragment
//! ([`crate::plan::ExchangeKind`]):
//!
//! - **Gather** concatenates per-morsel output buffers in morsel order.
//!   Every pipeline operator preserves its driving scan's row order, so the
//!   concatenation is byte-identical to serial execution.
//! - **GatherMerge** sits above a per-morsel `Sort`: each morsel yields a
//!   sorted run and the merge is k-way on the sort keys with ties broken by
//!   morsel index — exactly reproducing the serial *stable* sort.
//! - **Repartition** feeds a two-phase partitioned aggregation: rows are
//!   hash-partitioned on the group-by keys so each worker owns a disjoint
//!   set of groups, and the final output is key-sorted — identical to the
//!   serial `Sort` + stream-aggregate plan it replaces.
//!
//! `Broadcast` wraps the build side of hash joins inside a fragment so the
//! build table is computed once and shared by every worker instead of being
//! rebuilt per worker.
//!
//! Placement ([`bridge::parallelize`]) is conservative: a fragment must be a
//! scan/join/filter/project pipeline with a morselizable driving scan, and
//! anything else (limits, unions, correlated contexts) stays serial. At run
//! time every exchange additionally falls back to serial execution when it
//! would not help (fewer than two morsels, nested inside another pool) or
//! would be incorrect to split (a non-empty outer binding).

pub mod bridge;
pub(crate) mod exchange;
pub mod morsel;
pub(crate) mod pool;

pub use bridge::{parallelize, ParallelOpts};
pub use morsel::DEFAULT_MORSEL_ROWS;

// Parallel execution requires plans (and everything they reference) to be
// shareable across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<crate::plan::Plan>();
    assert_send_sync::<taurus_common::Value>();
};
