//! Fig 11 / Fig 12 — TPC-DS execution time for MySQL-optimized vs
//! Orca-optimized plans (paper §6.2).
//!
//! 99 queries × 2 optimizers; measurements include optimization time, as
//! the paper's Fig 11 explicitly does. Fig 12 is this same data re-plotted
//! as (MySQL time, Orca/MySQL ratio) — `harness fig12` prints the points.

use criterion::{criterion_group, criterion_main, Criterion};
use mylite::{Engine, MySqlOptimizer};
use orcalite::{JoinOrderStrategy, OrcaConfig};
use std::time::Duration;
use taurus_bridge::OrcaOptimizer;
use taurus_workloads::{tpcds, Scale};

fn fig11(c: &mut Criterion) {
    let scale = Scale(
        std::env::var("SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.15),
    );
    let engine = Engine::new(tpcds::build_catalog(scale));
    // The paper's TPC-DS setup: threshold 2, EXHAUSTIVE2 (§6.2).
    let orca =
        OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Exhaustive2), 2);
    for q in tpcds::queries() {
        let mut group = c.benchmark_group(format!("fig11/{}", q.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400));
        group.bench_function("mysql", |b| {
            b.iter(|| engine.query_with(&q.sql, &MySqlOptimizer).expect("query runs"))
        });
        group.bench_function("orca", |b| {
            b.iter(|| engine.query_with(&q.sql, &orca).expect("query runs"))
        });
        group.finish();
    }
}

criterion_group!(benches, fig11);
criterion_main!(benches);
