//! TPC-H analog: the 8-table schema, a deterministic generator, and all 22
//! query analogs (paper §6.1, Fig 10).
//!
//! Adaptations from the official text are noted per query; the structural
//! features the paper's analysis depends on are preserved exactly —
//! Q4/Q21/Q22's `EXISTS`/`NOT EXISTS` semi-joins, Q13's outer join with an
//! ON-side `NOT LIKE`, Q16's `NOT IN` with the `%Customer%Complaints%`
//! needle, Q17's correlated average, Q18's `IN` over a grouped subquery,
//! and Q19's OR-of-conjunctions join predicate (the OR-factorization case).

use crate::gen::{self, Scale};
use taurus_catalog::stats::AnalyzeOptions;
use taurus_catalog::Catalog;
use taurus_common::{Column, DataType, Schema, Value};

/// A named benchmark query.
#[derive(Debug, Clone)]
pub struct Query {
    pub name: &'static str,
    pub sql: String,
}

/// Base (Scale(1.0)) row counts. The official ratios are kept: 4 lineitems
/// per order, 2 partsupps per part, ~3 orders per customer.
pub mod sizes {
    pub const REGION: usize = 5;
    pub const NATION: usize = 25;
    pub const SUPPLIER: usize = 50;
    pub const CUSTOMER: usize = 200;
    pub const PART: usize = 200;
    pub const PARTSUPP: usize = 400;
    pub const ORDERS: usize = 1_000;
    pub const LINEITEM: usize = 4_000;
}

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const CONTAINERS: [&str; 8] =
    ["SM PKG", "SM BOX", "MED PKG", "MED BOX", "LG PKG", "LG BOX", "JUMBO PKG", "WRAP CASE"];
const TYPES: [&str; 6] = [
    "STANDARD BRUSHED TIN",
    "LARGE BRUSHED TIN",
    "ECONOMY ANODIZED STEEL",
    "MEDIUM BURNISHED COPPER",
    "PROMO PLATED NICKEL",
    "SMALL POLISHED BRASS",
];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Build and analyze the TPC-H catalog at the given scale.
pub fn build_catalog(scale: Scale) -> Catalog {
    let mut cat = Catalog::new();
    let n_supplier = scale.rows(sizes::SUPPLIER);
    let n_customer = scale.rows(sizes::CUSTOMER);
    let n_part = scale.rows(sizes::PART);
    let n_partsupp = scale.rows(sizes::PARTSUPP);
    let n_orders = scale.rows(sizes::ORDERS);
    let n_lineitem = scale.rows(sizes::LINEITEM);

    // region
    let region = cat
        .create_table(
            "region",
            Schema::new(vec![
                Column::new("r_regionkey", DataType::Int),
                Column::new("r_name", DataType::Str),
            ]),
        )
        .expect("fresh catalog");
    cat.insert(
        region,
        REGIONS.iter().enumerate().map(|(i, n)| vec![Value::Int(i as i64), Value::str(*n)]),
    )
    .expect("region rows");
    cat.create_index(region, "region_pk", vec![0], true).expect("index");

    // nation
    let nation = cat
        .create_table(
            "nation",
            Schema::new(vec![
                Column::new("n_nationkey", DataType::Int),
                Column::new("n_name", DataType::Str),
                Column::new("n_regionkey", DataType::Int),
            ]),
        )
        .expect("fresh catalog");
    cat.insert(
        nation,
        NATIONS
            .iter()
            .enumerate()
            .map(|(i, n)| vec![Value::Int(i as i64), Value::str(*n), Value::Int((i % 5) as i64)]),
    )
    .expect("nation rows");
    cat.create_index(nation, "nation_pk", vec![0], true).expect("index");

    // supplier
    let supplier = cat
        .create_table(
            "supplier",
            Schema::new(vec![
                Column::new("s_suppkey", DataType::Int),
                Column::new("s_name", DataType::Str),
                Column::new("s_nationkey", DataType::Int),
                Column::new("s_acctbal", DataType::Double),
                Column::new("s_comment", DataType::Str),
            ]),
        )
        .expect("fresh catalog");
    {
        let mut rng = gen::rng_for("tpch", "supplier");
        cat.insert(
            supplier,
            (0..n_supplier).map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Supplier#{i:06}")),
                    Value::Int(rng.gen_range(0..25)),
                    gen::money(&mut rng, -999.0, 9999.0),
                    gen::comment(&mut rng, 0.03),
                ]
            }),
        )
        .expect("supplier rows");
    }
    cat.create_index(supplier, "supplier_pk", vec![0], true).expect("index");
    cat.create_index(supplier, "supplier_nation", vec![2], false).expect("index");

    // customer
    let customer = cat
        .create_table(
            "customer",
            Schema::new(vec![
                Column::new("c_custkey", DataType::Int),
                Column::new("c_name", DataType::Str),
                Column::new("c_nationkey", DataType::Int),
                Column::new("c_acctbal", DataType::Double),
                Column::new("c_mktsegment", DataType::Str),
                Column::new("c_phone", DataType::Str),
                Column::new("c_comment", DataType::Str),
            ]),
        )
        .expect("fresh catalog");
    {
        let mut rng = gen::rng_for("tpch", "customer");
        cat.insert(
            customer,
            (0..n_customer).map(|i| {
                let cc = rng.gen_range(10..35);
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Customer#{i:06}")),
                    Value::Int(rng.gen_range(0..25)),
                    gen::money(&mut rng, -999.0, 9999.0),
                    Value::str(gen::pick(&mut rng, &SEGMENTS)),
                    Value::str(format!(
                        "{cc}-{:03}-{:04}",
                        rng.gen_range(100..999),
                        rng.gen_range(1000..9999)
                    )),
                    gen::comment(&mut rng, 0.02),
                ]
            }),
        )
        .expect("customer rows");
    }
    cat.create_index(customer, "customer_pk", vec![0], true).expect("index");
    cat.create_index(customer, "customer_nation", vec![2], false).expect("index");

    // part
    let part = cat
        .create_table(
            "part",
            Schema::new(vec![
                Column::new("p_partkey", DataType::Int),
                Column::new("p_name", DataType::Str),
                Column::new("p_brand", DataType::Str),
                Column::new("p_type", DataType::Str),
                Column::new("p_size", DataType::Int),
                Column::new("p_container", DataType::Str),
                Column::new("p_retailprice", DataType::Double),
            ]),
        )
        .expect("fresh catalog");
    {
        let mut rng = gen::rng_for("tpch", "part");
        const COLORS: [&str; 8] =
            ["almond", "azure", "chocolate", "forest", "green", "metallic", "navy", "rose"];
        cat.insert(
            part,
            (0..n_part).map(|i| {
                let c1 = gen::pick(&mut rng, &COLORS);
                let c2 = gen::pick(&mut rng, &COLORS);
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("{c1} {c2} part")),
                    Value::str(format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6))),
                    Value::str(gen::pick(&mut rng, &TYPES)),
                    gen::int_between(&mut rng, 1, 50),
                    Value::str(gen::pick(&mut rng, &CONTAINERS)),
                    gen::money(&mut rng, 900.0, 2000.0),
                ]
            }),
        )
        .expect("part rows");
    }
    cat.create_index(part, "part_pk", vec![0], true).expect("index");

    // partsupp
    let partsupp = cat
        .create_table(
            "partsupp",
            Schema::new(vec![
                Column::new("ps_partkey", DataType::Int),
                Column::new("ps_suppkey", DataType::Int),
                Column::new("ps_availqty", DataType::Int),
                Column::new("ps_supplycost", DataType::Double),
            ]),
        )
        .expect("fresh catalog");
    {
        let mut rng = gen::rng_for("tpch", "partsupp");
        cat.insert(
            partsupp,
            (0..n_partsupp).map(|i| {
                vec![
                    Value::Int((i % n_part) as i64),
                    Value::Int(((i * 7 + i / n_part) % n_supplier) as i64),
                    gen::int_between(&mut rng, 1, 9999),
                    gen::money(&mut rng, 1.0, 1000.0),
                ]
            }),
        )
        .expect("partsupp rows");
    }
    cat.create_index(partsupp, "partsupp_pk", vec![0, 1], true).expect("index");
    cat.create_index(partsupp, "partsupp_supp", vec![1], false).expect("index");

    // orders
    let orders = cat
        .create_table(
            "orders",
            Schema::new(vec![
                Column::new("o_orderkey", DataType::Int),
                Column::new("o_custkey", DataType::Int),
                Column::new("o_orderstatus", DataType::Str),
                Column::new("o_totalprice", DataType::Double),
                Column::new("o_orderdate", DataType::Date),
                Column::new("o_orderpriority", DataType::Str),
                Column::new("o_comment", DataType::Str),
            ]),
        )
        .expect("fresh catalog");
    {
        let mut rng = gen::rng_for("tpch", "orders");
        cat.insert(
            orders,
            (0..n_orders).map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..n_customer as i64)),
                    Value::str(if rng.gen_bool(0.5) { "F" } else { "O" }),
                    gen::money(&mut rng, 1000.0, 400_000.0),
                    gen::date_between(&mut rng, "1992-01-01", "1998-08-02"),
                    Value::str(gen::pick(&mut rng, &PRIORITIES)),
                    special_comment(&mut rng),
                ]
            }),
        )
        .expect("orders rows");
    }
    cat.create_index(orders, "orders_pk", vec![0], true).expect("index");
    cat.create_index(orders, "orders_cust", vec![1], false).expect("index");

    // lineitem
    let lineitem = cat
        .create_table(
            "lineitem",
            Schema::new(vec![
                Column::new("l_orderkey", DataType::Int),
                Column::new("l_partkey", DataType::Int),
                Column::new("l_suppkey", DataType::Int),
                Column::new("l_quantity", DataType::Double),
                Column::new("l_extendedprice", DataType::Double),
                Column::new("l_discount", DataType::Double),
                Column::new("l_tax", DataType::Double),
                Column::new("l_returnflag", DataType::Str),
                Column::new("l_linestatus", DataType::Str),
                Column::new("l_shipdate", DataType::Date),
                Column::new("l_commitdate", DataType::Date),
                Column::new("l_receiptdate", DataType::Date),
                Column::new("l_shipmode", DataType::Str),
            ]),
        )
        .expect("fresh catalog");
    {
        let mut rng = gen::rng_for("tpch", "lineitem");
        cat.insert(
            lineitem,
            (0..n_lineitem).map(|i| {
                let ship = gen::date_between(&mut rng, "1992-01-02", "1998-11-30");
                let ship_days = match ship {
                    Value::Date(d) => d,
                    _ => unreachable!("date_between returns dates"),
                };
                let commit = Value::Date(ship_days + rng.gen_range(-30i32..30));
                let receipt = Value::Date(ship_days + rng.gen_range(1i32..30));
                vec![
                    Value::Int((i % n_orders) as i64),
                    Value::Int(rng.gen_range(0..n_part as i64)),
                    Value::Int(rng.gen_range(0..n_supplier as i64)),
                    Value::Double(rng.gen_range(1..50) as f64),
                    gen::money(&mut rng, 900.0, 100_000.0),
                    Value::Double((rng.gen_range(0..10) as f64) / 100.0),
                    Value::Double((rng.gen_range(0..8) as f64) / 100.0),
                    Value::str(if rng.gen_bool(0.25) {
                        "R"
                    } else if rng.gen_bool(0.5) {
                        "A"
                    } else {
                        "N"
                    }),
                    Value::str(if rng.gen_bool(0.5) { "F" } else { "O" }),
                    ship,
                    commit,
                    receipt,
                    Value::str(gen::pick(&mut rng, &SHIPMODES)),
                ]
            }),
        )
        .expect("lineitem rows");
    }
    cat.create_index(lineitem, "lineitem_fk", vec![0], false).expect("index");
    cat.create_index(lineitem, "lineitem_fk2", vec![1], false).expect("index");
    cat.create_index(lineitem, "lineitem_supp", vec![2], false).expect("index");

    cat.analyze_all(&AnalyzeOptions::default());
    cat
}

fn special_comment(rng: &mut gen::SmallRng) -> Value {
    if rng.gen_bool(0.05) {
        Value::str("waiting special requests pending")
    } else {
        gen::comment(rng, 0.0)
    }
}

/// All 22 query analogs, in order.
pub fn queries() -> Vec<Query> {
    vec![
        Query { name: "q1", sql: q1() },
        Query { name: "q2", sql: q2() },
        Query { name: "q3", sql: q3() },
        Query { name: "q4", sql: q4() },
        Query { name: "q5", sql: q5() },
        Query { name: "q6", sql: q6() },
        Query { name: "q7", sql: q7() },
        Query { name: "q8", sql: q8() },
        Query { name: "q9", sql: q9() },
        Query { name: "q10", sql: q10() },
        Query { name: "q11", sql: q11() },
        Query { name: "q12", sql: q12() },
        Query { name: "q13", sql: q13() },
        Query { name: "q14", sql: q14() },
        Query { name: "q15", sql: q15() },
        Query { name: "q16", sql: q16() },
        Query { name: "q17", sql: q17() },
        Query { name: "q18", sql: q18() },
        Query { name: "q19", sql: q19() },
        Query { name: "q20", sql: q20() },
        Query { name: "q21", sql: q21() },
        Query { name: "q22", sql: q22() },
    ]
}

fn q1() -> String {
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
            SUM(l_extendedprice) AS sum_base_price, AVG(l_quantity) AS avg_qty, \
            AVG(l_extendedprice) AS avg_price, AVG(l_discount) AS avg_disc, COUNT(*) AS count_order \
     FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
     GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"
        .into()
}

fn q2() -> String {
    // Min-cost supplier; the correlated MIN subquery spans 4 tables.
    "SELECT s_acctbal, s_name, n_name, p_partkey, p_type \
     FROM part, supplier, partsupp, nation, region \
     WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15 \
       AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'EUROPE' \
       AND ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp ps2, supplier s2, nation n2, region r2 \
                            WHERE ps2.ps_partkey = p_partkey AND s2.s_suppkey = ps2.ps_suppkey \
                              AND s2.s_nationkey = n2.n_nationkey AND n2.n_regionkey = r2.r_regionkey \
                              AND r2.r_name = 'EUROPE') \
     ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100"
        .into()
}

fn q3() -> String {
    "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, o_orderdate \
     FROM customer, orders, lineitem \
     WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
     GROUP BY l_orderkey, o_orderdate ORDER BY revenue DESC, o_orderdate LIMIT 10"
        .into()
}

fn q4() -> String {
    "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders \
     WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-07-01' + INTERVAL 3 MONTH \
       AND EXISTS (SELECT * FROM lineitem WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate) \
     GROUP BY o_orderpriority ORDER BY o_orderpriority"
        .into()
}

fn q5() -> String {
    "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
     FROM customer, orders, lineitem, supplier, nation, region \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey \
       AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
       AND r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' \
       AND o_orderdate < DATE '1994-01-01' + INTERVAL 1 YEAR \
     GROUP BY n_name ORDER BY revenue DESC"
        .into()
}

fn q6() -> String {
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1994-01-01' + INTERVAL 1 YEAR \
       AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
        .into()
}

fn q7() -> String {
    // Shipping volumes between two nations, via a derived table.
    "SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue FROM \
     (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
             YEAR(l_shipdate) AS l_year, l_extendedprice * (1 - l_discount) AS volume \
      FROM supplier, lineitem, orders, customer, nation n1, nation n2 \
      WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey \
        AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey \
        AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') \
             OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) \
        AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') AS shipping \
     GROUP BY supp_nation, cust_nation, l_year ORDER BY supp_nation, cust_nation, l_year"
        .into()
}

fn q8() -> String {
    "SELECT o_year, SUM(CASE WHEN nationname = 'BRAZIL' THEN volume ELSE 0 END) / SUM(volume) \
            AS mkt_share FROM \
     (SELECT YEAR(o_orderdate) AS o_year, l_extendedprice * (1 - l_discount) AS volume, \
             n2.n_name AS nationname \
      FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
      WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey \
        AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey \
        AND n1.n_regionkey = r_regionkey AND r_name = 'AMERICA' \
        AND s_nationkey = n2.n_nationkey \
        AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
        AND p_type = 'ECONOMY ANODIZED STEEL') AS all_nations \
     GROUP BY o_year ORDER BY o_year"
        .into()
}

fn q9() -> String {
    "SELECT nationname, o_year, SUM(amount) AS sum_profit FROM \
     (SELECT n_name AS nationname, YEAR(o_orderdate) AS o_year, \
             l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount \
      FROM part, supplier, lineitem, partsupp, orders, nation \
      WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
        AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
        AND p_name LIKE '%green%') AS profit \
     GROUP BY nationname, o_year ORDER BY nationname, o_year DESC"
        .into()
}

fn q10() -> String {
    "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
            c_acctbal, n_name \
     FROM customer, orders, lineitem, nation \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1993-10-01' + INTERVAL 3 MONTH \
       AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
     GROUP BY c_custkey, c_name, c_acctbal, n_name ORDER BY revenue DESC LIMIT 20"
        .into()
}

fn q11() -> String {
    // Adaptation: the official scalar subquery in HAVING becomes a fixed
    // fraction threshold (documented in DESIGN.md).
    "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS val \
     FROM partsupp, supplier, nation \
     WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY' \
     GROUP BY ps_partkey HAVING SUM(ps_supplycost * ps_availqty) > 10000 \
     ORDER BY val DESC"
        .into()
}

fn q12() -> String {
    "SELECT l_shipmode, \
            SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' \
                     THEN 1 ELSE 0 END) AS high_line_count, \
            SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' \
                     THEN 1 ELSE 0 END) AS low_line_count \
     FROM orders, lineitem \
     WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') \
       AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
       AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1994-01-01' + INTERVAL 1 YEAR \
     GROUP BY l_shipmode ORDER BY l_shipmode"
        .into()
}

fn q13() -> String {
    // The 2× left-outer-hash-join case of §6.1.
    "SELECT c_count, COUNT(*) AS custdist FROM \
     (SELECT c_custkey AS ck, COUNT(o_orderkey) AS c_count \
      FROM customer LEFT OUTER JOIN orders \
        ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%' \
      GROUP BY c_custkey) AS c_orders \
     GROUP BY c_count ORDER BY custdist DESC, c_count DESC"
        .into()
}

fn q14() -> String {
    "SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) \
                              ELSE 0 END) / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
     FROM lineitem, part \
     WHERE l_partkey = p_partkey AND l_shipdate >= DATE '1995-09-01' \
       AND l_shipdate < DATE '1995-09-01' + INTERVAL 1 MONTH"
        .into()
}

fn q15() -> String {
    // The official view becomes a CTE referenced twice (outer + the MAX
    // subquery) — exercising MySQL's CTE-copy model (§4.2.3).
    "WITH revenue AS (SELECT l_suppkey AS supplier_no, \
                             SUM(l_extendedprice * (1 - l_discount)) AS total_revenue \
                      FROM lineitem \
                      WHERE l_shipdate >= DATE '1996-01-01' \
                        AND l_shipdate < DATE '1996-01-01' + INTERVAL 3 MONTH \
                      GROUP BY l_suppkey) \
     SELECT s_suppkey, s_name, total_revenue FROM supplier, revenue \
     WHERE s_suppkey = supplier_no \
       AND total_revenue >= (SELECT MAX(total_revenue) FROM revenue) \
     ORDER BY s_suppkey"
        .into()
}

fn q16() -> String {
    // The query where MySQL *beats* Orca in the paper (§6.1).
    "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
     FROM partsupp, part \
     WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#34' \
       AND p_type NOT LIKE 'LARGE BRUSHED%' \
       AND p_size IN (48, 19, 12, 4, 41, 7, 21, 39) \
       AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier \
                              WHERE s_comment LIKE '%Customer%Complaints%') \
     GROUP BY p_brand, p_type, p_size \
     ORDER BY supplier_cnt DESC, p_brand, p_type, p_size"
        .into()
}

fn q17() -> String {
    // Listing 5: the correlated-average query behind Fig 6/7 and Listing 7.
    // Adaptation: the container filter is dropped so the predicate keeps a
    // non-empty match at laptop scale (the official brand+container pair
    // selects ~1 row in 200k parts; our part table is 3 orders smaller).
    "SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly FROM lineitem, part \
     WHERE p_partkey = l_partkey AND p_brand = 'Brand#14' \
       AND l_quantity < (SELECT 0.2 * AVG(l_quantity) FROM lineitem l2 \
                         WHERE l2.l_partkey = p_partkey)"
        .into()
}

fn q18() -> String {
    "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) AS total_qty \
     FROM customer, orders, lineitem \
     WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey \
                          HAVING SUM(l_quantity) > 150) \
       AND c_custkey = o_custkey AND o_orderkey = l_orderkey \
     GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
     ORDER BY o_totalprice DESC, o_orderdate LIMIT 100"
        .into()
}

fn q19() -> String {
    // OR-of-conjunctions with a common `p_partkey = l_partkey` in every arm
    // — only an optimizer that factors ORs can hash-join this (§7 item 4).
    "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem, part \
     WHERE (p_partkey = l_partkey AND p_container = 'SM PKG' AND l_quantity BETWEEN 1 AND 11 \
            AND p_size BETWEEN 1 AND 5 AND l_shipmode IN ('AIR', 'REG AIR')) \
        OR (p_partkey = l_partkey AND p_container = 'MED BOX' AND l_quantity BETWEEN 10 AND 20 \
            AND p_size BETWEEN 1 AND 10 AND l_shipmode IN ('AIR', 'REG AIR')) \
        OR (p_partkey = l_partkey AND p_container = 'LG BOX' AND l_quantity BETWEEN 20 AND 30 \
            AND p_size BETWEEN 1 AND 15 AND l_shipmode IN ('AIR', 'REG AIR'))"
        .into()
}

fn q20() -> String {
    "SELECT s_name FROM supplier, nation \
     WHERE s_suppkey IN (SELECT ps_suppkey FROM partsupp \
                         WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') \
                           AND ps_availqty > 100) \
       AND s_nationkey = n_nationkey AND n_name = 'CANADA' \
     ORDER BY s_name"
        .into()
}

fn q21() -> String {
    // The 2.6× query of §6.1: one EXISTS, one NOT EXISTS, 4-table join.
    "SELECT s_name, COUNT(*) AS numwait FROM supplier, lineitem l1, orders, nation \
     WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey AND o_orderstatus = 'F' \
       AND l1.l_receiptdate > l1.l_commitdate \
       AND EXISTS (SELECT * FROM lineitem l2 WHERE l2.l_orderkey = l1.l_orderkey \
                     AND l2.l_suppkey <> l1.l_suppkey) \
       AND NOT EXISTS (SELECT * FROM lineitem l3 WHERE l3.l_orderkey = l1.l_orderkey \
                         AND l3.l_suppkey <> l1.l_suppkey \
                         AND l3.l_receiptdate > l3.l_commitdate) \
       AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' \
     GROUP BY s_name ORDER BY numwait DESC, s_name LIMIT 100"
        .into()
}

fn q22() -> String {
    "SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal FROM \
     (SELECT SUBSTR(c_phone, 1, 2) AS cntrycode, c_acctbal FROM customer \
      WHERE SUBSTR(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17') \
        AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer c2 WHERE c2.c_acctbal > 0.00) \
        AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)) AS custsale \
     GROUP BY cntrycode ORDER BY cntrycode"
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_sql::parser::parse_select;

    #[test]
    fn catalog_builds_with_expected_shapes() {
        let cat = build_catalog(Scale(0.1));
        assert_eq!(cat.table_by_name("region").unwrap().num_rows(), 5);
        assert_eq!(cat.table_by_name("nation").unwrap().num_rows(), 25);
        assert_eq!(cat.table_by_name("orders").unwrap().num_rows(), 100);
        assert_eq!(cat.table_by_name("lineitem").unwrap().num_rows(), 400);
        // Statistics are analyzed, including histograms.
        let li = cat.table_by_name("lineitem").unwrap();
        let stats = li.stats.as_ref().unwrap();
        assert!(stats.column(9).histogram.is_some(), "l_shipdate histogram");
        // Listing 7's index names exist.
        assert!(li.indexes.iter().any(|ix| ix.def().name == "lineitem_fk2"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_catalog(Scale(0.05));
        let b = build_catalog(Scale(0.05));
        let ta = a.table_by_name("orders").unwrap();
        let tb = b.table_by_name("orders").unwrap();
        assert_eq!(ta.data.rows(), tb.data.rows());
    }

    #[test]
    fn all_22_queries_parse() {
        for q in queries() {
            parse_select(&q.sql).unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.name));
        }
        assert_eq!(queries().len(), 22);
    }

    /// Canonicalize rows for cross-plan comparison: double-precision sums
    /// accumulate in plan-dependent order, so doubles compare rounded.
    fn canon(rows: Vec<Vec<Value>>) -> Vec<String> {
        let mut out: Vec<String> = rows
            .into_iter()
            .map(|r| {
                r.into_iter()
                    .map(|v| match v {
                        Value::Double(d) => format!("D{:.4}", d),
                        other => format!("{other:?}"),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn all_22_queries_agree_between_optimizers() {
        use mylite::Engine;
        use taurus_bridge::OrcaOptimizer;
        let engine = Engine::new(build_catalog(Scale(0.05)));
        let orca = OrcaOptimizer::default();
        for q in queries() {
            let mine = engine
                .query(&q.sql)
                .unwrap_or_else(|e| panic!("{} failed under MySQL optimizer: {e}", q.name));
            let theirs = engine
                .query_with(&q.sql, &orca)
                .unwrap_or_else(|e| panic!("{} failed under Orca: {e}", q.name));
            let a = canon(mine.rows);
            let b = canon(theirs.rows);
            assert_eq!(a, b, "{}: result mismatch between optimizers", q.name);
        }
    }
}
