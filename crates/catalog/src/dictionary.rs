//! The data dictionary: named tables with data, indexes and statistics.

use crate::stats::{AnalyzeOptions, TableStats};
use std::collections::HashMap;
use taurus_common::error::{Error, Result};
use taurus_common::{Row, Schema, TableId};
use taurus_storage::{IndexDef, OrderedIndex, TableData};

/// A table as the dictionary knows it: heap data, indexes, statistics.
#[derive(Debug)]
pub struct CatalogTable {
    pub id: TableId,
    pub name: String,
    pub data: TableData,
    pub indexes: Vec<OrderedIndex>,
    /// Populated by [`Catalog::analyze_all`] / [`Catalog::analyze`].
    pub stats: Option<TableStats>,
}

impl CatalogTable {
    pub fn schema(&self) -> &Schema {
        self.data.schema()
    }

    /// The index whose key starts with exactly the given columns, if any.
    pub fn index_on(&self, columns: &[usize]) -> Option<&OrderedIndex> {
        self.indexes.iter().find(|ix| ix.def().columns.as_slice() == columns)
    }

    /// Indexes whose *first* key column is `col` — candidates for lookups
    /// and ranges on that column.
    pub fn indexes_leading_with(&self, col: usize) -> impl Iterator<Item = &OrderedIndex> {
        self.indexes.iter().filter(move |ix| ix.def().columns.first() == Some(&col))
    }

    /// Whether `col` is covered by a single-column UNIQUE index.
    pub fn is_unique_column(&self, col: usize) -> bool {
        self.indexes.iter().any(|ix| ix.def().unique && ix.def().columns.as_slice() == [col])
    }

    /// Row count (live data, not statistics).
    pub fn num_rows(&self) -> usize {
        self.data.num_rows()
    }
}

/// The catalog. Built mutably during setup, then shared immutably (wrap in
/// `Arc`) for the read-only benchmark workloads.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<CatalogTable>,
    by_name: HashMap<String, usize>,
    /// Monotonic counter bumped by every structural or statistics change
    /// (CREATE TABLE / CREATE INDEX / index rebuild / ANALYZE). Plan-cache
    /// entries record the version they were compiled under and are
    /// invalidated when it moves. Raw row appends ([`Catalog::insert`]) do
    /// not bump it — bulk loaders insert, then index, then analyze, and the
    /// last two steps publish the change.
    version: u64,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Current schema/statistics version (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Create an empty table; names are unique.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> Result<TableId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(Error::semantic(format!("table '{name}' already exists")));
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(name.clone(), self.tables.len());
        self.tables.push(CatalogTable {
            id,
            name,
            data: TableData::new(schema),
            indexes: Vec::new(),
            stats: None,
        });
        self.version += 1;
        Ok(id)
    }

    /// Append rows to a table. Invalidates its statistics and rebuilds its
    /// indexes lazily on the next [`Catalog::build_indexes`] call; loaders
    /// normally insert everything first, then index, then analyze.
    pub fn insert(&mut self, table: TableId, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        let t = self.table_mut(table)?;
        for r in rows {
            t.data.push(r)?;
        }
        t.stats = None;
        Ok(())
    }

    /// Declare an index; it is built from current data immediately.
    pub fn create_index(
        &mut self,
        table: TableId,
        name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
    ) -> Result<()> {
        let t = self.table_mut(table)?;
        let def = IndexDef::new(name, columns, unique);
        if t.indexes.iter().any(|ix| ix.def().name == def.name) {
            return Err(Error::semantic(format!(
                "index '{}' already exists on '{}'",
                def.name, t.name
            )));
        }
        for &c in &def.columns {
            if c >= t.schema().len() {
                return Err(Error::semantic(format!(
                    "index column {c} out of range for '{}'",
                    t.name
                )));
            }
        }
        t.indexes.push(OrderedIndex::build(def, &t.data));
        self.version += 1;
        Ok(())
    }

    /// Rebuild all indexes of a table from its current data (after bulk
    /// loads that followed index creation).
    pub fn build_indexes(&mut self, table: TableId) -> Result<()> {
        let t = self.table_mut(table)?;
        let defs: Vec<IndexDef> = t.indexes.iter().map(|ix| ix.def().clone()).collect();
        t.indexes = defs.into_iter().map(|d| OrderedIndex::build(d, &t.data)).collect();
        self.version += 1;
        Ok(())
    }

    /// `ANALYZE TABLE`: compute statistics.
    pub fn analyze(&mut self, table: TableId, opts: &AnalyzeOptions) -> Result<()> {
        let t = self.table_mut(table)?;
        let unique: Vec<bool> = (0..t.schema().len()).map(|c| t.is_unique_column(c)).collect();
        t.stats = Some(TableStats::analyze(&t.data, &unique, opts));
        self.version += 1;
        Ok(())
    }

    /// `ANALYZE` every table.
    pub fn analyze_all(&mut self, opts: &AnalyzeOptions) {
        let ids: Vec<TableId> = self.tables.iter().map(|t| t.id).collect();
        for id in ids {
            self.analyze(id, opts).expect("ids are live");
        }
    }

    pub fn table(&self, id: TableId) -> Result<&CatalogTable> {
        self.tables
            .get(id.0 as usize)
            .ok_or_else(|| Error::CatalogMissing(format!("table id {id}")))
    }

    pub fn table_by_name(&self, name: &str) -> Result<&CatalogTable> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| Error::CatalogMissing(format!("table '{name}'")))
    }

    pub fn tables(&self) -> &[CatalogTable] {
        &self.tables
    }

    fn table_mut(&mut self, id: TableId) -> Result<&mut CatalogTable> {
        self.tables
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::CatalogMissing(format!("table id {id}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{Column, DataType, Value};

    fn demo() -> (Catalog, TableId) {
        let mut cat = Catalog::new();
        let id = cat
            .create_table(
                "t",
                Schema::new(vec![
                    Column::new("pk", DataType::Int),
                    Column::new("v", DataType::Str),
                ]),
            )
            .unwrap();
        cat.insert(id, (0..10).map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))])).unwrap();
        cat.create_index(id, "primary", vec![0], true).unwrap();
        (cat, id)
    }

    #[test]
    fn create_and_lookup() {
        let (cat, id) = demo();
        assert_eq!(cat.table(id).unwrap().name, "t");
        assert_eq!(cat.table_by_name("t").unwrap().id, id);
        assert!(cat.table_by_name("missing").is_err());
        assert!(cat.table(TableId(99)).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut cat, _) = demo();
        assert!(cat.create_table("t", Schema::default()).is_err());
    }

    #[test]
    fn index_management() {
        let (mut cat, id) = demo();
        let t = cat.table(id).unwrap();
        assert!(t.index_on(&[0]).is_some());
        assert!(t.is_unique_column(0));
        assert!(!t.is_unique_column(1));
        assert!(cat.create_index(id, "primary", vec![0], true).is_err(), "dup name");
        assert!(cat.create_index(id, "bad", vec![9], false).is_err(), "col range");
        // Index built after data load sees all rows.
        cat.create_index(id, "v_idx", vec![1], false).unwrap();
        let t = cat.table(id).unwrap();
        assert_eq!(t.index_on(&[1]).unwrap().num_keys(), 10);
    }

    #[test]
    fn insert_then_rebuild_indexes() {
        let (mut cat, id) = demo();
        cat.insert(id, vec![vec![Value::Int(10), Value::str("v10")]]).unwrap();
        // Index is stale until rebuilt.
        assert_eq!(cat.table(id).unwrap().index_on(&[0]).unwrap().num_keys(), 10);
        cat.build_indexes(id).unwrap();
        assert_eq!(cat.table(id).unwrap().index_on(&[0]).unwrap().num_keys(), 11);
    }

    #[test]
    fn version_bumps_on_ddl_not_plain_inserts() {
        let mut cat = Catalog::new();
        let v0 = cat.version();
        let id =
            cat.create_table("t", Schema::new(vec![Column::new("pk", DataType::Int)])).unwrap();
        let v1 = cat.version();
        assert!(v1 > v0, "CREATE TABLE bumps");
        cat.insert(id, vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(cat.version(), v1, "raw insert does not bump");
        cat.create_index(id, "pk_idx", vec![0], true).unwrap();
        let v2 = cat.version();
        assert!(v2 > v1, "CREATE INDEX bumps");
        cat.build_indexes(id).unwrap();
        let v3 = cat.version();
        assert!(v3 > v2, "index rebuild bumps");
        cat.analyze(id, &AnalyzeOptions::default()).unwrap();
        assert!(cat.version() > v3, "ANALYZE bumps");
    }

    #[test]
    fn analyze_populates_stats() {
        let (mut cat, id) = demo();
        assert!(cat.table(id).unwrap().stats.is_none());
        cat.analyze_all(&AnalyzeOptions::default());
        let stats = cat.table(id).unwrap().stats.as_ref().unwrap();
        assert_eq!(stats.row_count, 10);
        assert_eq!(stats.column(0).ndv, 10.0);
        // Unique column still has a histogram (paper's lifted restriction).
        assert!(stats.column(0).histogram.is_some());
    }
}
