//! Order properties over executable plans: delivered-order derivation,
//! minimal sort-key reduction, and redundant-Sort elimination.
//!
//! The memo claims orders during search (`orcalite`'s physical properties),
//! but this pass is what makes elimination *safe*: it re-derives, bottom-up
//! over the refined executor plan, the order each node actually delivers —
//! independently of anything the optimizer believed — and drops a `Sort`
//! only under the **stable-sort identity rule**:
//!
//! > a stable sort whose keys (expression, direction, NULLS placement) are
//! > a prefix of the input's delivered order is the identity function.
//!
//! Because the engine's `Sort` is a stable sort (`slice::sort_by` over the
//! shared comparator in `taurus_executor::ordering`), a dropped enforcer
//! changes *no bytes* of the output — not even tie-row order or float
//! accumulation order downstream. That is why the `order_opt` knob can
//! guarantee byte-identical results against always-enforce plans at any
//! dop: the two plans differ only by identity transforms.
//!
//! Delivered orders derive from executor facts (each documented at its
//! match arm): the B-tree index iterates `(key columns ascending via
//! `total_cmp`, then insertion order)`, hash joins emit probe-side order,
//! nested loops preserve the outer side, aggregates emit groups in
//! first-seen order, and `Gather` concatenates morsels in scan order.

use taurus_catalog::Catalog;
use taurus_common::{BinOp, Expr};
use taurus_executor::{JoinKind, Plan, SortKey};

/// Keys proven constant at a block's sort nodes: any expression equated to
/// a literal or parameter by a WHERE-conjunct (`a = 5`, `a = ?`), in either
/// position. Literals and parameters themselves are constant trivially.
pub fn constant_exprs(predicates: &[Expr]) -> Vec<Expr> {
    let mut consts = Vec::new();
    for p in predicates {
        if let Expr::Binary { op: BinOp::Eq, left, right } = p {
            match (is_const(left), is_const(right)) {
                (false, true) => consts.push(left.as_ref().clone()),
                (true, false) => consts.push(right.as_ref().clone()),
                _ => {}
            }
        }
    }
    consts
}

fn is_const(e: &Expr) -> bool {
    matches!(e, Expr::Literal(_) | Expr::Param { .. })
}

/// Reduce an ORDER BY list to its minimal sort key: drop constant keys
/// (literals, parameters, and anything `constant_exprs` proved equal on
/// every row) and duplicate keys (a repeated expression can never break a
/// tie the first occurrence left). Equivalent orders thus compare equal
/// before any order matching. Identity-preserving on a stable sort: every
/// dropped key compares `Equal` on every row pair, so the comparator's
/// verdicts — and therefore the output bytes — are unchanged.
pub fn reduce_order_keys(keys: &[(Expr, bool)], consts: &[Expr]) -> Vec<(Expr, bool)> {
    let mut out: Vec<(Expr, bool)> = Vec::with_capacity(keys.len());
    for (e, desc) in keys {
        if is_const(e) || consts.contains(e) {
            continue;
        }
        // Direction is irrelevant for duplicates: within ties of the first
        // occurrence the repeated key is equal either way.
        if out.iter().any(|(seen, _)| seen == e) {
            continue;
        }
        out.push((e.clone(), *desc));
    }
    out
}

/// The order a plan node delivers, bottom-up, as sort keys valid in the
/// node's own row space. Conservative: an empty vector means "no order
/// proven", never "unordered is fine".
///
/// `consts` carries the block's proven-constant expressions: a delivered
/// key that is constant compares `Equal` on every row pair, so the
/// re-addressing arms (projection, aggregation, derived) may *skip* it
/// instead of breaking the order chain — that is what lets
/// `WHERE a = 5 ORDER BY a, b` match an `(a, b)` index through a
/// projection that only exposes `b`.
pub fn delivered_order(plan: &Plan, catalog: &Catalog, consts: &[Expr]) -> Vec<SortKey> {
    match plan {
        // Heap order is insertion order — deterministic, but not a key order.
        Plan::TableScan { .. } => Vec::new(),
        // A full index scan iterates the B-tree: key columns ascending
        // (NULLs first under `total_cmp`), ties in insertion order — i.e. a
        // stable sort of the heap by every index column ascending.
        Plan::IndexScan { table, qt, index, .. } => index_order(catalog, *table, *qt, *index),
        // A range scan iterates the same B-tree over a key subrange: the
        // delivered order is the full index column list, identically.
        Plan::IndexRange { table, qt, index, .. } => index_order(catalog, *table, *qt, *index),
        // One point lookup per (re)opening; rows share the looked-up key
        // prefix and arrive in insertion order — nothing worth claiming.
        Plan::IndexLookup { .. } => Vec::new(),
        // Filters drop rows in place; limits truncate; materialization
        // buffers and replays — all order-preserving.
        Plan::Filter { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Materialize { input, .. } => delivered_order(input, catalog, consts),
        // A projection re-addresses rows into slot space: keep the prefix of
        // the input's order whose expressions the output still exposes;
        // constant keys are skipped rather than chain-breaking.
        Plan::Project { input, exprs, .. } => {
            let mut out = Vec::new();
            for k in delivered_order(input, catalog, consts) {
                if consts.contains(&k.expr) {
                    continue;
                }
                match exprs.iter().position(|e| *e == k.expr) {
                    Some(pos) => out.push(SortKey { expr: Expr::Slot(pos), desc: k.desc }),
                    None => break,
                }
            }
            out
        }
        // Derived re-homes slot `i` of the inner block as column `i` of
        // query table `qt`; the inner order survives the renaming. (The
        // outer block's constants are in its own column space and cannot
        // match inner slots, so no skip applies here.)
        Plan::Derived { input, qt, .. } => {
            let mut out = Vec::new();
            for k in delivered_order(input, catalog, &[]) {
                match k.expr {
                    Expr::Slot(i) => out.push(SortKey { expr: Expr::col(*qt, i), desc: k.desc }),
                    _ => break,
                }
            }
            out
        }
        // A stable sort delivers its keys, then — within ties — whatever
        // order its input already had.
        Plan::Sort { input, keys, .. } => {
            let mut out = keys.clone();
            for k in delivered_order(input, catalog, consts) {
                if out.iter().all(|o| o.expr != k.expr) {
                    out.push(k);
                }
            }
            out
        }
        // Both aggregate strategies emit groups in first-seen order, so the
        // prefix of the input's order made of grouping expressions carries
        // over (every row of a group is equal on it); output addressing is
        // `Slot(i)` for `group_by[i]`. Scalar aggregation (no GROUP BY)
        // emits one row — no order worth claiming.
        Plan::Aggregate { input, group_by, .. } => {
            let mut out = Vec::new();
            for k in delivered_order(input, catalog, consts) {
                if consts.contains(&k.expr) {
                    continue;
                }
                match group_by.iter().position(|g| *g == k.expr) {
                    Some(i) => out.push(SortKey { expr: Expr::Slot(i), desc: k.desc }),
                    None => break,
                }
            }
            out
        }
        // A hash join streams probe rows in order; every emitted row copies
        // its probe row's values, so probe-side order survives (rows from
        // one probe row tie on every probe expression). Build side: LEFT for
        // inner joins (MySQL's convention), right otherwise — for semi/anti/
        // outer joins the probe is the left side, which is also the output
        // space.
        Plan::HashJoin { kind, build_left, left, right, .. } => {
            let probe: &Plan = match kind {
                JoinKind::Inner if *build_left => right,
                _ => left,
            };
            delivered_order(probe, catalog, consts)
        }
        // Nested loops iterate the outer (left) side in order; inner
        // matches nest within each outer row.
        Plan::NestedLoop { left, .. } => delivered_order(left, catalog, consts),
        Plan::Union { inputs, .. } => {
            match inputs.as_slice() {
                // UNION DISTINCT over one input dedups first-seen, in order.
                [one] => delivered_order(one, catalog, consts),
                // The IN-list expansion: same-index point lookups with
                // strictly ascending constant keys, concatenated — sorted by
                // the index's leading column (ties are per-lookup insertion
                // order, i.e. a stable sort of the combined rows).
                many => in_list_union_order(many, catalog),
            }
        }
        // Exchanges only exist after parallel placement; this pass runs on
        // serial plans, so claim nothing rather than reason about them.
        Plan::Exchange { .. } => Vec::new(),
    }
}

fn index_order(
    catalog: &Catalog,
    table: taurus_common::TableId,
    qt: usize,
    ix: usize,
) -> Vec<SortKey> {
    let Ok(t) = catalog.table(table) else { return Vec::new() };
    let Some(index) = t.indexes.get(ix) else { return Vec::new() };
    index
        .def()
        .columns
        .iter()
        .map(|&col| SortKey { expr: Expr::col(qt, col), desc: false })
        .collect()
}

/// Delivered order of a `Union` of same-index `IndexLookup`s with strictly
/// ascending single-column constant keys (the cost-based IN-list rewrite's
/// shape): the index's leading column, ascending.
fn in_list_union_order(inputs: &[Plan], catalog: &Catalog) -> Vec<SortKey> {
    let mut sig: Option<(taurus_common::TableId, usize, usize)> = None;
    let mut prev: Option<taurus_common::Value> = None;
    for p in inputs {
        let Plan::IndexLookup { table, qt, index, keys, .. } = p else { return Vec::new() };
        match sig {
            None => sig = Some((*table, *qt, *index)),
            Some(s) if s == (*table, *qt, *index) => {}
            _ => return Vec::new(),
        }
        let [Expr::Literal(v)] = keys.as_slice() else { return Vec::new() };
        if let Some(pv) = &prev {
            if pv.total_cmp(v) != std::cmp::Ordering::Less {
                return Vec::new();
            }
        }
        prev = Some(v.clone());
    }
    let Some((table, qt, ix)) = sig else { return Vec::new() };
    let Ok(t) = catalog.table(table) else { return Vec::new() };
    let Some(index) = t.indexes.get(ix) else { return Vec::new() };
    match index.def().columns.first() {
        Some(&col) => vec![SortKey { expr: Expr::col(qt, col), desc: false }],
        None => Vec::new(),
    }
}

/// Whether a `Sort` with `keys` is the identity over an input delivering
/// `delivered`: each key must match the delivered key at the same rank
/// (expression and direction — NULLS placement follows direction under the
/// shared comparator, so it matches by construction). Delivered keys proven
/// constant are skipped — they compare `Equal` on every surviving row pair
/// and cannot affect the sort — and constant sort keys never occur here
/// (`reduce_order_keys` removed them).
pub fn sort_is_redundant(keys: &[SortKey], delivered: &[SortKey], consts: &[Expr]) -> bool {
    let mut d = delivered.iter().filter(|k| !consts.contains(&k.expr));
    keys.iter().all(|k| match d.next() {
        Some(del) => del.expr == k.expr && del.desc == k.desc,
        None => false,
    })
}

/// Drop every `Sort` node whose input already delivers its keys (per the
/// stable-sort identity rule). Operates on one block's plan: recursion
/// stops at `Derived` boundaries, whose inner blocks ran their own pass
/// with their own constant set. Returns the number of sorts eliminated.
pub fn eliminate_redundant_sorts(plan: &mut Plan, catalog: &Catalog, consts: &[Expr]) -> usize {
    let mut dropped = 0;
    // Children first, so a Sort sees its input's final (post-elimination)
    // shape — elimination only ever *extends* delivered orders upward.
    if !matches!(plan, Plan::Derived { .. }) {
        for c in plan.children_mut() {
            dropped += eliminate_redundant_sorts(c, catalog, consts);
        }
    }
    if let Plan::Sort { input, keys, .. } = plan {
        if sort_is_redundant(keys, &delivered_order(input, catalog, consts), consts) {
            let inner = std::mem::replace(input.as_mut(), placeholder());
            *plan = inner;
            dropped += 1;
        }
    }
    dropped
}

fn placeholder() -> Plan {
    Plan::Union { inputs: Vec::new(), distinct: false, est: taurus_executor::Est::default() }
}

/// Count `Sort` nodes in a plan — the harness `orders` gate's before/after
/// measure of enforcer pressure.
pub fn count_sorts(plan: &Plan) -> usize {
    let mut n = usize::from(matches!(plan, Plan::Sort { .. }));
    for c in plan.children() {
        n += count_sorts(c);
    }
    n
}

/// Render an order as EXPLAIN text: `c0.1, c0.2 DESC (nulls last)`.
pub fn describe_order(keys: &[SortKey]) -> String {
    keys.iter()
        .map(|k| {
            let dir = if k.desc { " DESC (nulls last)" } else { "" };
            format!("{}{dir}", k.expr)
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// The constant set a block's sort nodes may assume, from its WHERE
/// conjuncts.
pub fn block_constants(block: &crate::bound::BoundQuery) -> Vec<Expr> {
    constant_exprs(&block.predicates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::Value;

    fn lit(i: i64) -> Expr {
        Expr::Literal(Value::Int(i))
    }

    #[test]
    fn order_reduction_drops_constant_and_duplicate_keys() {
        // WHERE a = 5 ORDER BY a, b, a DESC, 3  →  ORDER BY b
        let a = Expr::col(0, 0);
        let b = Expr::col(0, 1);
        let consts = constant_exprs(&[Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(a.clone()),
            right: Box::new(lit(5)),
        }]);
        let reduced = reduce_order_keys(
            &[(a.clone(), false), (b.clone(), false), (a.clone(), true), (lit(3), false)],
            &consts,
        );
        assert_eq!(reduced, vec![(b, false)]);
    }

    #[test]
    fn constant_detection_is_direction_agnostic() {
        let a = Expr::col(0, 0);
        let flipped =
            Expr::Binary { op: BinOp::Eq, left: Box::new(lit(7)), right: Box::new(a.clone()) };
        assert_eq!(constant_exprs(&[flipped]), vec![a]);
        // col = col equates nothing to a constant.
        let cc = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::col(0, 0)),
            right: Box::new(Expr::col(0, 1)),
        };
        assert!(constant_exprs(&[cc]).is_empty());
    }

    #[test]
    fn redundancy_matches_prefixes_and_skips_constant_delivered_keys() {
        let a = || SortKey { expr: Expr::col(0, 0), desc: false };
        let b = || SortKey { expr: Expr::col(0, 1), desc: false };
        let delivered = vec![a(), b()];
        assert!(sort_is_redundant(&[a()], &delivered, &[]), "prefix is identity");
        assert!(!sort_is_redundant(&[b()], &delivered, &[]), "b alone is not a prefix");
        // With a proven constant, the delivered `a` is skippable and `b`
        // becomes the effective leading key.
        assert!(sort_is_redundant(&[b()], &delivered, &[Expr::col(0, 0)]));
        // Direction mismatch is never redundant.
        let a_desc = SortKey { expr: Expr::col(0, 0), desc: true };
        assert!(!sort_is_redundant(&[a_desc], &delivered, &[]));
    }
}
