//! Batch kernels: compiled predicates over column vectors, and the
//! needed-column analysis that lets scans skip transposing columns no
//! ancestor reads.
//!
//! Every kernel mirrors the row path's semantics exactly — comparisons go
//! through the same `Value::sql_cmp` truth table (NULL ⇒ UNKNOWN ⇒ row
//! filtered, mixed numerics coerce to f64, incomparable types are UNKNOWN),
//! and anything outside the compiled fast paths drops to the row path's own
//! expression interpreter over a scratch row. That equivalence-by-
//! construction is what the row-vs-batch fuzzer oracle checks end to end.

use std::cmp::Ordering;

use taurus_common::error::Result;
use taurus_common::expr::UnOp;
use taurus_common::{BinOp, Expr, Value};

use crate::exec::Env;
use crate::plan::RowSpace;

use super::{Batch, Col};

/// One compiled conjunct of a filter.
pub(crate) enum Pred<'e> {
    /// `col <op> constant` (or the mirrored form) with a comparison
    /// operator: runs as a typed per-column loop.
    CmpConst { col: usize, op: BinOp, lit: &'e Value },
    /// `col IS [NOT] NULL`: a validity-bitmap scan.
    IsNull { col: usize, negated: bool },
    /// Everything else: evaluated per row by the expression interpreter,
    /// exactly as the row path would.
    General(&'e Expr),
}

/// Resolve an expression to a position in the operator's own row, when it
/// is a direct column/slot reference.
pub(crate) fn col_of(e: &Expr, space: &RowSpace) -> Option<usize> {
    match (e, space) {
        (Expr::Column(cr), RowSpace::Tables(l)) => l.slot(cr.table, cr.col),
        (Expr::Slot(i), RowSpace::Slots(w)) => (*i < *w).then_some(*i),
        _ => None,
    }
}

fn lit_of(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) => Some(v),
        Expr::Param { value, .. } => Some(value),
        _ => None,
    }
}

/// Compile one conjunct against the operator's row space.
pub(crate) fn compile_pred<'e>(e: &'e Expr, space: &RowSpace) -> Pred<'e> {
    match e {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            if let (Some(col), Some(lit)) = (col_of(left, space), lit_of(right)) {
                return Pred::CmpConst { col, op: *op, lit };
            }
            // `lit op col` commutes to `col op' lit`.
            if let (Some(lit), Some(col)) = (lit_of(left), col_of(right, space)) {
                if let Some(op) = op.commutator() {
                    return Pred::CmpConst { col, op, lit };
                }
            }
            Pred::General(e)
        }
        Expr::Unary { op: UnOp::IsNull, input } => match col_of(input, space) {
            Some(col) => Pred::IsNull { col, negated: false },
            None => Pred::General(e),
        },
        Expr::Unary { op: UnOp::IsNotNull, input } => match col_of(input, space) {
            Some(col) => Pred::IsNull { col, negated: true },
            None => Pred::General(e),
        },
        _ => Pred::General(e),
    }
}

/// Whether a comparison outcome lets a row through. `None` (either side
/// NULL, incomparable types, NaN) is UNKNOWN and never passes — the same
/// rule as `Value::is_true` over a comparison result.
#[inline]
pub(crate) fn cmp_holds(ord: Option<Ordering>, op: BinOp) -> bool {
    let Some(o) = ord else { return false };
    match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::Ne => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::Le => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::Ge => o != Ordering::Less,
        _ => false,
    }
}

/// Evaluate one compiled conjunct against a materialized row (the scan
/// prefilter path: predicates run on borrowed heap rows *before* survivors
/// are transposed into columns).
#[inline]
pub(crate) fn pred_passes_row(pred: &Pred<'_>, row: &[Value], env: &Env) -> Result<bool> {
    match pred {
        Pred::CmpConst { col, op, lit } => Ok(cmp_holds(row[*col].sql_cmp(lit), *op)),
        Pred::IsNull { col, negated } => Ok(row[*col].is_null() != *negated),
        Pred::General(e) => Ok(env.eval(e, row)?.is_true()),
    }
}

/// Refine a batch's selection vector by one compiled conjunct. Typed
/// columns run hoisted per-column loops; everything else goes through the
/// generic `sql_cmp` on materialized values.
pub(crate) fn refine(
    batch: &mut Batch,
    pred: &Pred<'_>,
    env: &Env,
    scratch: &mut Vec<Value>,
) -> Result<()> {
    let n = batch.num_rows();
    let mut out: Vec<u32> = Vec::with_capacity(n);
    {
        // Logical-row iteration: either the current selection or 0..len.
        let sel = batch.sel.as_deref();
        let phys = |i: usize| -> usize {
            match sel {
                Some(s) => s[i] as usize,
                None => i,
            }
        };
        match pred {
            Pred::CmpConst { col, op, lit } => {
                refine_cmp(&batch.cols[*col], *op, lit, n, phys, &mut out);
            }
            Pred::IsNull { col, negated } => {
                let c = &batch.cols[*col];
                for i in 0..n {
                    let p = phys(i);
                    if c.is_null(p) != *negated {
                        out.push(p as u32);
                    }
                }
            }
            Pred::General(e) => {
                for i in 0..n {
                    let p = phys(i);
                    batch.write_row(p, scratch);
                    if env.eval(e, scratch)?.is_true() {
                        out.push(p as u32);
                    }
                }
            }
        }
    }
    batch.sel = Some(out);
    Ok(())
}

/// The typed comparison loops. Each arm hoists the constant and the column
/// vector once, then runs a branch-light loop over the selection.
fn refine_cmp(
    c: &Col,
    op: BinOp,
    lit: &Value,
    n: usize,
    phys: impl Fn(usize) -> usize,
    out: &mut Vec<u32>,
) {
    // A NULL constant makes every comparison UNKNOWN: nothing passes.
    if lit.is_null() {
        return;
    }
    match (c, lit) {
        (Col::Int { data, valid }, Value::Int(b)) => {
            let b = *b;
            for i in 0..n {
                let p = phys(i);
                if valid.get(p) && cmp_holds(Some(data[p].cmp(&b)), op) {
                    out.push(p as u32);
                }
            }
        }
        // Mixed numerics coerce to f64, mirroring sql_cmp's fallback arm.
        (Col::Int { data, valid }, _) if lit.as_f64().is_some() => {
            let b = lit.as_f64().unwrap_or(0.0);
            for i in 0..n {
                let p = phys(i);
                if valid.get(p) && cmp_holds((data[p] as f64).partial_cmp(&b), op) {
                    out.push(p as u32);
                }
            }
        }
        (Col::Double { data, valid }, _) if lit.as_f64().is_some() => {
            let b = lit.as_f64().unwrap_or(0.0);
            for i in 0..n {
                let p = phys(i);
                if valid.get(p) && cmp_holds(data[p].partial_cmp(&b), op) {
                    out.push(p as u32);
                }
            }
        }
        (Col::Date { data, valid }, Value::Date(b)) => {
            let b = *b;
            for i in 0..n {
                let p = phys(i);
                if valid.get(p) && cmp_holds(Some(data[p].cmp(&b)), op) {
                    out.push(p as u32);
                }
            }
        }
        (Col::Str { data, valid }, Value::Str(b)) => {
            let b = b.as_ref();
            for i in 0..n {
                let p = phys(i);
                if valid.get(p) && cmp_holds(Some(data[p].as_ref().cmp(b)), op) {
                    out.push(p as u32);
                }
            }
        }
        // Anything else — Vals columns, cross-type pairs like Str-vs-Int or
        // Date-vs-Int — materializes per value and asks sql_cmp itself.
        _ => {
            for i in 0..n {
                let p = phys(i);
                if cmp_holds(c.value(p).sql_cmp(lit), op) {
                    out.push(p as u32);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Needed-column analysis
// ---------------------------------------------------------------------

/// Collect every row position `exprs` reads into `mask` (sized to the
/// space's width). Returns `false` — meaning "could not prove the read
/// set, do not prune" — on any reference the space cannot resolve.
pub(crate) fn collect_refs(exprs: &[&Expr], space: &RowSpace, mask: &mut [bool]) -> bool {
    exprs.iter().all(|e| collect_expr(e, space, mask))
}

fn collect_expr(e: &Expr, space: &RowSpace, mask: &mut [bool]) -> bool {
    match e {
        Expr::Column(_) | Expr::Slot(_) => match col_of(e, space) {
            Some(i) => {
                mask[i] = true;
                true
            }
            None => false,
        },
        Expr::Literal(_) | Expr::Param { .. } => true,
        Expr::Binary { left, right, .. } => {
            collect_expr(left, space, mask) && collect_expr(right, space, mask)
        }
        Expr::Unary { input, .. } => collect_expr(input, space, mask),
        Expr::Func { args, .. } => args.iter().all(|a| collect_expr(a, space, mask)),
        Expr::Case { operand, branches, else_ } => {
            operand.as_deref().is_none_or(|o| collect_expr(o, space, mask))
                && branches
                    .iter()
                    .all(|(c, r)| collect_expr(c, space, mask) && collect_expr(r, space, mask))
                && else_.as_deref().is_none_or(|o| collect_expr(o, space, mask))
        }
        Expr::InList { expr, list, .. } => {
            collect_expr(expr, space, mask) && list.iter().all(|i| collect_expr(i, space, mask))
        }
        Expr::Like { expr, pattern, .. } => {
            collect_expr(expr, space, mask) && collect_expr(pattern, space, mask)
        }
        Expr::Between { expr, low, high, .. } => {
            collect_expr(expr, space, mask)
                && collect_expr(low, space, mask)
                && collect_expr(high, space, mask)
        }
        Expr::Agg { arg, .. } => arg.as_deref().is_none_or(|a| collect_expr(a, space, mask)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::rows_to_batch;
    use crate::exec::{Binding, Env};
    use taurus_common::{Layout, Row};

    fn table_space() -> RowSpace {
        RowSpace::Tables(Layout::single(1, 0, 2))
    }

    fn env_for(space: &RowSpace) -> Env {
        let layout = Layout::empty(1);
        let row: Vec<Value> = Vec::new();
        Env::new(Binding { row: &row, layout: &layout }, space, 1)
    }

    fn sample() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Null, Value::str("b")],
            vec![Value::Int(3), Value::Null],
            vec![Value::Int(4), Value::str("d")],
        ]
    }

    fn selected(batch: &Batch) -> Vec<usize> {
        (0..batch.num_rows()).map(|i| batch.phys(i)).collect()
    }

    #[test]
    fn typed_cmp_refine_excludes_nulls() {
        let space = table_space();
        let env = env_for(&space);
        let mut batch = rows_to_batch(&sample(), 2);
        let e = Expr::binary(BinOp::Ge, Expr::col(0, 0), Expr::int(3));
        let pred = compile_pred(&e, &space);
        assert!(matches!(pred, Pred::CmpConst { col: 0, op: BinOp::Ge, .. }));
        refine(&mut batch, &pred, &env, &mut Vec::new()).unwrap();
        assert_eq!(selected(&batch), vec![2, 3], "NULL at row 1 is UNKNOWN, filtered");
    }

    #[test]
    fn mirrored_literal_comparison_commutes() {
        let space = table_space();
        let env = env_for(&space);
        let mut batch = rows_to_batch(&sample(), 2);
        // 3 > col ≡ col < 3.
        let e = Expr::binary(BinOp::Gt, Expr::int(3), Expr::col(0, 0));
        let pred = compile_pred(&e, &space);
        assert!(matches!(pred, Pred::CmpConst { col: 0, op: BinOp::Lt, .. }));
        refine(&mut batch, &pred, &env, &mut Vec::new()).unwrap();
        assert_eq!(selected(&batch), vec![0]);
    }

    #[test]
    fn mixed_int_double_comparison_coerces() {
        let space = table_space();
        let env = env_for(&space);
        let mut batch = rows_to_batch(&sample(), 2);
        let e = Expr::binary(BinOp::Gt, Expr::col(0, 0), Expr::lit(Value::Double(2.5)));
        let pred = compile_pred(&e, &space);
        refine(&mut batch, &pred, &env, &mut Vec::new()).unwrap();
        assert_eq!(selected(&batch), vec![2, 3]);
    }

    #[test]
    fn is_null_scans_validity() {
        let space = table_space();
        let env = env_for(&space);
        let mut batch = rows_to_batch(&sample(), 2);
        let e = Expr::Unary { op: UnOp::IsNull, input: Box::new(Expr::col(0, 1)) };
        let pred = compile_pred(&e, &space);
        refine(&mut batch, &pred, &env, &mut Vec::new()).unwrap();
        assert_eq!(selected(&batch), vec![2]);
    }

    #[test]
    fn refine_composes_over_existing_selection() {
        let space = table_space();
        let env = env_for(&space);
        let mut batch = rows_to_batch(&sample(), 2);
        batch.sel = Some(vec![0, 2, 3]);
        let e = Expr::binary(BinOp::Le, Expr::col(0, 0), Expr::int(3));
        let pred = compile_pred(&e, &space);
        refine(&mut batch, &pred, &env, &mut Vec::new()).unwrap();
        assert_eq!(selected(&batch), vec![0, 2]);
    }

    #[test]
    fn null_literal_filters_everything() {
        let space = table_space();
        let env = env_for(&space);
        let mut batch = rows_to_batch(&sample(), 2);
        let e = Expr::binary(BinOp::Eq, Expr::col(0, 0), Expr::lit(Value::Null));
        let pred = compile_pred(&e, &space);
        refine(&mut batch, &pred, &env, &mut Vec::new()).unwrap();
        assert_eq!(batch.num_rows(), 0);
    }

    #[test]
    fn general_predicate_matches_interpreter() {
        let space = table_space();
        let env = env_for(&space);
        let mut batch = rows_to_batch(&sample(), 2);
        // col0 + 1 >= 4 is not a compiled shape: scratch-row fallback.
        let e = Expr::binary(
            BinOp::Ge,
            Expr::binary(BinOp::Add, Expr::col(0, 0), Expr::int(1)),
            Expr::int(4),
        );
        let pred = compile_pred(&e, &space);
        assert!(matches!(pred, Pred::General(_)));
        refine(&mut batch, &pred, &env, &mut Vec::new()).unwrap();
        assert_eq!(selected(&batch), vec![2, 3]);
    }

    #[test]
    fn collect_refs_finds_read_set() {
        let space = table_space();
        let mut mask = vec![false; 2];
        let e = Expr::binary(BinOp::Gt, Expr::col(0, 1), Expr::int(3));
        assert!(collect_refs(&[&e], &space, &mut mask));
        assert_eq!(mask, vec![false, true]);
        // A reference outside the space refuses to prune.
        let bad = Expr::col(7, 0);
        assert!(!collect_refs(&[&bad], &space, &mut [false; 2]));
    }
}
