//! MySQL-style cost-based optimization (the phase Orca replaces, Fig 2).
//!
//! Reproduces the MySQL optimizer's documented behaviour — including the
//! limitations §1 of the paper enumerates:
//!
//! 1. only left-deep join trees;
//! 2. greedy join-order selection (no optimality guarantee);
//! 3. no OR refactoring;
//! 4. no aggregation pushdown (aggregation always after all joins);
//! 5. limited predicate pushdown through GROUP BY.
//!
//! Join methods are chosen *non-cost-based*, as §3.1 observes: an index
//! nested-loop join is used whenever an index lookup is possible, a hash
//! join only when an equi-join exists with no usable index, and a
//! materialized nested-loop scan otherwise.

use crate::bound::{BoundQuery, BoundStatement, JoinEntry, TableSource};
use crate::skeleton::{AccessChoice, JoinMethod, SkelLeaf, SkelNode, Skeleton};
use std::collections::BTreeSet;
use taurus_catalog::estimate::{Estimator, RelView};
use taurus_catalog::{CardOverrides, Catalog};
use taurus_common::error::{Error, Result};
use taurus_common::{BinOp, Expr};

/// Cost-model constants, roughly calibrated to MySQL's server cost model
/// (sequential row ~1, random index dive ~2, hash overheads ~1-2).
pub mod cost {
    pub const SCAN_PER_ROW: f64 = 1.0;
    pub const RANGE_PER_ROW: f64 = 2.0;
    pub const LOOKUP_BASE: f64 = 2.0;
    pub const LOOKUP_PER_ROW: f64 = 1.5;
    pub const HASH_BUILD_PER_ROW: f64 = 1.5;
    pub const HASH_PROBE_PER_ROW: f64 = 1.0;
    pub const OUTPUT_PER_ROW: f64 = 0.1;
    /// One buffered nested-loop pair evaluation.
    pub const NL_PAIR: f64 = 1.0;
}

/// Entry point: optimize every block of the statement (derived tables
/// bottom-up) into a skeleton plan.
pub fn optimize_statement(catalog: &Catalog, bound: &BoundStatement) -> Result<Skeleton> {
    let ctx = PlanCtx { catalog, bound, fb: None };
    ctx.optimize_block(&bound.root, &BTreeSet::new())
}

/// [`optimize_statement`] with observed-cardinality overrides from a prior
/// execution (feedback-driven re-optimization): exact-set observations
/// replace estimates at leaves, join prefixes, and grouped-aggregate
/// outputs of derived tables.
pub fn optimize_statement_feedback(
    catalog: &Catalog,
    bound: &BoundStatement,
    fb: &CardOverrides,
) -> Result<Skeleton> {
    let ctx = PlanCtx { catalog, bound, fb: Some(fb) };
    ctx.optimize_block(&bound.root, &BTreeSet::new())
}

/// A derived table's *output* row estimate: the inner block's join-root
/// estimate adjusted for what refinement stacks on top. A scalar aggregate
/// collapses to exactly one row, a grouped aggregate to the usual
/// one-in-ten group guess, and a LIMIT caps the output. Without this, a
/// derived table wrapping `SELECT COUNT(*) ...` carries its input's
/// cardinality and every join above it multiplies the error (the TPC-DS Q9
/// shape: fifteen stacked one-row derived tables estimated at ~70 rows
/// each compound to a 10^28 q-error). Shared with the bridge so the Orca
/// detour sees the same numbers.
pub fn derived_output_rows(block: &BoundQuery, join_rows: f64) -> f64 {
    derived_output_rows_fb(block, join_rows, None)
}

/// [`derived_output_rows`] consulting feedback overrides first: an observed
/// grouped-aggregate output over the block's member set replaces the
/// one-in-ten group guess — the guess that compounds into the worst
/// q-errors when group counts are data-dependent.
pub fn derived_output_rows_fb(
    block: &BoundQuery,
    join_rows: f64,
    fb: Option<&CardOverrides>,
) -> f64 {
    let mut rows = join_rows;
    if block.has_aggregation() {
        let qts: BTreeSet<usize> = block.member_qts().into_iter().collect();
        rows = match fb.and_then(|f| f.agg(&qts)) {
            Some(observed) => observed.max(1.0),
            None if block.group_by.is_empty() => 1.0,
            None => (rows * 0.1).max(1.0),
        };
    }
    if let Some(n) = block.limit {
        rows = rows.min(n as f64);
    }
    rows
}

/// Build the estimator for a statement: base tables get analyzed stats,
/// derived tables are opaque until their skeletons are known. Shared with
/// the bridge (Orca consumes the same statistics, §8).
pub fn statement_estimator(catalog: &Catalog, bound: &BoundStatement) -> Estimator {
    let rels = bound
        .tables
        .iter()
        .map(|meta| match &meta.source {
            TableSource::Base { id } => {
                let t = catalog.table(*id).ok()?;
                Some(match &t.stats {
                    Some(s) => RelView::from_stats(s),
                    None => RelView::opaque(t.num_rows() as f64, meta.width()),
                })
            }
            TableSource::Derived { .. } => None,
        })
        .collect();
    Estimator::new(rels)
}

struct PlanCtx<'a> {
    catalog: &'a Catalog,
    bound: &'a BoundStatement,
    /// Observed cardinalities from a prior execution of this statement
    /// (feedback-driven re-optimization); `None` for first compiles.
    fb: Option<&'a CardOverrides>,
}

/// Per-member planning info computed up front.
struct MemberInfo {
    /// Index into `block.members`.
    mi: usize,
    qt: usize,
    /// Conjuncts local to this table (given outer-bound tables).
    local_preds: Vec<Expr>,
    /// Rows after local predicates.
    filtered_rows: f64,
    /// Best independent access (scan or range), with its cost.
    access: AccessChoice,
    access_cost: f64,
    /// Skeleton for derived members.
    correlated: bool,
}

impl<'a> PlanCtx<'a> {
    fn optimize_block(&self, block: &BoundQuery, outer: &BTreeSet<usize>) -> Result<Skeleton> {
        if block.members.is_empty() {
            return Err(Error::semantic("SELECT without FROM is not supported"));
        }
        // Tables visible as parameters inside this block.
        let mut inner_outer: BTreeSet<usize> = outer.clone();
        inner_outer.extend(block.member_qts());

        let mut est = statement_estimator(self.catalog, self.bound);
        // Gather per-member info (recursively planning derived members).
        let mut infos: Vec<MemberInfo> = Vec::with_capacity(block.members.len());
        for (mi, m) in block.members.iter().enumerate() {
            let meta = self.bound.table(m.qt);
            // Local predicates: WHERE conjuncts + own-ON conjuncts that
            // touch only this table (plus outer parameters). WHERE
            // conjuncts on a left join's nullable side run above the join
            // (refine keeps them post-join), so only ON conjuncts count as
            // local there — the estimate must match the placement.
            let mut local: Vec<Expr> = Vec::new();
            let usable = |e: &Expr| {
                e.referenced_tables().iter().all(|t| *t == m.qt || outer.contains(t))
                    && e.referenced_tables().contains(&m.qt)
            };
            let wheres: &[Expr] = if m.entry.is_inner() { &block.predicates } else { &[] };
            for p in wheres.iter().chain(m.entry.on()) {
                if usable(p) {
                    local.push(p.clone());
                }
            }
            let (access, base_rows, access_cost, correlated) = match &meta.source {
                TableSource::Base { id } => {
                    let t = self.catalog.table(*id)?;
                    let n = t.num_rows() as f64;
                    let (access, cost) = self.choose_access(*id, m.qt, &local, n, &est);
                    (access, n, cost, false)
                }
                TableSource::Derived { query, correlated, .. } => {
                    let sk = self.optimize_block(query, &inner_outer)?;
                    // An observed cardinality for the derived table itself
                    // (its own qt) beats the derived-output estimate — it
                    // already includes the inner block's HAVING and LIMIT.
                    let rows = self
                        .fb
                        .and_then(|f| f.rel_singleton(m.qt))
                        .map(|r| r.max(1.0))
                        .unwrap_or_else(|| derived_output_rows_fb(query, sk.root.rows(), self.fb));
                    let cost = sk.root.cost();
                    (AccessChoice::Derived { skeleton: Box::new(sk) }, rows, cost, *correlated)
                }
            };
            let sel = est.conjunct_selectivity(&local, base_rows);
            // An observed post-filter cardinality beats any estimate.
            let filtered = match self.fb.and_then(|f| f.rel_singleton(m.qt)) {
                Some(observed) => observed.max(0.01),
                None => (base_rows * sel).max(0.01),
            };
            infos.push(MemberInfo {
                mi,
                qt: m.qt,
                local_preds: local,
                filtered_rows: filtered,
                access,
                access_cost,
                correlated,
            });
            // Register the derived table's row estimate for join math.
            if matches!(meta.source, TableSource::Derived { .. }) {
                est = self.with_derived_rows(&est, m.qt, base_rows, meta.width());
            }
        }

        self.greedy_join_order(block, outer, &est, infos)
    }

    /// Patch an estimator with a derived table's row estimate.
    fn with_derived_rows(&self, est: &Estimator, qt: usize, rows: f64, width: usize) -> Estimator {
        // Estimator is cheap to rebuild: clone views.
        let mut rels: Vec<Option<RelView>> = (0..self.bound.num_tables())
            .map(|t| {
                if t == qt {
                    Some(RelView::opaque(rows, width))
                } else {
                    // Re-derive from the current estimator.
                    Some(RelView::opaque(est.rows(t), self.bound.table(t).width()))
                }
            })
            .collect();
        // Base tables keep their full views (histograms) — rebuild those.
        for (t, meta) in self.bound.tables.iter().enumerate() {
            if t == qt {
                continue;
            }
            if let TableSource::Base { id } = &meta.source {
                if let Ok(tab) = self.catalog.table(*id) {
                    if let Some(s) = &tab.stats {
                        rels[t] = Some(RelView::from_stats(s));
                    }
                }
            }
        }
        Estimator::new(rels)
    }

    /// Pick the cheapest independent access path for a base table: full
    /// scan, or an index range over a constant-bounded leading column.
    fn choose_access(
        &self,
        id: taurus_common::TableId,
        qt: usize,
        local: &[Expr],
        n: f64,
        est: &Estimator,
    ) -> (AccessChoice, f64) {
        let mut best = (AccessChoice::TableScan, n * cost::SCAN_PER_ROW);
        let table = match self.catalog.table(id) {
            Ok(t) => t,
            Err(_) => return best,
        };
        for (ix_pos, ix) in table.indexes.iter().enumerate() {
            let lead = match ix.def().columns.first() {
                Some(c) => *c,
                None => continue,
            };
            // Find constant bounds on the leading column.
            let mut lo: Option<(Expr, bool)> = None;
            let mut hi: Option<(Expr, bool)> = None;
            let mut consumed: Vec<Expr> = Vec::new();
            for p in local {
                if let Some((op, konst)) = column_vs_const(p, qt, lead) {
                    match op {
                        BinOp::Eq => {
                            lo = Some((konst.clone(), true));
                            hi = Some((konst, true));
                            consumed.push(p.clone());
                        }
                        BinOp::Gt => {
                            lo = Some((konst, false));
                            consumed.push(p.clone());
                        }
                        BinOp::Ge => {
                            lo = Some((konst, true));
                            consumed.push(p.clone());
                        }
                        BinOp::Lt => {
                            hi = Some((konst, false));
                            consumed.push(p.clone());
                        }
                        BinOp::Le => {
                            hi = Some((konst, true));
                            consumed.push(p.clone());
                        }
                        _ => {}
                    }
                } else if let Expr::Between { expr, low, high, negated: false } = p {
                    if matches!(expr.as_ref(), Expr::Column(c) if c.table == qt && c.col == lead)
                        && is_non_null_const(low)
                        && is_non_null_const(high)
                    {
                        lo = Some((low.as_ref().clone(), true));
                        hi = Some((high.as_ref().clone(), true));
                        consumed.push(p.clone());
                    }
                }
            }
            if lo.is_none() && hi.is_none() {
                continue;
            }
            // Selectivity of the consumed range.
            let sel = est.conjunct_selectivity(&consumed, n);
            let cost = (n * sel).max(1.0) * cost::RANGE_PER_ROW;
            if cost < best.1 {
                best = (
                    AccessChoice::IndexRange {
                        index: ix_pos,
                        lo: lo.clone(),
                        hi: hi.clone(),
                        consumed,
                    },
                    cost,
                );
            }
        }
        best
    }

    /// The greedy, left-deep join-order search.
    fn greedy_join_order(
        &self,
        block: &BoundQuery,
        outer: &BTreeSet<usize>,
        est: &Estimator,
        infos: Vec<MemberInfo>,
    ) -> Result<Skeleton> {
        let mut placed: BTreeSet<usize> = BTreeSet::new();
        let mut remaining: Vec<usize> = (0..infos.len()).collect(); // indexes into infos

        // Driving table: the inner member with the fewest filtered rows.
        let first = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let m = &block.members[infos[i].mi];
                m.entry.is_inner() && m.deps.iter().all(|d| outer.contains(d))
            })
            .min_by(|&a, &b| {
                infos[a]
                    .filtered_rows
                    .partial_cmp(&infos[b].filtered_rows)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .ok_or_else(|| Error::semantic("no placeable driving table (join graph cycle?)"))?;
        placed.insert(infos[first].qt);
        let mut prefix_rows = infos[first].filtered_rows;
        let mut total_cost = infos[first].access_cost;
        let mut tree = Some(SkelNode::Leaf(SkelLeaf {
            qt: infos[first].qt,
            access: infos[first].access.clone(),
            rows: infos[first].filtered_rows,
            cost: infos[first].access_cost,
        }));
        remaining.retain(|&i| i != first);

        while !remaining.is_empty() {
            // Candidates whose dependencies are satisfied.
            let mut best: Option<(usize, JoinCand)> = None;
            for &i in &remaining {
                let info = &infos[i];
                let m = &block.members[info.mi];
                if !m.deps.iter().all(|d| placed.contains(d) || outer.contains(d)) {
                    continue;
                }
                let cand =
                    self.evaluate_candidate(block, outer, est, info, &placed, prefix_rows)?;
                let better = match &best {
                    None => true,
                    Some((_, b)) => cand.delta_cost < b.delta_cost,
                };
                if better {
                    best = Some((i, cand));
                }
            }
            let (i, cand) = best.ok_or_else(|| {
                Error::semantic("unsatisfiable join dependencies (correlation cycle?)")
            })?;
            let info = &infos[i];
            placed.insert(info.qt);
            remaining.retain(|&r| r != i);
            total_cost += cand.delta_cost;
            prefix_rows = cand.new_rows;
            let leaf = SkelNode::Leaf(SkelLeaf {
                qt: info.qt,
                access: cand.access,
                rows: cand.leaf_rows,
                cost: cand.leaf_cost,
            });
            tree = Some(SkelNode::Join {
                method: cand.method,
                left: Box::new(tree.take().expect("seeded with driving table")),
                right: Box::new(leaf),
                rows: prefix_rows,
                cost: total_cost,
            });
        }

        Ok(Skeleton {
            root: tree.expect("at least one member"),
            orca_assisted: false,
            orca_fallback: None,
            dop: None,
            search: None,
            reopt: None,
        })
    }

    /// Cost one candidate table as the next left-deep join.
    fn evaluate_candidate(
        &self,
        block: &BoundQuery,
        outer: &BTreeSet<usize>,
        est: &Estimator,
        info: &MemberInfo,
        placed: &BTreeSet<usize>,
        prefix_rows: f64,
    ) -> Result<JoinCand> {
        let m = &block.members[info.mi];
        let qt = info.qt;
        // Conditions connecting this table to the placed prefix.
        let mut available: BTreeSet<usize> = placed.clone();
        available.extend(outer.iter().copied());
        let cross_conds: Vec<&Expr> = block
            .predicates
            .iter()
            .chain(m.entry.on())
            .filter(|p| {
                let refs = p.referenced_tables();
                refs.contains(&qt)
                    && refs.iter().any(|t| placed.contains(t))
                    && refs.iter().all(|t| *t == qt || available.contains(t))
            })
            .collect();
        // Floor the stacked cross-condition product at one surviving row of
        // the joint (prefix × inner) space.
        let cross_vec: Vec<Expr> = cross_conds.iter().map(|p| (*p).clone()).collect();
        let cross_sel = est.conjunct_selectivity(&cross_vec, prefix_rows * info.filtered_rows);

        // (1) Index lookup on an equi-condition (MySQL's favourite).
        // NULL-aware anti joins (NOT IN) cannot use plain ref access: a NULL
        // probe key must make membership UNKNOWN, which a lookup that simply
        // finds no rows cannot express. MySQL materializes those too.
        let lookup = if matches!(m.entry, JoinEntry::Anti { null_aware: true, .. }) {
            None
        } else {
            self.find_lookup(qt, &available, &cross_conds, &info.local_preds, est)?
        };
        // (2) Equi-join available at all (for the hash-join rule)?
        let has_equi = cross_conds.iter().any(|p| equi_pair(p, qt, &available).is_some());

        let inner_rows = info.filtered_rows;
        let mut joined: BTreeSet<usize> = placed.clone();
        joined.insert(qt);
        // An observed cardinality for exactly this join prefix replaces the
        // derivation below (feedback-driven re-optimization).
        let observed = self.fb.and_then(|f| f.rel(&joined));
        let new_rows = match observed {
            Some(rows) => rows.max(0.01),
            None => match &m.entry {
                JoinEntry::Inner => (prefix_rows * inner_rows * cross_sel).max(0.01),
                JoinEntry::LeftOuter { .. } => {
                    (prefix_rows * inner_rows * cross_sel).max(prefix_rows)
                }
                JoinEntry::Semi { .. } => {
                    // Match probability, not expected match count: inner rows
                    // sharing an equality key value contribute at most one
                    // match per distinct key combination, so the inner row
                    // count caps at the key columns' NDV product. Without the
                    // cap a large inner side saturates the clamp at 1.0 and
                    // the semi join "filters" nothing (the TPC-H q18 shape).
                    let cap = eq_ndv_cap(&cross_conds, qt, est);
                    let frac = (inner_rows.min(cap) * cross_sel).min(1.0);
                    (prefix_rows * frac).max(0.01)
                }
                JoinEntry::Anti { .. } => {
                    let frac = (inner_rows * cross_sel).min(0.95);
                    (prefix_rows * (1.0 - frac)).max(0.01)
                }
            },
        };

        // Correlated derived tables force nested-loop re-materialization.
        if info.correlated {
            let delta = prefix_rows * (info.access_cost + inner_rows * cost::OUTPUT_PER_ROW);
            return Ok(JoinCand {
                method: JoinMethod::NestedLoop,
                access: info.access.clone(),
                leaf_rows: inner_rows,
                leaf_cost: info.access_cost,
                delta_cost: delta,
                new_rows,
            });
        }

        if let Some((index, keys, consumed, rows_per_probe)) = lookup {
            // Nested loop with index lookup.
            let per_probe = cost::LOOKUP_BASE + rows_per_probe * cost::LOOKUP_PER_ROW;
            let delta = prefix_rows * per_probe;
            return Ok(JoinCand {
                method: JoinMethod::NestedLoop,
                access: AccessChoice::IndexLookup { index, keys, consumed },
                leaf_rows: rows_per_probe.max(0.01),
                leaf_cost: per_probe,
                delta_cost: delta,
                new_rows,
            });
        }
        if has_equi {
            // Hash join: build the inner side once, probe with the prefix.
            let delta = info.access_cost
                + inner_rows * cost::HASH_BUILD_PER_ROW
                + prefix_rows * cost::HASH_PROBE_PER_ROW
                + new_rows * cost::OUTPUT_PER_ROW;
            return Ok(JoinCand {
                method: JoinMethod::Hash,
                access: info.access.clone(),
                leaf_rows: inner_rows,
                leaf_cost: info.access_cost,
                delta_cost: delta,
                new_rows,
            });
        }
        // Materialized nested-loop scan (no index, no equi-join): every
        // prefix×inner pair is evaluated.
        let delta = info.access_cost + prefix_rows * inner_rows * cost::NL_PAIR + prefix_rows;
        Ok(JoinCand {
            method: JoinMethod::NestedLoop,
            access: info.access.clone(),
            leaf_rows: inner_rows,
            leaf_cost: info.access_cost,
            delta_cost: delta,
            new_rows,
        })
    }

    /// Find the best index-lookup access: the index with the longest
    /// prefix of leading columns covered by available equi-conditions.
    /// Returns `(index position, key exprs, consumed conjuncts, rows/probe)`.
    #[allow(clippy::type_complexity)]
    fn find_lookup(
        &self,
        qt: usize,
        available: &BTreeSet<usize>,
        cross_conds: &[&Expr],
        local_preds: &[Expr],
        est: &Estimator,
    ) -> Result<Option<(usize, Vec<Expr>, Vec<Expr>, f64)>> {
        let meta = self.bound.table(qt);
        let id = match &meta.source {
            TableSource::Base { id } => *id,
            TableSource::Derived { .. } => return Ok(None),
        };
        let table = self.catalog.table(id)?;
        let n = table.num_rows() as f64;
        let mut best: Option<(usize, Vec<Expr>, Vec<Expr>, f64)> = None;
        // Equality sources: cross conjuncts `this.col = outer-expr` and
        // local `this.col = const`.
        for (ix_pos, ix) in table.indexes.iter().enumerate() {
            let mut keys: Vec<Expr> = Vec::new();
            let mut consumed: Vec<Expr> = Vec::new();
            let mut sel = 1.0f64;
            for &col in &ix.def().columns {
                let mut hit = false;
                for p in cross_conds.iter().copied().chain(local_preds.iter()) {
                    if let Some((key_expr, key_sel)) = lookup_key(p, qt, col, available, est) {
                        keys.push(key_expr);
                        consumed.push(p.clone());
                        sel *= key_sel;
                        hit = true;
                        break;
                    }
                }
                if !hit {
                    break;
                }
            }
            if keys.is_empty() {
                continue;
            }
            // Cross-conds must participate — pure-local lookups are ranges,
            // already handled in choose_access.
            if !consumed.iter().any(|c| c.referenced_tables().iter().any(|t| *t != qt)) {
                continue;
            }
            let rows_per_probe = (n * sel).max(if ix.def().unique { 0.0 } else { 0.01 }).min(n);
            let better = match &best {
                None => true,
                Some((_, _, _, prev)) => rows_per_probe < *prev,
            };
            if better {
                best = Some((ix_pos, keys, consumed, rows_per_probe.max(1.0).min(n.max(1.0))));
            }
        }
        Ok(best)
    }
}

struct JoinCand {
    method: JoinMethod,
    access: AccessChoice,
    leaf_rows: f64,
    leaf_cost: f64,
    delta_cost: f64,
    new_rows: f64,
}

/// Match `col(qt, c) cmp const` (either side), returning `(cmp-with-column-
/// on-left, const expr)`. A NULL literal is refused: comparing with NULL is
/// UNKNOWN for every row, but as an index-range bound it would sort before
/// everything and `[NULL, ∞)` would cover the whole table.
fn column_vs_const(p: &Expr, qt: usize, col: usize) -> Option<(BinOp, Expr)> {
    if let Expr::Binary { op, left, right } = p {
        if !op.is_comparison() {
            return None;
        }
        if let Expr::Column(c) = left.as_ref() {
            if c.table == qt && c.col == col && is_non_null_const(right) {
                return Some((*op, right.as_ref().clone()));
            }
        }
        if let Expr::Column(c) = right.as_ref() {
            if c.table == qt && c.col == col && is_non_null_const(left) {
                return Some((op.commutator()?, left.as_ref().clone()));
            }
        }
    }
    None
}

/// Constant, and not the NULL literal — safe to use as an index bound.
fn is_non_null_const(e: &Expr) -> bool {
    e.is_const() && !matches!(e, Expr::Literal(v) if v.is_null())
}

/// Match an equi-condition `col(qt, col) = expr(available)`; return the key
/// expression and its selectivity contribution.
fn lookup_key(
    p: &Expr,
    qt: usize,
    col: usize,
    available: &BTreeSet<usize>,
    est: &Estimator,
) -> Option<(Expr, f64)> {
    let (this, other) = match p {
        Expr::Binary { op: BinOp::Eq, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), o) if c.table == qt && c.col == col => (c, o),
            (o, Expr::Column(c)) if c.table == qt && c.col == col => (c, o),
            _ => return None,
        },
        _ => return None,
    };
    // The other side must not reference this table.
    let refs = other.referenced_tables();
    if refs.contains(&qt) || !refs.iter().all(|t| available.contains(t)) {
        return None;
    }
    let sel = 1.0 / est.ndv(taurus_common::ColRef { table: this.table, col: this.col });
    Some((other.clone(), sel))
}

/// Distinct-combination cap for `qt`'s side of the equality join keys in
/// `conds`: the product of its bare-column key NDVs, or ∞ when no bare-
/// column equality exists.
fn eq_ndv_cap(conds: &[&Expr], qt: usize, est: &Estimator) -> f64 {
    let mut cap = f64::INFINITY;
    for p in conds {
        if let Expr::Binary { op: BinOp::Eq, left, right } = p {
            for (a, b) in [(left, right), (right, left)] {
                if let Expr::Column(c) = a.as_ref() {
                    if c.table == qt && !b.referenced_tables().contains(&qt) {
                        let n = est.ndv(*c).max(1.0);
                        cap = if cap.is_finite() { cap * n } else { n };
                        break;
                    }
                }
            }
        }
    }
    cap
}

/// Is `p` an equality connecting `qt` to placed tables?
fn equi_pair(p: &Expr, qt: usize, available: &BTreeSet<usize>) -> Option<(Expr, Expr)> {
    if let Expr::Binary { op: BinOp::Eq, left, right } = p {
        let lr = left.referenced_tables();
        let rr = right.referenced_tables();
        let l_this = lr.contains(&qt) && lr.iter().all(|t| *t == qt);
        let r_other =
            !rr.contains(&qt) && !rr.is_empty() && rr.iter().all(|t| available.contains(t));
        if l_this && r_other {
            return Some((left.as_ref().clone(), right.as_ref().clone()));
        }
        let r_this = rr.contains(&qt) && rr.iter().all(|t| *t == qt);
        let l_other =
            !lr.contains(&qt) && !lr.is_empty() && lr.iter().all(|t| available.contains(t));
        if r_this && l_other {
            return Some((right.as_ref().clone(), left.as_ref().clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve_statement;
    use taurus_catalog::stats::AnalyzeOptions;
    use taurus_common::{Column, DataType, Schema, Value};
    use taurus_sql::parser::parse_select;

    /// fact(fk, v) 1000 rows; dim(pk, name) 50 rows with unique index;
    /// other(x) 100 rows, no index.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let fact = cat
            .create_table(
                "fact",
                Schema::new(vec![
                    Column::new("fk", DataType::Int),
                    Column::new("v", DataType::Int),
                ]),
            )
            .unwrap();
        cat.insert(fact, (0..1000).map(|i| vec![Value::Int(i % 50), Value::Int(i)])).unwrap();
        cat.create_index(fact, "fact_fk", vec![0], false).unwrap();
        let dim = cat
            .create_table(
                "dim",
                Schema::new(vec![
                    Column::new("pk", DataType::Int),
                    Column::new("name", DataType::Str),
                ]),
            )
            .unwrap();
        cat.insert(dim, (0..50).map(|i| vec![Value::Int(i), Value::str(format!("d{i}"))])).unwrap();
        cat.create_index(dim, "dim_pk", vec![0], true).unwrap();
        let other =
            cat.create_table("other", Schema::new(vec![Column::new("x", DataType::Int)])).unwrap();
        cat.insert(other, (0..100).map(|i| vec![Value::Int(i)])).unwrap();
        cat.analyze_all(&AnalyzeOptions::default());
        cat
    }

    fn skeleton(cat: &Catalog, sql: &str) -> (BoundStatement, Skeleton) {
        let bound = resolve_statement(cat, &parse_select(sql).unwrap()).unwrap();
        let sk = optimize_statement(cat, &bound).unwrap();
        (bound, sk)
    }

    #[test]
    fn single_table_scan() {
        let cat = catalog();
        let (_, sk) = skeleton(&cat, "SELECT v FROM fact WHERE v > 500");
        match &sk.root {
            SkelNode::Leaf(l) => {
                assert!(matches!(l.access, AccessChoice::TableScan));
                assert!((l.rows - 500.0).abs() < 50.0, "rows={}", l.rows);
            }
            other => panic!("{other:?}"),
        }
        assert!(!sk.orca_assisted);
    }

    #[test]
    fn index_range_chosen_for_selective_constant() {
        let cat = catalog();
        let (_, sk) = skeleton(&cat, "SELECT name FROM dim WHERE pk = 7");
        match &sk.root {
            SkelNode::Leaf(l) => {
                assert!(matches!(l.access, AccessChoice::IndexRange { .. }), "{:?}", l.access);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_uses_index_lookup_and_left_deep() {
        let cat = catalog();
        let (_, sk) = skeleton(&cat, "SELECT v, name FROM fact, dim WHERE fk = pk AND v < 100");
        assert!(sk.root.is_left_deep());
        let positions = sk.root.best_positions();
        assert_eq!(positions.len(), 2);
        // MySQL drives from the filtered fact side and looks dim up by pk.
        match &sk.root {
            SkelNode::Join { method: JoinMethod::NestedLoop, right, .. } => match right.as_ref() {
                SkelNode::Leaf(l) => {
                    assert!(matches!(l.access, AccessChoice::IndexLookup { .. }), "{:?}", l.access)
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hash_join_only_without_index() {
        let cat = catalog();
        // other has no index: equi-join must go hash.
        let (_, sk) = skeleton(&cat, "SELECT v FROM fact, other WHERE v = x");
        match &sk.root {
            SkelNode::Join { method, .. } => assert_eq!(*method, JoinMethod::Hash),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cartesian_falls_back_to_nested_loop() {
        let cat = catalog();
        let (_, sk) = skeleton(&cat, "SELECT name FROM dim, other");
        match &sk.root {
            SkelNode::Join { method, .. } => assert_eq!(*method, JoinMethod::NestedLoop),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn greedy_is_always_left_deep_even_for_many_tables() {
        let cat = catalog();
        let (_, sk) = skeleton(
            &cat,
            "SELECT f1.v FROM fact f1, fact f2, dim d1, dim d2, other \
             WHERE f1.fk = d1.pk AND f2.fk = d2.pk AND f1.v = f2.v AND f1.v = x",
        );
        assert!(sk.root.is_left_deep(), "MySQL never produces bushy plans (§1)");
        assert_eq!(sk.root.best_positions().len(), 5);
    }

    #[test]
    fn left_join_placed_after_dependencies() {
        let cat = catalog();
        let (bound, sk) =
            skeleton(&cat, "SELECT v FROM fact LEFT JOIN dim ON fk = pk WHERE v < 10");
        let qts = sk.root.qts();
        // dim's member has deps on fact's qt.
        let dim_qt = bound.root.members[1].qt;
        assert_eq!(qts.last().copied(), Some(dim_qt));
    }

    #[test]
    fn semi_join_cannot_drive() {
        let cat = catalog();
        let (bound, sk) =
            skeleton(&cat, "SELECT name FROM dim WHERE EXISTS (SELECT * FROM fact WHERE fk = pk)");
        let semi_qt = bound.root.members[1].qt;
        let qts = sk.root.qts();
        assert_eq!(qts[0], bound.root.members[0].qt);
        assert_eq!(qts[1], semi_qt);
    }

    #[test]
    fn correlated_derived_forces_nested_loop() {
        let cat = catalog();
        let (bound, sk) = skeleton(
            &cat,
            "SELECT v FROM fact, dim WHERE fk = pk AND \
             v < (SELECT AVG(v) FROM fact f2 WHERE f2.fk = dim.pk)",
        );
        let derived_qt = bound
            .root
            .members
            .iter()
            .find(|m| bound.tables[m.qt].is_correlated_derived())
            .unwrap()
            .qt;
        // Find the join whose right leaf is the derived table; method must
        // be nested loop (re-materialized per outer row).
        fn find_method(n: &SkelNode, qt: usize) -> Option<JoinMethod> {
            match n {
                SkelNode::Leaf(_) => None,
                SkelNode::Join { method, left, right, .. } => {
                    if let SkelNode::Leaf(l) = right.as_ref() {
                        if l.qt == qt {
                            return Some(*method);
                        }
                    }
                    find_method(left, qt).or_else(|| find_method(right, qt))
                }
                SkelNode::Sort { input, .. } => find_method(input, qt),
            }
        }
        assert_eq!(find_method(&sk.root, derived_qt), Some(JoinMethod::NestedLoop));
    }

    #[test]
    fn estimates_populate_leaves() {
        let cat = catalog();
        let (_, sk) = skeleton(&cat, "SELECT v, name FROM fact, dim WHERE fk = pk");
        for leaf in sk.root.best_positions() {
            assert!(leaf.rows > 0.0);
            assert!(leaf.cost > 0.0);
        }
        assert!(sk.root.cost() >= sk.root.best_positions()[0].cost);
    }
}
