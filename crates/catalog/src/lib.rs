//! Data dictionary: tables, indexes, statistics, histograms.
//!
//! This crate is the stand-in for MySQL's data dictionary, which the paper's
//! metadata provider reads on Orca's behalf (§5). It owns:
//!
//! * [`dictionary`] — named tables with their heap data and indexes;
//! * [`stats`] — per-table/per-column statistics gathered by `ANALYZE`
//!   (row counts, NDVs, null counts, min/max);
//! * [`histogram`] — singleton and equi-height histograms, including the
//!   order-preserving string→i64 encoding of §7 that lets equi-height
//!   histograms over strings support range predicates.
//!
//! Per §5.5/§7 item 5, MySQL's "no histograms on UNIQUE columns" restriction
//! is *lifted by default* here (it can be re-imposed through
//! [`stats::AnalyzeOptions`] for the ablation benchmark).

pub mod dictionary;
pub mod estimate;
pub mod feedback;
pub mod histogram;
pub mod stats;

pub use dictionary::{Catalog, CatalogTable};
pub use estimate::{ColView, Estimator, RelView};
pub use feedback::CardOverrides;
pub use histogram::{encode_str_prefix, Histogram};
pub use stats::{AnalyzeOptions, ColumnStats, TableStats};
