//! Experiment runners shared by the Criterion benches and the `harness`
//! binary.
//!
//! Every table and figure in the paper's evaluation (§6) has a runner here:
//!
//! | Paper artifact | Runner | What it reports |
//! |---|---|---|
//! | Fig 10 | [`run_suite`] (TPC-H) | per-query MySQL vs Orca run time (incl. optimization) |
//! | Fig 11 | [`run_suite`] (TPC-DS) | same for the 99-query suite |
//! | Fig 12 | [`fig12_points`] | (MySQL time, Orca/MySQL ratio) scatter |
//! | Table 1 | [`compile_totals`] | total EXPLAIN time: MySQL, +Orca EXHAUSTIVE, +Orca EXHAUSTIVE2 |
//! | Fig 4/5 | [`q72_case_study`] | Q72 plan shapes and join-method counts |
//! | Fig 6/7 + Listing 7 | [`q17_case_study`] | Q17 best-position array and EXPLAIN |
//! | §6.2 Q41 | [`q41_case_study`] | OR-factorization speedup |
//! | §7 lessons | [`ablations`] | rule on/off comparisons |
//!
//! Timings are medians over `reps` runs; work units (rows processed, probes,
//! lookups) accompany every timing so shapes are machine-independent.

use mylite::engine::CostBasedOptimizer;
use mylite::{Engine, MySqlOptimizer, PlanCacheStats};
use orcalite::{JoinOrderStrategy, OrcaConfig};
use std::time::{Duration, Instant};
use taurus_bridge::{FallbackReason, OrcaOptimizer, RouterStats};
use taurus_workloads::tpch::Query;
use taurus_workloads::{tpcds, tpch, Scale};

pub mod concurrency;
pub mod fuzz;
pub mod micro;

/// Which workload a runner operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    TpcH,
    TpcDs,
}

impl Workload {
    pub fn name(self) -> &'static str {
        match self {
            Workload::TpcH => "TPC-H",
            Workload::TpcDs => "TPC-DS",
        }
    }

    /// The paper's complex-query threshold per workload (§6.1/§6.2).
    pub fn threshold(self) -> usize {
        match self {
            Workload::TpcH => 3,
            Workload::TpcDs => 2,
        }
    }

    pub fn build_engine(self, scale: Scale) -> Engine {
        match self {
            Workload::TpcH => Engine::new(tpch::build_catalog(scale)),
            Workload::TpcDs => Engine::new(tpcds::build_catalog(scale)),
        }
    }

    pub fn queries(self) -> Vec<Query> {
        match self {
            Workload::TpcH => tpch::queries(),
            Workload::TpcDs => tpcds::queries(),
        }
    }
}

/// Per-query comparison result.
#[derive(Debug, Clone)]
pub struct QueryComparison {
    pub name: String,
    pub mysql: Duration,
    pub orca: Duration,
    pub mysql_work: u64,
    pub orca_work: u64,
    /// Whether the Orca path actually produced the plan (vs threshold skip
    /// or fallback).
    pub orca_assisted: bool,
}

impl QueryComparison {
    /// Orca-time / MySQL-time: < 1 means Orca's plan is faster (the Y axis
    /// of Fig 12).
    pub fn time_ratio(&self) -> f64 {
        self.orca.as_secs_f64() / self.mysql.as_secs_f64().max(1e-9)
    }

    /// MySQL-work / Orca-work: > 1 means Orca's plan does less work (the
    /// machine-independent speedup).
    pub fn work_speedup(&self) -> f64 {
        self.mysql_work as f64 / self.orca_work.max(1) as f64
    }
}

/// Median-of-`reps` timing of planning + executing `sql` under `opt`.
fn time_query(
    engine: &Engine,
    sql: &str,
    opt: &dyn CostBasedOptimizer,
    reps: usize,
) -> (Duration, u64) {
    let mut times = Vec::with_capacity(reps);
    let mut work = 0;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let out = engine.query_with(sql, opt).expect("workload query must run");
        times.push(t.elapsed());
        work = out.work_units;
    }
    times.sort();
    (times[times.len() / 2], work)
}

/// Run a whole suite under both optimizers — the Fig 10 / Fig 11 runner.
pub fn run_suite(
    workload: Workload,
    scale: Scale,
    strategy: JoinOrderStrategy,
    reps: usize,
) -> Vec<QueryComparison> {
    let engine = workload.build_engine(scale);
    let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(strategy), workload.threshold());
    let mut out = Vec::new();
    for q in workload.queries() {
        let (mysql, mysql_work) = time_query(&engine, &q.sql, &MySqlOptimizer, reps);
        let routed_before = orca.stats().routed;
        let (orca_t, orca_work) = time_query(&engine, &q.sql, &orca, reps);
        out.push(QueryComparison {
            name: q.name.to_string(),
            mysql,
            orca: orca_t,
            mysql_work,
            orca_work,
            orca_assisted: orca.stats().routed > routed_before,
        });
    }
    out
}

/// Fig 12: (MySQL run time, Orca/MySQL time ratio) scatter points.
pub fn fig12_points(results: &[QueryComparison]) -> Vec<(String, f64, f64)> {
    results.iter().map(|r| (r.name.clone(), r.mysql.as_secs_f64(), r.time_ratio())).collect()
}

/// One Table 1 row: total time to *compile* (EXPLAIN) an entire suite.
#[derive(Debug, Clone)]
pub struct CompileTotal {
    pub compiler: &'static str,
    pub total: Duration,
    /// Per-query compile times (to find the Q14/Q64-style outliers).
    pub per_query: Vec<(String, Duration)>,
}

/// Table 1: total EXPLAIN times with the complex-query threshold at 1 so
/// every query takes the Orca detour (§6.3).
pub fn compile_totals(workload: Workload, scale: Scale) -> Vec<CompileTotal> {
    let engine = workload.build_engine(scale);
    let queries = workload.queries();
    let mut rows = Vec::new();
    let compile_with = |opt: &dyn CostBasedOptimizer| -> (Duration, Vec<(String, Duration)>) {
        let mut total = Duration::ZERO;
        let mut per = Vec::new();
        for q in &queries {
            let t = Instant::now();
            engine.plan(&q.sql, opt).expect("workload query must plan");
            let d = t.elapsed();
            total += d;
            per.push((q.name.to_string(), d));
        }
        (total, per)
    };
    let (total, per_query) = compile_with(&MySqlOptimizer);
    rows.push(CompileTotal { compiler: "MySQL", total, per_query });
    for (label, strategy) in [
        ("MySQL + Orca—EXHAUSTIVE", JoinOrderStrategy::Exhaustive),
        ("MySQL + Orca—EXHAUSTIVE2", JoinOrderStrategy::Exhaustive2),
    ] {
        let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(strategy), 1);
        let (total, per_query) = compile_with(&orca);
        rows.push(CompileTotal { compiler: label, total, per_query });
    }
    rows
}

/// Plan-shape summary for a case-study query.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    pub mysql_explain: String,
    pub orca_explain: String,
    /// `(nested loops, hash joins)` per optimizer.
    pub mysql_joins: (usize, usize),
    pub orca_joins: (usize, usize),
    pub mysql_left_deep: bool,
    pub orca_left_deep: bool,
    pub mysql_time: Duration,
    pub orca_time: Duration,
    pub mysql_work: u64,
    pub orca_work: u64,
}

/// Run a single query as a case study under both optimizers.
pub fn case_study(workload: Workload, scale: Scale, sql: &str, reps: usize) -> CaseStudy {
    let engine = workload.build_engine(scale);
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let mplan = engine.plan(sql, &MySqlOptimizer).expect("plans");
    let oplan = engine.plan(sql, &orca).expect("plans");
    let (mysql_time, mysql_work) = time_query(&engine, sql, &MySqlOptimizer, reps);
    let (orca_time, orca_work) = time_query(&engine, sql, &orca, reps);
    CaseStudy {
        mysql_explain: engine.explain(sql, &MySqlOptimizer).expect("explains"),
        orca_explain: engine.explain(sql, &orca).expect("explains"),
        mysql_joins: mplan.primary().plan.join_method_counts(),
        orca_joins: oplan.primary().plan.join_method_counts(),
        mysql_left_deep: mplan.primary().plan.is_left_deep(),
        orca_left_deep: oplan.primary().plan.is_left_deep(),
        mysql_time,
        orca_time,
        mysql_work,
        orca_work,
    }
}

/// Fig 4/5: the Q72 snowflake.
pub fn q72_case_study(scale: Scale, reps: usize) -> CaseStudy {
    case_study(Workload::TpcDs, scale, &tpcds::query(72).sql, reps)
}

/// Fig 6/7 + Listing 7: TPC-H Q17 (correlated average, materialized
/// derived, best-position arrays).
pub fn q17_case_study(scale: Scale, reps: usize) -> CaseStudy {
    let q17 = &tpch::queries()[16];
    case_study(Workload::TpcH, scale, &q17.sql, reps)
}

/// §6.2's Q41: the OR-factorization query.
pub fn q41_case_study(scale: Scale, reps: usize) -> CaseStudy {
    case_study(Workload::TpcDs, scale, &tpcds::query(41).sql, reps)
}

/// One ablation row: a §7 lesson toggled off vs the paper configuration.
#[derive(Debug, Clone)]
pub struct Ablation {
    pub name: &'static str,
    pub query: String,
    pub with_rule: Duration,
    pub without_rule: Duration,
    pub with_work: u64,
    pub without_work: u64,
}

/// The §7 lesson ablations.
pub fn ablations(scale: Scale, reps: usize) -> Vec<Ablation> {
    let mut out = Vec::new();

    // (1) OR factorization on Q41 (§7 item 4 / §6.2).
    {
        let engine = Workload::TpcDs.build_engine(scale);
        let sql = tpcds::query(41).sql;
        let on = OrcaOptimizer::new(OrcaConfig::default(), 1);
        let off = OrcaOptimizer::new(
            OrcaConfig { enable_or_factorization: false, ..OrcaConfig::default() },
            1,
        );
        let (with_rule, with_work) = time_query(&engine, &sql, &on, reps);
        let (without_rule, without_work) = time_query(&engine, &sql, &off, reps);
        out.push(Ablation {
            name: "OR factorization (Q41)",
            query: "tpcds/q41".into(),
            with_rule,
            without_rule,
            with_work,
            without_work,
        });
    }

    // (2) Apply/join swap rules on a correlated-subquery query (§7 item 1).
    {
        let engine = Workload::TpcDs.build_engine(scale);
        let sql = tpcds::query(6).sql; // correlated category-average
        let on = OrcaOptimizer::new(OrcaConfig::default(), 1);
        let off = OrcaOptimizer::new(
            OrcaConfig { enable_apply_swaps: false, ..OrcaConfig::default() },
            1,
        );
        let (with_rule, with_work) = time_query(&engine, &sql, &on, reps);
        let (without_rule, without_work) = time_query(&engine, &sql, &off, reps);
        out.push(Ablation {
            name: "apply/join swap rules (Q6)",
            query: "tpcds/q6".into(),
            with_rule,
            without_rule,
            with_work,
            without_work,
        });
    }

    // (3) Histograms on UNIQUE columns (§5.5 / §7 item 5): rebuild the
    // catalog with stock-MySQL statistics and compare a key-filtered join.
    {
        let sql = "SELECT COUNT(*) AS n FROM store_sales, item, date_dim \
                   WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk \
                     AND i_item_sk < 20 AND d_date_sk < 300";
        let with_hist = Workload::TpcDs.build_engine(scale);
        let mut without_hist = Workload::TpcDs.build_engine(scale);
        without_hist.catalog_mut().analyze_all(&taurus_catalog::AnalyzeOptions {
            histograms_on_unique: false,
            ..Default::default()
        });
        let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
        let (with_rule, with_work) = time_query(&with_hist, sql, &orca, reps);
        let (without_rule, without_work) = time_query(&without_hist, sql, &orca, reps);
        out.push(Ablation {
            name: "histograms on UNIQUE columns",
            query: "key-filtered star join".into(),
            with_rule,
            without_rule,
            with_work,
            without_work,
        });
    }
    out
}

/// Routing outcome of planning a whole workload through one Orca router:
/// how many statements each path took, and why each fallback happened.
#[derive(Debug, Clone)]
pub struct RoutingReport {
    pub workload: Workload,
    pub strategy: JoinOrderStrategy,
    pub queries: usize,
    pub stats: RouterStats,
}

/// Plan every workload query through a fresh router and collect its
/// [`RouterStats`] — the never-fail-detour observability report.
pub fn run_routing(
    workload: Workload,
    scale: Scale,
    strategy: JoinOrderStrategy,
    config: OrcaConfig,
) -> RoutingReport {
    let engine = workload.build_engine(scale);
    let orca = OrcaOptimizer::new(OrcaConfig { strategy, ..config }, workload.threshold());
    let queries = workload.queries();
    for q in &queries {
        engine.plan(&q.sql, &orca).expect("workload query must plan");
    }
    RoutingReport { workload, strategy, queries: queries.len(), stats: orca.stats() }
}

/// Format a routing report as a markdown table: one row per routing path,
/// then one row per fallback reason (the taxonomy the router records).
pub fn format_routing_table(report: &RoutingReport) -> String {
    use std::fmt::Write;
    let s = &report.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routing of {} queries ({}, {:?}):\n",
        report.queries,
        report.workload.name(),
        report.strategy
    );
    let _ = writeln!(out, "| outcome | statements |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| routed to Orca | {} |", s.routed);
    let _ = writeln!(out, "| below complex-query threshold | {} |", s.below_threshold);
    let _ = writeln!(out, "| fell back to MySQL | {} |", s.fallbacks);
    for reason in FallbackReason::ALL {
        let n = s.reasons.get(reason);
        if n > 0 {
            let _ = writeln!(out, "| — fallback: {} | {} |", reason.name(), n);
        }
    }
    if s.degraded > 0 {
        let _ = writeln!(out, "| blocks rescued by the degradation ladder | {} |", s.degraded);
    }
    for (label, n) in [
        ("cancelled", s.governed.cancelled),
        ("deadline exceeded", s.governed.deadline_exceeded),
        ("memory exceeded", s.governed.memory_exceeded),
        ("retried serial under memory pressure", s.governed.memory_degraded),
    ] {
        if n > 0 {
            let _ = writeln!(out, "| — governed at execution: {label} | {n} |");
        }
    }
    out
}

/// The repeated-statement mix for the plan-cache experiment: TPC-H
/// statement *templates*, each instantiated with different literals — the
/// "millions of users running the same queries against their own data"
/// workload the plan cache exists for. Every template keeps its shape
/// (same fingerprint); only literal values vary between instantiations.
fn plan_cache_mix(instances: usize) -> Vec<(&'static str, Vec<String>)> {
    let segs = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
    let regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    let colors = ["green", "red", "blue", "ivory", "navy"];
    let many = |f: &dyn Fn(usize) -> String| (0..instances).map(f).collect::<Vec<_>>();
    vec![
        // --- short statements (below the Orca threshold, cheap compiles)
        (
            "pricing-summary",
            many(&|i| {
                format!(
                    "SELECT l_returnflag, SUM(l_quantity) AS sum_qty, COUNT(*) AS n \
                     FROM lineitem WHERE l_shipdate <= DATE '1998-{:02}-01' \
                     GROUP BY l_returnflag ORDER BY l_returnflag",
                    1 + i % 12
                )
            }),
        ),
        (
            "order-lookup",
            many(&|i| {
                format!(
                    "SELECT o_orderdate, o_totalprice FROM orders WHERE o_orderkey = {}",
                    (i * 37) % 900
                )
            }),
        ),
        // --- multi-join statements (Orca detour: the compiles worth caching)
        (
            "shipping-priority",
            many(&|i| {
                format!(
                    "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                     FROM customer, orders, lineitem \
                     WHERE c_mktsegment = '{}' AND c_custkey = o_custkey \
                       AND l_orderkey = o_orderkey AND o_orderdate < DATE '1995-{:02}-15' \
                     GROUP BY l_orderkey ORDER BY revenue DESC LIMIT 10",
                    segs[i % segs.len()],
                    1 + i % 12
                )
            }),
        ),
        (
            "shipmode-volume",
            many(&|i| {
                format!(
                    "SELECT l_shipmode, COUNT(*) AS n FROM lineitem, orders, customer, nation \
                     WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey \
                       AND c_nationkey = n_nationkey AND n_name = '{}' \
                       AND o_orderdate >= DATE '199{}-01-01' \
                     GROUP BY l_shipmode ORDER BY l_shipmode",
                    ["FRANCE", "GERMANY", "CHINA", "BRAZIL", "JAPAN"][i % 5],
                    3 + i % 5
                )
            }),
        ),
        (
            "regional-part-suppliers",
            many(&|i| {
                format!(
                    "SELECT s_name, p_partkey FROM part, partsupp, supplier, nation, region \
                     WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey \
                       AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                       AND r_name = '{}' AND p_size = {} \
                     ORDER BY s_name LIMIT 10",
                    regions[(i + 2) % regions.len()],
                    1 + i % 50
                )
            }),
        ),
        (
            "order-fulfillment",
            many(&|i| {
                format!(
                    "SELECT r_name, COUNT(*) AS n, SUM(l_quantity) AS qty \
                     FROM customer, orders, lineitem, nation, region \
                     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                       AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                       AND r_name = '{}' AND l_quantity > {} \
                     GROUP BY r_name",
                    regions[i % regions.len()],
                    10 + i % 30
                )
            }),
        ),
        (
            "volume-shipping",
            many(&|i| {
                format!(
                    "SELECT supp_nation, cust_nation, SUM(volume) AS revenue FROM \
                     (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
                             l_extendedprice * (1 - l_discount) AS volume \
                      FROM supplier, lineitem, orders, customer, nation n1, nation n2 \
                      WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey \
                        AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey \
                        AND c_nationkey = n2.n_nationkey AND n1.n_name = '{}' \
                        AND n2.n_name = '{}' AND l_shipdate >= DATE '1995-{:02}-01') \
                     AS shipping \
                     GROUP BY supp_nation, cust_nation ORDER BY supp_nation, cust_nation",
                    ["FRANCE", "GERMANY", "CHINA", "BRAZIL", "JAPAN"][i % 5],
                    ["GERMANY", "CHINA", "BRAZIL", "JAPAN", "FRANCE"][i % 5],
                    1 + i % 12
                )
            }),
        ),
        (
            "local-supplier-volume",
            many(&|i| {
                format!(
                    "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                     FROM customer, orders, lineitem, supplier, nation, region \
                     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                       AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
                       AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                       AND r_name = '{}' AND o_orderdate >= DATE '199{}-01-01' \
                     GROUP BY n_name ORDER BY revenue DESC",
                    regions[(i + 1) % regions.len()],
                    4 + i % 4
                )
            }),
        ),
        (
            "product-profit",
            many(&|i| {
                format!(
                    "SELECT nationname, SUM(amount) AS sum_profit FROM \
                     (SELECT n_name AS nationname, \
                             l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity \
                             AS amount \
                      FROM part, supplier, lineitem, partsupp, orders, nation \
                      WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey \
                        AND ps_partkey = l_partkey AND p_partkey = l_partkey \
                        AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
                        AND p_name LIKE '%{}%') AS profit \
                     GROUP BY nationname ORDER BY nationname",
                    colors[i % colors.len()]
                )
            }),
        ),
        (
            "market-share",
            many(&|i| {
                format!(
                    "SELECT o_year, SUM(volume) AS total FROM \
                     (SELECT YEAR(o_orderdate) AS o_year, \
                             l_extendedprice * (1 - l_discount) AS volume \
                      FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, \
                           region \
                      WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey \
                        AND l_orderkey = o_orderkey AND o_custkey = c_custkey \
                        AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey \
                        AND r_name = '{}' AND s_nationkey = n2.n_nationkey \
                        AND o_orderdate >= DATE '199{}-01-01') AS all_nations \
                     GROUP BY o_year ORDER BY o_year",
                    regions[(i + 3) % regions.len()],
                    5 + i % 3
                )
            }),
        ),
    ]
}

/// Per-template paired timing: the same statement's cold-compile cost
/// against its amortized cache-hit cost. Pairing cold and hit per template
/// keeps the comparison honest — a cheap single-table statement is compared
/// with its own hits, not with another statement's.
#[derive(Debug, Clone)]
pub struct TemplateTiming {
    pub name: String,
    /// Best-of-3 full compile (parse + resolve + optimize), cache bypassed.
    pub cold: Duration,
    /// Hit-path cost (fingerprint + lookup + rebind), amortized over the
    /// template's whole hot batch so timer jitter averages out.
    pub hit: Duration,
}

impl TemplateTiming {
    pub fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.hit.as_secs_f64().max(1e-9)
    }
}

/// What the plan-cache experiment measured.
#[derive(Debug, Clone)]
pub struct PlanCacheReport {
    /// Statement executions in the hot phase (all lookups).
    pub executions: usize,
    /// Distinct statement templates (= expected compile count).
    pub templates: usize,
    /// Engine cache counters after the hot phase (before DDL).
    pub stats: PlanCacheStats,
    /// Paired cold/hit timings, one per template.
    pub per_template: Vec<TemplateTiming>,
    /// Median cold-compile latency (cache miss: full optimize + refine).
    pub cold_compile: Duration,
    /// Median hit-path latency (fingerprint + lookup + rebind).
    pub hit_path: Duration,
    /// Optimizer invocations during the hot phase — a cache hit must skip
    /// memo exploration entirely, so this must be 0.
    pub optimizer_calls_hot: u64,
    /// Entries invalidated by the post-hot-phase DDL (ANALYZE).
    pub ddl_invalidations: u64,
    /// Whether cached-plan results matched fresh-compile results.
    pub results_match: bool,
}

impl PlanCacheReport {
    /// Median per-template speedup: the compile-once serve-many win for the
    /// typical statement of the mix.
    pub fn speedup(&self) -> f64 {
        let mut ratios: Vec<f64> = self.per_template.iter().map(|t| t.speedup()).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ratios.get(ratios.len() / 2).copied().unwrap_or(0.0)
    }

    /// The CI gate: every acceptance property, or the first violation.
    pub fn gate(&self) -> std::result::Result<(), String> {
        if self.stats.hit_rate() < 0.95 {
            return Err(format!("hit rate {:.3} < 0.95", self.stats.hit_rate()));
        }
        if self.optimizer_calls_hot != 0 {
            return Err(format!(
                "{} optimizer invocations during the hot phase: cache hits re-entered \
                 memo exploration",
                self.optimizer_calls_hot
            ));
        }
        if self.speedup() < 10.0 {
            return Err(format!(
                "median per-template speedup only {:.1}x (median cold {:?}, median hit {:?})",
                self.speedup(),
                self.cold_compile,
                self.hit_path
            ));
        }
        if self.ddl_invalidations < self.templates as u64 {
            return Err(format!(
                "DDL invalidated {}/{} cached statements",
                self.ddl_invalidations, self.templates
            ));
        }
        if !self.results_match {
            return Err("cached-plan results diverged from fresh compiles".into());
        }
        Ok(())
    }
}

/// Run the plan-cache experiment: compile each template once, serve
/// `instances` literal variations per template from the cache, then ANALYZE
/// and observe the invalidation sweep. Fully offline and deterministic
/// (fixed mix, fixed catalog; only the timings vary run to run).
pub fn run_plan_cache(scale: Scale, instances: usize) -> PlanCacheReport {
    let mut engine = Workload::TpcH.build_engine(scale);
    let orca = OrcaOptimizer::new(OrcaConfig::default(), Workload::TpcH.threshold());
    let mix = plan_cache_mix(instances.max(2));
    let optimizer_calls = |o: &OrcaOptimizer| {
        let s = o.stats();
        s.routed + s.below_threshold + s.fallbacks
    };

    // Cold phase: the first instantiation of each template compiles and
    // populates the cache.
    for (name, stmts) in &mix {
        let (_, outcome) = engine.plan_cached(&stmts[0], &orca).expect(name);
        assert_eq!(outcome, mylite::CacheOutcome::Miss, "{name} was already cached");
    }

    // Correctness: a cached plan re-bound to fresh literals must return
    // exactly what a from-scratch compile of the same text returns.
    let results_match = mix.iter().take(4).all(|(name, stmts)| {
        let cached = engine.query_cached(&stmts[1], &orca).expect(name);
        let fresh = engine.query_with(&stmts[1], &orca).expect(name);
        let mut a = cached.rows;
        let mut b = fresh.rows;
        a.sort_by_key(|r| format!("{r:?}"));
        b.sort_by_key(|r| format!("{r:?}"));
        a == b
    });

    // Calibration: per-template cold-compile cost via `Engine::plan`, which
    // bypasses the cache (stats stay untouched). Best of 3 — the minimum is
    // the least scheduler-contaminated estimate of the true compile cost.
    let mut cold_times = Vec::with_capacity(mix.len());
    for (name, stmts) in &mix {
        let cold = (0..3)
            .map(|_| {
                let t = Instant::now();
                engine.plan(&stmts[0], &orca).expect(name);
                t.elapsed()
            })
            .min()
            .unwrap();
        cold_times.push(cold);
    }

    // Hot phase: every instantiation again — all hits, no optimizer calls.
    // Each template's batch is timed as one span so per-call timer jitter
    // amortizes over the whole batch.
    let calls_before = optimizer_calls(&orca);
    let mut hit_times = Vec::with_capacity(mix.len());
    let mut executions = 0usize;
    for (name, stmts) in &mix {
        let t = Instant::now();
        for s in stmts {
            let (_, outcome) = engine.plan_cached(s, &orca).expect(name);
            assert_eq!(outcome, mylite::CacheOutcome::Hit, "{name} missed in the hot phase");
        }
        hit_times.push(t.elapsed() / stmts.len() as u32);
        executions += stmts.len();
    }
    let optimizer_calls_hot = optimizer_calls(&orca) - calls_before;
    let stats = engine.plan_cache_stats();

    // DDL phase: ANALYZE publishes new statistics, bumping the catalog
    // version; every cached statement must re-compile on next use.
    let inval_before = stats.invalidations;
    engine.analyze();
    for (name, stmts) in &mix {
        engine.plan_cached(&stmts[0], &orca).expect(name);
    }
    let ddl_invalidations = engine.plan_cache_stats().invalidations - inval_before;

    let per_template: Vec<TemplateTiming> = mix
        .iter()
        .zip(cold_times.iter().zip(&hit_times))
        .map(|((name, _), (&cold, &hit))| TemplateTiming { name: name.to_string(), cold, hit })
        .collect();
    cold_times.sort();
    hit_times.sort();
    PlanCacheReport {
        executions,
        templates: mix.len(),
        stats,
        per_template,
        cold_compile: cold_times[cold_times.len() / 2],
        hit_path: hit_times[hit_times.len() / 2],
        optimizer_calls_hot,
        ddl_invalidations,
        results_match,
    }
}

/// Format the plan-cache report as markdown (the `harness plancache` body).
pub fn format_plan_cache_report(r: &PlanCacheReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "| metric | value |");
    let _ = writeln!(s, "|---|---|");
    let _ = writeln!(s, "| statement templates | {} |", r.templates);
    let _ = writeln!(s, "| hot-phase executions | {} |", r.executions);
    let _ = writeln!(
        s,
        "| cache hit rate | {:.1}% ({} hits / {} misses / {} invalidations) |",
        r.stats.hit_rate() * 100.0,
        r.stats.hits,
        r.stats.misses,
        r.stats.invalidations
    );
    let _ = writeln!(s, "| median cold compile | {:.3?} |", r.cold_compile);
    let _ = writeln!(s, "| median hit path | {:.3?} |", r.hit_path);
    let _ = writeln!(s, "| median per-template speedup | {:.1}x |", r.speedup());
    let _ = writeln!(s, "| optimizer calls during hot phase | {} |", r.optimizer_calls_hot);
    let _ = writeln!(s, "| entries invalidated by ANALYZE | {} |", r.ddl_invalidations);
    let _ = writeln!(s, "| cached results match fresh compiles | {} |", r.results_match);
    let _ = writeln!(s, "\n| template | cold compile | hit path | speedup |");
    let _ = writeln!(s, "|---|---|---|---|");
    for t in &r.per_template {
        let _ =
            writeln!(s, "| {} | {:.3?} | {:.3?} | {:.1}x |", t.name, t.cold, t.hit, t.speedup());
    }
    s
}

/// Format a suite comparison as a markdown table (used by the harness and
/// pasted into EXPERIMENTS.md).
pub fn format_suite_table(results: &[QueryComparison]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| query | MySQL time | Orca time | time ratio (orca/mysql) | MySQL work | Orca work | work speedup | routed |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|---|---|");
    for r in results {
        let _ = writeln!(
            s,
            "| {} | {:.3?} | {:.3?} | {:.2} | {} | {} | {:.2}× | {} |",
            r.name,
            r.mysql,
            r.orca,
            r.time_ratio(),
            r.mysql_work,
            r.orca_work,
            r.work_speedup(),
            if r.orca_assisted { "orca" } else { "mysql" }
        );
    }
    let total_m: f64 = results.iter().map(|r| r.mysql.as_secs_f64()).sum();
    let total_o: f64 = results.iter().map(|r| r.orca.as_secs_f64()).sum();
    let _ = writeln!(
        s,
        "\ntotal: MySQL {:.3}s, Orca {:.3}s — Orca reduces total run time by {:.0}%",
        total_m,
        total_o,
        (1.0 - total_o / total_m) * 100.0
    );
    let improved = results.iter().filter(|r| r.time_ratio() < 0.95).count();
    let tenx = results
        .iter()
        .filter(|r| r.work_speedup() >= 10.0)
        .map(|r| r.name.clone())
        .collect::<Vec<_>>();
    let _ = writeln!(
        s,
        "Orca-faster queries: {improved}/{}; ≥10× work reduction: {:?}",
        results.len(),
        tenx
    );
    s
}

// ---------------------------------------------------------------- parallel

/// One parallel microbench template measured serial vs parallel.
#[derive(Debug, Clone)]
pub struct ParallelMeasurement {
    pub name: &'static str,
    /// Serial work units (dop 1).
    pub serial_work: u64,
    /// Parallel critical-path work units (slowest worker per fragment).
    pub parallel_critical: u64,
    /// Rows returned (serial == parallel enforced separately).
    pub rows: usize,
    /// Parallel rows byte-identical to serial, in order.
    pub rows_match: bool,
    /// The parallel plan actually placed an exchange.
    pub exchanged: bool,
}

impl ParallelMeasurement {
    /// Machine-independent speedup: serial work over the parallel critical
    /// path. Wall clock would measure the container's core count; this
    /// measures the plan's parallelism.
    pub fn speedup(&self) -> f64 {
        self.serial_work as f64 / self.parallel_critical.max(1) as f64
    }
}

/// The morsel-driven parallel execution report (`harness parallel`).
#[derive(Debug, Clone)]
pub struct ParallelReport {
    pub dop: usize,
    pub per_template: Vec<ParallelMeasurement>,
}

impl ParallelReport {
    pub fn median_speedup(&self) -> f64 {
        let mut s: Vec<f64> = self.per_template.iter().map(|m| m.speedup()).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        s.get(s.len() / 2).copied().unwrap_or(0.0)
    }

    /// The CI gate: every template must return identical rows and place its
    /// exchange, and the median critical-path speedup at this dop must
    /// reach 2× — the acceptance bar for the parallel subsystem.
    pub fn gate(&self) -> std::result::Result<(), String> {
        for m in &self.per_template {
            if !m.rows_match {
                return Err(format!("{}: parallel rows diverged from serial", m.name));
            }
            if !m.exchanged {
                return Err(format!("{}: no exchange was placed (plan stayed serial)", m.name));
            }
        }
        let median = self.median_speedup();
        if median < 2.0 {
            return Err(format!(
                "median critical-path speedup {median:.2}x < 2.0x at dop={}",
                self.dop
            ));
        }
        Ok(())
    }
}

/// The scan/join/agg microbench templates the parallel gate runs on. All
/// drive `lineitem`, the workload's biggest table, so morsel-parallelism
/// has work to split.
fn parallel_templates() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "scan-filter",
            "SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem \
             WHERE l_quantity > 10 AND l_discount < 0.09",
        ),
        (
            "hash-join",
            "SELECT l_orderkey, l_quantity, o_orderdate FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND l_quantity > 20",
        ),
        (
            "group-agg",
            "SELECT l_returnflag, l_linestatus, COUNT(*) AS n, SUM(l_quantity) AS qty \
             FROM lineitem GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus",
        ),
        (
            "sort-merge",
            "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity > 30 \
             ORDER BY l_extendedprice DESC, l_orderkey",
        ),
    ]
}

/// Run the parallel microbench: each template serial, then at `dop`, with
/// the placement threshold and morsel size lowered so small bench scales
/// still split into enough morsels per worker.
pub fn run_parallel(scale: Scale, dop: usize) -> ParallelReport {
    let engine = Workload::TpcH.build_engine(scale);
    engine.set_parallel_threshold(8);
    engine.set_morsel_rows(64);
    let mut per_template = Vec::new();
    for (name, sql) in parallel_templates() {
        engine.set_dop(1);
        let serial = engine.query(sql).expect(name);
        engine.set_dop(dop);
        let parallel = engine.query(sql).expect(name);
        let planned = engine.plan(sql, &MySqlOptimizer).expect(name);
        let exchanged = format!("{:?}", planned.primary().plan).contains("Exchange");
        per_template.push(ParallelMeasurement {
            name,
            serial_work: serial.work_units,
            parallel_critical: parallel.critical_work_units,
            rows: serial.rows.len(),
            rows_match: serial.rows == parallel.rows,
            exchanged,
        });
    }
    ParallelReport { dop, per_template }
}

/// Format the parallel report as markdown (the `harness parallel` body).
pub fn format_parallel_report(r: &ParallelReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| template | rows | serial work | critical path (dop={}) | speedup | identical |",
        r.dop
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for m in &r.per_template {
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {:.2}× | {} |",
            m.name,
            m.rows,
            m.serial_work,
            m.parallel_critical,
            m.speedup(),
            m.rows_match
        );
    }
    let _ = writeln!(s, "\nmedian critical-path speedup: {:.2}×", r.median_speedup());
    s
}

// ---------------------------------------------------------------- vectorized

/// One vectorized microbench template: serial row vs serial batch vs
/// parallel batch, wall-clock medians over repeated executions of the
/// same compiled plan (planning is paid once, outside the timed loop).
#[derive(Debug, Clone)]
pub struct VectorizedMeasurement {
    pub name: &'static str,
    /// Rows returned (identical across engines enforced separately).
    pub rows: usize,
    /// Median wall time, serial row engine (ns).
    pub row_ns: u64,
    /// Median wall time, serial batch engine (ns).
    pub batch_ns: u64,
    /// Median wall time, batch engine at the report's dop (ns).
    pub batch_par_ns: u64,
    /// Serial batch rows byte-identical to serial row, in order.
    pub batch_match: bool,
    /// Parallel batch rows byte-identical to serial row, in order.
    pub batch_par_match: bool,
}

impl VectorizedMeasurement {
    /// Serial-row over serial-batch wall time: the pure vectorization win,
    /// no parallelism involved.
    pub fn speedup(&self) -> f64 {
        self.row_ns as f64 / self.batch_ns.max(1) as f64
    }

    /// Serial-row over parallel-batch wall time: vectorization × morsels.
    pub fn par_speedup(&self) -> f64 {
        self.row_ns as f64 / self.batch_par_ns.max(1) as f64
    }
}

/// The vectorized execution report (`harness vectorized`).
#[derive(Debug, Clone)]
pub struct VectorizedReport {
    pub dop: usize,
    pub reps: usize,
    pub per_template: Vec<VectorizedMeasurement>,
}

impl VectorizedReport {
    /// Median serial-batch speedup across templates.
    pub fn median_speedup(&self) -> f64 {
        let mut s: Vec<f64> = self.per_template.iter().map(|m| m.speedup()).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        s.get(s.len() / 2).copied().unwrap_or(0.0)
    }

    /// The CI gate: both batch variants must return the serial row engine's
    /// bytes on every template (the purity contract), and the median
    /// serial-batch speedup must reach 2× — the acceptance bar for the
    /// columnar engine on its scan/filter/agg-heavy showcase templates.
    pub fn gate(&self) -> std::result::Result<(), String> {
        for m in &self.per_template {
            if !m.batch_match {
                return Err(format!("{}: serial batch rows diverged from serial row", m.name));
            }
            if !m.batch_par_match {
                return Err(format!(
                    "{}: batch rows at dop={} diverged from serial row",
                    m.name, self.dop
                ));
            }
        }
        let median = self.median_speedup();
        if median < 2.0 {
            return Err(format!("median serial-batch speedup {median:.2}x < 2.0x"));
        }
        Ok(())
    }
}

/// The scan/filter/agg-heavy templates the vectorized gate runs on. All
/// are selective over `lineitem`: the batch scan prunes columns and
/// prefilters rows before transposing, so selective predicates are where
/// the columnar engine is designed to win (low-selectivity wide scans
/// roughly break even and are covered by the fuzzer, not this gate).
fn vectorized_templates() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "q6-filter-agg",
            "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
             WHERE l_discount >= 0.04 AND l_discount <= 0.06 AND l_quantity < 24",
        ),
        (
            "filter-project",
            "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity > 45",
        ),
        (
            "conjunct-scan",
            "SELECT l_orderkey, l_quantity, l_discount FROM lineitem \
             WHERE l_quantity > 40 AND l_discount < 0.03 AND l_extendedprice > 2000",
        ),
        (
            "scalar-minmax",
            "SELECT COUNT(*) AS n, MIN(l_extendedprice) AS lo, MAX(l_extendedprice) AS hi, \
             SUM(l_quantity) AS qty FROM lineitem WHERE l_discount > 0.07",
        ),
        (
            "grouped-selective",
            "SELECT l_returnflag, COUNT(*) AS n, SUM(l_extendedprice) AS total \
             FROM lineitem WHERE l_quantity > 45 GROUP BY l_returnflag ORDER BY l_returnflag",
        ),
    ]
}

/// Median wall time of `reps` executions of an already-compiled plan.
fn median_exec_ns(engine: &Engine, planned: &mylite::PlannedQuery, reps: usize) -> u64 {
    let mut ts = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        engine.execute_planned(planned).expect("timed run");
        ts.push(t.elapsed().as_nanos() as u64);
    }
    ts.sort_unstable();
    ts[ts.len() / 2]
}

/// Run the vectorized microbench: each template compiled once per plan
/// shape, then executed `reps` times per engine (serial row, serial
/// batch, batch at `dop`) with the median wall time reported. The knob is
/// execution-only, so the serial plan is shared by both serial engines;
/// only the parallel variant re-plans (exchange placement depends on dop).
pub fn run_vectorized(scale: Scale, dop: usize, reps: usize) -> VectorizedReport {
    let engine = Workload::TpcH.build_engine(scale);
    engine.set_parallel_threshold(8);
    engine.set_morsel_rows(256);
    let mut per_template = Vec::new();
    for (name, sql) in vectorized_templates() {
        engine.set_dop(1);
        engine.set_vectorized(false);
        let serial_plan = engine.plan(sql, &MySqlOptimizer).expect(name);
        let reference = engine.execute_planned(&serial_plan).expect(name);
        let row_ns = median_exec_ns(&engine, &serial_plan, reps);

        engine.set_vectorized(true);
        let batch_out = engine.execute_planned(&serial_plan).expect(name);
        let batch_ns = median_exec_ns(&engine, &serial_plan, reps);

        engine.set_dop(dop);
        let par_plan = engine.plan(sql, &MySqlOptimizer).expect(name);
        let par_out = engine.execute_planned(&par_plan).expect(name);
        let batch_par_ns = median_exec_ns(&engine, &par_plan, reps);

        engine.set_dop(1);
        engine.set_vectorized(false);
        per_template.push(VectorizedMeasurement {
            name,
            rows: reference.rows.len(),
            row_ns,
            batch_ns,
            batch_par_ns,
            batch_match: reference.rows == batch_out.rows,
            batch_par_match: reference.rows == par_out.rows,
        });
    }
    VectorizedReport { dop, reps, per_template }
}

/// Format the vectorized report as markdown (the `harness vectorized` body).
pub fn format_vectorized_report(r: &VectorizedReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| template | rows | serial row | serial batch | batch dop={} | batch speedup | ×dop | identical |",
        r.dop
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|---|---|");
    for m in &r.per_template {
        let _ = writeln!(
            s,
            "| {} | {} | {:.3?} | {:.3?} | {:.3?} | {:.2}× | {:.2}× | {} |",
            m.name,
            m.rows,
            Duration::from_nanos(m.row_ns),
            Duration::from_nanos(m.batch_ns),
            Duration::from_nanos(m.batch_par_ns),
            m.speedup(),
            m.par_speedup(),
            m.batch_match && m.batch_par_match
        );
    }
    let _ = writeln!(
        s,
        "\nmedian serial-batch speedup: {:.2}× (medians over {} runs per cell, plan compiled once)",
        r.median_speedup(),
        r.reps
    );
    s
}

/// Per-template observation: the worst operator q-error at dop 1, and
/// whether instrumented runs (serial and parallel) returned byte-identical
/// rows to an uninstrumented run of the same plan.
#[derive(Debug, Clone)]
pub struct ObserveMeasurement {
    pub workload: &'static str,
    pub name: String,
    /// Operators in the (serial) analyzed plan.
    pub operators: usize,
    /// Operators that actually executed (loops > 0).
    pub executed: usize,
    /// Worst per-operator q-error at dop 1.
    pub max_q: f64,
    /// `EXPLAIN ANALYZE` at dop 1 returned the uninstrumented rows.
    pub serial_identical: bool,
    /// `EXPLAIN ANALYZE` at the report's dop returned the same rows.
    pub parallel_identical: bool,
}

/// The CI ceiling for the worst per-operator q-error across both suites.
/// Observed max at bench scales is ~340 (TPC-DS grouped-aggregate guesses);
/// the pre-fix derived-table bug sat at 10^28, so the ceiling separates
/// honest estimation noise from compounding estimation bugs by 25 orders
/// of magnitude.
pub const OBSERVE_Q_CEILING: f64 = 1000.0;

/// The estimation-quality report (`harness observe`): every TPC-H and
/// TPC-DS template run under `EXPLAIN ANALYZE`, with the q-error
/// distribution over per-template worst operators.
#[derive(Debug, Clone)]
pub struct ObserveReport {
    pub dop: usize,
    pub per_template: Vec<ObserveMeasurement>,
}

impl ObserveReport {
    fn sorted_qs(&self) -> Vec<f64> {
        let mut qs: Vec<f64> = self.per_template.iter().map(|m| m.max_q).collect();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        qs
    }

    pub fn median_q(&self) -> f64 {
        let qs = self.sorted_qs();
        qs.get(qs.len() / 2).copied().unwrap_or(1.0)
    }

    pub fn p95_q(&self) -> f64 {
        let qs = self.sorted_qs();
        if qs.is_empty() {
            return 1.0;
        }
        qs[((qs.len() - 1) as f64 * 0.95).round() as usize]
    }

    pub fn max_q(&self) -> f64 {
        self.sorted_qs().last().copied().unwrap_or(1.0)
    }

    /// The template with the worst operator estimate, named so regressions
    /// point straight at a query shape.
    pub fn worst_template(&self) -> Option<&ObserveMeasurement> {
        self.per_template
            .iter()
            .max_by(|a, b| a.max_q.partial_cmp(&b.max_q).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The CI gate: instrumentation must never change results (serial or
    /// parallel), every template must execute at least one operator, and
    /// the worst q-error must stay under `ceiling` — a cardinality
    /// regression anywhere in the estimation stack trips this.
    pub fn gate(&self, ceiling: f64) -> std::result::Result<(), String> {
        for m in &self.per_template {
            if !m.serial_identical {
                return Err(format!("{} {}: analyzed serial rows diverged", m.workload, m.name));
            }
            if !m.parallel_identical {
                return Err(format!(
                    "{} {}: analyzed rows diverged at dop={}",
                    m.workload, m.name, self.dop
                ));
            }
            if m.executed == 0 {
                return Err(format!("{} {}: no operator recorded execution", m.workload, m.name));
            }
        }
        let max = self.max_q();
        if max > ceiling {
            let worst = self.worst_template().expect("non-empty");
            return Err(format!(
                "max q-error {max:.1} exceeds ceiling {ceiling:.1} \
                 (worst template: {} {})",
                worst.workload, worst.name
            ));
        }
        Ok(())
    }
}

/// Run every TPC-H and TPC-DS template under `EXPLAIN ANALYZE` through the
/// Orca detour (threshold per workload, so both backends are exercised).
/// q-errors are measured at dop 1, where estimates and totals compare
/// directly; the dop-`dop` pass re-analyzes each query to prove the
/// instrumentation is invisible under parallel exchange operators too.
pub fn run_observe(scale: Scale, dop: usize) -> ObserveReport {
    let mut per_template = Vec::new();
    for workload in [Workload::TpcH, Workload::TpcDs] {
        let engine = workload.build_engine(scale);
        // Lowered placement knobs so small bench scales still parallelize.
        engine.set_parallel_threshold(8);
        engine.set_morsel_rows(64);
        let orca = OrcaOptimizer::new(OrcaConfig::default(), workload.threshold());
        for q in workload.queries() {
            engine.set_dop(1);
            let plain = engine.query_with(&q.sql, &orca).expect(q.name);
            let serial = engine.explain_analyze(&q.sql, &orca).expect(q.name);
            engine.set_dop(dop);
            let parallel = engine.explain_analyze(&q.sql, &orca).expect(q.name);
            let max_q = serial.nodes.iter().filter_map(|n| n.q_error).fold(1.0, f64::max);
            per_template.push(ObserveMeasurement {
                workload: workload.name(),
                name: q.name.to_string(),
                operators: serial.nodes.len(),
                executed: serial.nodes.iter().filter(|n| n.loops > 0).count(),
                max_q,
                serial_identical: serial.output.rows == plain.rows,
                parallel_identical: parallel.output.rows == plain.rows,
            });
        }
    }
    ObserveReport { dop, per_template }
}

/// Format the observe report as markdown (the `harness observe` body).
pub fn format_observe_report(r: &ObserveReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| workload | template | operators | max q-error | identical (serial / dop={}) |",
        r.dop
    );
    let _ = writeln!(s, "|---|---|---|---|---|");
    for m in &r.per_template {
        let _ = writeln!(
            s,
            "| {} | {} | {} | {:.2} | {} / {} |",
            m.workload, m.name, m.operators, m.max_q, m.serial_identical, m.parallel_identical
        );
    }
    let _ = writeln!(
        s,
        "\nq-error over per-template worst operators: median {:.2}, p95 {:.2}, max {:.2}",
        r.median_q(),
        r.p95_q(),
        r.max_q()
    );
    if let Some(w) = r.worst_template() {
        let _ = writeln!(s, "worst template: {} {} (q-error {:.2})", w.workload, w.name, w.max_q);
    }
    s
}

// --------------------------------------------------------------- feedback

/// Convergence ceiling for the feedback loop: after one observed execution
/// and one feedback-driven re-optimization, the worst per-operator q-error
/// of every template that started above the re-optimization threshold must
/// land at or under this.
pub const FEEDBACK_Q_CEILING: f64 = 2.0;

/// One template through the feedback loop: three `analyze_cached` serves
/// of the same statement.
#[derive(Debug, Clone)]
pub struct FeedbackMeasurement {
    pub workload: &'static str,
    pub name: String,
    /// Worst per-operator q-error of the first (statically planned) serve.
    pub first_q: f64,
    /// Worst q-error of the second serve — re-optimized with observed
    /// cardinalities when `first_q` crossed the threshold.
    pub second_q: f64,
    /// Cache-outcome labels of the three serves.
    pub outcomes: [&'static str; 3],
    /// Row multisets agree across all three serves (4-decimal double
    /// rounding — plan shapes legitimately reorder float aggregation).
    pub identical: bool,
}

/// The feedback-loop report (`harness feedback`): every TPC-H and TPC-DS
/// template compiled, observed, and (when its worst q-error crossed the
/// threshold) re-optimized with true cardinalities injected.
#[derive(Debug, Clone)]
pub struct FeedbackReport {
    /// Re-optimization q-error threshold the engines ran with.
    pub threshold: f64,
    pub per_template: Vec<FeedbackMeasurement>,
    /// Router-side re-optimization count summed over both workloads.
    pub router_reoptimized: u64,
    /// Plan-cache re-optimization evictions summed over both workloads.
    pub cache_reoptimizations: u64,
}

impl FeedbackReport {
    /// Templates whose first serve exceeded the threshold (the loop's
    /// targets).
    pub fn bad_actors(&self) -> Vec<&FeedbackMeasurement> {
        self.per_template.iter().filter(|m| m.first_q > self.threshold).collect()
    }

    /// Templates the second serve re-optimized.
    pub fn reoptimized(&self) -> usize {
        self.per_template.iter().filter(|m| m.outcomes[1] == "reoptimized").count()
    }

    /// The CI gate for `harness feedback`:
    ///
    /// * results must be identical across all three serves of every
    ///   template (first compile, re-optimized serve, converged hit);
    /// * every template whose first worst q-error is above the threshold
    ///   must re-optimize on its second serve and land at or under
    ///   [`FEEDBACK_Q_CEILING`];
    /// * templates under the threshold must serve straight hits;
    /// * the third serve must be a hit everywhere — the convergence
    ///   guarantee (same observations never re-optimize twice);
    /// * at least one bad actor must exist — the loop must have something
    ///   to demonstrate on;
    /// * router and plan-cache re-optimization counters must agree with
    ///   the per-template outcomes.
    ///
    /// Note the first serve of a template is not necessarily a cache miss:
    /// generated templates that differ only in literals share a fingerprint
    /// (compile-once-serve-many working as designed), so a template whose
    /// twin compiled first legitimately opens on a hit — and can open
    /// straight onto a re-optimization when the twin's observations
    /// crossed the threshold.
    pub fn gate(&self) -> std::result::Result<(), String> {
        let mut bad_actors = 0usize;
        for m in &self.per_template {
            if !m.identical {
                return Err(format!("{} {}: rows diverged across serves", m.workload, m.name));
            }
            if m.outcomes[2] != "hit" {
                return Err(format!(
                    "{} {}: third serve was {}, expected hit (convergence guarantee)",
                    m.workload, m.name, m.outcomes[2]
                ));
            }
            if m.first_q > self.threshold {
                bad_actors += 1;
                if m.outcomes[1] != "reoptimized" {
                    return Err(format!(
                        "{} {}: first q-error {:.1} over threshold but second serve was {}",
                        m.workload, m.name, m.first_q, m.outcomes[1]
                    ));
                }
                if m.second_q > FEEDBACK_Q_CEILING {
                    return Err(format!(
                        "{} {}: re-optimized q-error {:.2} above ceiling {FEEDBACK_Q_CEILING} \
                         (started at {:.1})",
                        m.workload, m.name, m.second_q, m.first_q
                    ));
                }
            } else if m.outcomes[1] != "hit" {
                return Err(format!(
                    "{} {}: under threshold (q {:.1}) but second serve was {}",
                    m.workload, m.name, m.first_q, m.outcomes[1]
                ));
            }
        }
        if bad_actors == 0 {
            return Err("no template exceeded the threshold; nothing demonstrated".to_string());
        }
        let n = self.reoptimized() as u64;
        if self.router_reoptimized != n || self.cache_reoptimizations != n {
            return Err(format!(
                "re-optimization counters disagree: {} outcomes, router {}, cache {}",
                n, self.router_reoptimized, self.cache_reoptimizations
            ));
        }
        Ok(())
    }
}

/// Sorted row multiset with doubles rounded to 4 decimals — two plans for
/// the same query legitimately reorder floating-point aggregation.
fn row_multiset(rows: &[taurus_common::Row]) -> Vec<String> {
    let mut v: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    taurus_common::Value::Double(d) => {
                        format!("D{:.4}", if *d == 0.0 { 0.0 } else { *d })
                    }
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    v.sort();
    v
}

/// Run every template through three `analyze_cached` serves: compile +
/// observe, re-optimize (when the observed worst q-error crossed the
/// threshold), and the converged hit.
pub fn run_feedback(scale: Scale) -> FeedbackReport {
    let threshold = 10.0;
    let mut per_template = Vec::new();
    let mut router_reoptimized = 0u64;
    let mut cache_reoptimizations = 0u64;
    for workload in [Workload::TpcH, Workload::TpcDs] {
        let engine = workload.build_engine(scale);
        // Same placement knobs as the observe report, so q-errors match.
        engine.set_parallel_threshold(8);
        engine.set_morsel_rows(64);
        engine.set_reopt_q_threshold(Some(threshold));
        let orca = OrcaOptimizer::new(OrcaConfig::default(), workload.threshold());
        for q in workload.queries() {
            let (a1, o1) = engine.analyze_cached(&q.sql, &orca).expect(q.name);
            let (a2, o2) = engine.analyze_cached(&q.sql, &orca).expect(q.name);
            let (a3, o3) = engine.analyze_cached(&q.sql, &orca).expect(q.name);
            let worst = |a: &mylite::AnalyzedQuery| {
                a.nodes.iter().filter_map(|n| n.q_error).fold(1.0, f64::max)
            };
            let m1 = row_multiset(&a1.output.rows);
            let identical =
                m1 == row_multiset(&a2.output.rows) && m1 == row_multiset(&a3.output.rows);
            per_template.push(FeedbackMeasurement {
                workload: workload.name(),
                name: q.name.to_string(),
                first_q: worst(&a1),
                second_q: worst(&a2),
                outcomes: [o1.label(), o2.label(), o3.label()],
                identical,
            });
        }
        router_reoptimized += orca.stats().reoptimized;
        cache_reoptimizations += engine.plan_cache_stats().reoptimizations;
    }
    FeedbackReport { threshold, per_template, router_reoptimized, cache_reoptimizations }
}

/// Format the feedback report as markdown (the `harness feedback` body).
pub fn format_feedback_report(r: &FeedbackReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "| workload | template | q-error 1st | q-error 2nd | serves | identical |");
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for m in &r.per_template {
        let _ = writeln!(
            s,
            "| {} | {} | {:.2} | {:.2} | {} | {} |",
            m.workload,
            m.name,
            m.first_q,
            m.second_q,
            m.outcomes.join(" → "),
            m.identical
        );
    }
    let bad = r.bad_actors();
    let _ = writeln!(
        s,
        "\ntemplates over threshold {:.0}: {} of {}; re-optimized: {}",
        r.threshold,
        bad.len(),
        r.per_template.len(),
        r.reoptimized()
    );
    if let Some(worst) = bad
        .iter()
        .max_by(|a, b| a.first_q.partial_cmp(&b.first_q).unwrap_or(std::cmp::Ordering::Equal))
    {
        let _ = writeln!(
            s,
            "worst actor: {} {} — q-error {:.2} → {:.2} after re-optimization",
            worst.workload, worst.name, worst.first_q, worst.second_q
        );
    }
    s
}

// --------------------------------------------------------------- governance

/// One workload under chaos: its engine, its router (which accumulates the
/// governed-outcome counters), its templates, and lazily computed reference
/// answers for the post-failure recovery check.
struct GovernanceUnit {
    workload: Workload,
    engine: Engine,
    orca: OrcaOptimizer,
    queries: Vec<Query>,
    refs: Vec<Option<Vec<String>>>,
}

/// Outcome of the governance chaos run (`harness governance`): randomized
/// cancel points, wall-clock deadlines, and memory budgets injected across
/// every TPC-H and TPC-DS template. The invariants under test: no
/// disturbance may panic, tracked peak memory never exceeds a configured
/// budget, and after every governed failure the very next serve of the
/// same statement returns the undisturbed answer.
#[derive(Debug, Clone)]
pub struct GovernanceReport {
    /// Disturbed executions performed.
    pub injections: usize,
    /// Distinct templates the round-robin mix cycles through.
    pub templates: usize,
    /// Runs that finished before their disturbance could trip.
    pub completed_ok: usize,
    /// Runs stopped by the injected cancel point.
    pub cancelled: usize,
    /// Runs that died on the injected wall-clock deadline.
    pub deadline_exceeded: usize,
    /// Runs over the injected memory budget even at the serial rung.
    pub memory_exceeded: usize,
    /// Over-budget runs rescued by the engine's retry at dop=1 (from the
    /// routers' governed counters).
    pub memory_degraded: u64,
    /// Executions that panicked instead of failing typed. Must be zero.
    pub panics: usize,
    /// Runs where tracked peak memory exceeded the configured budget.
    pub peak_violations: usize,
    /// Post-failure re-serves compared against the undisturbed answer.
    pub recovery_checks: usize,
    /// Every invariant violation, described.
    pub failures: Vec<String>,
}

impl GovernanceReport {
    /// Disturbances that actually stopped an execution.
    pub fn governed_trips(&self) -> usize {
        self.cancelled + self.deadline_exceeded + self.memory_exceeded
    }

    /// The CI gate: zero panics, peak memory bounded by the budget on every
    /// run, every post-failure serve correct — and the mix must actually
    /// have tripped the governor, otherwise the run proved nothing.
    pub fn gate(&self) -> std::result::Result<(), String> {
        if self.panics > 0 {
            return Err(format!("{} disturbed executions panicked", self.panics));
        }
        if self.peak_violations > 0 {
            return Err(format!(
                "{} runs exceeded their configured memory budget",
                self.peak_violations
            ));
        }
        if let Some(first) = self.failures.first() {
            return Err(format!("{} violations; first: {first}", self.failures.len()));
        }
        if self.governed_trips() + self.memory_degraded as usize == 0 {
            return Err("no disturbance tripped the governor; the run proved nothing".into());
        }
        Ok(())
    }
}

/// Canonical rows for the recovery comparison. Rounded to 4 decimals:
/// recovery may execute a parallel plan, and float aggregation order is not
/// deterministic across runs of the same parallel plan.
fn governance_canon(rows: &[Vec<taurus_common::Value>]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    taurus_common::Value::Double(d) => format!("D{:.4}", d),
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

/// Run the governance chaos mix: `injections` disturbed executions
/// round-robined over every TPC-H and TPC-DS template, each under a
/// randomly drawn cancel point, deadline, or memory budget.
pub fn run_governance(scale: Scale, injections: usize) -> GovernanceReport {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use taurus_workloads::gen::SmallRng;

    let mut units: Vec<GovernanceUnit> = [Workload::TpcH, Workload::TpcDs]
        .into_iter()
        .map(|w| {
            let engine = w.build_engine(scale);
            // Lowered placement knobs so small scales still parallelize —
            // the chaos must reach the worker pool, not just serial paths.
            engine.set_parallel_threshold(8);
            engine.set_morsel_rows(64);
            let queries = w.queries();
            let refs = vec![None; queries.len()];
            GovernanceUnit {
                workload: w,
                engine,
                orca: OrcaOptimizer::new(OrcaConfig::default(), w.threshold()),
                queries,
                refs,
            }
        })
        .collect();
    let templates: usize = units.iter().map(|u| u.queries.len()).sum();
    let mut rng = SmallRng::seed_from_u64(0x676f7665726e);
    let mut report = GovernanceReport {
        injections,
        templates,
        completed_ok: 0,
        cancelled: 0,
        deadline_exceeded: 0,
        memory_exceeded: 0,
        memory_degraded: 0,
        panics: 0,
        peak_violations: 0,
        recovery_checks: 0,
        failures: Vec::new(),
    };

    for i in 0..injections {
        let mut flat = i % templates;
        let mut ui = 0;
        while flat >= units[ui].queries.len() {
            flat -= units[ui].queries.len();
            ui += 1;
        }
        let kind = rng.gen_range(0..3usize);
        let cancel_point = rng.gen_range(1..=40usize) as u64;
        let deadline_ms = rng.gen_range(1..=3usize) as u64;
        // Budgets from one byte to a mebibyte: tiny ones trip on the first
        // charge, large ones only on the heaviest templates.
        let mem_budget = 1u64 << rng.gen_range(0..21usize);

        let unit = &mut units[ui];
        let sql = unit.queries[flat].sql.clone();
        let name = format!("{} {}", unit.workload.name(), unit.queries[flat].name);
        let mut budget = None;
        match kind {
            0 => unit.engine.set_cancel_after(Some(cancel_point)),
            1 => unit.engine.set_deadline(Some(Duration::from_millis(deadline_ms))),
            _ => {
                budget = Some(mem_budget);
                unit.engine.set_memory_budget(Some(mem_budget));
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| unit.engine.query_cached(&sql, &unit.orca)));
        unit.engine.set_cancel_after(None);
        unit.engine.set_deadline(None);
        unit.engine.set_memory_budget(None);
        if let Some(b) = budget {
            let peak = unit.engine.last_peak_bytes();
            if peak > b {
                report.peak_violations += 1;
                report.failures.push(format!("{name}: tracked peak {peak} over budget {b}"));
            }
        }
        let failed = match outcome {
            Err(_) => {
                report.panics += 1;
                report.failures.push(format!("{name}: panicked under disturbance"));
                continue;
            }
            Ok(Ok(_)) => {
                report.completed_ok += 1;
                false
            }
            Ok(Err(e)) => {
                match e {
                    taurus_common::Error::Cancelled => report.cancelled += 1,
                    taurus_common::Error::DeadlineExceeded { .. } => report.deadline_exceeded += 1,
                    taurus_common::Error::MemoryExceeded { .. } => report.memory_exceeded += 1,
                    other => report
                        .failures
                        .push(format!("{name}: foreign error under disturbance: {other}")),
                }
                true
            }
        };
        if !failed {
            continue;
        }
        // Serviceability: immediately after every governed failure, the
        // same statement with clean knobs must produce the undisturbed
        // answer — no poisoned plan cache, no wedged workers.
        report.recovery_checks += 1;
        if unit.refs[flat].is_none() {
            // Reference from a fresh compile, bypassing the plan cache, so
            // a poisoned cache entry cannot vouch for itself.
            match unit.engine.query_with(&sql, &unit.orca) {
                Ok(out) => unit.refs[flat] = Some(governance_canon(&out.rows)),
                Err(e) => {
                    report.failures.push(format!("{name}: reference compile failed: {e}"));
                    continue;
                }
            }
        }
        let want = unit.refs[flat].as_ref().expect("just computed").clone();
        match unit.engine.query_cached(&sql, &unit.orca) {
            Err(e) => report.failures.push(format!("{name}: still failing after recovery: {e}")),
            Ok(out) => {
                if governance_canon(&out.rows) != want {
                    report
                        .failures
                        .push(format!("{name}: answer diverged after a governed failure"));
                }
            }
        }
    }
    report.memory_degraded = units.iter().map(|u| u.orca.stats().governed.memory_degraded).sum();
    report
}

/// Format the governance report as markdown (the `harness governance` body).
pub fn format_governance_report(r: &GovernanceReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "governance chaos: {} disturbed executions over {} templates\n",
        r.injections, r.templates
    );
    let _ = writeln!(s, "| outcome | runs |");
    let _ = writeln!(s, "|---|---|");
    let _ = writeln!(s, "| completed before the disturbance tripped | {} |", r.completed_ok);
    let _ = writeln!(s, "| cancelled | {} |", r.cancelled);
    let _ = writeln!(s, "| deadline exceeded | {} |", r.deadline_exceeded);
    let _ = writeln!(s, "| memory exceeded | {} |", r.memory_exceeded);
    let _ = writeln!(s, "| rescued by the serial degradation rung | {} |", r.memory_degraded);
    let _ = writeln!(s, "| post-failure recovery checks | {} |", r.recovery_checks);
    let _ = writeln!(s, "| panics | {} |", r.panics);
    let _ = writeln!(s, "| peak-memory budget violations | {} |", r.peak_violations);
    if !r.failures.is_empty() {
        let _ = writeln!(s, "\n{} violations:", r.failures.len());
        for f in &r.failures {
            let _ = writeln!(s, "- {f}");
        }
    }
    s
}

// ------------------------------------------------------------------- orders

/// One workload template measured with order optimization off vs on.
#[derive(Debug, Clone)]
pub struct OrdersMeasurement {
    pub workload: &'static str,
    pub name: String,
    /// Rows the always-enforce serial reference returned.
    pub rows: usize,
    /// Sort nodes in the refined plan with `order_opt` off (always-enforce).
    pub sorts_off: usize,
    /// Sort nodes with `order_opt` on (redundant enforcers dropped).
    pub sorts_on: usize,
    /// Memo `plans_costed` with `order_properties` off (order-blind search).
    pub plans_costed_off: u64,
    /// Memo `plans_costed` with `order_properties` on (ordered alternatives
    /// costed against plan-plus-enforcer).
    pub plans_costed_on: u64,
    /// Order-optimized rows byte-identical, in order, to the always-enforce
    /// serial reference at dop 1, 4, and 8.
    pub identical: bool,
}

/// The interesting-order report (`harness orders`).
#[derive(Debug, Clone)]
pub struct OrdersReport {
    pub per_template: Vec<OrdersMeasurement>,
}

impl OrdersReport {
    /// `(always-enforce, order-optimized)` Sort totals over all templates.
    pub fn total_sorts(&self) -> (usize, usize) {
        self.per_template.iter().fold((0, 0), |(off, on), m| (off + m.sorts_off, on + m.sorts_on))
    }

    /// The CI gate: dropped enforcers must never change bytes at any dop,
    /// no template may gain a Sort, the ordered alternatives must stay
    /// within 1.5× of the order-blind search effort per template, and the
    /// optimization must actually fire — strictly fewer Sort nodes across
    /// the workloads combined.
    pub fn gate(&self) -> std::result::Result<(), String> {
        for m in &self.per_template {
            if !m.identical {
                return Err(format!(
                    "{} {}: order-optimized rows diverged from always-enforce",
                    m.workload, m.name
                ));
            }
            if m.sorts_on > m.sorts_off {
                return Err(format!(
                    "{} {}: order optimization added Sort nodes ({} from {})",
                    m.workload, m.name, m.sorts_on, m.sorts_off
                ));
            }
            // 1.5× the order-blind effort, plus the ordered machinery's
            // fixed per-block charges (anchor ordered-leaf seed + root
            // decision) that dominate only when the order-blind search is
            // trivially small (a single-member block costs ~0 plans).
            if m.plans_costed_on as f64 > 1.5 * m.plans_costed_off as f64 + 6.0 {
                return Err(format!(
                    "{} {}: ordered alternatives cost {} plans vs {} order-blind (> 1.5×)",
                    m.workload, m.name, m.plans_costed_on, m.plans_costed_off
                ));
            }
        }
        let (off, on) = self.total_sorts();
        if on >= off {
            return Err(format!(
                "no Sort enforcer was eliminated: {on} Sort nodes with order_opt on \
                 vs {off} always-enforce"
            ));
        }
        Ok(())
    }
}

/// Run the interesting-order measurement over every TPC-H and TPC-DS
/// template: Sort-node counts and memo search effort with the optimization
/// off vs on, plus byte-identity of the optimized plans at dop 1/4/8
/// against the always-enforce serial reference.
pub fn run_orders(scale: Scale) -> OrdersReport {
    let mut per_template = Vec::new();
    for workload in [Workload::TpcH, Workload::TpcDs] {
        let engine = workload.build_engine(scale);
        // Lowered placement knobs so dop 4/8 actually parallelize at bench
        // scales — the byte-identity claim must cover GatherMerge.
        engine.set_parallel_threshold(8);
        engine.set_morsel_rows(64);
        // Threshold 1: every template takes the detour, so `plans_costed`
        // measures the memo's ordered alternatives, not the routing policy.
        let orca_off =
            OrcaOptimizer::new(OrcaConfig { order_properties: false, ..OrcaConfig::default() }, 1);
        let orca_on = OrcaOptimizer::new(OrcaConfig::default(), 1);
        for q in workload.queries() {
            engine.set_dop(1);
            engine.set_order_opt(false);
            let reference = engine.query(&q.sql).expect("workload query must run");
            let off_plan = engine.plan(&q.sql, &MySqlOptimizer).expect("workload query must plan");
            let sorts_off = mylite::orders::count_sorts(&off_plan.primary().plan);
            engine.plan(&q.sql, &orca_off).expect("workload query must plan");
            let plans_costed_off = orca_off.last_search_stats().plans_costed;

            engine.set_order_opt(true);
            let on_plan = engine.plan(&q.sql, &MySqlOptimizer).expect("workload query must plan");
            let sorts_on = mylite::orders::count_sorts(&on_plan.primary().plan);
            engine.plan(&q.sql, &orca_on).expect("workload query must plan");
            let plans_costed_on = orca_on.last_search_stats().plans_costed;

            let mut identical = true;
            for dop in [1usize, 4, 8] {
                engine.set_dop(dop);
                let got = engine.query(&q.sql).expect("workload query must run");
                if got.rows != reference.rows {
                    identical = false;
                    break;
                }
            }
            engine.set_dop(1);
            per_template.push(OrdersMeasurement {
                workload: workload.name(),
                name: q.name.to_string(),
                rows: reference.rows.len(),
                sorts_off,
                sorts_on,
                plans_costed_off,
                plans_costed_on,
                identical,
            });
        }
    }
    OrdersReport { per_template }
}

/// Format the orders report as markdown (the `harness orders` body). Only
/// templates where the optimization changed the Sort count get a table row;
/// the totals line always covers every template.
pub fn format_orders_report(r: &OrdersReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| workload | template | rows | Sorts enforce→optimized | \
         plans costed blind→ordered | identical (dop 1/4/8) |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for m in r.per_template.iter().filter(|m| m.sorts_on != m.sorts_off) {
        let _ = writeln!(
            s,
            "| {} | {} | {} | {}→{} | {}→{} | {} |",
            m.workload,
            m.name,
            m.rows,
            m.sorts_off,
            m.sorts_on,
            m.plans_costed_off,
            m.plans_costed_on,
            m.identical
        );
    }
    let (off, on) = r.total_sorts();
    let _ = writeln!(
        s,
        "\ntotal Sort nodes across {} templates: {off} always-enforce → {on} \
         order-optimized ({} eliminated)",
        r.per_template.len(),
        off.saturating_sub(on)
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runner_smoke() {
        // Tiny scale, one reputation: just verify plumbing end to end.
        let results = run_suite(Workload::TpcH, Scale(0.02), JoinOrderStrategy::Exhaustive, 1);
        assert_eq!(results.len(), 22);
        assert!(results.iter().all(|r| r.mysql_work > 0));
        let table = format_suite_table(&results);
        assert!(table.contains("| q1 |"));
        assert!(table.contains("total:"));
    }

    #[test]
    fn routing_report_accounts_for_every_query() {
        let report = run_routing(
            Workload::TpcH,
            Scale(0.02),
            JoinOrderStrategy::Exhaustive,
            OrcaConfig::default(),
        );
        let s = &report.stats;
        assert_eq!(s.routed + s.below_threshold + s.fallbacks, report.queries as u64, "{s:?}");
        assert_eq!(s.reasons.total(), s.fallbacks);
        let table = format_routing_table(&report);
        assert!(table.contains("| routed to Orca |"), "{table}");
        assert!(table.contains("| fell back to MySQL |"), "{table}");
    }

    #[test]
    fn compile_totals_has_three_rows() {
        let rows = compile_totals(Workload::TpcH, Scale(0.02));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].compiler, "MySQL");
        // Orca compilation is slower than MySQL compilation (§6.3 obs. 1).
        assert!(rows[1].total > rows[0].total);
        assert_eq!(rows[0].per_query.len(), 22);
    }

    #[test]
    fn plan_cache_report_passes_its_own_gate() {
        // 25 instances per template: 8 compulsory misses amortize to >95%.
        let r = run_plan_cache(Scale(0.05), 25);
        assert_eq!(r.executions, r.templates * 25);
        r.gate().expect("plan-cache acceptance gate");
        let table = format_plan_cache_report(&r);
        assert!(table.contains("| cache hit rate |"), "{table}");
        assert!(table.contains("| optimizer calls during hot phase | 0 |"), "{table}");
    }

    #[test]
    fn parallel_report_passes_its_own_gate() {
        let r = run_parallel(Scale(0.05), 4);
        assert_eq!(r.per_template.len(), 4);
        r.gate().expect("parallel acceptance gate");
        let table = format_parallel_report(&r);
        assert!(table.contains("median critical-path speedup"), "{table}");
    }

    #[test]
    fn vectorized_report_is_byte_identical() {
        // The ≥2x speedup half of the gate is wall-clock and only
        // meaningful in release builds — ci.sh enforces it there. Under
        // `cargo test` we pin the half that must hold everywhere: both
        // batch variants return the serial row engine's exact bytes.
        let r = run_vectorized(Scale(0.05), 4, 3);
        assert_eq!(r.per_template.len(), 5);
        for m in &r.per_template {
            assert!(m.batch_match, "{}: serial batch diverged", m.name);
            assert!(m.batch_par_match, "{}: dop-4 batch diverged", m.name);
            assert!(m.rows > 0, "{}: template returned nothing, proves nothing", m.name);
        }
        let table = format_vectorized_report(&r);
        assert!(table.contains("median serial-batch speedup"), "{table}");
        assert!(table.contains("q6-filter-agg"), "{table}");
    }

    #[test]
    fn vectorized_gate_catches_divergence_and_slowdowns() {
        let mut r = VectorizedReport {
            dop: 4,
            reps: 3,
            per_template: vec![VectorizedMeasurement {
                name: "q6-filter-agg",
                rows: 1,
                row_ns: 1000,
                batch_ns: 400,
                batch_par_ns: 300,
                batch_match: true,
                batch_par_match: true,
            }],
        };
        r.gate().expect("clean report passes");
        r.per_template[0].batch_ns = 900;
        assert!(r.gate().unwrap_err().contains("< 2.0x"));
        r.per_template[0].batch_ns = 400;
        r.per_template[0].batch_par_match = false;
        assert!(r.gate().unwrap_err().contains("dop=4"));
        r.per_template[0].batch_par_match = true;
        r.per_template[0].batch_match = false;
        assert!(r.gate().unwrap_err().contains("diverged"));
    }

    #[test]
    fn observe_report_passes_its_own_gate() {
        let r = run_observe(Scale(0.05), 4);
        assert_eq!(r.per_template.len(), 22 + 99, "every TPC-H and TPC-DS template");
        r.gate(OBSERVE_Q_CEILING).expect("observe acceptance gate");
        assert!(r.median_q() >= 1.0 && r.median_q() < 20.0, "median {}", r.median_q());
        let table = format_observe_report(&r);
        assert!(table.contains("worst template:"), "{table}");
        assert!(table.contains("| TPC-H | q1 |"), "{table}");
    }

    #[test]
    fn observe_gate_catches_divergence_and_blowups() {
        let mut r = ObserveReport {
            dop: 4,
            per_template: vec![ObserveMeasurement {
                workload: "TPC-H",
                name: "q1".into(),
                operators: 5,
                executed: 5,
                max_q: 2.0,
                serial_identical: true,
                parallel_identical: true,
            }],
        };
        r.gate(OBSERVE_Q_CEILING).expect("clean report passes");
        r.per_template[0].max_q = OBSERVE_Q_CEILING * 10.0;
        assert!(r.gate(OBSERVE_Q_CEILING).unwrap_err().contains("q-error"));
        r.per_template[0].max_q = 2.0;
        r.per_template[0].parallel_identical = false;
        assert!(r.gate(OBSERVE_Q_CEILING).unwrap_err().contains("dop=4"));
        r.per_template[0].parallel_identical = true;
        r.per_template[0].serial_identical = false;
        assert!(r.gate(OBSERVE_Q_CEILING).unwrap_err().contains("diverged"));
    }

    #[test]
    fn governance_report_passes_its_own_gate() {
        // A small chaos budget for test speed; ci.sh runs the full mix.
        let r = run_governance(Scale(0.05), 40);
        assert_eq!(r.templates, 22 + 99, "round-robin covers both workloads");
        assert_eq!(r.injections, 40);
        r.gate().expect("governance acceptance gate");
        assert!(r.governed_trips() > 0, "disturbances must actually trip: {r:?}");
        let table = format_governance_report(&r);
        assert!(table.contains("| cancelled |"), "{table}");
        assert!(table.contains("| panics | 0 |"), "{table}");
    }

    #[test]
    fn governance_gate_flags_every_violation_class() {
        let clean = GovernanceReport {
            injections: 10,
            templates: 5,
            completed_ok: 4,
            cancelled: 3,
            deadline_exceeded: 2,
            memory_exceeded: 1,
            memory_degraded: 0,
            panics: 0,
            peak_violations: 0,
            recovery_checks: 6,
            failures: Vec::new(),
        };
        clean.gate().expect("clean report passes");
        let mut r = clean.clone();
        r.panics = 1;
        assert!(r.gate().unwrap_err().contains("panicked"));
        r = clean.clone();
        r.peak_violations = 2;
        assert!(r.gate().unwrap_err().contains("memory budget"));
        r = clean.clone();
        r.failures.push("TPC-H q1: answer diverged after a governed failure".into());
        assert!(r.gate().unwrap_err().contains("diverged"));
        r = clean;
        r.cancelled = 0;
        r.deadline_exceeded = 0;
        r.memory_exceeded = 0;
        assert!(r.gate().unwrap_err().contains("proved nothing"));
    }

    #[test]
    fn orders_report_passes_its_own_gate() {
        let r = run_orders(Scale(0.05));
        assert_eq!(r.per_template.len(), 22 + 99, "every TPC-H and TPC-DS template");
        r.gate().expect("orders acceptance gate");
        let (off, on) = r.total_sorts();
        assert!(on < off, "no enforcer eliminated: {on} vs {off}");
        let table = format_orders_report(&r);
        assert!(table.contains("total Sort nodes across 121 templates"), "{table}");
    }

    #[test]
    fn orders_gate_catches_every_violation_class() {
        let clean = OrdersReport {
            per_template: vec![
                OrdersMeasurement {
                    workload: "TPC-H",
                    name: "q1".into(),
                    rows: 4,
                    sorts_off: 2,
                    sorts_on: 1,
                    plans_costed_off: 100,
                    plans_costed_on: 120,
                    identical: true,
                },
                OrdersMeasurement {
                    workload: "TPC-H",
                    name: "q3".into(),
                    rows: 10,
                    sorts_off: 1,
                    sorts_on: 1,
                    plans_costed_off: 50,
                    plans_costed_on: 60,
                    identical: true,
                },
            ],
        };
        clean.gate().expect("clean report passes");
        let mut r = clean.clone();
        r.per_template[0].identical = false;
        assert!(r.gate().unwrap_err().contains("diverged"));
        r = clean.clone();
        r.per_template[0].plans_costed_on = 157;
        assert!(r.gate().unwrap_err().contains("1.5×"));
        r = clean.clone();
        r.per_template[1].sorts_on = 2;
        assert!(r.gate().unwrap_err().contains("added Sort nodes"));
        r = clean;
        r.per_template[0].sorts_on = 2;
        assert!(r.gate().unwrap_err().contains("no Sort enforcer was eliminated"));
    }

    #[test]
    fn q17_case_study_matches_paper_shape() {
        let cs = q17_case_study(Scale(0.05), 1);
        // Listing 7's key features: the Orca EXPLAIN banner, a correlated
        // materialization, and the derived table in the plan.
        assert!(cs.orca_explain.starts_with("EXPLAIN (ORCA)"));
        assert!(cs.orca_explain.contains("Materialize (invalidate on outer row)"));
        assert!(cs.orca_explain.contains("derived"));
    }

    #[test]
    fn q72_case_study_plan_shapes() {
        let cs = q72_case_study(Scale(0.05), 1);
        // MySQL: left-deep (Fig 4). Orca: at least as many hash joins and
        // no more work than MySQL (Fig 5's better join methods).
        assert!(cs.mysql_left_deep);
        assert!(cs.orca_joins.1 >= cs.mysql_joins.1);
        assert!(cs.orca_work <= cs.mysql_work);
    }
}
