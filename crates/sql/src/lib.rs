//! SQL frontend: lexer, raw AST, and parser.
//!
//! Parses the dialect the workloads need — the decision-support subset of
//! MySQL's SQL: `SELECT` blocks with inner/left/cross joins, `EXISTS`/`IN`
//! (scalar and quantified) subqueries, derived tables, non-recursive CTEs,
//! grouping/aggregation, `CASE`, `ORDER BY`/`LIMIT`, plus the set operators
//! `UNION`/`INTERSECT`/`EXCEPT`. MySQL 8.0 does not support
//! `INTERSECT`/`EXCEPT` (paper §6.2 had to rewrite TPC-DS queries by hand);
//! [`rewrite::rewrite_set_ops`] performs the equivalent mechanical rewrite.
//!
//! The AST here is *unresolved* — names are plain strings. The `mylite`
//! crate resolves and prepares it, mirroring MySQL's Parser → Resolver →
//! Prepare pipeline (paper Fig 2).

pub mod ast;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod rewrite;

pub use ast::*;
pub use parser::parse;
