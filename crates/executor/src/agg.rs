//! Aggregate accumulators.

use std::collections::HashSet;
use taurus_common::error::Result;
use taurus_common::{AggFunc, Value};

/// Running state for one aggregate within one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    /// `Some` when DISTINCT: tracks values already folded in.
    seen: Option<HashSet<Value>>,
    count: u64,
    sum: f64,
    sum_sq: f64,
    /// SUM over pure integers stays integral, like MySQL. Accumulated in
    /// i128 so `i64`-ranged inputs cannot overflow mid-stream; `finish`
    /// promotes to `Double` only when the exact total leaves i64 range.
    int_sum: Option<i128>,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    pub fn new(func: AggFunc, distinct: bool) -> Accumulator {
        Accumulator {
            func,
            seen: if distinct { Some(HashSet::new()) } else { None },
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            int_sum: Some(0),
            min: None,
            max: None,
        }
    }

    /// Feed one input value. `COUNT(*)` is fed a non-null placeholder by the
    /// caller; all other aggregates skip NULLs per SQL semantics.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if self.func != AggFunc::CountStar && v.is_null() {
            return Ok(());
        }
        if let Some(seen) = &mut self.seen {
            if !seen.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        match self.func {
            AggFunc::CountStar | AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg | AggFunc::StdDev => {
                if let Some(x) = v.as_f64() {
                    self.sum += x;
                    self.sum_sq += x * x;
                }
                self.int_sum = match (self.int_sum, v) {
                    (Some(acc), Value::Int(i)) => acc.checked_add(*i as i128),
                    _ => None,
                };
            }
            AggFunc::Min => {
                let replace = self
                    .min
                    .as_ref()
                    .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less));
                if replace {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                let replace = self
                    .max
                    .as_ref()
                    .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater));
                if replace {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Final value for the group.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::CountStar | AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    match self.int_sum {
                        Some(i) if i64::try_from(i).is_ok() => Value::Int(i as i64),
                        // Exact integer total outside i64 range: promote.
                        // `as f64` rounds the i128 to the nearest double,
                        // which is the best any f64-typed SUM can report.
                        Some(i) => Value::Double(i as f64),
                        None => Value::Double(self.sum),
                    }
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    // Prefer the exact integer total: the f64 shadow sum
                    // loses low bits once values approach 2^53.
                    Value::Double(match self.int_sum {
                        Some(i) => avg_exact(i, self.count),
                        None => self.sum / self.count as f64,
                    })
                }
            }
            AggFunc::StdDev => {
                if self.count == 0 {
                    Value::Null
                } else {
                    let n = self.count as f64;
                    let mean = self.sum / n;
                    // Population stddev, like MySQL's STDDEV.
                    let var = (self.sum_sq / n - mean * mean).max(0.0);
                    Value::Double(var.sqrt())
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Exact-total integer average. Casting the i128 total to f64 first
/// rounds away its low bits once |total| exceeds 2^53, and that error
/// survives the divide: AVG over [2^53, 1] came back 2^52 instead of
/// 2^52 + 0.5. Splitting into quotient and remainder keeps both parts
/// small enough to convert exactly (|q| bounded by |total|/count,
/// |r| < count), so the only rounding is the one unavoidable final add.
fn avg_exact(total: i128, count: u64) -> f64 {
    if total.unsigned_abs() <= 1 << 53 {
        // The total itself converts exactly; one rounded divide.
        return total as f64 / count as f64;
    }
    let n = count as i128;
    let q = total / n;
    let r = total % n;
    q as f64 + r as f64 / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, distinct: bool, vals: &[Value]) -> Value {
        let mut a = Accumulator::new(func, distinct);
        for v in vals {
            a.update(v).unwrap();
        }
        a.finish()
    }

    #[test]
    fn count_ignores_nulls_count_star_does_not() {
        let vals = [Value::Int(1), Value::Null, Value::Int(2)];
        assert_eq!(run(AggFunc::Count, false, &vals), Value::Int(2));
        // COUNT(*) callers feed a placeholder per row; NULL placeholder still
        // counts because CountStar never skips.
        assert_eq!(run(AggFunc::CountStar, false, &vals), Value::Int(3));
    }

    #[test]
    fn sum_avg_minmax() {
        let vals = [Value::Int(1), Value::Int(2), Value::Int(3), Value::Null];
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Int(6));
        assert_eq!(run(AggFunc::Avg, false, &vals), Value::Double(2.0));
        assert_eq!(run(AggFunc::Min, false, &vals), Value::Int(1));
        assert_eq!(run(AggFunc::Max, false, &vals), Value::Int(3));
    }

    #[test]
    fn sum_of_doubles_is_double() {
        let vals = [Value::Double(1.5), Value::Int(2)];
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Double(3.5));
    }

    #[test]
    fn empty_group_semantics() {
        assert_eq!(run(AggFunc::Sum, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Count, false, &[]), Value::Int(0));
    }

    #[test]
    fn distinct_dedupes() {
        let vals = [Value::Int(5), Value::Int(5), Value::Int(7)];
        assert_eq!(run(AggFunc::Count, true, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Sum, true, &vals), Value::Int(12));
    }

    #[test]
    fn int_sum_survives_transient_overflow() {
        // i64::MAX + 1 overflows an i64 accumulator mid-stream even though
        // the final total (1) is tiny; the f64 shadow sum then loses the +1
        // entirely (2^63 swallows it), so the old path answered 0.0.
        let vals = [Value::Int(i64::MAX), Value::Int(1), Value::Int(-i64::MAX)];
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Int(1));
        assert_eq!(run(AggFunc::Avg, false, &vals), Value::Double(1.0 / 3.0));
    }

    #[test]
    fn int_sum_promotes_to_double_when_total_leaves_i64() {
        let vals = [Value::Int(i64::MAX), Value::Int(i64::MAX)];
        let expected = i64::MAX as f64 * 2.0;
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Double(expected));
        assert_eq!(run(AggFunc::Avg, false, &vals), Value::Double(expected / 2.0));
    }

    #[test]
    fn sum_just_past_i64_max_is_the_nearest_double() {
        // Total is exactly 2^63 — one past i64::MAX, and exactly
        // representable as a double, so promotion must not wobble.
        let vals = [Value::Int(i64::MAX), Value::Int(1)];
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Double(9223372036854775808.0));
        assert_eq!(run(AggFunc::Avg, false, &vals), Value::Double(4611686018427387904.0));
    }

    #[test]
    fn avg_keeps_low_bits_the_f64_total_drops() {
        // Total 2^53 + 1 is the first integer a double cannot hold: the
        // cast-then-divide path answered 2^52 exactly, silently eating
        // the +1. The quotient/remainder path recovers 2^52 + 0.5, which
        // IS representable (ulp at 2^52 is 0.5).
        let vals = [Value::Int(1 << 53), Value::Int(1)];
        assert_eq!(run(AggFunc::Avg, false, &vals), Value::Double(4503599627370496.5));
        // Negative totals take the same path through truncating division.
        let neg = [Value::Int(-(1 << 53)), Value::Int(-1)];
        assert_eq!(run(AggFunc::Avg, false, &neg), Value::Double(-4503599627370496.5));
    }

    #[test]
    fn stddev_population() {
        let vals: Vec<Value> =
            [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().map(|&x| Value::Double(x)).collect();
        match run(AggFunc::StdDev, false, &vals) {
            Value::Double(d) => assert!((d - 2.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }
}
