//! Orca's cost model.
//!
//! Honest, fully cost-based comparisons between join methods and access
//! paths — the property MySQL's optimizer lacks (§3.1: "hash join selection
//! is not cost-based"). Constants reflect the paper's observation that
//! Orca carries "relatively high index lookup and hash join costs" tuned
//! for MPP scans rather than InnoDB (§9): random access is priced
//! noticeably above sequential.

/// Sequential row processing (scan).
pub const SEQ_ROW: f64 = 1.0;
/// Random-access row via an index range.
pub const RANGE_ROW: f64 = 2.0;
/// Fixed cost of one index probe ("relatively high index lookup cost").
pub const LOOKUP_BASE: f64 = 4.0;
/// Per matched row of an index probe.
pub const LOOKUP_ROW: f64 = 1.5;
/// Hash-table insert per build row ("relatively high hash join cost").
pub const HASH_BUILD_ROW: f64 = 1.8;
/// Hash probe per probe row.
pub const HASH_PROBE_ROW: f64 = 1.0;
/// Per output row of any join.
pub const JOIN_OUT_ROW: f64 = 0.1;
/// Re-execution multiplier for correlated apply (inner plan per outer row).
pub const APPLY_ROW: f64 = 1.0;
/// Cost of one nested-loop pair evaluation (joined-row construction plus
/// condition check — measurably pricier than a hash probe).
pub const NL_PAIR: f64 = 2.5;

/// Cost of scanning `n` rows sequentially.
pub fn scan(n: f64) -> f64 {
    n * SEQ_ROW
}

/// Cost of an index range retrieving `n` rows.
pub fn range(n: f64) -> f64 {
    n.max(1.0) * RANGE_ROW
}

/// Cost of `probes` index lookups each matching `rows_per_probe` rows.
pub fn lookups(probes: f64, rows_per_probe: f64) -> f64 {
    probes * (LOOKUP_BASE + rows_per_probe * LOOKUP_ROW)
}

/// Cost of a hash join given already-costed children.
pub fn hash_join(build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
    build_rows * HASH_BUILD_ROW + probe_rows * HASH_PROBE_ROW + out_rows * JOIN_OUT_ROW
}

/// Cost of a plain (materialized-inner) nested loop join: every
/// outer×inner pair is constructed and checked.
pub fn nl_join(outer_rows: f64, inner_rows: f64, out_rows: f64) -> f64 {
    outer_rows * inner_rows * NL_PAIR + out_rows * JOIN_OUT_ROW
}

/// Cost of a correlated apply: the inner plan re-executes per outer row.
pub fn apply(outer_rows: f64, inner_cost: f64, inner_rows: f64) -> f64 {
    outer_rows * (inner_cost + inner_rows * APPLY_ROW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_beats_lookup_on_large_outer() {
        // Probing 1M outer rows against a 10k-row build should beat 1M
        // index lookups — the Q1/Q6 effect (§6.2).
        let hash = hash_join(10_000.0, 1_000_000.0, 1_000_000.0);
        let lkp = lookups(1_000_000.0, 1.0);
        assert!(hash < lkp, "hash={hash} lookup={lkp}");
    }

    #[test]
    fn lookup_beats_hash_on_small_outer() {
        // 10 probes against a 1M-row table: lookups win (don't build 1M).
        let hash = hash_join(1_000_000.0, 10.0, 10.0);
        let lkp = lookups(10.0, 1.0);
        assert!(lkp < hash, "hash={hash} lookup={lkp}");
    }

    #[test]
    fn cross_join_is_penalized() {
        let cross = nl_join(1000.0, 1000.0, 1_000_000.0);
        let hash = hash_join(1000.0, 1000.0, 1000.0);
        assert!(cross > 100.0 * hash);
    }
}
