//! Fault-injected resilience: the never-fail detour under induced failure.
//!
//! Every [`FaultSite`] × [`FaultKind`] combination is driven end to end
//! through the engine. Whatever the injector does — panic inside a
//! converter, error out of the memo search, squeeze the search budget to
//! nothing — the statement must still answer, the answer must match the
//! native optimizer's, and the router must attribute the fallback to the
//! right [`FallbackReason`].

use taurus_orca::bridge::{FallbackReason, OrcaOptimizer};
use taurus_orca::common::{Error, Value};
use taurus_orca::mylite::Engine;
use taurus_orca::orcalite::{
    FaultInjector, FaultKind, FaultSite, JoinOrderStrategy, OrcaConfig, SearchBudget,
};
use taurus_orca::workloads::{tpch, Scale};

/// Injected panics are caught by the router, but the default panic hook
/// would still spray a backtrace per armed site. Install (once) a hook
/// that swallows injected-fault panics and forwards everything else.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload().downcast_ref::<String>().map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn canon(rows: Vec<Vec<Value>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|r| {
            r.into_iter()
                .map(|v| match v {
                    Value::Double(d) => format!("D{:.4}", d),
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

fn faulty_router(site: FaultSite, kind: FaultKind) -> OrcaOptimizer {
    let cfg =
        OrcaConfig { faults: FaultInjector::default().arm(site, kind), ..OrcaConfig::default() };
    OrcaOptimizer::new(cfg, 1)
}

/// Every fault kind the matrix drives.
const ALL_KINDS: [FaultKind; 5] = [
    FaultKind::Panic,
    FaultKind::Error,
    FaultKind::BudgetSqueeze,
    FaultKind::CancelQuery,
    FaultKind::MemorySqueeze,
];

/// Whether this combination arms a *live* governor fault — one the engine
/// consults when it builds a statement's governor, so the query is meant
/// to fail with a typed governance error rather than answer. The matrix
/// tests skip these; the dedicated governor tests below drive them.
fn live_governor_combo(site: FaultSite, kind: FaultKind) -> bool {
    site == FaultSite::ExecGovernor
        && matches!(kind, FaultKind::CancelQuery | FaultKind::MemorySqueeze)
}

/// What the router should attribute a fault to, or `None` when the armed
/// fault is inert at that site and the detour should succeed.
fn expected_reason(site: FaultSite, kind: FaultKind) -> Option<FallbackReason> {
    // Nothing fires at the governor site during planning: the engine
    // consults its faults when it builds a governor, so planning-kind
    // faults armed there never trip.
    if site == FaultSite::ExecGovernor {
        return None;
    }
    match kind {
        FaultKind::Panic => Some(FallbackReason::Panicked),
        // Injected errors are not budget errors, so they classify as
        // "the detour could not handle it" — except at the validation
        // stage, whose errors are by definition invalid skeletons.
        FaultKind::Error if site == FaultSite::SkeletonValidate => {
            Some(FallbackReason::InvalidSkeleton)
        }
        FaultKind::Error => Some(FallbackReason::Unsupported),
        // Squeezes only take effect where the budget is consulted: the
        // memo search. Everywhere else they are no-ops.
        FaultKind::BudgetSqueeze => {
            (site == FaultSite::OptimizeSearch).then_some(FallbackReason::BudgetExhausted)
        }
        // Governor kinds are consulted at the governor site only; armed at
        // a planning site they are no-ops.
        FaultKind::CancelQuery | FaultKind::MemorySqueeze => None,
    }
}

#[test]
fn every_site_and_kind_answers_correctly_with_the_right_reason() {
    quiet_injected_panics();
    let engine = Engine::new(tpch::build_catalog(Scale(0.02)));
    let q3 = &tpch::queries()[2];
    let reference = canon(engine.query(&q3.sql).expect("native baseline").rows);

    for site in FaultSite::ALL {
        for kind in ALL_KINDS {
            if live_governor_combo(site, kind) {
                continue; // typed-failure path: governor_faults_* below
            }
            let combo = format!("{kind:?} at {}", site.name());
            let orca = faulty_router(site, kind);
            let out = engine
                .query_with(&q3.sql, &orca)
                .unwrap_or_else(|e| panic!("{combo}: the detour must never fail a query: {e}"));
            assert_eq!(canon(out.rows), reference, "{combo}: answers must not change");

            let stats = orca.stats();
            match expected_reason(site, kind) {
                Some(reason) => {
                    assert_eq!(stats.fallbacks, 1, "{combo}: expected one fallback: {stats:?}");
                    assert_eq!(
                        stats.reasons.get(reason),
                        1,
                        "{combo}: expected reason {}: {stats:?}",
                        reason.name()
                    );
                    assert_eq!(stats.reasons.total(), 1, "{combo}: one reason only: {stats:?}");
                    assert_eq!(orca.last_fallback(), Some(reason), "{combo}");
                }
                None => {
                    assert_eq!(stats.fallbacks, 0, "{combo}: inert fault must not trip: {stats:?}");
                    assert_eq!(stats.routed, 1, "{combo}: detour must succeed: {stats:?}");
                    assert_eq!(orca.last_fallback(), None, "{combo}");
                }
            }
        }
    }
}

#[test]
fn explain_analyze_is_inert_under_every_fault() {
    // The full fault matrix again, this time with runtime instrumentation
    // enabled. EXPLAIN ANALYZE must be a pure observer: same answers, same
    // fallback attribution, and every operator annotated — whether the
    // statement came out of the detour or the native rescue path.
    quiet_injected_panics();
    let engine = Engine::new(tpch::build_catalog(Scale(0.02)));
    let q3 = &tpch::queries()[2];
    let reference = canon(engine.query(&q3.sql).expect("native baseline").rows);

    for site in FaultSite::ALL {
        for kind in ALL_KINDS {
            if live_governor_combo(site, kind) {
                continue;
            }
            let combo = format!("{kind:?} at {}", site.name());
            // Uninstrumented run through one armed router, instrumented
            // through another: their routing decisions must agree.
            let plain = faulty_router(site, kind);
            engine.query_with(&q3.sql, &plain).expect("uninstrumented");
            let orca = faulty_router(site, kind);
            let analyzed = engine
                .explain_analyze(&q3.sql, &orca)
                .unwrap_or_else(|e| panic!("{combo}: EXPLAIN ANALYZE must never fail: {e}"));

            assert_eq!(
                canon(analyzed.output.rows),
                reference,
                "{combo}: instrumentation changed the answer"
            );
            assert_eq!(
                orca.last_fallback(),
                plain.last_fallback(),
                "{combo}: instrumentation changed the fallback attribution"
            );
            assert_eq!(orca.stats().fallbacks, plain.stats().fallbacks, "{combo}");
            assert!(analyzed.text.starts_with("EXPLAIN ANALYZE ("), "{combo}: {}", analyzed.text);
            for line in analyzed.text.lines().skip(1) {
                if line.is_empty() || line.starts_with("[search:") {
                    continue;
                }
                assert!(
                    line.contains("actual rows=") || line.contains("(never executed)"),
                    "{combo}: unannotated operator line: {line}"
                );
            }
        }
    }
}

#[test]
fn explain_banner_names_the_injected_reason() {
    quiet_injected_panics();
    let engine = Engine::new(tpch::build_catalog(Scale(0.02)));
    let q3 = &tpch::queries()[2];
    for (site, kind, reason) in [
        (FaultSite::TreeConvert, FaultKind::Error, "unsupported"),
        (FaultSite::PlanConvert, FaultKind::Panic, "panicked"),
        (FaultSite::OptimizeSearch, FaultKind::BudgetSqueeze, "budget-exhausted"),
    ] {
        let orca = faulty_router(site, kind);
        let text = engine.explain(&q3.sql, &orca).expect("explain must not fail");
        let want = format!("EXPLAIN (ORCA fallback: {reason})\n");
        assert!(text.starts_with(&want), "{kind:?} at {}: got {text}", site.name());
    }
}

#[test]
fn multiple_statements_accumulate_per_reason_counters() {
    quiet_injected_panics();
    let engine = Engine::new(tpch::build_catalog(Scale(0.02)));
    let q3 = &tpch::queries()[2];
    let orca = faulty_router(FaultSite::SkeletonValidate, FaultKind::Panic);
    for _ in 0..3 {
        engine.query_with(&q3.sql, &orca).expect("fallback answers");
    }
    let stats = orca.stats();
    assert_eq!(stats.reasons.panicked, 3, "{stats:?}");
    assert_eq!(stats.fallbacks, 3, "{stats:?}");
    assert_eq!(stats.reasons.total(), stats.fallbacks, "{stats:?}");
}

#[test]
fn explicit_budget_degrades_through_the_ladder_but_stays_on_orca() {
    // An integration-level run of the degradation ladder: measure greedy
    // and bushy search effort on a real multi-join query, then set a
    // budget only greedy fits inside. The statement must still come out
    // Orca-optimized — at a cheaper rung, not as a fallback.
    let engine = Engine::new(tpch::build_catalog(Scale(0.02)));
    let q5 = &tpch::queries()[4]; // six-table single-block join
    let costed = |strategy| {
        let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(strategy), 1);
        engine.plan(&q5.sql, &orca).expect("plan");
        orca.last_search_stats().plans_costed
    };
    let greedy = costed(JoinOrderStrategy::Greedy);
    let bushy = costed(JoinOrderStrategy::Exhaustive2);
    // Budget checks precede increments of up to three plans per split, so
    // leave a margin before relying on the ladder tripping.
    assert!(greedy + 4 <= bushy, "premise: greedy is cheaper ({greedy} vs {bushy})");

    let cfg = OrcaConfig {
        budget: SearchBudget { max_groups: usize::MAX, max_plans_costed: greedy },
        ..OrcaConfig::default()
    };
    let orca = OrcaOptimizer::new(cfg, 1);
    let explained = engine.explain(&q5.sql, &orca).expect("explain");
    let stats = orca.stats();
    assert!(explained.starts_with("EXPLAIN (ORCA)\n"), "still Orca-assisted: {explained}");
    assert_eq!(stats.fallbacks, 0, "ladder rescued the block: {stats:?}");
    assert!(stats.degraded >= 1, "a cheaper rung won: {stats:?}");

    // And the degraded plan still answers identically.
    let reference = canon(engine.query(&q5.sql).expect("native").rows);
    let out = canon(engine.query_with(&q5.sql, &orca).expect("degraded").rows);
    assert_eq!(out, reference);
}

#[test]
fn governor_faults_fail_typed_and_leave_the_engine_serviceable() {
    // The two live governor faults: unlike every planning fault, these are
    // *meant* to fail the statement — but with a typed governance error,
    // correct counter attribution, and no residue. The same engine must
    // answer the same statement correctly right afterwards.
    let engine = Engine::new(tpch::build_catalog(Scale(0.02)));
    let q3 = &tpch::queries()[2];
    let reference = canon(engine.query(&q3.sql).expect("native baseline").rows);

    // Mid-query cancel: the engine consults the injector, plants a cancel
    // point, and the unwind surfaces as `Cancelled` — not a fallback.
    let orca = faulty_router(FaultSite::ExecGovernor, FaultKind::CancelQuery);
    let err = engine.query_with(&q3.sql, &orca).unwrap_err();
    assert!(matches!(err, Error::Cancelled), "typed cancel, got: {err}");
    let stats = orca.stats();
    assert_eq!(stats.governed.cancelled, 1, "{stats:?}");
    assert_eq!(stats.fallbacks, 0, "a governed cancel is not a fallback: {stats:?}");

    // Memory squeeze: the one-byte clamp defeats the serial retry too, so
    // the statement surfaces `MemoryExceeded` and the abandonment joins
    // the fallback taxonomy.
    let orca = faulty_router(FaultSite::ExecGovernor, FaultKind::MemorySqueeze);
    let err = engine.query_with(&q3.sql, &orca).unwrap_err();
    assert!(matches!(err, Error::MemoryExceeded { .. }), "typed exhaustion, got: {err}");
    let stats = orca.stats();
    assert_eq!(stats.governed.memory_exceeded, 1, "{stats:?}");
    assert_eq!(stats.reasons.memory_exceeded, 1, "{stats:?}");
    assert_eq!(stats.reasons.total(), stats.fallbacks, "{stats:?}");

    // No residue: a disarmed router on the same engine answers correctly,
    // and the governed counters stay untouched.
    let clean = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let out = canon(engine.query_with(&q3.sql, &clean).expect("serviceable").rows);
    assert_eq!(out, reference, "the failures must not poison later statements");
    assert_eq!(clean.stats().governed.total(), 0);
}
