//! Morsels: contiguous slices of a driving scan's iteration order.

/// Default number of driving-scan rows per morsel. Small enough that the
/// pool load-balances skewed filters, large enough that per-morsel overhead
/// (buffer allocation, context setup) stays negligible.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// One unit of parallel work: the driving scan whose query-table number is
/// `qt` visits only positions `[lo, hi)` of its iteration order (heap order
/// for a table scan, key order for an index scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselSpec {
    pub qt: usize,
    pub lo: usize,
    pub hi: usize,
}

/// Split `total_rows` scan positions into morsels of `morsel_rows` each.
/// The last morsel is open-ended so a count that is stale by the time the
/// scan runs (e.g. an index holding more entries than the heap snapshot)
/// still visits every position exactly once.
pub fn split(qt: usize, total_rows: usize, morsel_rows: usize) -> Vec<MorselSpec> {
    let step = morsel_rows.max(1);
    if total_rows == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(total_rows.div_ceil(step));
    let mut lo = 0;
    while lo < total_rows {
        let hi = lo.saturating_add(step).min(total_rows);
        out.push(MorselSpec { qt, lo, hi });
        lo = hi;
    }
    if let Some(last) = out.last_mut() {
        last.hi = usize::MAX;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_every_position_once() {
        let ms = split(3, 10, 4);
        assert_eq!(ms.len(), 3);
        assert_eq!((ms[0].lo, ms[0].hi), (0, 4));
        assert_eq!((ms[1].lo, ms[1].hi), (4, 8));
        assert_eq!(ms[2].lo, 8);
        assert_eq!(ms[2].hi, usize::MAX, "last morsel is open-ended");
        assert!(ms.iter().all(|m| m.qt == 3));
    }

    #[test]
    fn split_edge_cases() {
        assert!(split(0, 0, 16).is_empty(), "empty scan -> no morsels");
        let one = split(0, 5, 100);
        assert_eq!(one.len(), 1, "tiny scan -> single morsel");
        assert_eq!((one[0].lo, one[0].hi), (0, usize::MAX));
        // morsel_rows of 0 is clamped instead of looping forever.
        assert_eq!(split(0, 3, 0).len(), 3);
    }
}
