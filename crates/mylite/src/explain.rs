//! MySQL-flavoured `EXPLAIN` tree rendering (paper Listing 7).
//!
//! The first line indicates whether the plan was Orca-assisted; estimated
//! costs and cardinalities on each node come from whichever optimizer chose
//! the plan (for the Orca path they were copied into the skeleton, §4.2.2).
//! When the skeleton carries a [`SearchTrace`], it renders as its own line
//! directly after the banner, and `EXPLAIN ANALYZE` appends per-operator
//! actual rows, loop counts, and q-errors from an observed execution.

use crate::bound::BoundStatement;
use crate::skeleton::Skeleton;
use std::fmt::Write;
use taurus_catalog::Catalog;
use taurus_common::{ColRef, Expr};
use taurus_executor::{q_error, AggStrategy, JoinKind, NodeObservation, ObserverIndex, Plan};

/// Render an executable plan as an EXPLAIN tree. The skeleton supplies the
/// provenance banner (Orca-assisted, plain MySQL, or fallback + reason).
pub fn explain_plan(
    plan: &Plan,
    bound: &BoundStatement,
    catalog: &Catalog,
    skeleton: &Skeleton,
) -> String {
    explain_with(plan, bound, catalog, skeleton, None)
}

/// Render an EXPLAIN ANALYZE tree: the same shape as [`explain_plan`], with
/// each operator line annotated with its observed actuals. `ann` must come
/// from [`annotate`] over the same plan shape.
pub fn explain_plan_analyzed(
    plan: &Plan,
    bound: &BoundStatement,
    catalog: &Catalog,
    skeleton: &Skeleton,
    ann: &[NodeAnnotation],
) -> String {
    explain_with(plan, bound, catalog, skeleton, Some(ann))
}

fn explain_with(
    plan: &Plan,
    bound: &BoundStatement,
    catalog: &Catalog,
    skeleton: &Skeleton,
    ann: Option<&[NodeAnnotation]>,
) -> String {
    let namer = |c: ColRef| -> String {
        let meta = &bound.tables[c.table];
        let col = meta.columns.get(c.col).cloned().unwrap_or_else(|| format!("c{}", c.col));
        format!("{}.{}", meta.display_name, col)
    };
    let mut out = String::new();
    let banner = skeleton.explain_banner();
    if ann.is_some() {
        out.push_str(&banner.replacen("EXPLAIN", "EXPLAIN ANALYZE", 1));
    } else {
        out.push_str(&banner);
    }
    out.push('\n');
    if let Some(t) = &skeleton.search {
        out.push_str(&t.display());
        out.push('\n');
    }
    if let Some(r) = &skeleton.reopt {
        out.push_str(&format!("[reopt: {r}]\n"));
    }
    let consts = crate::orders::constant_exprs(&bound.root.predicates);
    let mut r = Render { bound, catalog, namer: &namer, ann, consts, next: 0 };
    r.node(plan, 0, &mut out);
    out
}

/// Estimated vs observed cardinality for one operator of an analyzed run,
/// in the renderer's pre-order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeAnnotation {
    /// The optimizer's row estimate for this operator. For index lookups on
    /// the inner side of a nested-loop join this is rows *per probe*.
    pub est_rows: f64,
    /// Total rows the operator produced, over all loops and workers.
    pub actual_rows: u64,
    /// Times the operator ran (0 = never executed).
    pub loops: u64,
    /// q-error between the estimate and the (loop-normalized, see
    /// [`annotate`]) actual; `None` when the operator never executed.
    pub q_error: Option<f64>,
}

/// Join a plan's estimates with an execution's per-node observations.
///
/// Ids follow the same pre-order walk as [`ObserverIndex`] and the EXPLAIN
/// renderer, so `annotate(...)[i]` belongs to the i-th rendered operator.
///
/// Estimates on the inner (right) side of a nested-loop join are per-probe
/// — an index lookup estimating 3 rows means 3 rows *per outer row* — so
/// within those subtrees the observed total is divided by the loop count
/// before the q-error comparison. Everywhere else totals compare directly.
/// This normalization makes the q-error invariant to dop and morsel size:
/// parallel morsels multiply loop counts but estimates and totals are
/// whole-operator figures either way.
pub fn annotate(
    plan: &Plan,
    index: &ObserverIndex,
    nodes: &[NodeObservation],
) -> Vec<NodeAnnotation> {
    fn walk(
        p: &Plan,
        index: &ObserverIndex,
        nodes: &[NodeObservation],
        per_loop: bool,
        out: &mut Vec<NodeAnnotation>,
    ) {
        let obs = index.id_of(p).and_then(|id| nodes.get(id).copied()).unwrap_or_default();
        let est_rows = p.est().rows;
        let q = if obs.loops == 0 {
            None
        } else {
            let actual =
                if per_loop { obs.rows as f64 / obs.loops as f64 } else { obs.rows as f64 };
            Some(q_error(est_rows, actual))
        };
        out.push(NodeAnnotation { est_rows, actual_rows: obs.rows, loops: obs.loops, q_error: q });
        if let Plan::NestedLoop { left, right, .. } = p {
            walk(left, index, nodes, per_loop, out);
            walk(right, index, nodes, true, out);
        } else {
            for c in p.children() {
                walk(c, index, nodes, per_loop, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, index, nodes, false, &mut out);
    out
}

fn ann_suffix(a: &NodeAnnotation) -> String {
    if a.loops == 0 {
        return " (never executed)".to_string();
    }
    match a.q_error {
        Some(q) => {
            format!(" (actual rows={} loops={} q-error={:.2})", a.actual_rows, a.loops, q)
        }
        None => format!(" (actual rows={} loops={})", a.actual_rows, a.loops),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
    out.push_str("-> ");
}

fn est_suffix(plan: &Plan) -> String {
    let e = plan.est();
    // Fixed precision keeps golden EXPLAIN outputs stable; the dop column
    // only appears for parallel operators so serial plans are unchanged.
    if e.dop > 1 {
        format!(" (cost={:.2} rows={:.0} dop={})", e.cost, e.rows.max(0.0), e.dop)
    } else {
        format!(" (cost={:.2} rows={:.0})", e.cost, e.rows.max(0.0))
    }
}

fn exprs_text(exprs: &[Expr], namer: &dyn Fn(ColRef) -> String) -> String {
    exprs.iter().map(|e| e.display_with(namer)).collect::<Vec<_>>().join(" and ")
}

fn join_name(kind: JoinKind, hash: bool) -> String {
    let method = if hash { "Hash" } else { "Nested loop" };
    format!("{method} {}", kind.name())
}

/// Tree renderer state: the naming context plus the annotation cursor
/// (`next` counts nodes in pre-order so annotations line up with ids).
struct Render<'a> {
    bound: &'a BoundStatement,
    catalog: &'a Catalog,
    namer: &'a dyn Fn(ColRef) -> String,
    ann: Option<&'a [NodeAnnotation]>,
    /// Root block's proven-constant expressions, for order annotations.
    consts: Vec<Expr>,
    next: usize,
}

impl Render<'_> {
    fn table_name(&self, qt: usize) -> String {
        self.bound.tables[qt].display_name.clone()
    }

    fn index_name(&self, qt: usize, pos: usize) -> String {
        if let crate::bound::TableSource::Base { id } = &self.bound.tables[qt].source {
            if let Ok(t) = self.catalog.table(*id) {
                if let Some(ix) = t.indexes.get(pos) {
                    return ix.def().name.clone();
                }
            }
        }
        format!("index_{pos}")
    }

    /// A non-empty leaf filter renders as a Filter parent node, like MySQL.
    /// It is the same plan node as the leaf (the filter is fused into the
    /// scan), so it shares the leaf's annotation suffix.
    fn leaf_filter(
        &self,
        plan: &Plan,
        filter: &[Expr],
        asuf: &str,
        out: &mut String,
        depth: usize,
    ) -> usize {
        if filter.is_empty() {
            depth
        } else {
            indent(out, depth);
            let _ = writeln!(
                out,
                "Filter: {}{}{asuf}",
                exprs_text(filter, self.namer),
                est_suffix(plan)
            );
            depth + 1
        }
    }

    /// The order annotation for one line: `Sort` nodes show the order they
    /// require (enforce); any other node that provably delivers an order
    /// shows it. Nodes with no proven order get no annotation, keeping
    /// unordered plans' output unchanged.
    fn order_suffix(&self, plan: &Plan) -> String {
        let keys_text = |keys: &[taurus_executor::SortKey]| {
            keys.iter()
                .map(|k| {
                    format!(
                        "{}{}",
                        k.expr.display_with(self.namer),
                        if k.desc { " DESC (nulls last)" } else { "" }
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        match plan {
            Plan::Sort { keys, .. } => format!(" [order: required {}]", keys_text(keys)),
            _ => {
                let delivered = crate::orders::delivered_order(plan, self.catalog, &self.consts);
                if delivered.is_empty() {
                    String::new()
                } else {
                    format!(" [order: delivered {}]", keys_text(&delivered))
                }
            }
        }
    }

    fn node(&mut self, plan: &Plan, depth: usize, out: &mut String) {
        let id = self.next;
        self.next += 1;
        let asuf = match self.ann {
            Some(a) => a.get(id).map(ann_suffix).unwrap_or_default(),
            None => String::new(),
        };
        let asuf = format!("{}{asuf}", self.order_suffix(plan));
        let namer = self.namer;
        match plan {
            Plan::TableScan { qt, filter, .. } => {
                let d = self.leaf_filter(plan, filter, &asuf, out, depth);
                indent(out, d);
                let _ = writeln!(
                    out,
                    "Table scan on {}{}{asuf}",
                    self.table_name(*qt),
                    est_suffix(plan)
                );
            }
            Plan::IndexScan { qt, index, filter, .. } => {
                let d = self.leaf_filter(plan, filter, &asuf, out, depth);
                indent(out, d);
                let _ = writeln!(
                    out,
                    "Index scan on {} using {}{}{asuf}",
                    self.table_name(*qt),
                    self.index_name(*qt, *index),
                    est_suffix(plan)
                );
            }
            Plan::IndexRange { qt, index, filter, .. } => {
                let d = self.leaf_filter(plan, filter, &asuf, out, depth);
                indent(out, d);
                let _ = writeln!(
                    out,
                    "Index range scan on {} using {}{}{asuf}",
                    self.table_name(*qt),
                    self.index_name(*qt, *index),
                    est_suffix(plan)
                );
            }
            Plan::IndexLookup { qt, index, keys, filter, .. } => {
                let d = self.leaf_filter(plan, filter, &asuf, out, depth);
                indent(out, d);
                let keys_text =
                    keys.iter().map(|k| k.display_with(namer)).collect::<Vec<_>>().join(", ");
                let _ = writeln!(
                    out,
                    "Index lookup on {} using {} ({}){}{asuf}",
                    self.table_name(*qt),
                    self.index_name(*qt, *index),
                    keys_text,
                    est_suffix(plan)
                );
            }
            Plan::NestedLoop { kind, left, right, on, .. } => {
                indent(out, depth);
                let cond = if on.is_empty() {
                    String::new()
                } else {
                    format!(" on {}", exprs_text(on, namer))
                };
                let _ =
                    writeln!(out, "{}{}{}{asuf}", join_name(*kind, false), cond, est_suffix(plan));
                self.node(left, depth + 1, out);
                self.node(right, depth + 1, out);
            }
            Plan::HashJoin { kind, left, right, keys, residual, build_left, .. } => {
                indent(out, depth);
                let mut cond: Vec<String> = keys
                    .iter()
                    .map(|(l, r)| format!("{} = {}", l.display_with(namer), r.display_with(namer)))
                    .collect();
                if !residual.is_empty() {
                    cond.push(exprs_text(residual, namer));
                }
                let build = if *build_left { " (build: left)" } else { "" };
                let _ = writeln!(
                    out,
                    "{} ({}){}{}{asuf}",
                    join_name(*kind, true),
                    cond.join(" and "),
                    build,
                    est_suffix(plan)
                );
                self.node(left, depth + 1, out);
                self.node(right, depth + 1, out);
            }
            Plan::Filter { input, predicate, .. } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "Filter: {}{}{asuf}",
                    exprs_text(predicate, namer),
                    est_suffix(plan)
                );
                self.node(input, depth + 1, out);
            }
            Plan::Derived { input, name, .. } => {
                indent(out, depth);
                let _ = writeln!(out, "Table scan on {name}{}{asuf}", est_suffix(plan));
                self.node(input, depth + 1, out);
            }
            Plan::Materialize { input, rebind, .. } => {
                indent(out, depth);
                if *rebind {
                    // Listing 7's red annotation.
                    let _ = writeln!(
                        out,
                        "Materialize (invalidate on outer row){}{asuf}",
                        est_suffix(plan)
                    );
                } else {
                    let _ = writeln!(out, "Materialize{}{asuf}", est_suffix(plan));
                }
                self.node(input, depth + 1, out);
            }
            Plan::Project { input, exprs, .. } => {
                indent(out, depth);
                let text =
                    exprs.iter().map(|e| e.display_with(namer)).collect::<Vec<_>>().join(", ");
                let _ = writeln!(out, "Output: {text}{asuf}");
                self.node(input, depth + 1, out);
            }
            Plan::Aggregate { input, group_by, aggs, strategy, .. } => {
                indent(out, depth);
                let mode = match strategy {
                    AggStrategy::Stream => "Group aggregate",
                    AggStrategy::Hash => "Aggregate",
                };
                let agg_text = aggs
                    .iter()
                    .map(|a| {
                        let e = Expr::Agg {
                            func: a.func,
                            arg: a.arg.clone().map(Box::new),
                            distinct: a.distinct,
                        };
                        e.display_with(namer)
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                if group_by.is_empty() {
                    let _ = writeln!(out, "{mode}: {agg_text}{}{asuf}", est_suffix(plan));
                } else {
                    let _ = writeln!(
                        out,
                        "{mode}: {agg_text} group by {}{}{asuf}",
                        exprs_text(group_by, namer).replace(" and ", ", "),
                        est_suffix(plan)
                    );
                }
                self.node(input, depth + 1, out);
            }
            Plan::Sort { input, keys, .. } => {
                indent(out, depth);
                let keys_text = keys
                    .iter()
                    .map(|k| {
                        format!(
                            "{}{}",
                            k.expr.display_with(namer),
                            if k.desc { " DESC" } else { "" }
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "Sort: {keys_text}{}{asuf}", est_suffix(plan));
                self.node(input, depth + 1, out);
            }
            Plan::Limit { input, n, .. } => {
                indent(out, depth);
                let _ = writeln!(out, "Limit: {n} row(s){asuf}");
                self.node(input, depth + 1, out);
            }
            Plan::Exchange { kind, input, dop, .. } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "Exchange ({}, dop={dop}){}{asuf}",
                    kind.name(),
                    est_suffix(plan)
                );
                self.node(input, depth + 1, out);
            }
            Plan::Union { inputs, distinct, .. } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "Union {}{}{asuf}",
                    if *distinct { "distinct" } else { "all" },
                    est_suffix(plan)
                );
                for i in inputs {
                    self.node(i, depth + 1, out);
                }
            }
        }
    }
}
