//! Table 1 — query compilation (EXPLAIN) overhead (paper §6.3).
//!
//! Measures the total time to *plan* an entire suite — no execution — under
//! the three compiler configurations of Table 1, with the complex-query
//! threshold set to 1 so every query takes the Orca detour.

use criterion::{criterion_group, criterion_main, Criterion};
use mylite::engine::CostBasedOptimizer;
use mylite::{Engine, MySqlOptimizer};
use orcalite::{JoinOrderStrategy, OrcaConfig};
use std::time::Duration;
use taurus_bridge::OrcaOptimizer;
use taurus_workloads::{tpcds, tpch, Scale};

fn compile_suite(engine: &Engine, queries: &[taurus_workloads::tpch::Query], opt: &dyn CostBasedOptimizer) {
    for q in queries {
        engine.plan(&q.sql, opt).expect("workload query plans");
    }
}

fn table1(c: &mut Criterion) {
    let scale = Scale(
        std::env::var("SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.15),
    );
    let suites = [
        ("tpch", Engine::new(tpch::build_catalog(scale)), tpch::queries()),
        ("tpcds", Engine::new(tpcds::build_catalog(scale)), tpcds::queries()),
    ];
    for (suite, engine, queries) in &suites {
        let mut group = c.benchmark_group(format!("table1/{suite}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_secs(2));
        group.bench_function("mysql", |b| {
            b.iter(|| compile_suite(engine, queries, &MySqlOptimizer))
        });
        let exhaustive =
            OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Exhaustive), 1);
        group.bench_function("orca-exhaustive", |b| {
            b.iter(|| compile_suite(engine, queries, &exhaustive))
        });
        let exhaustive2 =
            OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Exhaustive2), 1);
        group.bench_function("orca-exhaustive2", |b| {
            b.iter(|| compile_suite(engine, queries, &exhaustive2))
        });
        group.finish();
    }
}

criterion_group!(benches, table1);
criterion_main!(benches);
