//! Closed-loop concurrency benchmark: N clients over real sockets against
//! the multi-session server, mixed TPC-H/TPC-DS point-and-aggregate
//! templates, byte-identical correctness against single-session serves.
//!
//! The harness runs the same deterministic per-client schedule at two
//! load levels — one client, then eight — and gates on the aggregate
//! throughput scaling between them. The benchmark is *closed-loop*: each
//! client waits out a think time between statements, so a single client's
//! throughput is pinned near `1 / (service + think)` while eight clients
//! overlap their think times and expose how much of the serve path the
//! shared engine can actually run concurrently (sharded plan cache,
//! catalog read-snapshots, atomic admission). Think time is calibrated
//! from a warmup pass — `clamp(4 × mean service, 2ms..100ms)` — so the
//! ≥2× gate holds by a wide margin on a single-core container *iff* the
//! engine does not serialize whole serves behind one lock; a global
//! cache/catalog mutex would cap the loaded level at roughly the single
//! client's rate and fail the gate.

use crate::Workload;
use mylite::{Engine, PlanCacheStats};
use orcalite::OrcaConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use taurus_bridge::OrcaOptimizer;
use taurus_server::{Client, Server, ServerHandle};
use taurus_workloads::Scale;

/// How many clients the loaded level runs (the gate compares against 1).
pub const LOADED_CLIENTS: usize = 8;

/// One load level's measurements.
#[derive(Debug, Clone)]
pub struct LevelStats {
    pub clients: usize,
    /// Total statements served across all clients.
    pub requests: usize,
    /// Wall time of the whole level (connect excluded, joins included).
    pub wall: Duration,
    pub p50: Duration,
    pub p99: Duration,
    /// Aggregate statements per second over the wall time.
    pub qps: f64,
}

/// The `harness concurrency` report.
#[derive(Debug, Clone)]
pub struct ConcurrencyReport {
    /// Distinct cached statements in the mix (templates × literal variants).
    pub statements: usize,
    /// TPC-H vs TPC-DS split of the statement mix.
    pub tpch_statements: usize,
    pub tpcds_statements: usize,
    /// Statements each client executes per level.
    pub iters_per_client: usize,
    /// Mean per-statement service time over the hot warmup pass.
    pub mean_service: Duration,
    /// Calibrated per-statement client think time.
    pub think: Duration,
    pub single: LevelStats,
    pub loaded: LevelStats,
    /// Responses that differed from the single-session reference rows.
    pub divergences: usize,
    /// Plan-cache counters summed over both workload engines, end of run.
    pub cache: PlanCacheStats,
    /// `loaded.qps / single.qps` — the gated scaling factor.
    pub speedup: f64,
}

impl ConcurrencyReport {
    /// The acceptance gate: zero divergence from single-session serves and
    /// at least 2× aggregate QPS at eight clients vs one.
    pub fn gate(&self) -> Result<(), String> {
        if self.divergences != 0 {
            return Err(format!(
                "{} responses diverged from the single-session reference rows",
                self.divergences
            ));
        }
        if self.speedup < 2.0 {
            return Err(format!(
                "aggregate QPS at {} clients is only {:.2}× the single-client rate (gate: ≥ 2×)",
                self.loaded.clients, self.speedup
            ));
        }
        if self.cache.hits == 0 {
            return Err("the storm never hit the plan cache — serves are not shared".to_string());
        }
        Ok(())
    }
}

/// The statement mix: fast point lookups and small aggregates from both
/// workloads, three literal variants per template so the plan cache holds
/// a realistic working set. Every statement is deterministic (ordered or
/// single-row) so responses can be compared byte-for-byte.
fn statements() -> Vec<(Workload, String)> {
    let mut v = Vec::new();
    for (i, seg) in ["AUTOMOBILE", "BUILDING", "FURNITURE"].into_iter().enumerate() {
        v.push((
            Workload::TpcH,
            format!(
                "SELECT o_orderdate, o_totalprice FROM orders WHERE o_orderkey = {}",
                37 + i * 100
            ),
        ));
        v.push((
            Workload::TpcH,
            format!(
                "SELECT l_returnflag, COUNT(*) AS n FROM lineitem WHERE l_quantity < {} \
                 GROUP BY l_returnflag ORDER BY l_returnflag",
                5 + i
            ),
        ));
        v.push((
            Workload::TpcH,
            format!("SELECT COUNT(*) FROM customer WHERE c_mktsegment = '{seg}'"),
        ));
        v.push((
            Workload::TpcH,
            format!(
                "SELECT COUNT(*) FROM orders, customer \
                 WHERE o_custkey = c_custkey AND c_mktsegment = '{seg}'"
            ),
        ));
        v.push((
            Workload::TpcDs,
            format!("SELECT i_item_id, i_current_price FROM item WHERE i_item_sk = {}", 3 + i),
        ));
        v.push((
            Workload::TpcDs,
            format!(
                "SELECT COUNT(*), SUM(ss_quantity) FROM store_sales WHERE ss_store_sk = {}",
                1 + i
            ),
        ));
        v.push((
            Workload::TpcDs,
            format!(
                "SELECT ss_store_sk, COUNT(*) AS n FROM store_sales WHERE ss_quantity > {} \
                 GROUP BY ss_store_sk ORDER BY ss_store_sk",
                40 + i * 20
            ),
        ));
        v.push((
            Workload::TpcDs,
            format!("SELECT COUNT(*) FROM date_dim WHERE d_year = {}", 1999 + i),
        ));
    }
    v
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// One running workload: its engine (kept for stats), its server, and the
/// reference rows for every statement routed to it.
struct Backend {
    engine: Arc<Engine>,
    handle: ServerHandle,
}

fn start_backend(workload: Workload, scale: Scale) -> Backend {
    let mut engine = workload.build_engine(scale);
    engine.analyze();
    let engine = Arc::new(engine);
    let optimizer = Arc::new(OrcaOptimizer::new(OrcaConfig::default(), workload.threshold()));
    let handle = Server::start(engine.clone(), optimizer).expect("server binds an ephemeral port");
    Backend { engine, handle }
}

fn connect_pair(backends: [&Backend; 2]) -> [Client; 2] {
    [
        Client::connect(backends[0].handle.addr()).expect("connect TPC-H server"),
        Client::connect(backends[1].handle.addr()).expect("connect TPC-DS server"),
    ]
}

fn backend_index(w: Workload) -> usize {
    match w {
        Workload::TpcH => 0,
        Workload::TpcDs => 1,
    }
}

/// Run one closed-loop level: `clients` threads, each with its own pair of
/// connections, walking the statement mix on a deterministic out-of-phase
/// schedule with `think` between statements.
fn run_level(
    backends: [&Backend; 2],
    stmts: &[(Workload, String)],
    reference: &[Vec<Vec<taurus_common::Value>>],
    clients: usize,
    iters: usize,
    think: Duration,
    divergences: &AtomicUsize,
) -> LevelStats {
    // Connect outside the clock so the level measures serving, not dialing.
    let mut conns: Vec<[Client; 2]> = (0..clients).map(|_| connect_pair(backends)).collect();
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = conns
            .drain(..)
            .enumerate()
            .map(|(t, mut pair)| {
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(iters);
                    for i in 0..iters {
                        // Out-of-phase walk: client t starts t*7 statements in.
                        let which = (t * 7 + i) % stmts.len();
                        let (w, sql) = &stmts[which];
                        let started = Instant::now();
                        let got = pair[backend_index(*w)]
                            .query(sql)
                            .unwrap_or_else(|e| panic!("client {t} statement {which}: {e}"));
                        lats.push(started.elapsed());
                        if got.rows != reference[which] {
                            divergences.fetch_add(1, Ordering::Relaxed);
                        }
                        std::thread::sleep(think);
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let wall = t0.elapsed();
    latencies.sort();
    let requests = latencies.len();
    LevelStats {
        clients,
        requests,
        wall,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        qps: requests as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Build both workload engines, serve them over real sockets, and measure
/// closed-loop throughput at one and at [`LOADED_CLIENTS`] clients.
/// `budget` is the loaded level's total statement count
/// (`CONCURRENCY_BUDGET`); each client runs `max(10, budget / 8)` statements
/// at *both* levels so the levels differ only in concurrency.
pub fn run_concurrency(scale: Scale, budget: usize) -> ConcurrencyReport {
    let h = start_backend(Workload::TpcH, scale);
    let ds = start_backend(Workload::TpcDs, scale);
    let stmts = statements();
    let iters = (budget / LOADED_CLIENTS).max(10);

    // Single-session reference serves: in-process, one statement at a time.
    // These also prime both plan caches, so the timed levels run hot — the
    // steady state the paper's server cares about.
    let reference: Vec<_> = stmts
        .iter()
        .map(|(w, sql)| {
            let backend = if *w == Workload::TpcH { &h } else { &ds };
            let opt = OrcaOptimizer::new(OrcaConfig::default(), w.threshold());
            backend.engine.query_cached(sql, &opt).expect("reference serve").rows
        })
        .collect();

    // Warmup over the wire: calibrate the think time off real round-trip
    // service times so the closed loop behaves the same at any SCALE. Two
    // passes — the first absorbs one-time costs (socket ramp-up, any
    // residual compile), the second measures the hot steady state the
    // timed levels run in.
    let mut pair = connect_pair([&h, &ds]);
    let mut service = Duration::ZERO;
    for _ in 0..2 {
        service = Duration::ZERO;
        for (w, sql) in &stmts {
            let t = Instant::now();
            pair[backend_index(*w)].query(sql).expect("warmup serve");
            service += t.elapsed();
        }
    }
    let mean_service = service / stmts.len() as u32;
    let think = (mean_service * 4).clamp(Duration::from_millis(2), Duration::from_millis(100));

    let divergences = AtomicUsize::new(0);
    let single = run_level([&h, &ds], &stmts, &reference, 1, iters, think, &divergences);
    let loaded =
        run_level([&h, &ds], &stmts, &reference, LOADED_CLIENTS, iters, think, &divergences);

    let sum = |a: PlanCacheStats, b: PlanCacheStats| PlanCacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        invalidations: a.invalidations + b.invalidations,
        insertions: a.insertions + b.insertions,
        evictions: a.evictions + b.evictions,
        reoptimizations: a.reoptimizations + b.reoptimizations,
    };
    let cache = sum(h.engine.plan_cache_stats(), ds.engine.plan_cache_stats());
    let speedup = loaded.qps / single.qps.max(1e-9);
    let tpch_statements = stmts.iter().filter(|(w, _)| *w == Workload::TpcH).count();
    let report = ConcurrencyReport {
        statements: stmts.len(),
        tpch_statements,
        tpcds_statements: stmts.len() - tpch_statements,
        iters_per_client: iters,
        mean_service,
        think,
        single,
        loaded,
        divergences: divergences.load(Ordering::Relaxed),
        cache,
        speedup,
    };
    h.handle.stop();
    ds.handle.stop();
    report
}

/// Format the concurrency report as markdown (the `harness concurrency` body).
pub fn format_concurrency_report(r: &ConcurrencyReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "mix: {} statements ({} TPC-H, {} TPC-DS), {} per client per level, \
         hot service {:.1?} mean, think {:.1?}\n",
        r.statements,
        r.tpch_statements,
        r.tpcds_statements,
        r.iters_per_client,
        r.mean_service,
        r.think
    );
    let _ = writeln!(s, "| clients | requests | wall | p50 | p99 | QPS |");
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for lvl in [&r.single, &r.loaded] {
        let _ = writeln!(
            s,
            "| {} | {} | {:.2?} | {:.2?} | {:.2?} | {:.1} |",
            lvl.clients, lvl.requests, lvl.wall, lvl.p50, lvl.p99, lvl.qps
        );
    }
    let _ = writeln!(
        s,
        "\nscaling: {:.2}× aggregate QPS at {} clients (gate: ≥ 2×); divergences: {}",
        r.speedup, r.loaded.clients, r.divergences
    );
    let _ = writeln!(
        s,
        "plan cache (both engines): {} hits, {} misses, {} invalidations, {} reoptimizations \
         (hit rate {:.1}%)",
        r.cache.hits,
        r.cache.misses,
        r.cache.invalidations,
        r.cache.reoptimizations,
        r.cache.hit_rate() * 100.0
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: tiny scale, tiny budget. Exercises both
    /// servers, the schedule, and the divergence accounting.
    #[test]
    fn small_run_produces_a_consistent_report() {
        let r = run_concurrency(Scale(0.02), 16);
        assert_eq!(r.statements, 24);
        assert_eq!(r.divergences, 0, "loaded serves match single-session rows");
        assert_eq!(r.single.clients, 1);
        assert_eq!(r.loaded.clients, LOADED_CLIENTS);
        assert_eq!(r.single.requests, r.iters_per_client);
        assert_eq!(r.loaded.requests, LOADED_CLIENTS * r.iters_per_client);
        assert!(r.cache.hits > 0, "the storm runs hot: {:?}", r.cache);
        assert!(r.single.p50 <= r.single.p99);
    }
}
