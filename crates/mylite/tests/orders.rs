//! Order-propagation regression tests: the sort-correctness bugfix sweep.
//!
//! * The redundant-Sort bug: a `Sort` whose input (index scan, group
//!   aggregate over sorted input) already delivers the requested ascending
//!   key prefix must be dropped — pinned as golden plans with the
//!   `order_opt` knob reproducing the always-enforce "before" plan.
//! * Minimal sort keys: `WHERE tag = 'a' ORDER BY tag, id` must reduce to
//!   the key `id` and ride the `(tag, id)` index — equivalent orders
//!   compare equal after constant-equated keys drop out.
//! * Tie determinism: with duplicate sort keys and NULLs, results must be
//!   byte-identical across dop 1/4/8 and across the `order_opt` knob — the
//!   stable-sort identity rule makes enforcer elimination invisible.

use mylite::{Engine, MySqlOptimizer};
use taurus_catalog::Catalog;
use taurus_common::{Column, DataType, Schema, Value};

/// `m(id, score, tag)` with 8 rows, a unique index on `id`, and a
/// two-column index on `(tag, id)`; `score` and `tag` are nullable and
/// carry duplicates so sorts on them hit ties.
fn engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "m",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::nullable("score", DataType::Double),
                Column::nullable("tag", DataType::Str),
            ]),
        )
        .unwrap();
    let rows: Vec<Vec<Value>> = vec![
        vec![Value::Int(1), Value::Double(1.5), Value::str("a")],
        vec![Value::Int(2), Value::Double(2.0), Value::str("b")],
        vec![Value::Int(3), Value::Null, Value::Null],
        vec![Value::Int(4), Value::Double(2.0), Value::str("a")],
        vec![Value::Int(5), Value::Double(1.5), Value::Null],
        vec![Value::Int(6), Value::Null, Value::str("b")],
        vec![Value::Int(7), Value::Double(9.0), Value::str("a")],
        vec![Value::Int(8), Value::Double(2.0), Value::str("b")],
    ];
    cat.insert(t, rows).unwrap();
    cat.create_index(t, "m_pk", vec![0], true).unwrap();
    cat.create_index(t, "m_tag_id", vec![2, 0], false).unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

/// EXPLAIN under both settings of the `order_opt` knob (on first).
fn explain_both(e: &Engine, sql: &str) -> (String, String) {
    e.set_order_opt(true);
    let on = e.explain(sql, &MySqlOptimizer).unwrap();
    e.set_order_opt(false);
    let off = e.explain(sql, &MySqlOptimizer).unwrap();
    e.set_order_opt(true);
    (on, off)
}

#[test]
fn golden_group_by_order_by_drops_the_root_sort() {
    // ORDER BY on the grouping key: the group aggregate's input is sorted
    // on exactly that key and both aggregate strategies emit groups in
    // first-seen order, so the root Sort is the identity. Before the fix
    // (order_opt off) it was always enforced.
    let e = engine();
    let (on, off) = explain_both(&e, "SELECT tag, COUNT(*) FROM m GROUP BY tag ORDER BY tag");
    assert_eq!(
        on,
        "EXPLAIN\n\
         -> Output: #0, #1 [order: delivered #0]\n\
         \x20   -> Group aggregate: COUNT(*) group by m.tag (cost=8.00 rows=1) [order: delivered #0]\n\
         \x20       -> Sort: m.tag (cost=8.00 rows=8) [order: required m.tag]\n\
         \x20           -> Table scan on m (cost=8.00 rows=8)\n"
    );
    assert_eq!(
        off,
        "EXPLAIN\n\
         -> Sort: #0 (cost=8.00 rows=1) [order: required #0]\n\
         \x20   -> Output: #0, #1 [order: delivered #0]\n\
         \x20       -> Group aggregate: COUNT(*) group by m.tag (cost=8.00 rows=1) [order: delivered #0]\n\
         \x20           -> Sort: m.tag (cost=8.00 rows=8) [order: required m.tag]\n\
         \x20               -> Table scan on m (cost=8.00 rows=8)\n"
    );
}

#[test]
fn golden_constant_equated_key_reduces_and_rides_the_index() {
    // WHERE tag = 'a' ORDER BY tag, id: the minimal sort key is `id`
    // alone, the (tag, id) range scan delivers `tag, id`, and with `tag`
    // proven constant the projection carries `id` through — the enforcer
    // is redundant. Before the fix it survived both reductions.
    let e = engine();
    let (on, off) = explain_both(&e, "SELECT id FROM m WHERE tag = 'a' ORDER BY tag, id");
    assert_eq!(
        on,
        "EXPLAIN\n\
         -> Output: m.id [order: delivered #0]\n\
         \x20   -> Index range scan on m using m_tag_id (cost=6.00 rows=3) [order: delivered m.tag, m.id]\n"
    );
    assert_eq!(
        off,
        "EXPLAIN\n\
         -> Sort: #0 (cost=6.00 rows=3) [order: required #0]\n\
         \x20   -> Output: m.id [order: delivered #0]\n\
         \x20       -> Index range scan on m using m_tag_id (cost=6.00 rows=3) [order: delivered m.tag, m.id]\n"
    );
    // And the dropped enforcer changes no bytes.
    e.set_order_opt(false);
    let baseline = e
        .query_cached("SELECT id FROM m WHERE tag = 'a' ORDER BY tag, id", &MySqlOptimizer)
        .unwrap();
    e.set_order_opt(true);
    let opt = e
        .query_cached("SELECT id FROM m WHERE tag = 'a' ORDER BY tag, id", &MySqlOptimizer)
        .unwrap();
    assert_eq!(baseline.rows, opt.rows);
    assert_eq!(opt.rows, vec![vec![Value::Int(1)], vec![Value::Int(4)], vec![Value::Int(7)]]);
}

/// A larger engine for tie determinism under parallel execution: 240 rows,
/// 3 distinct scores (plus NULLs), 4 tags (plus NULLs) — every sort is
/// dominated by ties.
fn tie_engine() -> Engine {
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "ties",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::nullable("score", DataType::Double),
                Column::nullable("tag", DataType::Str),
            ]),
        )
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..240)
        .map(|i| {
            let score = if i % 7 == 0 { Value::Null } else { Value::Double((i % 3) as f64) };
            let tag = if i % 11 == 0 { Value::Null } else { Value::str(format!("t{}", i % 4)) };
            vec![Value::Int(i), score, tag]
        })
        .collect();
    cat.insert(t, rows).unwrap();
    cat.create_index(t, "ties_pk", vec![0], true).unwrap();
    cat.create_index(t, "ties_tag_id", vec![2, 0], false).unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    // Force exchanges in even for this small table so GatherMerge runs.
    e.set_parallel_threshold(1);
    e
}

#[test]
fn tie_determinism_across_dop_and_order_opt() {
    let e = tie_engine();
    let queries = [
        // Heavy ties + NULLs on the sort key; id breaks nothing.
        "SELECT score, id FROM ties ORDER BY score",
        // DESC direction: NULLs must land last under the shared comparator.
        "SELECT score, id FROM ties ORDER BY score DESC",
        // Grouped, ordered by the group key (enforcer eliminated when on).
        "SELECT tag, COUNT(*) FROM ties GROUP BY tag ORDER BY tag",
        // Constant-equated prefix + index-delivered order.
        "SELECT id FROM ties WHERE tag = 't1' ORDER BY tag, id",
        // Multi-key with duplicate key in the ORDER BY list.
        "SELECT score, tag, id FROM ties ORDER BY score, score, tag",
    ];
    for sql in queries {
        e.set_dop(1);
        e.set_order_opt(false);
        let baseline = e.query_cached(sql, &MySqlOptimizer).unwrap().rows;
        for dop in [1usize, 4, 8] {
            e.set_dop(dop);
            for opt in [false, true] {
                e.set_order_opt(opt);
                let got = e.query_cached(sql, &MySqlOptimizer).unwrap().rows;
                assert_eq!(got, baseline, "bytes diverged at dop={dop} order_opt={opt} for: {sql}");
            }
        }
    }
}
