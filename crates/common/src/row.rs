//! Rows, schemas, and row layouts.
//!
//! Join operators concatenate their children's rows. Because the Orca-like
//! optimizer may pick *any* join order (including bushy trees), a column
//! reference `(table, col)` cannot be a fixed offset: the same expression
//! tree must evaluate correctly against whatever concatenation the chosen
//! plan produces. [`Layout`] maps each query-table index to its slot range
//! in the current row, and expression evaluation goes through it.

use crate::types::DataType;
use crate::value::Value;
use std::fmt;

/// A materialized row: one [`Value`] per column slot.
pub type Row = Vec<Value>;

/// A named, typed column of a table or derived relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    /// Non-nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column { name: name.into(), data_type, nullable: false }
    }

    /// Nullable column.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Column {
        Column { name: name.into(), data_type, nullable: true }
    }
}

/// Ordered set of columns describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// 0-based ordinal of a column by name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
        }
        write!(f, ")")
    }
}

/// Maps *query-table indexes* to slot offsets in a concatenated row.
///
/// A query that references `n` tables (base tables plus derived tables, in
/// the order the resolver assigned them) gets indexes `0..n`. A plan
/// fragment producing rows for a subset of those tables has a layout with
/// `offset[t] = Some(start)` for each table `t` it covers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Layout {
    /// `offsets[t]` is the slot where table `t`'s first column lives, or
    /// `None` if table `t` is not part of this fragment's output.
    offsets: Vec<Option<usize>>,
    /// Total number of value slots in rows of this layout.
    width: usize,
}

impl Layout {
    /// Layout covering no tables (width 0); useful as a seed.
    pub fn empty(num_tables: usize) -> Layout {
        Layout { offsets: vec![None; num_tables], width: 0 }
    }

    /// Layout for a single table `t` (of `num_tables` in the query) whose
    /// rows have `width` columns, starting at slot 0.
    pub fn single(num_tables: usize, t: usize, width: usize) -> Layout {
        let mut l = Layout::empty(num_tables);
        l.offsets[t] = Some(0);
        l.width = width;
        l
    }

    /// Concatenation layout: `self`'s slots first, then `right`'s shifted by
    /// `self.width`. Panics if a table appears on both sides (a join between
    /// overlapping fragments is a planner bug).
    pub fn join(&self, right: &Layout) -> Layout {
        assert_eq!(self.offsets.len(), right.offsets.len(), "layouts from different queries");
        let mut offsets = self.offsets.clone();
        for (t, off) in right.offsets.iter().enumerate() {
            if let Some(o) = off {
                assert!(offsets[t].is_none(), "table {t} on both sides of a join");
                offsets[t] = Some(self.width + o);
            }
        }
        Layout { offsets, width: self.width + right.width }
    }

    /// Slot of `(table, col)`, or `None` when the table is absent.
    pub fn slot(&self, table: usize, col: usize) -> Option<usize> {
        self.offsets.get(table).copied().flatten().map(|o| o + col)
    }

    /// Whether the fragment covers table `t`.
    pub fn covers(&self, t: usize) -> bool {
        self.offsets.get(t).copied().flatten().is_some()
    }

    /// All covered table indexes, ascending.
    pub fn tables(&self) -> impl Iterator<Item = usize> + '_ {
        self.offsets.iter().enumerate().filter(|(_, o)| o.is_some()).map(|(t, _)| t)
    }

    /// Total slot count.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of table indexes in the underlying query.
    pub fn num_tables(&self) -> usize {
        self.offsets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::nullable("b", DataType::Str),
        ]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zz"), None);
        assert!(s.column(1).nullable);
        assert_eq!(s.to_string(), "(a INT, b VARCHAR)");
    }

    #[test]
    fn layout_single_and_join() {
        // Query with 3 tables; table 1 has 2 cols, table 2 has 3 cols.
        let l1 = Layout::single(3, 1, 2);
        let l2 = Layout::single(3, 2, 3);
        assert_eq!(l1.slot(1, 1), Some(1));
        assert_eq!(l1.slot(2, 0), None);

        let j = l1.join(&l2);
        assert_eq!(j.width(), 5);
        assert_eq!(j.slot(1, 0), Some(0));
        assert_eq!(j.slot(2, 0), Some(2));
        assert_eq!(j.slot(2, 2), Some(4));
        assert!(!j.covers(0));
        assert_eq!(j.tables().collect::<Vec<_>>(), vec![1, 2]);

        // Join order matters for offsets — the bushy-plan case.
        let j2 = l2.join(&l1);
        assert_eq!(j2.slot(2, 0), Some(0));
        assert_eq!(j2.slot(1, 0), Some(3));
    }

    #[test]
    #[should_panic(expected = "both sides")]
    fn overlapping_join_panics() {
        let l = Layout::single(2, 0, 1);
        let _ = l.join(&l);
    }
}
