//! The metadata-accessor plug-in API and Orca's metadata cache.
//!
//! Orca integrates with a host DBMS through a metadata provider (§5): all
//! catalog knowledge — relations, columns, statistics, histograms, indexes,
//! expression commutators/inverses — arrives through OID-keyed calls on
//! this trait. The bridge crate implements it for the MySQL stand-in; the
//! in-memory implementation here serves orcalite's own tests.
//!
//! [`MdCache`] reproduces Orca's internal metadata cache: "Orca maintains
//! an internal metadata cache ... if the required information preexists
//! there, the metadata provider is not queried again" (§5.7).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use taurus_catalog::estimate::RelView;
use taurus_catalog::CardOverrides;
use taurus_common::Oid;

/// Relation metadata.
#[derive(Debug, Clone)]
pub struct MdRelation {
    pub name: String,
    pub rows: f64,
    pub num_columns: usize,
}

/// Index metadata: positions refer to the host's per-table index list so
/// the host can map plans back without name lookups.
#[derive(Debug, Clone)]
pub struct MdIndex {
    /// Host-side index position within the relation.
    pub position: usize,
    pub name: String,
    /// Column ordinals forming the key, in order.
    pub columns: Vec<usize>,
    pub unique: bool,
}

/// The plug-in boundary. Every method is OID-keyed, as in the paper.
pub trait MetadataAccessor {
    /// Relation descriptor (name, cardinality, arity).
    fn relation(&self, oid: Oid) -> Option<MdRelation>;
    /// Column statistics and histograms packaged for estimation.
    fn statistics(&self, oid: Oid) -> Option<RelView>;
    /// Indexes defined on the relation.
    fn indexes(&self, oid: Oid) -> Vec<MdIndex>;
    /// OID of the commutator expression, or [`Oid::INVALID`] (§5.3).
    fn commutator(&self, expr: Oid) -> Oid {
        let _ = expr;
        Oid::INVALID
    }
    /// OID of the inverse expression, or [`Oid::INVALID`] (§5.3).
    fn inverse(&self, expr: Oid) -> Oid {
        let _ = expr;
        Oid::INVALID
    }
}

/// Counting, memoizing wrapper — Orca's metadata cache.
pub struct MdCache<'a> {
    inner: &'a dyn MetadataAccessor,
    relations: RefCell<HashMap<Oid, Option<MdRelation>>>,
    stats: RefCell<HashMap<Oid, Option<RelView>>>,
    indexes: RefCell<HashMap<Oid, Vec<MdIndex>>>,
    /// Provider round-trips actually performed (misses).
    misses: RefCell<u64>,
    /// Requests served from the cache.
    hits: RefCell<u64>,
    /// Observed-cardinality overrides for feedback-driven re-optimization.
    /// Like statistics, observed rows are *metadata about relations and
    /// their joins*, so they arrive through the same accessor boundary the
    /// paper routes all catalog knowledge through — the search reads them
    /// from its metadata handle, never from a side channel.
    overrides: RefCell<Option<Arc<CardOverrides>>>,
}

impl<'a> MdCache<'a> {
    pub fn new(inner: &'a dyn MetadataAccessor) -> MdCache<'a> {
        MdCache {
            inner,
            relations: RefCell::new(HashMap::new()),
            stats: RefCell::new(HashMap::new()),
            indexes: RefCell::new(HashMap::new()),
            misses: RefCell::new(0),
            hits: RefCell::new(0),
            overrides: RefCell::new(None),
        }
    }

    /// Install observed-cardinality overrides for the next optimization
    /// run through this cache. `None` (the default) means estimate-only.
    pub fn set_overrides(&self, overrides: Option<Arc<CardOverrides>>) {
        *self.overrides.borrow_mut() = overrides;
    }

    /// The installed observed-cardinality overrides, if any.
    pub fn overrides(&self) -> Option<Arc<CardOverrides>> {
        self.overrides.borrow().clone()
    }

    pub fn relation(&self, oid: Oid) -> Option<MdRelation> {
        if let Some(hit) = self.relations.borrow().get(&oid) {
            *self.hits.borrow_mut() += 1;
            return hit.clone();
        }
        *self.misses.borrow_mut() += 1;
        let v = self.inner.relation(oid);
        self.relations.borrow_mut().insert(oid, v.clone());
        v
    }

    pub fn statistics(&self, oid: Oid) -> Option<RelView> {
        if let Some(hit) = self.stats.borrow().get(&oid) {
            *self.hits.borrow_mut() += 1;
            return hit.clone();
        }
        *self.misses.borrow_mut() += 1;
        let v = self.inner.statistics(oid);
        self.stats.borrow_mut().insert(oid, v.clone());
        v
    }

    pub fn indexes(&self, oid: Oid) -> Vec<MdIndex> {
        if let Some(hit) = self.indexes.borrow().get(&oid) {
            *self.hits.borrow_mut() += 1;
            return hit.clone();
        }
        *self.misses.borrow_mut() += 1;
        let v = self.inner.indexes(oid);
        self.indexes.borrow_mut().insert(oid, v.clone());
        v
    }

    /// `(provider round-trips, cache hits)` — exercised by tests to show
    /// the provider is not re-queried (§5.7).
    pub fn traffic(&self) -> (u64, u64) {
        (*self.misses.borrow(), *self.hits.borrow())
    }
}

/// Simple in-memory accessor for tests and examples.
#[derive(Debug, Default)]
pub struct InMemoryAccessor {
    pub relations: HashMap<Oid, (MdRelation, Option<RelView>, Vec<MdIndex>)>,
}

impl InMemoryAccessor {
    pub fn insert(
        &mut self,
        oid: Oid,
        rel: MdRelation,
        stats: Option<RelView>,
        indexes: Vec<MdIndex>,
    ) {
        self.relations.insert(oid, (rel, stats, indexes));
    }
}

impl MetadataAccessor for InMemoryAccessor {
    fn relation(&self, oid: Oid) -> Option<MdRelation> {
        self.relations.get(&oid).map(|(r, _, _)| r.clone())
    }

    fn statistics(&self, oid: Oid) -> Option<RelView> {
        self.relations.get(&oid).and_then(|(_, s, _)| s.clone())
    }

    fn indexes(&self, oid: Oid) -> Vec<MdIndex> {
        self.relations.get(&oid).map(|(_, _, i)| i.clone()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accessor() -> InMemoryAccessor {
        let mut a = InMemoryAccessor::default();
        a.insert(
            Oid(100),
            MdRelation { name: "part".into(), rows: 1000.0, num_columns: 2 },
            None,
            vec![MdIndex { position: 0, name: "pk".into(), columns: vec![0], unique: true }],
        );
        a
    }

    #[test]
    fn cache_avoids_repeat_round_trips() {
        let a = accessor();
        let cache = MdCache::new(&a);
        assert_eq!(cache.relation(Oid(100)).unwrap().name, "part");
        assert_eq!(cache.relation(Oid(100)).unwrap().rows, 1000.0);
        assert_eq!(cache.indexes(Oid(100)).len(), 1);
        assert_eq!(cache.indexes(Oid(100)).len(), 1);
        let (misses, hits) = cache.traffic();
        assert_eq!(misses, 2, "one per kind of object");
        assert_eq!(hits, 2);
    }

    #[test]
    fn negative_results_cached_too() {
        let a = accessor();
        let cache = MdCache::new(&a);
        assert!(cache.relation(Oid(999)).is_none());
        assert!(cache.relation(Oid(999)).is_none());
        let (misses, hits) = cache.traffic();
        assert_eq!((misses, hits), (1, 1));
    }

    #[test]
    fn default_commutator_is_invalid_oid() {
        let a = accessor();
        assert!(!a.commutator(Oid(5)).is_valid());
        assert!(!a.inverse(Oid(5)).is_valid());
    }
}
