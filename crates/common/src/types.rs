//! MySQL column types and the paper's *type categories*.
//!
//! §5.1 of the paper: MySQL has 31 column types; the metadata provider groups
//! them into 12 type categories so that the expression space Orca sees stays
//! tractable (12×12×5 arithmetic, 12×12×6 comparison, 14×6 aggregation
//! expressions). §7 records a lesson: an initial single `INT` category was
//! too coarse for index selection and was split into `INT2`, `INT4`, `INT8`.
//! We implement the *post-lesson* categorisation and keep the pre-lesson one
//! available for the ablation benchmark.

use std::fmt;

/// The 31 MySQL wire/column types (`enum_field_types` in MySQL 8.0).
///
/// The exact member set matters only in that there are 31 of them and that
/// the category mapping below is total; the reproduction exercises a
/// representative subset at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MySqlType {
    Decimal,
    Tiny,
    Short,
    Long,
    Float,
    Double,
    Null,
    Timestamp,
    LongLong,
    Int24,
    Date,
    Time,
    Datetime,
    Year,
    NewDate,
    VarChar,
    Bit,
    Timestamp2,
    Datetime2,
    Time2,
    Json,
    NewDecimal,
    Enum,
    Set,
    TinyBlob,
    MediumBlob,
    LongBlob,
    Blob,
    VarString,
    String,
    Geometry,
}

impl MySqlType {
    /// All 31 types, for exhaustive enumeration in tests and the metadata
    /// provider.
    pub const ALL: [MySqlType; 31] = [
        MySqlType::Decimal,
        MySqlType::Tiny,
        MySqlType::Short,
        MySqlType::Long,
        MySqlType::Float,
        MySqlType::Double,
        MySqlType::Null,
        MySqlType::Timestamp,
        MySqlType::LongLong,
        MySqlType::Int24,
        MySqlType::Date,
        MySqlType::Time,
        MySqlType::Datetime,
        MySqlType::Year,
        MySqlType::NewDate,
        MySqlType::VarChar,
        MySqlType::Bit,
        MySqlType::Timestamp2,
        MySqlType::Datetime2,
        MySqlType::Time2,
        MySqlType::Json,
        MySqlType::NewDecimal,
        MySqlType::Enum,
        MySqlType::Set,
        MySqlType::TinyBlob,
        MySqlType::MediumBlob,
        MySqlType::LongBlob,
        MySqlType::Blob,
        MySqlType::VarString,
        MySqlType::String,
        MySqlType::Geometry,
    ];

    /// The refined (post-§7-lesson) category of this type.
    ///
    /// `TINY`/`SHORT`/`YEAR` → `INT2`; `INT24`/`LONG`/`ENUM`/`SET` → `INT4`;
    /// `LONGLONG` → `INT8`; the four decimals/reals → `NUM`; etc.
    pub fn category(self) -> TypeCategory {
        use MySqlType::*;
        match self {
            Tiny | Short | Year => TypeCategory::Int2,
            Int24 | Long | Enum | Set => TypeCategory::Int4,
            LongLong => TypeCategory::Int8,
            Decimal | NewDecimal | Float | Double => TypeCategory::Num,
            Bit | Null => TypeCategory::Bit,
            Date | NewDate => TypeCategory::Dte,
            Datetime | Datetime2 | Timestamp | Timestamp2 => TypeCategory::Dtt,
            Time | Time2 => TypeCategory::Tim,
            VarChar | VarString | String => TypeCategory::Str,
            TinyBlob | MediumBlob | LongBlob | Blob => TypeCategory::Blb,
            Json => TypeCategory::Jsn,
            Geometry => TypeCategory::Geo,
        }
    }

    /// The original, pre-lesson category with a single coarse `INT` bucket
    /// (all of `INT2`/`INT4`/`INT8` collapse to `Int4`).
    ///
    /// §7: with this mapping "Orca could not determine proper indexes for
    /// integer-like columns". Kept so the ablation bench can demonstrate the
    /// effect.
    pub fn coarse_category(self) -> TypeCategory {
        match self.category() {
            TypeCategory::Int2 | TypeCategory::Int8 => TypeCategory::Int4,
            other => other,
        }
    }
}

impl fmt::Display for MySqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The paper's 12 type categories, plus the two aggregation-only pseudo
/// categories `STAR` (for `COUNT(*)`) and `ANY` (for `COUNT(expr)` over any
/// type) — 14 in total (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TypeCategory {
    /// 16-bit-ish integers: TINY, SHORT, YEAR.
    Int2,
    /// 32-bit-ish integers: INT24, LONG, ENUM, SET.
    Int4,
    /// 64-bit integers: LONGLONG.
    Int8,
    /// Decimals and floating point: DECIMAL, NEWDECIMAL, FLOAT, DOUBLE.
    Num,
    /// BIT (and the NULL placeholder type).
    Bit,
    /// Calendar dates.
    Dte,
    /// Date-times and timestamps.
    Dtt,
    /// Times of day.
    Tim,
    /// Character strings.
    Str,
    /// The four BLOB flavours, consolidated (§5.1).
    Blb,
    /// JSON documents.
    Jsn,
    /// Geometry values.
    Geo,
    /// Aggregation-only: the `*` of `COUNT(*)`.
    Star,
    /// Aggregation-only: `COUNT(expr)` for an operand of any type.
    Any,
}

impl TypeCategory {
    /// The 12 value categories usable as arithmetic/comparison operands.
    pub const OPERAND: [TypeCategory; 12] = [
        TypeCategory::Int2,
        TypeCategory::Int4,
        TypeCategory::Int8,
        TypeCategory::Num,
        TypeCategory::Bit,
        TypeCategory::Dte,
        TypeCategory::Dtt,
        TypeCategory::Tim,
        TypeCategory::Str,
        TypeCategory::Blb,
        TypeCategory::Jsn,
        TypeCategory::Geo,
    ];

    /// All 14 categories (operands plus `STAR` and `ANY`), the aggregation
    /// operand axis of §5.2.
    pub const AGG_OPERAND: [TypeCategory; 14] = [
        TypeCategory::Int2,
        TypeCategory::Int4,
        TypeCategory::Int8,
        TypeCategory::Num,
        TypeCategory::Bit,
        TypeCategory::Dte,
        TypeCategory::Dtt,
        TypeCategory::Tim,
        TypeCategory::Str,
        TypeCategory::Blb,
        TypeCategory::Jsn,
        TypeCategory::Geo,
        TypeCategory::Star,
        TypeCategory::Any,
    ];

    /// Dense 0-based index of this category along the operand axis.
    /// `STAR`/`ANY` extend the axis to 14 for aggregations.
    pub fn index(self) -> usize {
        Self::AGG_OPERAND
            .iter()
            .position(|c| *c == self)
            .expect("AGG_OPERAND covers every category")
    }

    /// Inverse of [`TypeCategory::index`]; `None` if out of range.
    pub fn from_index(i: usize) -> Option<TypeCategory> {
        Self::AGG_OPERAND.get(i).copied()
    }

    /// Short uppercase name as the paper prints them ("NUM", "BLB", ...).
    pub fn name(self) -> &'static str {
        match self {
            TypeCategory::Int2 => "INT2",
            TypeCategory::Int4 => "INT4",
            TypeCategory::Int8 => "INT8",
            TypeCategory::Num => "NUM",
            TypeCategory::Bit => "BIT",
            TypeCategory::Dte => "DTE",
            TypeCategory::Dtt => "DTT",
            TypeCategory::Tim => "TIM",
            TypeCategory::Str => "STR",
            TypeCategory::Blb => "BLB",
            TypeCategory::Jsn => "JSN",
            TypeCategory::Geo => "GEO",
            TypeCategory::Star => "STAR",
            TypeCategory::Any => "ANY",
        }
    }
}

impl fmt::Display for TypeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runtime data type of a column or expression — the simplified set the
/// executor actually evaluates. Each maps onto one or more [`MySqlType`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (covers all MySQL integer widths at runtime).
    Int,
    /// Double-precision float (covers DECIMAL/FLOAT/DOUBLE at runtime).
    Double,
    /// UTF-8 string.
    Str,
    /// Calendar date, days since 1970-01-01.
    Date,
    /// Boolean (the result type of predicates).
    Bool,
}

impl DataType {
    /// The representative MySQL wire type for this runtime type. The bridge
    /// uses this when it needs a [`MySqlType`] (and hence a type category)
    /// for a column declared with a runtime type.
    pub fn mysql_type(self) -> MySqlType {
        match self {
            DataType::Int => MySqlType::LongLong,
            DataType::Double => MySqlType::Double,
            DataType::Str => MySqlType::VarChar,
            DataType::Date => MySqlType::Date,
            DataType::Bool => MySqlType::Tiny,
        }
    }

    /// Category under the refined mapping.
    pub fn category(self) -> TypeCategory {
        self.mysql_type().category()
    }

    /// Whether the type is numeric for coercion purposes.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Double)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn there_are_exactly_31_mysql_types() {
        assert_eq!(MySqlType::ALL.len(), 31);
        let uniq: HashSet<_> = MySqlType::ALL.iter().collect();
        assert_eq!(uniq.len(), 31, "ALL must not repeat a member");
    }

    #[test]
    fn refined_mapping_covers_all_12_operand_categories() {
        let used: HashSet<_> = MySqlType::ALL.iter().map(|t| t.category()).collect();
        for cat in TypeCategory::OPERAND {
            assert!(used.contains(&cat), "{cat} unused by any MySQL type");
        }
        // STAR/ANY are aggregation-only and never assigned to a column type.
        assert!(!used.contains(&TypeCategory::Star));
        assert!(!used.contains(&TypeCategory::Any));
    }

    #[test]
    fn lesson_split_int_categories() {
        // §7: TINY, SHORT, YEAR, INT24, LONG, LONGLONG, ENUM, SET were all
        // "INT" before the lesson; afterwards they split into INT2/INT4/INT8.
        assert_eq!(MySqlType::Tiny.category(), TypeCategory::Int2);
        assert_eq!(MySqlType::Year.category(), TypeCategory::Int2);
        assert_eq!(MySqlType::Long.category(), TypeCategory::Int4);
        assert_eq!(MySqlType::Enum.category(), TypeCategory::Int4);
        assert_eq!(MySqlType::LongLong.category(), TypeCategory::Int8);
        // The coarse mapping collapses them again.
        assert_eq!(MySqlType::Tiny.coarse_category(), TypeCategory::Int4);
        assert_eq!(MySqlType::LongLong.coarse_category(), TypeCategory::Int4);
        // Non-integer categories are unaffected by the coarse mapping.
        assert_eq!(MySqlType::VarChar.coarse_category(), TypeCategory::Str);
    }

    #[test]
    fn blobs_consolidate() {
        for t in [MySqlType::TinyBlob, MySqlType::MediumBlob, MySqlType::LongBlob, MySqlType::Blob]
        {
            assert_eq!(t.category(), TypeCategory::Blb);
        }
    }

    #[test]
    fn category_index_round_trips() {
        for (i, cat) in TypeCategory::AGG_OPERAND.iter().enumerate() {
            assert_eq!(cat.index(), i);
            assert_eq!(TypeCategory::from_index(i), Some(*cat));
        }
        assert_eq!(TypeCategory::from_index(14), None);
        assert_eq!(TypeCategory::OPERAND.len(), 12);
        assert_eq!(TypeCategory::AGG_OPERAND.len(), 14);
    }

    #[test]
    fn runtime_types_map_to_categories() {
        assert_eq!(DataType::Int.category(), TypeCategory::Int8);
        assert_eq!(DataType::Str.category(), TypeCategory::Str);
        assert_eq!(DataType::Date.category(), TypeCategory::Dte);
        assert!(DataType::Double.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }
}
