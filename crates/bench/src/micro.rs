//! A minimal micro-benchmark harness for the `benches/` targets.
//!
//! The workspace must build with no external crates (tier-1 verify runs
//! offline), so the Criterion dependency was replaced with this: warm-up,
//! fixed sample count, median/min/mean over wall-clock samples, one line of
//! output per benchmark. Sample counts are tuned by the caller; `SAMPLES`
//! env var overrides for quick runs.

use std::time::{Duration, Instant};

/// A named group of benchmarks, printed as an indented block.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    pub fn new(name: impl Into<String>) -> Group {
        let name = name.into();
        println!("{name}");
        let samples = std::env::var("SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
        Group { name, samples }
    }

    pub fn sample_size(mut self, n: usize) -> Group {
        self.samples = n.max(1);
        self
    }

    /// Time `f` over the group's sample count (after one warm-up call) and
    /// print `label: median … (min …, mean …)`.
    pub fn bench<F: FnMut()>(&self, label: &str, mut f: F) -> Stats {
        f(); // warm-up
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            f();
            times.push(t.elapsed());
        }
        times.sort();
        let stats = Stats {
            median: times[times.len() / 2],
            min: times[0],
            mean: times.iter().sum::<Duration>() / times.len() as u32,
        };
        println!(
            "  {label:<28} median {:>10.3?}  (min {:.3?}, mean {:.3?}, n={})",
            stats.median, stats.min, stats.mean, self.samples
        );
        stats
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Summary statistics for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub median: Duration,
    pub min: Duration,
    pub mean: Duration,
}

/// Scale factor from the `SCALE` env var with a bench-appropriate default.
pub fn scale_from_env(default: f64) -> f64 {
    std::env::var("SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_stats() {
        let g = Group::new("test-group").sample_size(3);
        let s = g.bench("noop", || {
            std::hint::black_box(1 + 1);
        });
        assert!(s.min <= s.median);
    }
}
