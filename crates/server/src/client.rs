//! A small blocking client for the wire protocol — what the integration
//! tests and the concurrency bench drive the server with.

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, Reply, Request, ServeOutcome,
};
use mylite::SessionOpts;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use taurus_common::error::{Error, Result};
use taurus_common::Value;

/// A decoded result set.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    pub outcome: ServeOutcome,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

/// One connection = one server-side session.
pub struct Client {
    stream: TcpStream,
}

fn io_err(e: io::Error) -> Error {
    Error::internal(format!("client i/o: {e}"))
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, req: &Request) -> Result<Reply> {
        write_frame(&mut self.stream, &encode_request(req)).map_err(io_err)?;
        let payload = read_frame(&mut self.stream)
            .map_err(io_err)?
            .ok_or_else(|| Error::internal("server hung up mid-request"))?;
        decode_reply(&payload)
    }

    fn expect_rows(&mut self, req: &Request) -> Result<QueryReply> {
        match self.round_trip(req)? {
            Reply::Rows { outcome, columns, rows } => Ok(QueryReply { outcome, columns, rows }),
            Reply::Err(e) => Err(e),
            other => Err(Error::internal(format!("expected rows, got {other:?}"))),
        }
    }

    /// Execute a statement with the session's options.
    pub fn query(&mut self, sql: &str) -> Result<QueryReply> {
        self.query_opts(sql, &SessionOpts::default())
    }

    /// Execute a statement with per-statement option overrides.
    pub fn query_opts(&mut self, sql: &str, opts: &SessionOpts) -> Result<QueryReply> {
        self.expect_rows(&Request::Query { opts: *opts, sql: sql.into() })
    }

    /// Fold options into the server-side session state.
    pub fn set(&mut self, opts: &SessionOpts) -> Result<()> {
        match self.round_trip(&Request::Set { opts: *opts })? {
            Reply::Unit => Ok(()),
            Reply::Err(e) => Err(e),
            other => Err(Error::internal(format!("expected unit, got {other:?}"))),
        }
    }

    /// EXPLAIN a statement through the server's plan cache.
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        self.explain_opts(sql, &SessionOpts::default())
    }

    pub fn explain_opts(&mut self, sql: &str, opts: &SessionOpts) -> Result<String> {
        match self.round_trip(&Request::Explain { opts: *opts, sql: sql.into() })? {
            Reply::Text(t) => Ok(t),
            Reply::Err(e) => Err(e),
            other => Err(Error::internal(format!("expected text, got {other:?}"))),
        }
    }

    /// Run ANALYZE on every table (bumps the catalog version server-side).
    pub fn analyze(&mut self) -> Result<()> {
        match self.round_trip(&Request::Analyze)? {
            Reply::Unit => Ok(()),
            Reply::Err(e) => Err(e),
            other => Err(Error::internal(format!("expected unit, got {other:?}"))),
        }
    }

    /// Close the session politely (dropping the client works too — the
    /// server treats EOF as a hangup).
    pub fn quit(mut self) {
        let _ = write_frame(&mut self.stream, &encode_request(&Request::Quit));
    }
}
