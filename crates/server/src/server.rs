//! The threaded TCP front end: an accept loop handing each connection its
//! own [`Session`] thread over the shared engine.
//!
//! One thread per connection is the right shape here: sessions are
//! long-lived, the engine underneath is the concurrency story (sharded
//! plan cache, catalog read-snapshots, atomic admission), and a blocking
//! read loop per socket keeps the protocol code trivially correct. The
//! handle's [`ServerHandle::stop`] wakes the accept loop with a
//! self-connection (the portable std trick), shuts down live sockets, and
//! joins every thread, so tests and benches can bring a server up and down
//! repeatedly in one process without leaking threads.

use crate::protocol::{encode_reply, read_frame, write_frame, Reply};
use crate::session::Session;
use mylite::{CostBasedOptimizer, Engine};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The multi-session SQL server.
pub struct Server;

/// Shared accept-loop state.
struct Shared {
    engine: Arc<Engine>,
    optimizer: Arc<dyn CostBasedOptimizer + Send + Sync>,
    stopping: AtomicBool,
    next_session: AtomicU64,
    /// Live client sockets, shut down on stop so session threads unblock.
    conns: Mutex<Vec<TcpStream>>,
    /// Session threads, joined on stop.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::stop`] leaves the server running for the life of the
/// process (threads are detached only from the handle, not the OS).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `127.0.0.1` on an ephemeral port and start serving.
    pub fn start(
        engine: Arc<Engine>,
        optimizer: Arc<dyn CostBasedOptimizer + Send + Sync>,
    ) -> io::Result<ServerHandle> {
        Server::bind("127.0.0.1:0", engine, optimizer)
    }

    /// Bind an explicit address and start serving.
    pub fn bind(
        addr: &str,
        engine: Arc<Engine>,
        optimizer: Arc<dyn CostBasedOptimizer + Send + Sync>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            optimizer,
            stopping: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(ServerHandle { addr: local, shared, acceptor: Some(acceptor) })
    }
}

impl ServerHandle {
    /// The address clients connect to (useful with the `:0` default).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, hang up every live session, and join all threads.
    pub fn stop(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        // Hang up live sessions so their read loops see EOF.
        for conn in lock(&self.shared.conns).drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let workers: Vec<_> = std::mem::take(&mut *lock(&self.shared.workers));
        for w in workers {
            let _ = w.join();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        // Request/reply traffic: never trade latency for batching.
        let _ = stream.set_nodelay(true);
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).push(clone);
        }
        let worker = {
            let shared = shared.clone();
            std::thread::spawn(move || serve_connection(stream, id, shared))
        };
        lock(&shared.workers).push(worker);
    }
}

/// One connection's blocking serve loop: frame in, dispatch, frame out.
fn serve_connection(mut stream: TcpStream, id: u64, shared: Arc<Shared>) {
    let mut session = Session::new(id, shared.engine.clone(), shared.optimizer.clone());
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Clean hangup or a broken socket: either way the session ends.
            Ok(None) | Err(_) => return,
        };
        let reply = match crate::protocol::decode_request(&payload) {
            Ok(req) => match session.dispatch(req) {
                Some(r) => r,
                None => return, // Quit
            },
            // Malformed frame: report it and keep the session alive — the
            // framing layer is still in sync (we read a whole frame).
            Err(e) => Reply::Err(e),
        };
        if write_frame(&mut stream, &encode_reply(&reply)).is_err() {
            return;
        }
    }
}
