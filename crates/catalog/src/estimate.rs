//! Shared cardinality estimation.
//!
//! Both optimizers estimate from the *same* statistics — the paper "provided
//! the histograms as they existed inside MySQL" to Orca (§8) — so the
//! selectivity arithmetic lives here once. The MySQL-like optimizer calls it
//! directly; the Orca-like optimizer calls it through its metadata-accessor
//! snapshots. The formulas are the classic System-R family with
//! histogram-backed point/range estimates.

use crate::histogram::Histogram;
use crate::stats::TableStats;
use std::sync::Arc;
use taurus_common::expr::EvalCtx;
use taurus_common::{BinOp, ColRef, Expr, Layout, Value};

/// Default selectivity for an equality we cannot estimate.
pub const DEFAULT_EQ_SEL: f64 = 0.1;
/// Default selectivity for an inequality/range we cannot estimate.
pub const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Row count assumed for relations with no statistics.
pub const DEFAULT_ROWS: f64 = 1000.0;

/// Statistics snapshot for one column of one query table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColView {
    pub ndv: f64,
    pub null_frac: f64,
    pub hist: Option<Arc<Histogram>>,
}

/// Statistics snapshot for one query table (base or derived).
#[derive(Debug, Clone)]
pub struct RelView {
    pub rows: f64,
    /// One entry per column; `None` when the column is unknown (derived
    /// tables expose estimated row counts but usually no column stats).
    pub cols: Vec<Option<ColView>>,
}

impl RelView {
    /// A view with a row count but no column statistics.
    pub fn opaque(rows: f64, num_cols: usize) -> RelView {
        RelView { rows, cols: vec![None; num_cols] }
    }

    /// Build from analyzed table statistics.
    pub fn from_stats(stats: &TableStats) -> RelView {
        let rows = stats.row_count as f64;
        let cols = stats
            .columns
            .iter()
            .map(|c| {
                Some(ColView {
                    ndv: c.ndv,
                    null_frac: c.null_fraction(stats.row_count),
                    hist: c.histogram.clone(),
                })
            })
            .collect();
        RelView { rows, cols }
    }
}

/// Estimator over the query's table list: index = query-table index.
#[derive(Debug, Clone, Default)]
pub struct Estimator {
    rels: Vec<Option<RelView>>,
}

impl Estimator {
    pub fn new(rels: Vec<Option<RelView>>) -> Estimator {
        Estimator { rels }
    }

    /// Row count of a query table (defaulting when unknown).
    pub fn rows(&self, qt: usize) -> f64 {
        self.rels.get(qt).and_then(|r| r.as_ref()).map(|r| r.rows).unwrap_or(DEFAULT_ROWS).max(1.0)
    }

    fn col(&self, c: ColRef) -> Option<&ColView> {
        self.rels.get(c.table)?.as_ref()?.cols.get(c.col)?.as_ref()
    }

    /// NDV of a column, defaulting to 10% of its table's rows.
    pub fn ndv(&self, c: ColRef) -> f64 {
        self.col(c).map(|v| v.ndv).unwrap_or_else(|| (self.rows(c.table) * 0.1).max(1.0)).max(1.0)
    }

    /// Fraction of rows where the tested expression is non-NULL; 1.0 when
    /// unknowable (no stats, or not a bare column). NULLs satisfy neither a
    /// predicate nor its negation, so negated forms subtract from this
    /// rather than from 1.
    fn non_null_of(&self, e: &Expr) -> f64 {
        match e {
            Expr::Column(c) => 1.0 - self.col(*c).map(|v| v.null_frac).unwrap_or(0.0),
            _ => 1.0,
        }
    }

    /// Selectivity of an arbitrary predicate, in [0, 1].
    ///
    /// Handles boolean combinations, histogram-backed comparisons against
    /// constants, column-to-column equalities (join selectivity), `IN`,
    /// `LIKE`, `BETWEEN`, and `IS [NOT] NULL`; anything else falls back to
    /// defaults.
    pub fn selectivity(&self, e: &Expr) -> f64 {
        self.sel(e).clamp(0.0, 1.0)
    }

    fn sel(&self, e: &Expr) -> f64 {
        match e {
            Expr::Literal(Value::Bool(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::Binary { op: BinOp::And, left, right } => self.sel(left) * self.sel(right),
            Expr::Binary { op: BinOp::Or, left, right } => {
                let (a, b) = (self.sel(left), self.sel(right));
                a + b - a * b
            }
            Expr::Unary { op: taurus_common::UnOp::Not, input } => 1.0 - self.sel(input),
            Expr::Unary { op: taurus_common::UnOp::IsNull, input } => match input.as_ref() {
                Expr::Column(c) => self.col(*c).map(|v| v.null_frac).unwrap_or(0.05),
                _ => 0.05,
            },
            Expr::Unary { op: taurus_common::UnOp::IsNotNull, input } => match input.as_ref() {
                Expr::Column(c) => 1.0 - self.col(*c).map(|v| v.null_frac).unwrap_or(0.05),
                _ => 0.95,
            },
            Expr::Binary { op, left, right } if op.is_comparison() => {
                self.comparison_sel(*op, left, right)
            }
            Expr::InList { expr, list, negated } => {
                let mut s = 0.0;
                for item in list {
                    s += self.comparison_sel(BinOp::Eq, expr, item);
                }
                let s = s.min(1.0);
                if *negated {
                    // NULL probes match neither IN nor NOT IN.
                    (self.non_null_of(expr) - s).max(0.0)
                } else {
                    s
                }
            }
            Expr::Like { expr, pattern, negated } => {
                // A leading literal prefix constrains a range; a leading
                // wildcard is near-unestimatable (paper §6.1 on Q16's LIKE).
                let s = match const_value(pattern) {
                    Some(Value::Str(p)) if !p.starts_with('%') && !p.starts_with('_') => 0.05,
                    _ => DEFAULT_EQ_SEL,
                };
                if *negated {
                    // A NULL string is neither LIKE nor NOT LIKE the pattern.
                    (self.non_null_of(expr) - s).max(0.0)
                } else {
                    s
                }
            }
            Expr::Between { expr, low, high, negated } => {
                // Histograms cover non-null rows only; scale to the whole
                // table like `col_vs_const` does.
                let non_null = self.non_null_of(expr);
                let s = match (expr.as_ref(), const_value(low), const_value(high)) {
                    (Expr::Column(c), Some(lo), Some(hi)) => match self.col(*c) {
                        Some(v) => match &v.hist {
                            Some(h) => {
                                h.range_selectivity(Some((&lo, true)), Some((&hi, true))) * non_null
                            }
                            None => DEFAULT_RANGE_SEL,
                        },
                        None => DEFAULT_RANGE_SEL,
                    },
                    _ => DEFAULT_RANGE_SEL,
                };
                if *negated {
                    (non_null - s).max(0.0)
                } else {
                    s
                }
            }
            _ => DEFAULT_EQ_SEL,
        }
    }

    fn comparison_sel(&self, op: BinOp, left: &Expr, right: &Expr) -> f64 {
        // Normalize: column on the left when possible (commutation, §5.3).
        match (left, right) {
            (Expr::Column(l), Expr::Column(r)) => {
                if op == BinOp::Eq {
                    // Equi-join selectivity: 1 / max(ndv).
                    1.0 / self.ndv(*l).max(self.ndv(*r))
                } else if op == BinOp::Ne {
                    // A NULL on either side satisfies neither `=` nor `<>`,
                    // so the complement only covers rows non-null on both.
                    let non_null = self.non_null_of(left) * self.non_null_of(right);
                    (1.0 - 1.0 / self.ndv(*l).max(self.ndv(*r))) * non_null
                } else {
                    DEFAULT_RANGE_SEL
                }
            }
            (Expr::Column(c), rhs) => match const_value(rhs) {
                Some(v) => self.col_vs_const(*c, op, &v),
                None => default_for(op),
            },
            (lhs, Expr::Column(c)) => match (const_value(lhs), op.commutator()) {
                (Some(v), Some(flipped)) => self.col_vs_const(*c, flipped, &v),
                _ => default_for(op),
            },
            _ => default_for(op),
        }
    }

    fn col_vs_const(&self, c: ColRef, op: BinOp, v: &Value) -> f64 {
        if v.is_null() {
            return 0.0; // `col op NULL` is never true
        }
        match self.col(c) {
            Some(view) => {
                let non_null = 1.0 - view.null_frac;
                match &view.hist {
                    Some(h) => h.selectivity(op, v) * non_null,
                    None => {
                        (if op == BinOp::Eq { 1.0 / view.ndv.max(1.0) } else { default_for(op) })
                            * non_null
                    }
                }
            }
            None => default_for(op),
        }
    }

    /// Combined selectivity of a conjunction applied to an input of `rows`
    /// rows, floored at `1/rows` — the naive independence product drives
    /// stacked predicates toward zero rows, which then poisons everything
    /// downstream of the estimate (join costing treats the side as free,
    /// DOP selection sees no work worth parallelizing). At least one row is
    /// assumed to survive any predicate stack actually worth planning for.
    ///
    /// Range conjuncts bounding the *same histogrammed column* are merged
    /// into one interval before entering the product: `x >= a AND x < b` is
    /// one interval whose selectivity the histogram answers directly, not
    /// two independent filters. The independence product double-counts the
    /// restriction (`0.7 × 0.35` where the true interval holds `~0.05` of
    /// the rows — the TPC-DS q15 shape) and every join above the scan
    /// inherits the inflation.
    pub fn conjunct_selectivity(&self, conds: &[Expr], rows: f64) -> f64 {
        // Group range bounds per column; everything else multiplies as
        // before. Per column: the (table, col) key, the non-null fraction,
        // and every bounding conjunct with its range fraction.
        type RangeGroup<'a> = ((usize, usize), f64, Vec<(&'a Expr, RangeFrac)>);
        let mut groups: Vec<RangeGroup> = Vec::new();
        let mut product = 1.0f64;
        for c in conds {
            match self.range_frac(c) {
                Some((key, non_null, rf)) => match groups.iter_mut().find(|g| g.0 == key) {
                    Some(g) => g.2.push((c, rf)),
                    None => groups.push((key, non_null, vec![(c, rf)])),
                },
                None => product *= self.selectivity(c),
            }
        }
        for (_, non_null, fracs) in groups {
            if let [(e, _)] = fracs.as_slice() {
                // A lone bound estimates exactly as the per-predicate path.
                product *= self.selectivity(e);
                continue;
            }
            // Tightest lower and upper bound, as fractions of the non-null
            // rows at-or-above / at-or-below each bound. Their intersection
            // over the shared domain is `lo + hi - 1` (the union covers the
            // whole domain whenever the interval is non-empty).
            let (mut lo, mut hi) = (1.0f64, 1.0f64);
            for (_, rf) in fracs {
                match rf {
                    RangeFrac::Lower(l) => lo = lo.min(l),
                    RangeFrac::Upper(h) => hi = hi.min(h),
                    RangeFrac::Both(l, h) => {
                        lo = lo.min(l);
                        hi = hi.min(h);
                    }
                }
            }
            product *= (lo + hi - 1.0).max(0.0) * non_null;
        }
        let floor = 1.0 / rows.max(1.0);
        product.clamp(floor.min(1.0), 1.0)
    }

    /// Classify a conjunct as a constant range bound on a histogrammed
    /// column: returns the column key, its non-null fraction, and the
    /// fraction(s) of non-null rows satisfying the bound.
    fn range_frac(&self, e: &Expr) -> Option<((usize, usize), f64, RangeFrac)> {
        match e {
            Expr::Binary { op, left, right }
                if matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) =>
            {
                let (c, op, v) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(c), rhs) => (c, *op, const_value(rhs)?),
                    (lhs, Expr::Column(c)) => (c, op.commutator()?, const_value(lhs)?),
                    _ => return None,
                };
                if v.is_null() {
                    return None;
                }
                let view = self.col(*c)?;
                let h = view.hist.as_ref()?;
                let frac = h.selectivity(op, &v);
                let rf = match op {
                    BinOp::Lt | BinOp::Le => RangeFrac::Upper(frac),
                    _ => RangeFrac::Lower(frac),
                };
                Some(((c.table, c.col), 1.0 - view.null_frac, rf))
            }
            Expr::Between { expr, low, high, negated: false } => {
                let Expr::Column(c) = expr.as_ref() else { return None };
                let (lo, hi) = (const_value(low)?, const_value(high)?);
                if lo.is_null() || hi.is_null() {
                    return None;
                }
                let view = self.col(*c)?;
                let h = view.hist.as_ref()?;
                Some((
                    (c.table, c.col),
                    1.0 - view.null_frac,
                    RangeFrac::Both(h.selectivity(BinOp::Ge, &lo), h.selectivity(BinOp::Le, &hi)),
                ))
            }
            _ => None,
        }
    }
}

/// A one- or two-sided range restriction as fractions of a column's
/// non-null rows.
enum RangeFrac {
    Lower(f64),
    Upper(f64),
    Both(f64, f64),
}

fn default_for(op: BinOp) -> f64 {
    match op {
        BinOp::Eq => DEFAULT_EQ_SEL,
        BinOp::Ne => 1.0 - DEFAULT_EQ_SEL,
        _ => DEFAULT_RANGE_SEL,
    }
}

/// Evaluate an expression to a constant if it references no columns.
pub fn const_value(e: &Expr) -> Option<Value> {
    if !e.is_const() {
        return None;
    }
    let layout = Layout::empty(0);
    e.eval(EvalCtx::new(&[], &layout)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AnalyzeOptions;
    use taurus_common::{Column, DataType, Schema};
    use taurus_storage::TableData;

    /// One table, qt 0: col 0 uniform ints 0..999, col 1 has 50% nulls.
    fn estimator() -> Estimator {
        let mut t = TableData::new(Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::nullable("b", DataType::Int),
        ]));
        for i in 0..1000i64 {
            let b = if i % 2 == 0 { Value::Null } else { Value::Int(i % 10) };
            t.push(vec![Value::Int(i), b]).unwrap();
        }
        let stats = TableStats::analyze(&t, &[false, false], &AnalyzeOptions::default());
        Estimator::new(vec![Some(RelView::from_stats(&stats))])
    }

    #[test]
    fn histogram_backed_range() {
        let est = estimator();
        let e = Expr::binary(BinOp::Lt, Expr::col(0, 0), Expr::int(250));
        let s = est.selectivity(&e);
        assert!((s - 0.25).abs() < 0.03, "s={s}");
        // Constant on the left commutes.
        let e = Expr::binary(BinOp::Gt, Expr::int(250), Expr::col(0, 0));
        assert!((est.selectivity(&e) - s).abs() < 1e-9);
    }

    #[test]
    fn null_fraction_scales_estimates() {
        let est = estimator();
        let is_null =
            Expr::Unary { op: taurus_common::UnOp::IsNull, input: Box::new(Expr::col(0, 1)) };
        assert!((est.selectivity(&is_null) - 0.5).abs() < 0.01);
        // b = 3 can only match among the non-null half; the non-null values
        // are {1,3,5,7,9} uniformly, so sel = 0.2 * 0.5 = 0.1.
        let eq = Expr::eq(Expr::col(0, 1), Expr::int(3));
        let s = est.selectivity(&eq);
        assert!((s - 0.1).abs() < 0.01, "s={s}");
    }

    #[test]
    fn boolean_combinations() {
        let est = estimator();
        let half = Expr::binary(BinOp::Lt, Expr::col(0, 0), Expr::int(500));
        let and = Expr::and(half.clone(), half.clone());
        assert!((est.selectivity(&and) - 0.25).abs() < 0.03);
        let or = Expr::or(half.clone(), half.clone());
        assert!((est.selectivity(&or) - 0.75).abs() < 0.03);
        let not = Expr::not(half);
        assert!((est.selectivity(&not) - 0.5).abs() < 0.03);
    }

    #[test]
    fn join_selectivity_uses_max_ndv() {
        let est = Estimator::new(vec![
            Some(RelView {
                rows: 1000.0,
                cols: vec![Some(ColView { ndv: 1000.0, null_frac: 0.0, hist: None })],
            }),
            Some(RelView {
                rows: 100.0,
                cols: vec![Some(ColView { ndv: 100.0, null_frac: 0.0, hist: None })],
            }),
        ]);
        let e = Expr::eq(Expr::col(0, 0), Expr::col(1, 0));
        assert!((est.selectivity(&e) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn in_list_sums() {
        let est = estimator();
        let e = Expr::InList {
            expr: Box::new(Expr::col(0, 0)),
            list: vec![Expr::int(1), Expr::int(2), Expr::int(3)],
            negated: false,
        };
        let s = est.selectivity(&e);
        assert!((s - 0.003).abs() < 0.002, "s={s}");
    }

    #[test]
    fn unknown_rels_use_defaults() {
        let est = Estimator::new(vec![None]);
        assert_eq!(est.rows(0), DEFAULT_ROWS);
        assert_eq!(est.rows(7), DEFAULT_ROWS);
        let e = Expr::eq(Expr::col(0, 0), Expr::int(1));
        assert_eq!(est.selectivity(&e), DEFAULT_EQ_SEL);
    }

    #[test]
    fn like_prefix_vs_wildcard() {
        let est = estimator();
        let prefix = Expr::Like {
            expr: Box::new(Expr::col(0, 0)),
            pattern: Box::new(Expr::string("LARGE%")),
            negated: false,
        };
        let infix = Expr::Like {
            expr: Box::new(Expr::col(0, 0)),
            pattern: Box::new(Expr::string("%Complaints%")),
            negated: false,
        };
        assert!(est.selectivity(&prefix) < est.selectivity(&infix));
    }

    #[test]
    fn ne_join_selectivity_scales_by_null_fractions() {
        let est = Estimator::new(vec![
            Some(RelView {
                rows: 1000.0,
                cols: vec![Some(ColView { ndv: 100.0, null_frac: 0.2, hist: None })],
            }),
            Some(RelView {
                rows: 1000.0,
                cols: vec![Some(ColView { ndv: 50.0, null_frac: 0.1, hist: None })],
            }),
        ]);
        let ne = Expr::binary(BinOp::Ne, Expr::col(0, 0), Expr::col(1, 0));
        // (1 - 1/100) * 0.8 * 0.9 — NULLs on either side satisfy neither
        // `=` nor `<>`.
        let s = est.selectivity(&ne);
        assert!((s - 0.99 * 0.8 * 0.9).abs() < 1e-9, "s={s}");
        // Eq + Ne no longer (incorrectly) partition the whole table when
        // nulls exist.
        let eq = Expr::eq(Expr::col(0, 0), Expr::col(1, 0));
        assert!(est.selectivity(&eq) + s < 1.0);
    }

    #[test]
    fn negated_predicates_exclude_null_rows() {
        let est = estimator(); // col 1: 50% NULL, non-null values {1,3,5,7,9}
        let not_in = Expr::InList {
            expr: Box::new(Expr::col(0, 1)),
            list: vec![Expr::int(3)],
            negated: true,
        };
        // non_null (0.5) minus sel(b = 3) (0.1), not 1 - 0.1.
        let s = est.selectivity(&not_in);
        assert!((s - 0.4).abs() < 0.02, "s={s}");
        let not_between = Expr::Between {
            expr: Box::new(Expr::col(0, 1)),
            low: Box::new(Expr::int(1)),
            high: Box::new(Expr::int(9)),
            negated: true,
        };
        // The whole non-null domain is inside [1, 9]: nothing qualifies.
        let s = est.selectivity(&not_between);
        assert!(s < 0.05, "s={s}");
        let not_like = Expr::Like {
            expr: Box::new(Expr::col(0, 1)),
            pattern: Box::new(Expr::string("x%")),
            negated: true,
        };
        let s = est.selectivity(&not_like);
        assert!((s - 0.45).abs() < 0.01, "s={s}");
    }

    #[test]
    fn params_estimate_like_literals() {
        let est = estimator();
        let lit = Expr::binary(BinOp::Lt, Expr::col(0, 0), Expr::int(250));
        let par = Expr::binary(BinOp::Lt, Expr::col(0, 0), Expr::param(0, Value::Int(250)));
        assert!((est.selectivity(&lit) - est.selectivity(&par)).abs() < 1e-12);
        let like = Expr::Like {
            expr: Box::new(Expr::col(0, 0)),
            pattern: Box::new(Expr::param(0, Value::str("LARGE%"))),
            negated: false,
        };
        assert!((est.selectivity(&like) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn conjunct_selectivity_floors_at_one_row() {
        // 1M-row relation, five stacked equality predicates on a 10-NDV
        // column: the independence product is 0.1^5 = 1e-5, which on 1e6
        // rows still means ~10 rows — fine. But stacking *five more* of the
        // same would claim 1e-10 (a 0.0001-row output); the floor keeps the
        // estimate at one surviving row: sel >= 1/rows.
        let est = Estimator::new(vec![Some(RelView {
            rows: 1_000_000.0,
            cols: vec![Some(ColView { ndv: 10.0, null_frac: 0.0, hist: None })],
        })]);
        let preds: Vec<Expr> = (0..5).map(|i| Expr::eq(Expr::col(0, 0), Expr::int(i))).collect();
        for p in &preds {
            assert!((est.selectivity(p) - 0.1).abs() < 1e-9);
        }
        let sel = est.conjunct_selectivity(&preds, 1_000_000.0);
        // Unfloored product would be 1e-5; with ten stacked it would cross
        // the floor. Verify both regimes.
        assert!((sel - 1e-5).abs() < 1e-12, "sel={sel}");
        let ten: Vec<Expr> = preds.iter().cloned().chain(preds.iter().cloned()).collect();
        let sel = est.conjunct_selectivity(&ten, 1_000_000.0);
        assert!((sel - 1e-6).abs() < 1e-15, "floored sel={sel}");
        // Degenerate inputs never panic or exceed [0, 1].
        assert_eq!(est.conjunct_selectivity(&[], 0.0), 1.0);
        let sel = est.conjunct_selectivity(&ten, 0.5);
        assert!((0.0..=1.0).contains(&sel));
    }

    #[test]
    fn comparisons_with_null_literal_never_match() {
        let est = estimator();
        let e = Expr::eq(Expr::col(0, 0), Expr::lit(Value::Null));
        assert_eq!(est.selectivity(&e), 0.0);
    }
}
