//! Ordered (B-tree) indexes.
//!
//! An [`OrderedIndex`] maps composite keys to row ids and supports the three
//! index access patterns the optimizers choose between:
//!
//! * **lookup** — all rows matching an exact key prefix (MySQL "ref" /
//!   "eq_ref" access, the inner side of an index nested-loop join);
//! * **range** — rows whose first key column falls in a bound interval;
//! * **ordered scan** — the full index in key order (supplies a sort order,
//!   the Orca enhancement of §7 item 4).

use crate::table::{RowId, TableData};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;
use taurus_common::Value;

/// A composite key with a total order (NULLs first), usable in a `BTreeMap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexKey(pub Vec<Value>);

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        let n = self.0.len().min(other.0.len());
        for i in 0..n {
            match self.0[i].total_cmp(&other.0[i]) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Definition of an index: which columns it covers and whether it is unique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub name: String,
    /// Column ordinals of the indexed table, in key order.
    pub columns: Vec<usize>,
    pub unique: bool,
}

impl IndexDef {
    pub fn new(name: impl Into<String>, columns: Vec<usize>, unique: bool) -> IndexDef {
        IndexDef { name: name.into(), columns, unique }
    }
}

/// A built ordered index over a table's rows.
#[derive(Debug, Clone)]
pub struct OrderedIndex {
    def: IndexDef,
    map: BTreeMap<IndexKey, Vec<RowId>>,
}

impl OrderedIndex {
    /// Build the index from the table's current contents.
    pub fn build(def: IndexDef, table: &TableData) -> OrderedIndex {
        let mut map: BTreeMap<IndexKey, Vec<RowId>> = BTreeMap::new();
        for (id, row) in table.scan() {
            let key = IndexKey(def.columns.iter().map(|&c| row[c].clone()).collect());
            map.entry(key).or_default().push(id);
        }
        OrderedIndex { def, map }
    }

    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// Exact-match lookup on a *prefix* of the key columns. With fewer
    /// values than key columns, returns every row whose key starts with the
    /// given values (MySQL's "ref" access on a composite index).
    pub fn lookup<'a>(&'a self, prefix: &[Value]) -> impl Iterator<Item = RowId> + 'a {
        assert!(prefix.len() <= self.def.columns.len(), "lookup prefix longer than index key");
        let lo = IndexKey(prefix.to_vec());
        let prefix_len = prefix.len();
        let owned: Vec<Value> = prefix.to_vec();
        self.map
            .range((Bound::Included(lo), Bound::Unbounded))
            .take_while(move |(k, _)| {
                k.0.len() >= prefix_len
                    && k.0[..prefix_len]
                        .iter()
                        .zip(&owned)
                        .all(|(a, b)| a.total_cmp(b) == Ordering::Equal)
            })
            .flat_map(|(_, ids)| ids.iter().copied())
    }

    /// Range scan on the *first* key column: `lo <= key[0] <= hi` with
    /// either bound optional. Rows come back in key order.
    pub fn range<'a>(
        &'a self,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> impl Iterator<Item = RowId> + 'a {
        let lower: Bound<IndexKey> = match lo {
            None => Bound::Unbounded,
            Some((v, inclusive)) => {
                let k = IndexKey(vec![v.clone()]);
                if inclusive {
                    Bound::Included(k)
                } else {
                    // Exclusive on a prefix: skip all keys whose first column
                    // equals v. Using an upper-sentinel suffix would need a
                    // max value; instead filter below.
                    Bound::Included(k)
                }
            }
        };
        let lo_filter = lo.map(|(v, inc)| (v.clone(), inc));
        let hi_filter = hi.map(|(v, inc)| (v.clone(), inc));
        self.map
            .range((lower, Bound::Unbounded))
            .take_while(move |(k, _)| match &hi_filter {
                None => true,
                Some((v, inc)) => {
                    let c = k.0[0].total_cmp(v);
                    c == Ordering::Less || (*inc && c == Ordering::Equal)
                }
            })
            .filter(move |(k, _)| match &lo_filter {
                None => true,
                Some((v, inc)) => {
                    let c = k.0[0].total_cmp(v);
                    c == Ordering::Greater || (*inc && c == Ordering::Equal)
                }
            })
            .flat_map(|(_, ids)| ids.iter().copied())
    }

    /// Full scan in key order.
    pub fn scan_ordered(&self) -> impl Iterator<Item = RowId> + '_ {
        self.map.values().flat_map(|ids| ids.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{Column, DataType, Schema};

    fn sample() -> (TableData, OrderedIndex) {
        let mut t = TableData::new(Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Str),
        ]));
        for (k, v) in [(3, "c"), (1, "a"), (2, "b"), (1, "a2"), (5, "e")] {
            t.push(vec![Value::Int(k), Value::str(v)]).unwrap();
        }
        let idx = OrderedIndex::build(IndexDef::new("k_idx", vec![0], false), &t);
        (t, idx)
    }

    #[test]
    fn lookup_finds_duplicates() {
        let (_, idx) = sample();
        let hits: Vec<RowId> = idx.lookup(&[Value::Int(1)]).collect();
        assert_eq!(hits, vec![1, 3]);
        assert!(idx.lookup(&[Value::Int(99)]).next().is_none());
    }

    #[test]
    fn scan_is_key_ordered() {
        let (t, idx) = sample();
        let keys: Vec<i64> =
            idx.scan_ordered().map(|id| t.value(id, 0).as_i64().unwrap()).collect();
        assert_eq!(keys, vec![1, 1, 2, 3, 5]);
    }

    #[test]
    fn range_bounds() {
        let (t, idx) = sample();
        let collect = |lo: Option<(&Value, bool)>, hi: Option<(&Value, bool)>| -> Vec<i64> {
            idx.range(lo, hi).map(|id| t.value(id, 0).as_i64().unwrap()).collect()
        };
        assert_eq!(collect(Some((&Value::Int(2), true)), Some((&Value::Int(3), true))), vec![2, 3]);
        assert_eq!(collect(Some((&Value::Int(1), false)), None), vec![2, 3, 5]);
        assert_eq!(collect(None, Some((&Value::Int(2), false))), vec![1, 1]);
        assert_eq!(collect(None, None), vec![1, 1, 2, 3, 5]);
    }

    #[test]
    fn composite_key_prefix_lookup() {
        let mut t = TableData::new(Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]));
        for (a, b) in [(1, 10), (1, 20), (2, 10), (2, 20), (3, 30)] {
            t.push(vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let idx = OrderedIndex::build(IndexDef::new("ab", vec![0, 1], true), &t);
        // Full-key lookup.
        let full: Vec<RowId> = idx.lookup(&[Value::Int(2), Value::Int(20)]).collect();
        assert_eq!(full, vec![3]);
        // Prefix lookup returns both b-values for a=1.
        let pre: Vec<RowId> = idx.lookup(&[Value::Int(1)]).collect();
        assert_eq!(pre, vec![0, 1]);
    }

    #[test]
    fn nulls_sort_first_in_index() {
        let mut t = TableData::new(Schema::new(vec![Column::nullable("k", DataType::Int)]));
        t.push(vec![Value::Int(2)]).unwrap();
        t.push(vec![Value::Null]).unwrap();
        t.push(vec![Value::Int(1)]).unwrap();
        let idx = OrderedIndex::build(IndexDef::new("k", vec![0], false), &t);
        let order: Vec<RowId> = idx.scan_ordered().collect();
        assert_eq!(order, vec![1, 2, 0]);
    }
}
