//! Strongly-typed identifiers.
//!
//! The paper's metadata provider (§5.6) computes Orca *OIDs* from MySQL's
//! internal object ids with a "base + enumeration id" layout. We keep the
//! MySQL-side ids (`TableId`, `ColumnId`, `IndexId`) distinct from the
//! Orca-side [`Oid`] so the bridge's translation is visible in the types.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw id value.
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_newtype! {
    /// Catalog-assigned id of a base table (the MySQL data-dictionary id).
    TableId
}
id_newtype! {
    /// Ordinal position of a column within its table (0-based).
    ColumnId
}
id_newtype! {
    /// Catalog-assigned id of an index.
    IndexId
}

/// An Orca-side object id, as handed out by the metadata provider.
///
/// OIDs are 64-bit because the layout scheme of §5.6 places relation-derived
/// objects at a large base offset above the densely-enumerated expression and
/// type OIDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

impl Oid {
    /// The "invalid OID" sentinel the metadata provider returns for
    /// expressions without commutators or inverses (§5.3).
    pub const INVALID: Oid = Oid(0);

    /// Whether this OID is the invalid sentinel.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_oid_sentinel() {
        assert!(!Oid::INVALID.is_valid());
        assert!(Oid(1).is_valid());
    }

    #[test]
    fn ids_display_with_type_name() {
        assert_eq!(TableId(7).to_string(), "TableId(7)");
        assert_eq!(Oid(9).to_string(), "Oid(9)");
    }
}
