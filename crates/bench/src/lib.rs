//! Experiment runners shared by the Criterion benches and the `harness`
//! binary.
//!
//! Every table and figure in the paper's evaluation (§6) has a runner here:
//!
//! | Paper artifact | Runner | What it reports |
//! |---|---|---|
//! | Fig 10 | [`run_suite`] (TPC-H) | per-query MySQL vs Orca run time (incl. optimization) |
//! | Fig 11 | [`run_suite`] (TPC-DS) | same for the 99-query suite |
//! | Fig 12 | [`fig12_points`] | (MySQL time, Orca/MySQL ratio) scatter |
//! | Table 1 | [`compile_totals`] | total EXPLAIN time: MySQL, +Orca EXHAUSTIVE, +Orca EXHAUSTIVE2 |
//! | Fig 4/5 | [`q72_case_study`] | Q72 plan shapes and join-method counts |
//! | Fig 6/7 + Listing 7 | [`q17_case_study`] | Q17 best-position array and EXPLAIN |
//! | §6.2 Q41 | [`q41_case_study`] | OR-factorization speedup |
//! | §7 lessons | [`ablations`] | rule on/off comparisons |
//!
//! Timings are medians over `reps` runs; work units (rows processed, probes,
//! lookups) accompany every timing so shapes are machine-independent.

use mylite::engine::CostBasedOptimizer;
use mylite::{Engine, MySqlOptimizer};
use orcalite::{JoinOrderStrategy, OrcaConfig};
use std::time::{Duration, Instant};
use taurus_bridge::{FallbackReason, OrcaOptimizer, RouterStats};
use taurus_workloads::tpch::Query;
use taurus_workloads::{tpcds, tpch, Scale};

pub mod micro;

/// Which workload a runner operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    TpcH,
    TpcDs,
}

impl Workload {
    pub fn name(self) -> &'static str {
        match self {
            Workload::TpcH => "TPC-H",
            Workload::TpcDs => "TPC-DS",
        }
    }

    /// The paper's complex-query threshold per workload (§6.1/§6.2).
    pub fn threshold(self) -> usize {
        match self {
            Workload::TpcH => 3,
            Workload::TpcDs => 2,
        }
    }

    pub fn build_engine(self, scale: Scale) -> Engine {
        match self {
            Workload::TpcH => Engine::new(tpch::build_catalog(scale)),
            Workload::TpcDs => Engine::new(tpcds::build_catalog(scale)),
        }
    }

    pub fn queries(self) -> Vec<Query> {
        match self {
            Workload::TpcH => tpch::queries(),
            Workload::TpcDs => tpcds::queries(),
        }
    }
}

/// Per-query comparison result.
#[derive(Debug, Clone)]
pub struct QueryComparison {
    pub name: String,
    pub mysql: Duration,
    pub orca: Duration,
    pub mysql_work: u64,
    pub orca_work: u64,
    /// Whether the Orca path actually produced the plan (vs threshold skip
    /// or fallback).
    pub orca_assisted: bool,
}

impl QueryComparison {
    /// Orca-time / MySQL-time: < 1 means Orca's plan is faster (the Y axis
    /// of Fig 12).
    pub fn time_ratio(&self) -> f64 {
        self.orca.as_secs_f64() / self.mysql.as_secs_f64().max(1e-9)
    }

    /// MySQL-work / Orca-work: > 1 means Orca's plan does less work (the
    /// machine-independent speedup).
    pub fn work_speedup(&self) -> f64 {
        self.mysql_work as f64 / self.orca_work.max(1) as f64
    }
}

/// Median-of-`reps` timing of planning + executing `sql` under `opt`.
fn time_query(
    engine: &Engine,
    sql: &str,
    opt: &dyn CostBasedOptimizer,
    reps: usize,
) -> (Duration, u64) {
    let mut times = Vec::with_capacity(reps);
    let mut work = 0;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let out = engine.query_with(sql, opt).expect("workload query must run");
        times.push(t.elapsed());
        work = out.work_units;
    }
    times.sort();
    (times[times.len() / 2], work)
}

/// Run a whole suite under both optimizers — the Fig 10 / Fig 11 runner.
pub fn run_suite(
    workload: Workload,
    scale: Scale,
    strategy: JoinOrderStrategy,
    reps: usize,
) -> Vec<QueryComparison> {
    let engine = workload.build_engine(scale);
    let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(strategy), workload.threshold());
    let mut out = Vec::new();
    for q in workload.queries() {
        let (mysql, mysql_work) = time_query(&engine, &q.sql, &MySqlOptimizer, reps);
        let routed_before = orca.stats().routed;
        let (orca_t, orca_work) = time_query(&engine, &q.sql, &orca, reps);
        out.push(QueryComparison {
            name: q.name.to_string(),
            mysql,
            orca: orca_t,
            mysql_work,
            orca_work,
            orca_assisted: orca.stats().routed > routed_before,
        });
    }
    out
}

/// Fig 12: (MySQL run time, Orca/MySQL time ratio) scatter points.
pub fn fig12_points(results: &[QueryComparison]) -> Vec<(String, f64, f64)> {
    results.iter().map(|r| (r.name.clone(), r.mysql.as_secs_f64(), r.time_ratio())).collect()
}

/// One Table 1 row: total time to *compile* (EXPLAIN) an entire suite.
#[derive(Debug, Clone)]
pub struct CompileTotal {
    pub compiler: &'static str,
    pub total: Duration,
    /// Per-query compile times (to find the Q14/Q64-style outliers).
    pub per_query: Vec<(String, Duration)>,
}

/// Table 1: total EXPLAIN times with the complex-query threshold at 1 so
/// every query takes the Orca detour (§6.3).
pub fn compile_totals(workload: Workload, scale: Scale) -> Vec<CompileTotal> {
    let engine = workload.build_engine(scale);
    let queries = workload.queries();
    let mut rows = Vec::new();
    let compile_with = |opt: &dyn CostBasedOptimizer| -> (Duration, Vec<(String, Duration)>) {
        let mut total = Duration::ZERO;
        let mut per = Vec::new();
        for q in &queries {
            let t = Instant::now();
            engine.plan(&q.sql, opt).expect("workload query must plan");
            let d = t.elapsed();
            total += d;
            per.push((q.name.to_string(), d));
        }
        (total, per)
    };
    let (total, per_query) = compile_with(&MySqlOptimizer);
    rows.push(CompileTotal { compiler: "MySQL", total, per_query });
    for (label, strategy) in [
        ("MySQL + Orca—EXHAUSTIVE", JoinOrderStrategy::Exhaustive),
        ("MySQL + Orca—EXHAUSTIVE2", JoinOrderStrategy::Exhaustive2),
    ] {
        let orca = OrcaOptimizer::new(OrcaConfig::with_strategy(strategy), 1);
        let (total, per_query) = compile_with(&orca);
        rows.push(CompileTotal { compiler: label, total, per_query });
    }
    rows
}

/// Plan-shape summary for a case-study query.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    pub mysql_explain: String,
    pub orca_explain: String,
    /// `(nested loops, hash joins)` per optimizer.
    pub mysql_joins: (usize, usize),
    pub orca_joins: (usize, usize),
    pub mysql_left_deep: bool,
    pub orca_left_deep: bool,
    pub mysql_time: Duration,
    pub orca_time: Duration,
    pub mysql_work: u64,
    pub orca_work: u64,
}

/// Run a single query as a case study under both optimizers.
pub fn case_study(workload: Workload, scale: Scale, sql: &str, reps: usize) -> CaseStudy {
    let engine = workload.build_engine(scale);
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let mplan = engine.plan(sql, &MySqlOptimizer).expect("plans");
    let oplan = engine.plan(sql, &orca).expect("plans");
    let (mysql_time, mysql_work) = time_query(&engine, sql, &MySqlOptimizer, reps);
    let (orca_time, orca_work) = time_query(&engine, sql, &orca, reps);
    CaseStudy {
        mysql_explain: engine.explain(sql, &MySqlOptimizer).expect("explains"),
        orca_explain: engine.explain(sql, &orca).expect("explains"),
        mysql_joins: mplan.primary().plan.join_method_counts(),
        orca_joins: oplan.primary().plan.join_method_counts(),
        mysql_left_deep: mplan.primary().plan.is_left_deep(),
        orca_left_deep: oplan.primary().plan.is_left_deep(),
        mysql_time,
        orca_time,
        mysql_work,
        orca_work,
    }
}

/// Fig 4/5: the Q72 snowflake.
pub fn q72_case_study(scale: Scale, reps: usize) -> CaseStudy {
    case_study(Workload::TpcDs, scale, &tpcds::query(72).sql, reps)
}

/// Fig 6/7 + Listing 7: TPC-H Q17 (correlated average, materialized
/// derived, best-position arrays).
pub fn q17_case_study(scale: Scale, reps: usize) -> CaseStudy {
    let q17 = &tpch::queries()[16];
    case_study(Workload::TpcH, scale, &q17.sql, reps)
}

/// §6.2's Q41: the OR-factorization query.
pub fn q41_case_study(scale: Scale, reps: usize) -> CaseStudy {
    case_study(Workload::TpcDs, scale, &tpcds::query(41).sql, reps)
}

/// One ablation row: a §7 lesson toggled off vs the paper configuration.
#[derive(Debug, Clone)]
pub struct Ablation {
    pub name: &'static str,
    pub query: String,
    pub with_rule: Duration,
    pub without_rule: Duration,
    pub with_work: u64,
    pub without_work: u64,
}

/// The §7 lesson ablations.
pub fn ablations(scale: Scale, reps: usize) -> Vec<Ablation> {
    let mut out = Vec::new();

    // (1) OR factorization on Q41 (§7 item 4 / §6.2).
    {
        let engine = Workload::TpcDs.build_engine(scale);
        let sql = tpcds::query(41).sql;
        let on = OrcaOptimizer::new(OrcaConfig::default(), 1);
        let off = OrcaOptimizer::new(
            OrcaConfig { enable_or_factorization: false, ..OrcaConfig::default() },
            1,
        );
        let (with_rule, with_work) = time_query(&engine, &sql, &on, reps);
        let (without_rule, without_work) = time_query(&engine, &sql, &off, reps);
        out.push(Ablation {
            name: "OR factorization (Q41)",
            query: "tpcds/q41".into(),
            with_rule,
            without_rule,
            with_work,
            without_work,
        });
    }

    // (2) Apply/join swap rules on a correlated-subquery query (§7 item 1).
    {
        let engine = Workload::TpcDs.build_engine(scale);
        let sql = tpcds::query(6).sql; // correlated category-average
        let on = OrcaOptimizer::new(OrcaConfig::default(), 1);
        let off = OrcaOptimizer::new(
            OrcaConfig { enable_apply_swaps: false, ..OrcaConfig::default() },
            1,
        );
        let (with_rule, with_work) = time_query(&engine, &sql, &on, reps);
        let (without_rule, without_work) = time_query(&engine, &sql, &off, reps);
        out.push(Ablation {
            name: "apply/join swap rules (Q6)",
            query: "tpcds/q6".into(),
            with_rule,
            without_rule,
            with_work,
            without_work,
        });
    }

    // (3) Histograms on UNIQUE columns (§5.5 / §7 item 5): rebuild the
    // catalog with stock-MySQL statistics and compare a key-filtered join.
    {
        let sql = "SELECT COUNT(*) AS n FROM store_sales, item, date_dim \
                   WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk \
                     AND i_item_sk < 20 AND d_date_sk < 300";
        let with_hist = Workload::TpcDs.build_engine(scale);
        let mut without_hist = Workload::TpcDs.build_engine(scale);
        without_hist.catalog_mut().analyze_all(&taurus_catalog::AnalyzeOptions {
            histograms_on_unique: false,
            ..Default::default()
        });
        let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
        let (with_rule, with_work) = time_query(&with_hist, sql, &orca, reps);
        let (without_rule, without_work) = time_query(&without_hist, sql, &orca, reps);
        out.push(Ablation {
            name: "histograms on UNIQUE columns",
            query: "key-filtered star join".into(),
            with_rule,
            without_rule,
            with_work,
            without_work,
        });
    }
    out
}

/// Routing outcome of planning a whole workload through one Orca router:
/// how many statements each path took, and why each fallback happened.
#[derive(Debug, Clone)]
pub struct RoutingReport {
    pub workload: Workload,
    pub strategy: JoinOrderStrategy,
    pub queries: usize,
    pub stats: RouterStats,
}

/// Plan every workload query through a fresh router and collect its
/// [`RouterStats`] — the never-fail-detour observability report.
pub fn run_routing(
    workload: Workload,
    scale: Scale,
    strategy: JoinOrderStrategy,
    config: OrcaConfig,
) -> RoutingReport {
    let engine = workload.build_engine(scale);
    let orca = OrcaOptimizer::new(OrcaConfig { strategy, ..config }, workload.threshold());
    let queries = workload.queries();
    for q in &queries {
        engine.plan(&q.sql, &orca).expect("workload query must plan");
    }
    RoutingReport { workload, strategy, queries: queries.len(), stats: orca.stats() }
}

/// Format a routing report as a markdown table: one row per routing path,
/// then one row per fallback reason (the taxonomy the router records).
pub fn format_routing_table(report: &RoutingReport) -> String {
    use std::fmt::Write;
    let s = &report.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routing of {} queries ({}, {:?}):\n",
        report.queries,
        report.workload.name(),
        report.strategy
    );
    let _ = writeln!(out, "| outcome | statements |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| routed to Orca | {} |", s.routed);
    let _ = writeln!(out, "| below complex-query threshold | {} |", s.below_threshold);
    let _ = writeln!(out, "| fell back to MySQL | {} |", s.fallbacks);
    for reason in FallbackReason::ALL {
        let n = s.reasons.get(reason);
        if n > 0 {
            let _ = writeln!(out, "| — fallback: {} | {} |", reason.name(), n);
        }
    }
    if s.degraded > 0 {
        let _ = writeln!(out, "| blocks rescued by the degradation ladder | {} |", s.degraded);
    }
    out
}

/// Format a suite comparison as a markdown table (used by the harness and
/// pasted into EXPERIMENTS.md).
pub fn format_suite_table(results: &[QueryComparison]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| query | MySQL time | Orca time | time ratio (orca/mysql) | MySQL work | Orca work | work speedup | routed |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|---|---|");
    for r in results {
        let _ = writeln!(
            s,
            "| {} | {:.3?} | {:.3?} | {:.2} | {} | {} | {:.2}× | {} |",
            r.name,
            r.mysql,
            r.orca,
            r.time_ratio(),
            r.mysql_work,
            r.orca_work,
            r.work_speedup(),
            if r.orca_assisted { "orca" } else { "mysql" }
        );
    }
    let total_m: f64 = results.iter().map(|r| r.mysql.as_secs_f64()).sum();
    let total_o: f64 = results.iter().map(|r| r.orca.as_secs_f64()).sum();
    let _ = writeln!(
        s,
        "\ntotal: MySQL {:.3}s, Orca {:.3}s — Orca reduces total run time by {:.0}%",
        total_m,
        total_o,
        (1.0 - total_o / total_m) * 100.0
    );
    let improved = results.iter().filter(|r| r.time_ratio() < 0.95).count();
    let tenx = results
        .iter()
        .filter(|r| r.work_speedup() >= 10.0)
        .map(|r| r.name.clone())
        .collect::<Vec<_>>();
    let _ = writeln!(
        s,
        "Orca-faster queries: {improved}/{}; ≥10× work reduction: {:?}",
        results.len(),
        tenx
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runner_smoke() {
        // Tiny scale, one reputation: just verify plumbing end to end.
        let results = run_suite(Workload::TpcH, Scale(0.02), JoinOrderStrategy::Exhaustive, 1);
        assert_eq!(results.len(), 22);
        assert!(results.iter().all(|r| r.mysql_work > 0));
        let table = format_suite_table(&results);
        assert!(table.contains("| q1 |"));
        assert!(table.contains("total:"));
    }

    #[test]
    fn routing_report_accounts_for_every_query() {
        let report = run_routing(
            Workload::TpcH,
            Scale(0.02),
            JoinOrderStrategy::Exhaustive,
            OrcaConfig::default(),
        );
        let s = &report.stats;
        assert_eq!(s.routed + s.below_threshold + s.fallbacks, report.queries as u64, "{s:?}");
        assert_eq!(s.reasons.total(), s.fallbacks);
        let table = format_routing_table(&report);
        assert!(table.contains("| routed to Orca |"), "{table}");
        assert!(table.contains("| fell back to MySQL |"), "{table}");
    }

    #[test]
    fn compile_totals_has_three_rows() {
        let rows = compile_totals(Workload::TpcH, Scale(0.02));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].compiler, "MySQL");
        // Orca compilation is slower than MySQL compilation (§6.3 obs. 1).
        assert!(rows[1].total > rows[0].total);
        assert_eq!(rows[0].per_query.len(), 22);
    }

    #[test]
    fn q17_case_study_matches_paper_shape() {
        let cs = q17_case_study(Scale(0.05), 1);
        // Listing 7's key features: the Orca EXPLAIN banner, a correlated
        // materialization, and the derived table in the plan.
        assert!(cs.orca_explain.starts_with("EXPLAIN (ORCA)"));
        assert!(cs.orca_explain.contains("Materialize (invalidate on outer row)"));
        assert!(cs.orca_explain.contains("derived"));
    }

    #[test]
    fn q72_case_study_plan_shapes() {
        let cs = q72_case_study(Scale(0.05), 1);
        // MySQL: left-deep (Fig 4). Orca: at least as many hash joins and
        // no more work than MySQL (Fig 5's better join methods).
        assert!(cs.mysql_left_deep);
        assert!(cs.orca_joins.1 >= cs.mysql_joins.1);
        assert!(cs.orca_work <= cs.mysql_work);
    }
}
