//! Plan-shape assertions for the paper's case studies.
//!
//! These tests pin the *qualitative* claims of the paper's figures: which
//! optimizer produces which tree shape, which join methods appear, where
//! materialization/invalidation shows up, and how the best-position arrays
//! are laid out.

use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::executor::Plan;
use taurus_orca::mylite::{AccessChoice, Engine, MySqlOptimizer};
use taurus_orca::orcalite::OrcaConfig;
use taurus_orca::workloads::{tpcds, tpch, Scale};

fn tpcds_engine() -> Engine {
    Engine::new(tpcds::build_catalog(Scale(0.1)))
}

fn tpch_engine() -> Engine {
    Engine::new(tpch::build_catalog(Scale(0.1)))
}

#[test]
fn fig4_mysql_q72_is_left_deep_and_nlj_heavy() {
    let engine = tpcds_engine();
    let planned = engine.plan(&tpcds::query(72).sql, &MySqlOptimizer).unwrap();
    let plan = &planned.primary().plan;
    let (nl, hj) = plan.join_method_counts();
    // Fig 4: ten joins, all but one nested loops, strictly left-deep.
    assert_eq!(nl + hj, 10, "Q72 joins 11 tables");
    assert!(nl >= 8, "MySQL favours nested loops (Fig 4): {nl} NLJ / {hj} HJ");
    assert!(plan.is_left_deep(), "MySQL only generates left-deep plans (§1 item 1)");
}

#[test]
fn fig5_orca_q72_uses_more_hash_joins() {
    let engine = tpcds_engine();
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 2);
    let mysql = engine.plan(&tpcds::query(72).sql, &MySqlOptimizer).unwrap();
    let orca_planned = engine.plan(&tpcds::query(72).sql, &orca).unwrap();
    let (_, mysql_hj) = mysql.primary().plan.join_method_counts();
    let (_, orca_hj) = orca_planned.primary().plan.join_method_counts();
    assert!(
        orca_hj > mysql_hj,
        "Fig 5: Orca chooses more hash joins ({orca_hj}) than MySQL ({mysql_hj})"
    );
    // And the Orca plan does less work.
    let m = engine.execute_planned(&mysql).unwrap();
    let o = engine.execute_planned(&orca_planned).unwrap();
    assert!(
        o.work_units < m.work_units,
        "Fig 4/5: Orca {} vs MySQL {} work units",
        o.work_units,
        m.work_units
    );
}

#[test]
fn fig7_q17_best_position_arrays() {
    let engine = tpch_engine();
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let q17 = &tpch::queries()[16];
    let planned = engine.plan(&q17.sql, &orca).unwrap();
    let branch = planned.primary();
    assert!(branch.skeleton.orca_assisted);
    // Fig 7: outer block = [part, derived, lineitem]-style array with the
    // materialized derived table between the two base tables; the inner
    // block (Query Block 2) trivially contains [lineitem].
    let namer = |qt: usize| branch.bound.tables[qt].display_name.clone();
    let display = branch.skeleton.best_position_display(&namer);
    assert!(display.contains("part"), "{display}");
    assert!(display.contains("derived"), "{display}");
    assert!(display.contains("lineitem"), "{display}");
    let positions = branch.skeleton.root.best_positions();
    assert_eq!(positions.len(), 3);
    let derived = positions
        .iter()
        .find(|p| matches!(p.access, AccessChoice::Derived { .. }))
        .expect("derived table in the best-position array");
    if let AccessChoice::Derived { skeleton } = &derived.access {
        assert_eq!(skeleton.root.best_positions().len(), 1, "Query Block 2 = [lineitem]");
    }
    // §4.2.2: Orca's estimates are copied onto the positions.
    assert!(positions.iter().all(|p| p.cost > 0.0));
}

#[test]
fn listing7_q17_explain_features() {
    let engine = tpch_engine();
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let q17 = &tpch::queries()[16];
    let text = engine.explain(&q17.sql, &orca).unwrap();
    // First line indicates the plan was Orca-assisted.
    assert!(text.starts_with("EXPLAIN (ORCA)"), "{text}");
    // The correlated derived table re-materializes per outer row (the red
    // "invalidate" annotations).
    assert!(text.contains("Materialize (invalidate on outer row)"), "{text}");
    // The scalar-subquery LEFT JOIN was converted to INNER by the
    // null-rejecting `<` predicate (the blue annotation): no left join over
    // the derived table remains.
    assert!(text.contains("inner join"), "{text}");
    assert!(text.contains("derived"), "{text}");
}

#[test]
fn q41_plans_differ_exactly_by_or_factorization() {
    let engine = tpcds_engine();
    let sql = &tpcds::query(41).sql;
    let on = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let off = OrcaOptimizer::new(
        OrcaConfig { enable_or_factorization: false, ..OrcaConfig::default() },
        1,
    );
    let with_rule = engine.plan(sql, &on).unwrap();
    let without_rule = engine.plan(sql, &off).unwrap();
    let (_, hj_on) = with_rule.primary().plan.join_method_counts();
    let (_, hj_off) = without_rule.primary().plan.join_method_counts();
    assert!(hj_on > hj_off, "factorization enables the hash join: {hj_on} vs {hj_off}");
    let a = engine.execute_planned(&with_rule).unwrap();
    let b = engine.execute_planned(&without_rule).unwrap();
    assert_eq!(a.rows, b.rows, "the rewrite is semantics-preserving");
    // The gap grows with scale (the paper reports 222× at SF 100); at this
    // test scale we only pin the direction.
    assert!(a.work_units < b.work_units, "and cheaper: {} vs {}", a.work_units, b.work_units);
}

#[test]
fn inner_hash_join_build_side_flip() {
    // §7 item 2: Orca-translated inner hash joins build on MySQL's left.
    let engine = tpcds_engine();
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    // customer_demographics has no index usable from store_sales' side, so
    // the equi-join must hash; the 800-row fact probes the 63-row build.
    let planned = engine
        .plan(
            "SELECT COUNT(*) AS n FROM store_sales, customer_demographics \
             WHERE ss_cdemo_sk = cd_demo_sk",
            &orca,
        )
        .unwrap();
    fn find_inner_hash(plan: &Plan) -> Option<bool> {
        match plan {
            Plan::HashJoin { kind: taurus_orca::executor::JoinKind::Inner, build_left, .. } => {
                Some(*build_left)
            }
            _ => plan.children().iter().find_map(|c| find_inner_hash(c)),
        }
    }
    let build_left = find_inner_hash(&planned.primary().plan)
        .expect("an equi-join with no usable index on the probe side must hash");
    assert!(build_left, "MySQL builds inner hash joins on the left (§7 item 2)");
    // And Orca's intended (smaller) build side is the left child.
    if let Plan::HashJoin { left, right, .. } = find_hash(&planned.primary().plan).unwrap() {
        assert!(
            left.est().rows <= right.est().rows,
            "build child (left) should be the smaller side: {} vs {}",
            left.est().rows,
            right.est().rows
        );
    }
}

fn find_hash(plan: &Plan) -> Option<&Plan> {
    match plan {
        Plan::HashJoin { .. } => Some(plan),
        _ => plan.children().into_iter().find_map(find_hash),
    }
}

#[test]
fn q72_left_outer_joins_stay_outer() {
    // The promotion/catalog_returns LEFT JOINs have no null-rejecting WHERE
    // predicates — both plans must keep them outer (NULL-extended rows
    // drive the `p_promo_sk IS NULL` CASE).
    let engine = tpcds_engine();
    let orca = OrcaOptimizer::new(OrcaConfig::default(), 2);
    for opt in [&MySqlOptimizer as &dyn taurus_orca::mylite::CostBasedOptimizer, &orca] {
        let planned = engine.plan(&tpcds::query(72).sql, opt).unwrap();
        fn count_outer(plan: &Plan) -> usize {
            let own = match plan {
                Plan::NestedLoop { kind: taurus_orca::executor::JoinKind::LeftOuter, .. }
                | Plan::HashJoin { kind: taurus_orca::executor::JoinKind::LeftOuter, .. } => 1,
                _ => 0,
            };
            own + plan.children().iter().map(|c| count_outer(c)).sum::<usize>()
        }
        assert_eq!(count_outer(&planned.primary().plan), 2, "two LEFT JOINs survive");
    }
}
