//! The batch operator runner: executes the largest supported plan subtree
//! as a stream of columnar [`Batch`]es and materializes rows only at the
//! edge where the row engine takes over.
//!
//! Supported operators (the hot set): table scan, ordered index scan,
//! index range scan, filter, projection, hash join build/probe, hash and
//! scalar aggregation, limit, and derived-table pass-through. Everything
//! else — sort, nested loops, unions, materialization, exchanges,
//! correlated anything — returns `None` and runs on the row path, whose
//! own recursion re-enters this module for each child subtree. Parallel
//! workers inherit the context's `vectorized` flag, so a morsel's fragment
//! runs batched with zero changes to the pool or the exchange merges.
//!
//! Ordering discipline: every kernel visits rows in exactly the order the
//! row path would (heap order, index order, probe order, first-seen group
//! order), which is what makes byte-identity achievable at all.

use std::collections::HashMap;
use std::sync::Arc;

use taurus_common::error::Result;
use taurus_common::{Expr, Row, Value};

use crate::agg::Accumulator;
use crate::exec::{self, build_table, Binding, Env, ExecContext, ExecStats};
use crate::governor::rows_bytes;
use crate::parallel::exchange::BuildTable;
use crate::plan::{AggSpec, AggStrategy, ExchangeKind, JoinKind, Plan, RowSpace};

use super::kernels::{col_of, collect_refs, compile_pred, pred_passes_row, refine, Pred};
use super::{rows_to_batch, Batch, Batches, Bitmap, Col, ColBuilder, BATCH_ROWS};

/// Batch-execute `plan` if its root is a supported operator, materializing
/// the result back to rows. `None` means "not supported here — run the row
/// path". Callers guarantee the binding is empty (no correlation).
pub(crate) fn try_exec_rows(
    plan: &Plan,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
) -> Result<Option<Vec<Row>>> {
    debug_assert!(binding.row.is_empty(), "batch path requires an empty binding");
    let Some(batches) = batch_exec(plan, ctx, binding, None)? else {
        return Ok(None);
    };
    let mut rows = Vec::with_capacity(batches.num_rows());
    for b in &batches.data {
        b.to_rows(&mut rows);
    }
    batches.release(ctx);
    Ok(Some(rows))
}

/// `needed` masks which output positions an ancestor will read (`None` =
/// all of them): scans then skip transposing pruned columns entirely. The
/// mask is only ever narrowed when every ancestor expression's read set
/// could be proven; pruned slots hold [`Col::Absent`] placeholders.
fn batch_exec(
    plan: &Plan,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
    needed: Option<&[bool]>,
) -> Result<Option<Batches>> {
    match plan {
        Plan::TableScan { table, qt, filter, .. } => {
            let t = ctx.catalog.table(*table)?;
            let (skip, take) = scan_window(ctx.morsel_range(*qt));
            scan_stream(
                t.data.scan().skip(skip).take(take).map(|(_, r)| r),
                t.data.schema(),
                filter,
                plan,
                ctx,
                binding,
                needed,
            )
            .map(Some)
        }
        Plan::IndexScan { table, qt, index, filter, .. } => {
            let t = ctx.catalog.table(*table)?;
            let Some(ix) = t.indexes.get(*index) else { return Ok(None) };
            let (skip, take) = scan_window(ctx.morsel_range(*qt));
            scan_stream(
                ix.scan_ordered().skip(skip).take(take).map(|rid| t.data.row(rid)),
                t.data.schema(),
                filter,
                plan,
                ctx,
                binding,
                needed,
            )
            .map(Some)
        }
        Plan::IndexRange { table, index, lo, hi, filter, .. } => {
            let t = ctx.catalog.table(*table)?;
            let Some(ix) = t.indexes.get(*index) else { return Ok(None) };
            // Bounds evaluate against the (empty) binding: constants.
            let bind_env = Env::new(binding, &RowSpace::Slots(0), ctx.num_tables);
            let lo_v = lo
                .as_ref()
                .map(|(e, inc)| {
                    Ok::<_, taurus_common::error::Error>((bind_env.eval(e, binding.row)?, *inc))
                })
                .transpose()?;
            let hi_v = hi
                .as_ref()
                .map(|(e, inc)| {
                    Ok::<_, taurus_common::error::Error>((bind_env.eval(e, binding.row)?, *inc))
                })
                .transpose()?;
            // Same two guards as the row path: a NULL bound matches nothing,
            // and an unbounded-below range starts after the NULL prefix.
            let null_bound = lo_v.as_ref().is_some_and(|(v, _)| v.is_null())
                || hi_v.as_ref().is_some_and(|(v, _)| v.is_null());
            if null_bound {
                return Ok(Some(Batches::new()));
            }
            let lo_arg = match lo_v.as_ref() {
                Some((v, i)) => Some((v, *i)),
                None => Some((&Value::Null, false)),
            };
            scan_stream(
                ix.range(lo_arg, hi_v.as_ref().map(|(v, i)| (v, *i))).map(|rid| t.data.row(rid)),
                t.data.schema(),
                filter,
                plan,
                ctx,
                binding,
                needed,
            )
            .map(Some)
        }
        Plan::Filter { input, predicate, .. } => {
            filter_op(input, predicate, ctx, binding, needed).map(Some)
        }
        Plan::Project { input, exprs, .. } => {
            project_op(input, exprs, ctx, binding, needed).map(Some)
        }
        Plan::Limit { input, n, .. } => {
            limit_op(input, *n as usize, ctx, binding, needed).map(Some)
        }
        // A derived table only re-homes its input's space; positions are
        // unchanged, so the mask passes straight through.
        Plan::Derived { input, .. } => batch_exec(input, ctx, binding, needed),
        Plan::HashJoin { kind, build_left, left, right, keys, residual, null_aware, .. } => {
            // Degenerate shapes (no keys, build-left non-inner) error on the
            // row path; let it produce those errors.
            if keys.is_empty() || (*build_left && *kind != JoinKind::Inner) {
                return Ok(None);
            }
            hash_join_op(
                *kind,
                *build_left,
                left,
                right,
                keys,
                residual,
                *null_aware,
                ctx,
                binding,
                needed,
            )
            .map(Some)
        }
        Plan::Aggregate { input, group_by, aggs, strategy, .. } => {
            // Partitioned aggregation (Repartition input) and grouped stream
            // aggregation keep their row-path implementations; their inputs
            // still vectorize through the recursion.
            if matches!(
                input.as_ref(),
                Plan::Exchange { kind: ExchangeKind::Repartition { .. }, .. }
            ) {
                return Ok(None);
            }
            if *strategy == AggStrategy::Stream && !group_by.is_empty() {
                return Ok(None);
            }
            aggregate_op(input, group_by, aggs, ctx, binding).map(Some)
        }
        _ => Ok(None),
    }
}

/// Batch-execute a child, falling back to the row path (and transposing its
/// rows) when the child's root is unsupported.
fn batch_input(
    plan: &Plan,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
    needed: Option<&[bool]>,
) -> Result<Batches> {
    if let Some(b) = batch_exec(plan, ctx, binding, needed)? {
        return Ok(b);
    }
    let rows = exec::exec(plan, ctx, binding)?;
    let width = plan.space(ctx.num_tables).width();
    let mut out = Batches::new();
    for chunk in rows.chunks(BATCH_ROWS) {
        out.push_charged(rows_to_batch(chunk, width), ctx)?;
    }
    Ok(out)
}

/// `(skip, take)` for a scan iterator under an optional morsel restriction
/// (same shape as the row path's helper).
fn scan_window(range: Option<(usize, usize)>) -> (usize, usize) {
    match range {
        Some((lo, hi)) => (lo, hi.saturating_sub(lo)),
        None => (0, usize::MAX),
    }
}

/// The shared scan kernel: stream heap/index rows in chunks, run the
/// pushed-down filter on the *borrowed* rows (no clone for filtered-out
/// rows), then transpose only the survivors' needed columns — per-column
/// loops, late materialization.
fn scan_stream<'r>(
    rows: impl Iterator<Item = &'r Row>,
    schema: &taurus_common::Schema,
    filter: &[Expr],
    plan: &Plan,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
    needed: Option<&[bool]>,
) -> Result<Batches> {
    let space = plan.space(ctx.num_tables);
    let width = space.width();
    let env = Env::new(binding, &space, ctx.num_tables);
    let preds: Vec<Pred<'_>> = filter.iter().map(|e| compile_pred(e, &space)).collect();
    let mut out = Batches::new();
    let mut chunk: Vec<&Row> = Vec::with_capacity(BATCH_ROWS);
    for row in rows {
        chunk.push(row);
        if chunk.len() == BATCH_ROWS {
            flush_scan_chunk(&mut chunk, width, schema, &preds, &env, needed, ctx, &mut out)?;
        }
    }
    flush_scan_chunk(&mut chunk, width, schema, &preds, &env, needed, ctx, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn flush_scan_chunk(
    chunk: &mut Vec<&Row>,
    width: usize,
    schema: &taurus_common::Schema,
    preds: &[Pred<'_>],
    env: &Env,
    needed: Option<&[bool]>,
    ctx: &ExecContext<'_>,
    out: &mut Batches,
) -> Result<()> {
    if chunk.is_empty() {
        return Ok(());
    }
    // Chunk boundary = batch boundary: the governor check that caps how far
    // a cancelled query keeps scanning.
    ctx.check_governor()?;
    ExecStats::bump(&ctx.stats.rows_scanned, chunk.len() as u64);
    let mut kept: Vec<&Row> = Vec::with_capacity(chunk.len());
    'row: for row in chunk.iter().copied() {
        for p in preds {
            if !pred_passes_row(p, row, env)? {
                continue 'row;
            }
        }
        kept.push(row);
    }
    ExecStats::bump(&ctx.stats.rows_emitted, kept.len() as u64);
    if !kept.is_empty() {
        let mut cols = Vec::with_capacity(width);
        for ci in 0..width {
            if needed.is_some_and(|m| !m[ci]) {
                cols.push(Col::Absent);
                continue;
            }
            let mut b = if ci < schema.len() {
                ColBuilder::for_type(schema.column(ci).data_type)
            } else {
                ColBuilder::new()
            };
            for row in &kept {
                b.push(&row[ci]);
            }
            cols.push(b.finish());
        }
        out.push_charged(Batch { cols, len: kept.len(), sel: None }, ctx)?;
    }
    chunk.clear();
    Ok(())
}

/// Filter: refine each batch's selection vector, one compiled conjunct at a
/// time. No rows are copied; survivors are just indices.
fn filter_op(
    input: &Plan,
    predicate: &[Expr],
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
    needed: Option<&[bool]>,
) -> Result<Batches> {
    let space = input.space(ctx.num_tables);
    // The child must materialize whatever the ancestors need plus whatever
    // the predicate reads.
    let child_needed = needed.and_then(|m| {
        let mut mask = m.to_vec();
        let refs: Vec<&Expr> = predicate.iter().collect();
        collect_refs(&refs, &space, &mut mask).then_some(mask)
    });
    let mut batches = batch_input(input, ctx, binding, child_needed.as_deref())?;
    let env = Env::new(binding, &space, ctx.num_tables);
    let preds: Vec<Pred<'_>> = predicate.iter().map(|e| compile_pred(e, &space)).collect();
    let mut scratch = Vec::new();
    for b in &mut batches.data {
        ctx.check_governor()?;
        for p in &preds {
            refine(b, p, &env, &mut scratch)?;
            if b.num_rows() == 0 {
                break;
            }
        }
    }
    ExecStats::bump(&ctx.stats.rows_emitted, batches.num_rows() as u64);
    Ok(batches)
}

/// Projection: direct column references gather (or share) their input
/// vector; constants broadcast; complex expressions fall back to the
/// interpreter per selected row. Output expressions no ancestor reads are
/// skipped entirely.
fn project_op(
    input: &Plan,
    exprs: &[Expr],
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
    needed: Option<&[bool]>,
) -> Result<Batches> {
    let space = input.space(ctx.num_tables);
    let iwidth = space.width();
    let eval_needed: Vec<bool> = match needed {
        Some(m) => m.to_vec(),
        None => vec![true; exprs.len()],
    };
    let mut mask = vec![false; iwidth];
    let refs: Vec<&Expr> =
        exprs.iter().zip(&eval_needed).filter(|(_, n)| **n).map(|(e, _)| e).collect();
    let child_needed = collect_refs(&refs, &space, &mut mask).then_some(mask);
    let input_b = batch_input(input, ctx, binding, child_needed.as_deref())?;
    let env = Env::new(binding, &space, ctx.num_tables);
    let direct: Vec<Option<usize>> = exprs.iter().map(|e| col_of(e, &space)).collect();
    let mut out = Batches::new();
    let mut scratch = Vec::new();
    for b in &input_b.data {
        ctx.check_governor()?;
        let n = b.num_rows();
        let mut cols = Vec::with_capacity(exprs.len());
        for (j, e) in exprs.iter().enumerate() {
            if !eval_needed[j] {
                cols.push(Col::Absent);
                continue;
            }
            if let Some(ci) = direct[j] {
                cols.push(gather(&b.cols[ci], b));
                continue;
            }
            let mut builder = ColBuilder::new();
            for i in 0..n {
                let p = b.phys(i);
                b.write_row(p, &mut scratch);
                builder.push(&env.eval(e, &scratch)?);
            }
            cols.push(builder.finish());
        }
        ExecStats::bump(&ctx.stats.rows_emitted, n as u64);
        out.push_charged(Batch { cols, len: n, sel: None }, ctx)?;
    }
    input_b.release(ctx);
    Ok(out)
}

/// Compact a column through a batch's selection vector (clone when dense).
fn gather(c: &Col, b: &Batch) -> Col {
    let Some(sel) = &b.sel else { return c.clone() };
    match c {
        Col::Int { data, valid } => {
            let (d, m) = gather_typed(data, valid, sel);
            Col::Int { data: d, valid: m }
        }
        Col::Double { data, valid } => {
            let (d, m) = gather_typed(data, valid, sel);
            Col::Double { data: d, valid: m }
        }
        Col::Date { data, valid } => {
            let (d, m) = gather_typed(data, valid, sel);
            Col::Date { data: d, valid: m }
        }
        Col::Bool { data, valid } => {
            let (d, m) = gather_typed(data, valid, sel);
            Col::Bool { data: d, valid: m }
        }
        Col::Str { data, valid } => {
            let (d, m) = gather_typed(data, valid, sel);
            Col::Str { data: d, valid: m }
        }
        Col::Vals(v) => Col::Vals(sel.iter().map(|&p| v[p as usize].clone()).collect()),
        Col::Absent => Col::Absent,
    }
}

fn gather_typed<T: Clone>(data: &[T], valid: &Bitmap, sel: &[u32]) -> (Vec<T>, Bitmap) {
    let mut d = Vec::with_capacity(sel.len());
    let mut m = Bitmap::with_capacity(sel.len());
    for &p in sel {
        d.push(data[p as usize].clone());
        m.push(valid.get(p as usize));
    }
    (d, m)
}

/// Limit: logically truncate the batch stream at `n` rows.
fn limit_op(
    input: &Plan,
    n: usize,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
    needed: Option<&[bool]>,
) -> Result<Batches> {
    let mut batches = batch_input(input, ctx, binding, needed)?;
    let mut remaining = n;
    let mut keep = Vec::new();
    for mut b in std::mem::take(&mut batches.data) {
        if remaining == 0 {
            break;
        }
        let k = b.num_rows();
        if k <= remaining {
            remaining -= k;
            keep.push(b);
        } else {
            let sel: Vec<u32> = (0..remaining).map(|i| b.phys(i) as u32).collect();
            b.sel = Some(sel);
            remaining = 0;
            keep.push(b);
        }
    }
    batches.data = keep;
    ExecStats::bump(&ctx.stats.rows_emitted, batches.num_rows() as u64);
    Ok(batches)
}

/// Hash join: the build side reuses the row engine's `build_table` (same
/// hash map, same NULL-key exclusion), the probe side streams batches with
/// keys extracted straight from columns where possible, and the probe row
/// is only materialized for rows that actually need it (matches, residuals,
/// outer pads).
#[allow(clippy::too_many_arguments)]
fn hash_join_op(
    kind: JoinKind,
    build_left: bool,
    left: &Plan,
    right: &Plan,
    keys: &[(Expr, Expr)],
    residual: &[Expr],
    null_aware: bool,
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
    needed: Option<&[bool]>,
) -> Result<Batches> {
    let nt = ctx.num_tables;
    let build_is_left = build_left;
    let (build_plan, probe_plan): (&Plan, &Plan) =
        if build_is_left { (left, right) } else { (right, left) };
    let left_width = left.space(nt).width();
    let right_width = right.space(nt).width();
    let join_space = exec::whole_join_space(nt, left, right)?;
    let probe_space = probe_plan.space(nt);
    let probe_width = probe_space.width();
    let out_width = match kind {
        JoinKind::Inner | JoinKind::LeftOuter => left_width + right_width,
        JoinKind::Semi | JoinKind::AntiSemi => left_width,
    };
    // Probe side's offset inside the combined left++right space.
    let probe_off = if build_is_left { left_width } else { 0 };

    let build_keys: Vec<&Expr> = if build_is_left {
        keys.iter().map(|(l, _)| l).collect()
    } else {
        keys.iter().map(|(_, r)| r).collect()
    };
    let probe_keys: Vec<&Expr> = if build_is_left {
        keys.iter().map(|(_, r)| r).collect()
    } else {
        keys.iter().map(|(l, _)| l).collect()
    };

    // Probe-side pruning: the ancestors' mask restricted to the probe side,
    // widened by the probe keys and the residual's probe-side reads.
    let probe_needed: Option<Vec<bool>> = needed.and_then(|m| {
        let mut pmask = vec![false; probe_width];
        match kind {
            JoinKind::Inner | JoinKind::LeftOuter => {
                for (j, slot) in pmask.iter_mut().enumerate() {
                    *slot = m[probe_off + j];
                }
            }
            // Semi/anti output *is* the probe (left) side.
            JoinKind::Semi | JoinKind::AntiSemi => pmask.copy_from_slice(m),
        }
        if !collect_refs(&probe_keys, &probe_space, &mut pmask) {
            return None;
        }
        if !residual.is_empty() {
            let mut jmask = vec![false; left_width + right_width];
            let refs: Vec<&Expr> = residual.iter().collect();
            if !collect_refs(&refs, &join_space, &mut jmask) {
                return None;
            }
            for (j, slot) in pmask.iter_mut().enumerate() {
                *slot = *slot || jmask[probe_off + j];
            }
        }
        Some(pmask)
    });

    let build_env = Env::new(binding, &build_plan.space(nt), nt);
    let probe_env = Env::new(binding, &probe_space, nt);
    let join_env = Env::new(binding, &join_space, nt);

    // Build exactly as the row path does (shared broadcast builds included).
    let build_is_shared =
        matches!(build_plan, Plan::Exchange { kind: ExchangeKind::Broadcast { .. }, .. });
    let built: Arc<BuildTable> = match build_plan {
        Plan::Exchange { kind: ExchangeKind::Broadcast { slot }, input, .. } => {
            ctx.shared_build(*slot, || {
                let rows = exec::exec(input, ctx, binding)?;
                ctx.record(build_plan, rows.len() as u64);
                build_table(rows, &build_keys, &build_env, ctx)
            })?
        }
        _ => {
            let rows = exec::exec(build_plan, ctx, binding)?;
            Arc::new(build_table(rows, &build_keys, &build_env, ctx)?)
        }
    };
    let (table, build_rows, build_has_null_key) = (&built.index, &built.rows, built.has_null_key);

    let probe_b = batch_input(probe_plan, ctx, binding, probe_needed.as_deref())?;
    let key_cols: Vec<Option<usize>> = probe_keys.iter().map(|k| col_of(k, &probe_space)).collect();

    let joined = |lrow: &[Value], rrow: &[Value]| -> Row {
        let mut j = Vec::with_capacity(lrow.len() + rrow.len());
        j.extend_from_slice(lrow);
        j.extend_from_slice(rrow);
        j
    };

    let mut out = Batches::new();
    let mut pending: Vec<Row> = Vec::new();
    let mut prow: Vec<Value> = Vec::new();
    let mut kv: Vec<Value> = Vec::with_capacity(probe_keys.len());
    for b in &probe_b.data {
        ctx.check_governor()?;
        for i in 0..b.num_rows() {
            let p = b.phys(i);
            ExecStats::bump(&ctx.stats.hash_probes, 1);
            // Materialize the probe row lazily: key-only misses never pay
            // for it when every key is a direct column.
            let mut prow_filled = false;
            kv.clear();
            let mut any_null = false;
            for (k, kc) in probe_keys.iter().zip(&key_cols) {
                let v = match kc {
                    Some(c) => b.cols[*c].value(p),
                    None => {
                        if !prow_filled {
                            b.write_row(p, &mut prow);
                            prow_filled = true;
                        }
                        probe_env.eval(k, &prow)?
                    }
                };
                any_null |= v.is_null();
                kv.push(v);
            }
            let matches: &[usize] =
                if any_null { &[] } else { table.get(&kv).map(|v| v.as_slice()).unwrap_or(&[]) };

            let mut matched = false;
            for &bi in matches {
                let brow = build_rows.get(bi).ok_or_else(|| {
                    taurus_common::error::Error::internal("hash-join build index out of range")
                })?;
                if !prow_filled {
                    b.write_row(p, &mut prow);
                    prow_filled = true;
                }
                let j = if build_is_left { joined(brow, &prow) } else { joined(&prow, brow) };
                if join_env.passes(residual, &j)? {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => pending.push(j),
                        JoinKind::Semi => {
                            pending.push(prow.clone());
                            break;
                        }
                        JoinKind::AntiSemi => break,
                    }
                }
            }
            if !matched {
                match kind {
                    JoinKind::LeftOuter => {
                        if !prow_filled {
                            b.write_row(p, &mut prow);
                        }
                        let mut j = Vec::with_capacity(prow.len() + right_width);
                        j.extend_from_slice(&prow);
                        j.extend(std::iter::repeat_n(Value::Null, right_width));
                        pending.push(j);
                    }
                    JoinKind::AntiSemi => {
                        // Same NULL-aware membership rule as the row path:
                        // UNKNOWN filters the row except over an empty build.
                        if null_aware && !build_rows.is_empty() && (any_null || build_has_null_key)
                        {
                            continue;
                        }
                        if !prow_filled {
                            b.write_row(p, &mut prow);
                        }
                        pending.push(prow.clone());
                    }
                    _ => {}
                }
            }
            if pending.len() >= BATCH_ROWS {
                out.push_charged(rows_to_batch(&pending, out_width), ctx)?;
                pending.clear();
            }
        }
    }
    if !pending.is_empty() {
        out.push_charged(rows_to_batch(&pending, out_width), ctx)?;
        pending.clear();
    }
    if !build_is_shared {
        ctx.uncharge_mem(rows_bytes(&built.rows));
    }
    probe_b.release(ctx);
    ExecStats::bump(&ctx.stats.rows_emitted, out.num_rows() as u64);
    Ok(out)
}

/// Hash / scalar aggregation over batches. Group keys and aggregate inputs
/// read straight from column vectors when they are direct references; the
/// accumulators themselves are the row engine's, fed in identical order,
/// so every finish() is bit-identical.
fn aggregate_op(
    input: &Plan,
    group_by: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecContext<'_>,
    binding: Binding<'_>,
) -> Result<Batches> {
    let nt = ctx.num_tables;
    let space = input.space(nt);
    let iwidth = space.width();
    let mut mask = vec![false; iwidth];
    let refs: Vec<&Expr> =
        group_by.iter().chain(aggs.iter().filter_map(|s| s.arg.as_ref())).collect();
    let child_needed = collect_refs(&refs, &space, &mut mask).then_some(mask);
    // The batch buffers below are charged by their producers, covering the
    // hash state's footprint on the same scale as the row path's charge.
    let input_b = batch_input(input, ctx, binding, child_needed.as_deref())?;
    let env = Env::new(binding, &space, nt);
    let group_cols: Vec<Option<usize>> = group_by.iter().map(|g| col_of(g, &space)).collect();
    let arg_cols: Vec<Option<usize>> =
        aggs.iter().map(|s| s.arg.as_ref().and_then(|e| col_of(e, &space))).collect();
    let new_accs = || -> Vec<Accumulator> {
        aggs.iter().map(|s| Accumulator::new(s.func, s.distinct)).collect()
    };
    let emit = |key: Vec<Value>, accs: &[Accumulator]| -> Row {
        let mut row = key;
        row.extend(accs.iter().map(|a| a.finish()));
        row
    };
    let out_width = group_by.len() + aggs.len();
    let mut scratch: Vec<Value> = Vec::new();

    let mut out_rows: Vec<Row> = Vec::new();
    if group_by.is_empty() {
        let mut accs = new_accs();
        for b in &input_b.data {
            ctx.check_governor()?;
            // Per-column accumulation: each aggregate sweeps its own column.
            for ((spec, ac), acc) in aggs.iter().zip(&arg_cols).zip(accs.iter_mut()) {
                accumulate_column(spec, *ac, acc, b, &env, &mut scratch)?;
            }
        }
        out_rows.push(emit(Vec::new(), &accs));
    } else {
        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        let mut order: Vec<Vec<Value>> = Vec::new();
        for b in &input_b.data {
            ctx.check_governor()?;
            for i in 0..b.num_rows() {
                let p = b.phys(i);
                let mut prow_filled = false;
                let mut key = Vec::with_capacity(group_by.len());
                for (g, gc) in group_by.iter().zip(&group_cols) {
                    let v = match gc {
                        Some(c) => b.cols[*c].value(p),
                        None => {
                            if !prow_filled {
                                b.write_row(p, &mut scratch);
                                prow_filled = true;
                            }
                            env.eval(g, &scratch)?
                        }
                    };
                    key.push(v);
                }
                let accs = match groups.get_mut(&key) {
                    Some(a) => a,
                    None => {
                        order.push(key.clone());
                        groups.entry(key.clone()).or_insert_with(new_accs)
                    }
                };
                for ((spec, ac), acc) in aggs.iter().zip(&arg_cols).zip(accs.iter_mut()) {
                    let v = match (&spec.arg, ac) {
                        (None, _) => Value::Int(1),
                        (Some(_), Some(c)) => b.cols[*c].value(p),
                        (Some(e), None) => {
                            if !prow_filled {
                                b.write_row(p, &mut scratch);
                                prow_filled = true;
                            }
                            env.eval(e, &scratch)?
                        }
                    };
                    acc.update(&v)?;
                }
            }
        }
        out_rows.reserve(order.len());
        for key in order {
            let accs = groups.get(&key).ok_or_else(|| {
                taurus_common::error::Error::internal("hash-aggregate group vanished")
            })?;
            out_rows.push(emit(key, accs));
        }
    }
    input_b.release(ctx);
    ExecStats::bump(&ctx.stats.rows_emitted, out_rows.len() as u64);
    let mut out = Batches::new();
    for chunk in out_rows.chunks(BATCH_ROWS) {
        out.push_charged(rows_to_batch(chunk, out_width), ctx)?;
    }
    Ok(out)
}

/// Sweep one aggregate over one batch (scalar aggregation): direct columns
/// feed the accumulator without touching the interpreter; complex arguments
/// fall back to a scratch row per selected row.
fn accumulate_column(
    spec: &AggSpec,
    arg_col: Option<usize>,
    acc: &mut Accumulator,
    b: &Batch,
    env: &Env,
    scratch: &mut Vec<Value>,
) -> Result<()> {
    match (&spec.arg, arg_col) {
        (None, _) => {
            for _ in 0..b.num_rows() {
                acc.update(&Value::Int(1))?;
            }
        }
        (Some(_), Some(c)) => {
            let col = &b.cols[c];
            for i in 0..b.num_rows() {
                acc.update(&col.value(b.phys(i)))?;
            }
        }
        (Some(e), None) => {
            for i in 0..b.num_rows() {
                b.write_row(b.phys(i), scratch);
                acc.update(&env.eval(e, scratch)?)?;
            }
        }
    }
    Ok(())
}
