//! The MySQL ↔ Orca integration bridge — the paper's contribution.
//!
//! Three components implement the interface between the two systems (the
//! blue boxes of paper Fig 3):
//!
//! * [`tree_converter`] — **Parse Tree Converter**: prepared MySQL query
//!   blocks become Orca logical block descriptions, with predicate
//!   segregation already performed and table descriptors carrying the
//!   query-table indexes (the `TABLE_LIST`-pointer trick of §4.1).
//! * [`provider`] (with [`oid`] and [`dxl`]) — **Metadata Provider**: the
//!   OID-keyed plug-in serving MySQL data-dictionary objects to Orca —
//!   type categories (§5.1), the arithmetic/comparison/aggregation
//!   expression cubes with commutators and inverses (§5.2–5.3), mapped and
//!   regular functions (§5.4), relations/statistics/histograms (§5.5) — all
//!   laid out in the base-plus-enumeration OID space of §5.6, and
//!   serializable to a DXL-style exchange format.
//! * [`plan_converter`] — **Orca Plan Converter**: Orca physical plans
//!   become MySQL *skeleton plans* through the two-pass translation of
//!   §4.2 (query-block discovery, best-position arrays, estimate copying,
//!   the inner-hash-join build-side flip of §7 item 2).
//!
//! [`router`] ties them together as a [`mylite::CostBasedOptimizer`]: a
//! query whose table-reference count reaches the *complex query threshold*
//! takes the Orca detour; anything Orca cannot handle — unsupported
//! constructs, exhausted search budgets, invalid skeletons, even panics —
//! falls back to the MySQL optimizer (§4.1/§4.2.1), with the reason
//! recorded per statement ([`router::FallbackReason`]). The [`validate`]
//! module is the skeleton-consistency gate the router runs before
//! accepting a converted plan.

pub mod dxl;
pub mod oid;
pub mod plan_converter;
pub mod provider;
pub mod router;
pub mod tree_converter;
pub mod validate;

pub use provider::MySqlMdProvider;
pub use router::{FallbackCounts, FallbackReason, GovernedCounts, OrcaOptimizer, RouterStats};
pub use validate::validate_skeleton;
