//! Table 1 — query compilation (EXPLAIN) overhead (paper §6.3).
//!
//! Measures the total time to *plan* an entire suite — no execution — under
//! the three compiler configurations of Table 1, with the complex-query
//! threshold set to 1 so every query takes the Orca detour.

use mylite::engine::CostBasedOptimizer;
use mylite::{Engine, MySqlOptimizer};
use orcalite::{JoinOrderStrategy, OrcaConfig};
use taurus_bench::micro::{scale_from_env, Group};
use taurus_bridge::OrcaOptimizer;
use taurus_workloads::{tpcds, tpch, Scale};

fn compile_suite(
    engine: &Engine,
    queries: &[taurus_workloads::tpch::Query],
    opt: &dyn CostBasedOptimizer,
) {
    for q in queries {
        engine.plan(&q.sql, opt).expect("workload query plans");
    }
}

fn main() {
    let scale = Scale(scale_from_env(0.15));
    let suites = [
        ("tpch", Engine::new(tpch::build_catalog(scale)), tpch::queries()),
        ("tpcds", Engine::new(tpcds::build_catalog(scale)), tpcds::queries()),
    ];
    for (suite, engine, queries) in &suites {
        let group = Group::new(format!("table1/{suite}")).sample_size(10);
        group.bench("mysql", || compile_suite(engine, queries, &MySqlOptimizer));
        let exhaustive =
            OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Exhaustive), 1);
        group.bench("orca-exhaustive", || compile_suite(engine, queries, &exhaustive));
        let exhaustive2 =
            OrcaOptimizer::new(OrcaConfig::with_strategy(JoinOrderStrategy::Exhaustive2), 1);
        group.bench("orca-exhaustive2", || compile_suite(engine, queries, &exhaustive2));
    }
}
