//! Poison-recovering lock helpers shared by the engine and the plan cache.
//!
//! Every lock in the engine guards plain data (maps, counters, plans) whose
//! invariants hold between statements, and all execution happens under
//! `catch_unwind` isolation at the optimizer boundary — so a panic while a
//! guard is held leaves structurally sound data behind. Propagating the
//! poison as a second panic would brick every later session sharing the
//! engine; recovering the guard keeps the server serving. (A panicked
//! *query* still fails; only the shared state survives.)

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a mutex, recovering the data if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Acquire a shared read guard, recovering from poison.
pub(crate) fn rlock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquire an exclusive write guard, recovering from poison.
pub(crate) fn wlock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}
