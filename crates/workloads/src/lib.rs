//! TPC-H and TPC-DS analog workloads.
//!
//! The paper evaluates on TPC-H (22 queries, SF 20) and TPC-DS (99 queries,
//! SF 100). Official query text and dbgen/dsqgen data are not
//! redistributable, so this crate provides *analogs*: the same schemas, a
//! deterministic data generator reproducing the distributions the queries
//! are sensitive to (uniform keys, skewed fact-to-dimension fan-outs,
//! comment strings with rare `%Customer%Complaints%` needles, calendar
//! dates), and hand-written query analogs in the engine's dialect.
//!
//! * [`tpch`] — all 22 TPC-H query analogs over the 8-table schema.
//! * [`tpcds`] — the TPC-DS schema subset and the 99-query suite:
//!   hand-written analogs for every query the paper discusses individually
//!   (Q1, Q6, Q9, Q14, Q17, Q24, Q31, Q32, Q41, Q56, Q58, Q64, Q72, Q81,
//!   Q92, ...) plus a deterministic query-family generator that fills the
//!   remaining numbers with the published complexity mix.
//!
//! Scale factors are linear row multipliers; the defaults target laptop
//! runs where the *relative* plan quality (who wins, by what factor) is
//! preserved even though absolute times are far below the paper's cluster.

pub mod gen;
pub mod tpcds;
pub mod tpch;

pub use gen::Scale;
