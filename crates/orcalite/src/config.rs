//! Optimizer configuration: the knobs the paper exercises, the search
//! budget that bounds the detour, and the deterministic fault injector the
//! resilience tests drive.

use taurus_common::error::{Error, Result};

/// Join-order search strategy (paper §6: "Orca's join-order search
/// algorithm was set to EXHAUSTIVE2 — its most thorough setting").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrderStrategy {
    /// Linear greedy chain (cheap, comparable to MySQL's search).
    Greedy,
    /// Left-deep dynamic programming over the memo.
    Exhaustive,
    /// Full bushy dynamic programming — every partition of every plannable
    /// subset is considered.
    Exhaustive2,
}

/// A deterministic cap on search effort. The memo checks these limits
/// inside its exploration loops and aborts with
/// [`Error::ResourceExhausted`] the moment either is crossed — identical
/// inputs always exhaust at the identical point, so budget behaviour is
/// reproducible. The bridge reacts by retrying the block with cheaper
/// strategies (its degradation ladder) before falling back to MySQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of memo groups the search may create.
    pub max_groups: usize,
    /// Maximum number of physical alternatives the search may cost.
    pub max_plans_costed: u64,
}

impl SearchBudget {
    /// No limits — the default, so existing behaviour is unchanged.
    pub const UNLIMITED: SearchBudget =
        SearchBudget { max_groups: usize::MAX, max_plans_costed: u64::MAX };

    /// The budget a [`FaultKind::BudgetSqueeze`] imposes: small enough that
    /// any multi-member join exhausts it under every strategy.
    pub const SQUEEZED: SearchBudget = SearchBudget { max_groups: 2, max_plans_costed: 2 };

    pub fn is_unlimited(&self) -> bool {
        *self == SearchBudget::UNLIMITED
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::UNLIMITED
    }
}

/// Named points in the detour where the fault injector can strike. Sites
/// cover both bridge layers and the optimizer core, so every fallback path
/// has a lever that exercises it end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Bridge: prepared block → logical block description.
    TreeConvert,
    /// Optimizer core: entry to the memo search.
    OptimizeSearch,
    /// Bridge: Orca physical plan → skeleton plan.
    PlanConvert,
    /// Bridge: skeleton validation pass before refinement.
    SkeletonValidate,
    /// Engine: the query governor guarding execution. Faults armed here are
    /// not fired during planning; the engine consults the injector when it
    /// builds a statement's governor (mid-query cancellation and memory
    /// clamps), so [`FaultKind::Panic`]/[`FaultKind::Error`] are inert at
    /// this site.
    ExecGovernor,
}

impl FaultSite {
    pub const ALL: [FaultSite; 5] = [
        FaultSite::TreeConvert,
        FaultSite::OptimizeSearch,
        FaultSite::PlanConvert,
        FaultSite::SkeletonValidate,
        FaultSite::ExecGovernor,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::TreeConvert => "tree-convert",
            FaultSite::OptimizeSearch => "optimize-search",
            FaultSite::PlanConvert => "plan-convert",
            FaultSite::SkeletonValidate => "skeleton-validate",
            FaultSite::ExecGovernor => "exec-governor",
        }
    }
}

/// What the injector does when an armed site is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site — exercises the bridge's panic isolation.
    Panic,
    /// Return an [`Error::Internal`] — exercises error-path fallback.
    Error,
    /// Shrink the search budget to [`SearchBudget::SQUEEZED`] — exercises
    /// budget exhaustion and the degradation ladder. Only meaningful at
    /// [`FaultSite::OptimizeSearch`].
    BudgetSqueeze,
    /// Trip the query's cancel token after a fixed number of governor
    /// checks — exercises mid-query cancellation unwinds. Only meaningful
    /// at [`FaultSite::ExecGovernor`].
    CancelQuery,
    /// Clamp the query's memory budget to a single byte, so the first
    /// charging operator fails — exercises resource-exhaustion unwinds and
    /// the engine's serial-retry degradation rung. Only meaningful at
    /// [`FaultSite::ExecGovernor`].
    MemorySqueeze,
}

/// Deterministic fault injector: fires every time an armed site is
/// reached. Disarmed (the default) it is a no-op, so production configs
/// pay only a `Vec::is_empty` check per site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjector {
    armed: Vec<(FaultSite, FaultKind)>,
}

impl FaultInjector {
    /// Arm one fault; chainable for multi-fault scenarios.
    pub fn arm(mut self, site: FaultSite, kind: FaultKind) -> Self {
        self.armed.push((site, kind));
        self
    }

    pub fn is_armed(&self, site: FaultSite, kind: FaultKind) -> bool {
        self.armed.contains(&(site, kind))
    }

    /// Trigger any panic/error fault armed for `site`. Called at each
    /// site's entry; budget squeezes are queried via [`Self::squeeze`].
    pub fn fire(&self, site: FaultSite) -> Result<()> {
        if self.armed.is_empty() {
            return Ok(());
        }
        if self.is_armed(site, FaultKind::Panic) {
            panic!("injected fault: panic at {}", site.name());
        }
        if self.is_armed(site, FaultKind::Error) {
            return Err(Error::internal(format!("injected fault: error at {}", site.name())));
        }
        Ok(())
    }

    /// The budget override for `site`, if a squeeze is armed there.
    pub fn squeeze(&self, site: FaultSite) -> Option<SearchBudget> {
        self.is_armed(site, FaultKind::BudgetSqueeze).then_some(SearchBudget::SQUEEZED)
    }

    /// The governor check count after which an armed [`FaultKind::CancelQuery`]
    /// trips the cancel token. Three checks lands mid-execution for any
    /// multi-operator plan (check 1 is the root operator's opening).
    pub const CANCEL_AT_CHECK: u64 = 3;

    /// The memory budget an armed [`FaultKind::MemorySqueeze`] imposes: one
    /// byte, so the first charging operator exhausts it deterministically.
    pub const MEMORY_CLAMP_BYTES: u64 = 1;

    /// The cancel point for queries run under this injector, if a
    /// mid-query-cancel fault is armed at [`FaultSite::ExecGovernor`].
    pub fn cancel_point(&self) -> Option<u64> {
        self.is_armed(FaultSite::ExecGovernor, FaultKind::CancelQuery)
            .then_some(Self::CANCEL_AT_CHECK)
    }

    /// The memory-budget clamp for queries run under this injector, if a
    /// resource-exhaustion fault is armed at [`FaultSite::ExecGovernor`].
    pub fn memory_clamp(&self) -> Option<u64> {
        self.is_armed(FaultSite::ExecGovernor, FaultKind::MemorySqueeze)
            .then_some(Self::MEMORY_CLAMP_BYTES)
    }
}

/// Optimizer knobs. Defaults match the paper's MySQL-target configuration.
#[derive(Debug, Clone)]
pub struct OrcaConfig {
    pub strategy: JoinOrderStrategy,
    /// OR factorization: rewrite `(a=b AND x) OR (a=b AND y)` to
    /// `(a=b) AND (x OR y)` — the rewrite behind Q41's 222× (§6.2) and a
    /// §7 lesson. MySQL cannot do this (paper §1 item 3).
    pub enable_or_factorization: bool,
    /// Freedom to place correlated applies (dependent joins) anywhere their
    /// dependencies are satisfied — the closure of the paper's 11
    /// apply/join swap rules (§7 item 1). When disabled, dependent tables
    /// are forced to join last (pre-rule Orca behaviour).
    pub enable_apply_swaps: bool,
    /// GbAgg-below-join pushdown. Orca supports it but MySQL cannot execute
    /// such plans, so it is *disabled for the MySQL target* (§7 item 5).
    /// Enabling it makes Orca report a changed query-block structure, which
    /// triggers the bridge's fallback to MySQL optimization (§4.2.1).
    pub enable_gbagg_below_join: bool,
    /// §7 item 7: accept "replicated distribution required AND replication
    /// prohibited" plans — invalid on MPP, valid single-node. Disabling
    /// mimics un-nudged Orca, which would prune some single-node plans.
    pub mysql_distribution_nudges: bool,
    /// Bushy DP is 3^n in the member count; above this cap EXHAUSTIVE2
    /// degrades to left-deep DP so compile time stays bounded.
    pub bushy_member_cap: usize,
    /// Deterministic cap on per-block search effort (memo groups / plans
    /// costed). Exhaustion surfaces as [`Error::ResourceExhausted`] and
    /// drives the bridge's degradation ladder.
    pub budget: SearchBudget,
    /// Maximum degree of parallelism the cost model may choose for a plan
    /// (1 = serial-only, the default). When > 1 the memo compares the best
    /// serial plan against parallel alternatives via
    /// [`crate::cost::choose_dop`] and annotates the winner.
    pub dop: usize,
    /// Interesting-order propagation: when a block carries a
    /// [`crate::desc::BlockDesc::required_order`], the memo costs
    /// order-delivering alternatives (full ordered index scans, sort-ahead
    /// on the anchor leaf) against plan-plus-enforcer and keeps whichever
    /// is cheaper. Disabling falls back to always-enforce plans; used to
    /// measure the tax the extra alternatives put on `plans_costed`.
    pub order_properties: bool,
    /// Test-only fault injection; disarmed by default (no-op).
    pub faults: FaultInjector,
}

impl Default for OrcaConfig {
    fn default() -> Self {
        OrcaConfig {
            strategy: JoinOrderStrategy::Exhaustive2,
            enable_or_factorization: true,
            enable_apply_swaps: true,
            enable_gbagg_below_join: false,
            mysql_distribution_nudges: true,
            bushy_member_cap: 13,
            budget: SearchBudget::UNLIMITED,
            dop: 1,
            order_properties: true,
            faults: FaultInjector::default(),
        }
    }
}

impl OrcaConfig {
    pub fn with_strategy(strategy: JoinOrderStrategy) -> OrcaConfig {
        OrcaConfig { strategy, ..OrcaConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = OrcaConfig::default();
        assert_eq!(c.strategy, JoinOrderStrategy::Exhaustive2);
        assert!(c.enable_or_factorization);
        assert!(c.enable_apply_swaps);
        assert!(!c.enable_gbagg_below_join, "disabled for the MySQL target (§7)");
        assert!(c.mysql_distribution_nudges);
        assert!(c.budget.is_unlimited(), "budget off by default");
        assert_eq!(c.dop, 1, "serial-only unless the engine raises dop");
        assert!(c.order_properties, "interesting-order propagation on by default");
        assert_eq!(c.faults, FaultInjector::default(), "injector disarmed by default");
    }

    #[test]
    fn injector_fires_only_armed_sites() {
        let inj = FaultInjector::default().arm(FaultSite::PlanConvert, FaultKind::Error);
        assert!(inj.fire(FaultSite::TreeConvert).is_ok());
        let err = inj.fire(FaultSite::PlanConvert).unwrap_err();
        assert!(err.to_string().contains("plan-convert"), "{err}");
        assert!(inj.squeeze(FaultSite::OptimizeSearch).is_none());
    }

    #[test]
    fn budget_squeeze_overrides_only_its_site() {
        let inj = FaultInjector::default().arm(FaultSite::OptimizeSearch, FaultKind::BudgetSqueeze);
        assert_eq!(inj.squeeze(FaultSite::OptimizeSearch), Some(SearchBudget::SQUEEZED));
        assert!(inj.fire(FaultSite::OptimizeSearch).is_ok(), "squeeze is not an error");
        assert!(inj.squeeze(FaultSite::PlanConvert).is_none());
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at tree-convert")]
    fn injector_panics_on_armed_panic() {
        let inj = FaultInjector::default().arm(FaultSite::TreeConvert, FaultKind::Panic);
        let _ = inj.fire(FaultSite::TreeConvert);
    }

    #[test]
    fn governor_faults_surface_through_their_helpers() {
        let inj = FaultInjector::default()
            .arm(FaultSite::ExecGovernor, FaultKind::CancelQuery)
            .arm(FaultSite::ExecGovernor, FaultKind::MemorySqueeze);
        assert_eq!(inj.cancel_point(), Some(FaultInjector::CANCEL_AT_CHECK));
        assert_eq!(inj.memory_clamp(), Some(FaultInjector::MEMORY_CLAMP_BYTES));
        // They are governor-consulted faults, not planning-site trips.
        assert!(inj.fire(FaultSite::ExecGovernor).is_ok());
        assert!(inj.squeeze(FaultSite::ExecGovernor).is_none());
        // Disarmed injectors report no overrides.
        let off = FaultInjector::default();
        assert_eq!(off.cancel_point(), None);
        assert_eq!(off.memory_clamp(), None);
        // Governor kinds armed at planning sites are inert there too.
        let misplaced =
            FaultInjector::default().arm(FaultSite::TreeConvert, FaultKind::CancelQuery);
        assert!(misplaced.fire(FaultSite::TreeConvert).is_ok());
        assert_eq!(misplaced.cancel_point(), None);
    }
}
