//! Quickstart: build a catalog, load rows, and run the same query through
//! the MySQL optimizer and through the Orca detour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::catalog::Catalog;
use taurus_orca::mylite::{Engine, MySqlOptimizer};
use taurus_orca::prelude::*;

fn main() -> Result<()> {
    // 1. Define a schema and load data — the data dictionary both
    //    optimizers will read (Orca through the metadata provider, §5).
    let mut catalog = Catalog::new();
    let orders = catalog.create_table(
        "orders",
        Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer", DataType::Int),
            Column::new("o_total", DataType::Double),
        ]),
    )?;
    catalog.insert(
        orders,
        (0..500).map(|i| {
            vec![Value::Int(i), Value::Int(i % 50), Value::Double((i % 97) as f64 * 10.0)]
        }),
    )?;
    catalog.create_index(orders, "orders_pk", vec![0], true)?;
    catalog.create_index(orders, "orders_customer", vec![1], false)?;

    let customers = catalog.create_table(
        "customers",
        Schema::new(vec![
            Column::new("c_id", DataType::Int),
            Column::new("c_name", DataType::Str),
            Column::new("c_tier", DataType::Str),
        ]),
    )?;
    catalog.insert(
        customers,
        (0..50).map(|i| {
            vec![
                Value::Int(i),
                Value::str(format!("customer-{i:02}")),
                Value::str(if i % 5 == 0 { "gold" } else { "standard" }),
            ]
        }),
    )?;
    catalog.create_index(customers, "customers_pk", vec![0], true)?;

    let mut engine = Engine::new(catalog);
    engine.analyze(); // statistics + histograms for both optimizers

    let sql = "SELECT c_name, COUNT(*) AS orders, SUM(o_total) AS total \
               FROM orders, customers \
               WHERE o_customer = c_id AND c_tier = 'gold' \
               GROUP BY c_name ORDER BY total DESC LIMIT 5";

    // 2. The native MySQL path: greedy, left-deep, nested-loop-leaning.
    println!("--- MySQL optimizer ---");
    println!("{}", engine.explain(sql, &MySqlOptimizer)?);
    let out = engine.query(sql)?;
    for row in &out.rows {
        println!("{:?}", row);
    }

    // 3. The Orca detour (threshold 1 routes even this two-table query):
    //    parse-tree conversion → memo optimization → skeleton plan →
    //    shared plan refinement → the same executor.
    let orca = OrcaOptimizer::new(taurus_orca::orcalite::OrcaConfig::default(), 1);
    println!("\n--- Orca detour ---");
    println!("{}", engine.explain(sql, &orca)?);
    let orca_out = engine.query_with(sql, &orca)?;
    assert_eq!(out.rows, orca_out.rows, "plan choice never changes results");
    println!("work units — mysql: {}, orca: {}", out.work_units, orca_out.work_units);
    Ok(())
}
