//! The paper's flagship case study (§3.1, Fig 4/5): TPC-DS Q72, an
//! 11-table snowflake joining `catalog_sales` with inventory, warehouse,
//! item, demographics, three `date_dim` roles, and two LEFT JOINs.
//!
//! The MySQL optimizer produces a left-deep chain of nested-loop joins; the
//! Orca detour chooses hash joins in selected places and may go bushy.
//!
//! ```sh
//! cargo run --release --example tpcds_q72
//! ```

use std::time::Instant;
use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::mylite::{Engine, MySqlOptimizer};
use taurus_orca::orcalite::OrcaConfig;
use taurus_orca::workloads::{tpcds, Scale};

fn main() -> taurus_orca::prelude::Result<()> {
    let engine = Engine::new(tpcds::build_catalog(Scale(0.3)));
    let q72 = tpcds::query(72);
    println!("Q72 SQL:\n{}\n", q72.sql);

    let orca = OrcaOptimizer::new(OrcaConfig::default(), 2);

    for (label, opt) in [
        (
            "MySQL optimizer (Fig 4)",
            &MySqlOptimizer as &dyn taurus_orca::mylite::CostBasedOptimizer,
        ),
        ("Orca detour (Fig 5)", &orca),
    ] {
        println!("=== {label} ===");
        let planned = engine.plan(&q72.sql, opt)?;
        let plan = &planned.primary().plan;
        let (nl, hj) = plan.join_method_counts();
        println!(
            "join methods: {nl} nested loops, {hj} hash joins; left-deep: {}",
            plan.is_left_deep()
        );
        println!("{}", engine.explain(&q72.sql, opt)?);
        let t = Instant::now();
        let out = engine.execute_planned(&planned)?;
        println!(
            "executed in {:?}: {} result rows, {} work units\n",
            t.elapsed(),
            out.rows.len(),
            out.work_units
        );
    }
    Ok(())
}
