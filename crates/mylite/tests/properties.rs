//! NULL-semantics property tests: minimized repros of the bugs the
//! differential fuzzer's TLP oracle surfaced, plus the three-valued-logic
//! identities they violated. Each predicate `p` must partition a query's
//! rows exactly: `Q` ≡ `Q WHERE p` ⊎ `Q WHERE NOT p` ⊎ `Q WHERE p IS NULL`.

use mylite::Engine;
use taurus_catalog::Catalog;
use taurus_common::{Column, DataType, Schema, Value};

/// `l`: 6 plain rows. `r`: join partner with NULL-riddled payload columns —
/// keys 1..=3 match `l`, keys 4..=6 are unmatched on purpose.
fn engine() -> Engine {
    let mut cat = Catalog::new();
    let l = cat.create_table("l", Schema::new(vec![Column::new("k", DataType::Int)])).unwrap();
    cat.insert(l, (1..=6i64).map(|k| vec![Value::Int(k)])).unwrap();
    cat.create_index(l, "l_pk", vec![0], true).unwrap();
    let r = cat
        .create_table(
            "r",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::nullable("v", DataType::Int),
                Column::nullable("s", DataType::Str),
            ]),
        )
        .unwrap();
    cat.insert(
        r,
        vec![
            vec![Value::Int(1), Value::Int(1), Value::str("C")],
            vec![Value::Int(2), Value::Null, Value::Null],
            vec![Value::Int(3), Value::Int(3), Value::str("B")],
        ],
    )
    .unwrap();
    cat.create_index(r, "r_pk", vec![0], true).unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e
}

fn rows(e: &Engine, sql: &str) -> Vec<String> {
    let mut out: Vec<String> =
        e.query(sql).unwrap().rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

/// Assert the TLP identity for `base` (a FROM clause, no WHERE) and `p`.
fn tlp(e: &Engine, select: &str, base: &str, p: &str) {
    let whole = rows(e, &format!("{select} FROM {base}"));
    let mut parts = rows(e, &format!("{select} FROM {base} WHERE {p}"));
    parts.extend(rows(e, &format!("{select} FROM {base} WHERE NOT ({p})")));
    parts.extend(rows(e, &format!("{select} FROM {base} WHERE ({p}) IS NULL")));
    parts.sort();
    assert_eq!(whole, parts, "TLP partition broken for predicate: {p}");
}

const LJ: &str = "l LEFT JOIN r ON l.k = r.k";

#[test]
fn where_is_null_stays_above_left_join() {
    // Fuzzer bug: a WHERE conjunct targeting the nullable side was pushed
    // below the left join, where it cannot see NULL-extended rows. `r.v IS
    // NULL` holds for the r.k=2 match AND for the three unmatched l rows.
    let e = engine();
    let got = rows(&e, &format!("SELECT l.k FROM {LJ} WHERE r.v IS NULL"));
    assert_eq!(got.len(), 4, "one NULL payload match + three NULL-extended rows: {got:?}");
    tlp(&e, "SELECT l.k, r.v", LJ, "r.v IS NULL");
    tlp(&e, "SELECT l.k, r.v", LJ, "r.v > 1");
}

#[test]
fn coalesce_predicate_does_not_promote_left_join() {
    // Fuzzer bug: `NOT (COALESCE(r.s,'B') = 'C')` was treated as
    // null-rejecting on `r`, illegally promoting LEFT JOIN to INNER.
    // COALESCE absorbs the NULL-extended rows, so they must survive:
    // unmatched l rows get COALESCE(NULL,'B') = 'B' ≠ 'C' → kept.
    let e = engine();
    let got = rows(&e, &format!("SELECT l.k FROM {LJ} WHERE NOT (COALESCE(r.s, 'B') = 'C')"));
    assert_eq!(got.len(), 5, "only the r.s='C' match drops: {got:?}");
    tlp(&e, "SELECT l.k, r.s", LJ, "COALESCE(r.s, 'B') <> 'C'");
    // A genuinely strict predicate on r may still promote — the answer has
    // to match the partition identity either way.
    tlp(&e, "SELECT l.k, r.s", LJ, "r.s <> 'C'");
}

#[test]
fn three_valued_and_or_not() {
    let e = engine();
    // NOT over UNKNOWN stays UNKNOWN: r.k=2 (v NULL) lands in neither the
    // positive nor the negated branch.
    let pos = rows(&e, "SELECT k FROM r WHERE v = 1");
    let neg = rows(&e, "SELECT k FROM r WHERE NOT (v = 1)");
    assert_eq!((pos.len(), neg.len()), (1, 1), "NULL v row is in neither branch");
    // UNKNOWN OR TRUE = TRUE, UNKNOWN AND FALSE = FALSE.
    assert_eq!(rows(&e, "SELECT k FROM r WHERE v = 1 OR k = 2").len(), 2);
    assert_eq!(rows(&e, "SELECT k FROM r WHERE v = 1 AND k = 2").len(), 0);
    tlp(&e, "SELECT r.k", "r", "v = 1 OR s = 'B'");
    tlp(&e, "SELECT r.k", "r", "v = 1 AND s <> 'B'");
}

#[test]
fn in_list_with_null_element() {
    let e = engine();
    // v IN (1, NULL): TRUE only for v=1; UNKNOWN for v=3 (no match, NULL
    // element) and v=NULL.
    assert_eq!(rows(&e, "SELECT k FROM r WHERE v IN (1, NULL)").len(), 1);
    // v NOT IN (1, NULL) can never be TRUE: v≠1 leaves NULL≠v UNKNOWN.
    assert_eq!(rows(&e, "SELECT k FROM r WHERE v NOT IN (1, NULL)").len(), 0);
    tlp(&e, "SELECT r.k", "r", "v IN (1, NULL)");
    tlp(&e, "SELECT r.k", "r", "v NOT IN (3, NULL)");
}

#[test]
fn null_comparison_bound_never_becomes_index_range() {
    // Fuzzer bug: `k >= NULL` on an indexed column was extracted as an
    // index-range lower bound. NULL sorts first in the index's total order,
    // so the range [NULL, ∞) covered the whole table — but a comparison
    // with NULL is UNKNOWN for every row and must select nothing.
    let e = engine();
    for p in ["k >= NULL", "k > NULL", "k <= NULL", "k < NULL", "k = NULL", "NULL <= k"] {
        assert_eq!(rows(&e, &format!("SELECT k FROM l WHERE {p}")).len(), 0, "p = {p}");
        tlp(&e, "SELECT l.k", "l", p);
    }
    assert_eq!(rows(&e, "SELECT k FROM l WHERE k BETWEEN NULL AND 10").len(), 0);
    assert_eq!(rows(&e, "SELECT k FROM l WHERE k BETWEEN 1 AND NULL").len(), 0);
    tlp(&e, "SELECT l.k", "l", "l.k BETWEEN NULL AND 10");
}

#[test]
fn batch_path_order_by_ties_match_serial_row_at_every_dop() {
    // ORDER BY keys with heavy ties leave the tie order up to the engine:
    // the serial row path's stable sort preserves heap order, and the
    // parallel GatherMerge reproduces it by breaking ties on morsel index.
    // The columnar batch path feeds the same sorts through a transpose and
    // back — any reordering inside a batch kernel (scan, filter, project,
    // aggregate) would surface here as a tie flip. Byte-identical output
    // is the contract, not multiset equality.
    let mut cat = Catalog::new();
    let t = cat
        .create_table(
            "t",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
                Column::new("seq", DataType::Int),
            ]),
        )
        .unwrap();
    // 96 rows, only 4 distinct sort keys: every ORDER BY k is ~24-way tied.
    cat.insert(t, (0..96i64).map(|i| vec![Value::Int(i % 4), Value::Int(i % 3), Value::Int(i)]))
        .unwrap();
    let mut e = Engine::new(cat);
    e.analyze();
    e.set_parallel_threshold(8);
    e.set_morsel_rows(16);
    for sql in [
        "SELECT k, v, seq FROM t ORDER BY k",
        "SELECT k, seq FROM t ORDER BY k DESC, v",
        "SELECT k, seq FROM t WHERE v < 2 ORDER BY k LIMIT 10",
        "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY n DESC, k LIMIT 3",
    ] {
        let run = |dop: usize| -> Vec<String> {
            e.set_dop(dop);
            let out = e.query(sql).expect(sql);
            e.set_dop(1);
            out.rows.iter().map(|r| format!("{r:?}")).collect()
        };
        e.set_vectorized(false);
        let reference = run(1);
        e.set_vectorized(true);
        for dop in [1, 4, 8] {
            assert_eq!(reference, run(dop), "batch tie order diverged at dop {dop} for: {sql}");
        }
        e.set_vectorized(false);
    }
}

#[test]
fn not_in_subquery_over_null_column() {
    let e = engine();
    // The subquery's result {1, NULL, 3} contains NULL: `k NOT IN (...)`
    // is FALSE for k∈{1,3} and UNKNOWN for everything else — zero rows.
    assert_eq!(rows(&e, "SELECT k FROM l WHERE k NOT IN (SELECT v FROM r)").len(), 0);
    // Without the NULL element the anti join behaves set-like again.
    assert_eq!(
        rows(&e, "SELECT k FROM l WHERE k NOT IN (SELECT v FROM r WHERE v IS NOT NULL)").len(),
        4
    );
    // Empty subquery: NOT IN is TRUE for every probe, NULL probes included.
    assert_eq!(rows(&e, "SELECT k FROM l WHERE k NOT IN (SELECT v FROM r WHERE v > 100)").len(), 6);
    assert_eq!(
        rows(&e, "SELECT a.k FROM r a WHERE a.v NOT IN (SELECT b.v FROM r b WHERE b.v > 100)")
            .len(),
        3,
        "a NULL probe against an empty set is still TRUE"
    );
}
