//! TPC-H Q17 through the Orca detour — the paper's plan-translation
//! walkthrough (§4.2, Fig 6/7, Listing 7).
//!
//! Shows:
//! * the Orca physical-plan sketch with memo group ids (Fig 6);
//! * the MySQL best-position array derived from it (Fig 7);
//! * the refined EXPLAIN with the correlated materialization's
//!   "invalidate" annotation and the LEFT-to-INNER join conversion
//!   (Listing 7).
//!
//! ```sh
//! cargo run --release --example tpch_q17_explain
//! ```

use taurus_orca::bridge::OrcaOptimizer;
use taurus_orca::mylite::{Engine, MySqlOptimizer, SkelNode};
use taurus_orca::orcalite::OrcaConfig;
use taurus_orca::workloads::{tpch, Scale};

fn main() -> taurus_orca::prelude::Result<()> {
    let engine = Engine::new(tpch::build_catalog(Scale(0.3)));
    let q17 = &tpch::queries()[16];
    println!("Q17 (Listing 5):\n{}\n", q17.sql);

    let orca = OrcaOptimizer::new(OrcaConfig::default(), 1);
    let planned = engine.plan(&q17.sql, &orca)?;
    let branch = planned.primary();

    // Fig 7: the best-position arrays. The outer block's array contains the
    // materialized derived table between 'part' and 'lineitem'.
    let namer = |qt: usize| branch.bound.tables[qt].display_name.clone();
    println!(
        "best-position array (outer block, Fig 7): {}",
        branch.skeleton.best_position_display(&namer)
    );
    for leaf in branch.skeleton.root.best_positions() {
        println!(
            "  position {:<12} access={:<12} rows={:<8.1} cost={:.1}",
            namer(leaf.qt),
            leaf.access.kind_name(),
            leaf.rows,
            leaf.cost
        );
        // Inner query blocks have their own arrays (Query Block 2 in Fig 7).
        if let taurus_orca::mylite::AccessChoice::Derived { skeleton } = &leaf.access {
            println!("    inner block best positions: {}", skeleton.best_position_display(&namer));
        }
    }
    let _ = SkelNode::is_left_deep; // (re-exported API surface)

    // Listing 7: the Orca-assisted EXPLAIN.
    println!("\nEXPLAIN (Listing 7 analog):\n{}", engine.explain(&q17.sql, &orca)?);

    // Sanity: both paths compute the same answer.
    let a = engine.query(&q17.sql)?;
    let b = engine.execute_planned(&planned)?;
    println!("MySQL plan result:  {:?}", a.rows);
    println!("Orca plan result:   {:?}", b.rows);
    println!(
        "work units — mysql {} vs orca {}",
        engine.query_with(&q17.sql, &MySqlOptimizer)?.work_units,
        b.work_units
    );
    Ok(())
}
